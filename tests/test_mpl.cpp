// MPL baseline tests: matching semantics, wildcards, ordering, credit flow
// control, and the calibration bands the paper reports for MPL.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mpl/mpl.hpp"

#include "bytes_equal.hpp"

namespace spam::mpl {
namespace {

struct Fixture {
  sim::World world;
  sphw::SpMachine machine;
  MplNet net;
  explicit Fixture(int nodes, MplParams mp = {},
                   sphw::SpParams hw = sphw::SpParams::thin_node())
      : world(nodes), machine(world, hw), net(machine, mp) {}
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  sim::Rng rng(seed);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  return v;
}

class MplSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MplSize, BsendBrecvRoundTripsBytes) {
  const std::size_t len = GetParam();
  Fixture f(2);
  auto src = pattern(len);
  std::vector<std::byte> dst(len + 16, std::byte{0});

  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).mpc_bsend(src.data(), len, 1, 7);
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    const std::size_t got = f.net.ep(1).mpc_brecv(dst.data(), len, 0, 7);
    EXPECT_EQ(got, len);
  });
  f.world.run();
  EXPECT_TRUE(spam::test::bytes_equal(dst.data(), src.data(), len));
  for (std::size_t i = len; i < dst.size(); ++i) {
    EXPECT_EQ(dst[i], std::byte{0});
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MplSize,
                         ::testing::Values(0, 1, 4, 224, 225, 4096, 14336,
                                           65536));

TEST(Mpl, TagMatchingSelectsCorrectMessage) {
  Fixture f(2);
  int a = 111, b = 222;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).mpc_bsend(&a, sizeof a, 1, /*tag=*/1);
    f.net.ep(0).mpc_bsend(&b, sizeof b, 1, /*tag=*/2);
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    int x = 0, y = 0;
    // Receive tag 2 first even though tag 1 arrived first.
    f.net.ep(1).mpc_brecv(&y, sizeof y, 0, 2);
    f.net.ep(1).mpc_brecv(&x, sizeof x, 0, 1);
    EXPECT_EQ(x, 111);
    EXPECT_EQ(y, 222);
  });
  f.world.run();
  EXPECT_EQ(f.net.ep(1).stats().msgs_received, 2u);
}

TEST(Mpl, WildcardsReceiveAnything) {
  Fixture f(3);
  f.world.spawn(0, [&](sim::NodeCtx&) {
    int v = 10;
    f.net.ep(0).mpc_bsend(&v, sizeof v, 2, 5);
  });
  f.world.spawn(1, [&](sim::NodeCtx& ctx) {
    ctx.elapse(sim::usec(200));  // arrive second
    int v = 20;
    f.net.ep(1).mpc_bsend(&v, sizeof v, 2, 6);
  });
  f.world.spawn(2, [&](sim::NodeCtx&) {
    int x = 0, y = 0;
    f.net.ep(2).mpc_brecv(&x, sizeof x, kAnySource, kAnyTag);
    f.net.ep(2).mpc_brecv(&y, sizeof y, kAnySource, kAnyTag);
    EXPECT_EQ(x + y, 30);
  });
  f.world.run();
}

TEST(Mpl, InOrderPerSourcePair) {
  Fixture f(2);
  const int n = 100;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    for (int i = 0; i < n; ++i) f.net.ep(0).mpc_bsend(&i, sizeof i, 1, 3);
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    for (int i = 0; i < n; ++i) {
      int v = -1;
      f.net.ep(1).mpc_brecv(&v, sizeof v, 0, 3);
      EXPECT_EQ(v, i);
    }
  });
  f.world.run();
}

TEST(Mpl, NonblockingSendRecvOverlap) {
  Fixture f(2);
  const std::size_t len = 30000;
  auto s0 = pattern(len, 1), s1 = pattern(len, 2);
  std::vector<std::byte> r0(len), r1(len);
  f.world.spawn(0, [&](sim::NodeCtx&) {
    const int rh = f.net.ep(0).mpc_recv(r0.data(), len, 1, 9);
    const int sh = f.net.ep(0).mpc_send(s0.data(), len, 1, 9);
    f.net.ep(0).mpc_wait(sh);
    f.net.ep(0).mpc_wait(rh);
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    const int rh = f.net.ep(1).mpc_recv(r1.data(), len, 0, 9);
    const int sh = f.net.ep(1).mpc_send(s1.data(), len, 0, 9);
    f.net.ep(1).mpc_wait(sh);
    f.net.ep(1).mpc_wait(rh);
  });
  f.world.run();
  EXPECT_TRUE(spam::test::bytes_equal(r0.data(), s1.data(), len));
  EXPECT_TRUE(spam::test::bytes_equal(r1.data(), s0.data(), len));
}

TEST(Mpl, UnexpectedMessagesBufferUntilPosted) {
  Fixture f(2);
  int payload = 77;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).mpc_bsend(&payload, sizeof payload, 1, 4);
  });
  f.world.spawn(1, [&](sim::NodeCtx& ctx) {
    ctx.elapse(sim::usec(5000));  // message arrives well before the recv
    int v = 0;
    f.net.ep(1).mpc_brecv(&v, sizeof v, 0, 4);
    EXPECT_EQ(v, 77);
  });
  f.world.run();
}

TEST(Mpl, RoundTripLatencyMatchesPaper) {
  // Paper section 2.3 / Table 3: MPL one-word ping-pong of 88 us.
  Fixture f(2);
  sim::Time rtt = 0;
  f.world.spawn(0, [&](sim::NodeCtx& ctx) {
    int w = 1, r = 0;
    f.net.ep(0).mpc_bsend(&w, sizeof w, 1, 0);  // warm-up
    f.net.ep(0).mpc_brecv(&r, sizeof r, 1, 0);
    const sim::Time t0 = ctx.now();
    f.net.ep(0).mpc_bsend(&w, sizeof w, 1, 0);
    f.net.ep(0).mpc_brecv(&r, sizeof r, 1, 0);
    rtt = ctx.now() - t0;
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    int v = 0;
    for (int i = 0; i < 2; ++i) {
      f.net.ep(1).mpc_brecv(&v, sizeof v, 0, 0);
      f.net.ep(1).mpc_bsend(&v, sizeof v, 0, 0);
    }
  });
  f.world.run();
  EXPECT_GT(sim::to_usec(rtt), 75.0);
  EXPECT_LT(sim::to_usec(rtt), 100.0);
}

TEST(Mpl, PipelinedBandwidthMatchesPaper) {
  // Paper: MPL r-infinity of 34.6 MB/s via pipelined mpc_send.
  Fixture f(2);
  const std::size_t total = 1 << 20;
  const std::size_t piece = 1 << 16;
  auto src = pattern(piece);
  std::vector<std::byte> dst(piece);
  sim::Time elapsed = 0;

  f.world.spawn(0, [&](sim::NodeCtx& ctx) {
    const sim::Time t0 = ctx.now();
    std::vector<int> handles;
    for (std::size_t off = 0; off < total; off += piece) {
      handles.push_back(f.net.ep(0).mpc_send(src.data(), piece, 1, 0));
    }
    for (int h : handles) f.net.ep(0).mpc_wait(h);
    int fin = 0;
    f.net.ep(0).mpc_brecv(&fin, sizeof fin, 1, 1);
    elapsed = ctx.now() - t0;
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    for (std::size_t off = 0; off < total; off += piece) {
      f.net.ep(1).mpc_brecv(dst.data(), piece, 0, 0);
    }
    int fin = 1;
    f.net.ep(1).mpc_bsend(&fin, sizeof fin, 0, 1);
  });
  f.world.run();

  const double mbps = static_cast<double>(total) / sim::to_sec(elapsed) / 1e6;
  EXPECT_GT(mbps, 31.0);
  EXPECT_LT(mbps, 37.0);
}

TEST(Mpl, CreditWindowNeverOverflowsReceiveFifo) {
  // The whole point of MPL's credit flow control: nothing is dropped even
  // when the receiver is slow.
  Fixture f(2);
  const std::size_t len = 500000;
  auto src = pattern(len);
  std::vector<std::byte> dst(len);
  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).mpc_bsend(src.data(), len, 1, 0);
  });
  f.world.spawn(1, [&](sim::NodeCtx& ctx) {
    ctx.elapse(sim::usec(10000));  // stall before receiving
    f.net.ep(1).mpc_brecv(dst.data(), len, 0, 0);
  });
  f.world.run();
  EXPECT_TRUE(spam::test::bytes_equal(dst.data(), src.data(), len));
  EXPECT_EQ(f.machine.adapter(1).stats().rx_dropped_fifo_full, 0u);
  EXPECT_GT(f.net.ep(1).stats().credit_returns, 0u);
}

}  // namespace
}  // namespace spam::mpl
