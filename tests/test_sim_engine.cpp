// Unit tests for the discrete-event engine: ordering, determinism, clamping.
#include <gtest/gtest.h>

#include <algorithm>\n#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace spam::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.at(30, [&] { order.push_back(3); });
  e.at(10, [&] { order.push_back(1); });
  e.at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameTimeIsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    e.at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, AfterSchedulesRelative) {
  Engine e;
  Time seen = 0;
  e.at(100, [&] { e.after(50, [&] { seen = e.now(); }); });
  e.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Engine, PastTimeClampsToNow) {
  Engine e;
  Time seen = 0;
  e.at(100, [&] {
    e.at(10, [&] { seen = e.now(); });  // in the past: clamp to now
  });
  e.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    e.at(i, [&] {
      ++count;
      if (count == 3) e.stop();
    });
  }
  EXPECT_EQ(e.run(), 3u);
  EXPECT_EQ(count, 3);
  // Remaining events still pending; a new run() picks them up.
  EXPECT_EQ(e.run(), 7u);
}

TEST(Engine, RunUntilHonorsDeadlineInclusive) {
  Engine e;
  std::vector<Time> fired;
  for (Time t : {5u, 10u, 15u, 20u}) {
    e.at(t, [&, t] { fired.push_back(t); });
  }
  e.run_until(15);
  EXPECT_EQ(fired, (std::vector<Time>{5, 10, 15}));
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, NestedSchedulingChains) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 1000) e.after(1, chain);
  };
  e.after(1, chain);
  e.run();
  EXPECT_EQ(depth, 1000);
  EXPECT_EQ(e.now(), 1000u);
}

TEST(Engine, CalendarOrdersAcrossBucketsAndHeap) {
  // Mix of near (calendar-bucket) and far (heap, beyond the ~1 ms bucket
  // window) events, scheduled in scrambled order, must still execute in
  // exact (t, seq) order.
  Engine e;
  std::vector<Time> fired;
  const std::vector<Time> times = {5,          kMsec * 50, 1023,      1024,
                                   kMsec * 2,  7,          kMsec * 50 + 1,
                                   200 * kUsec};
  for (Time t : times) {
    e.at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  e.run();
  std::vector<Time> expect = times;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(fired, expect);
}

TEST(Engine, CalendarRebasesAfterLongIdleJump) {
  // After the clock jumps far past the bucket window, short-horizon events
  // must keep landing in calendar buckets (the window rebases), and order
  // must stay exact.
  Engine e;
  std::vector<int> order;
  e.at(kSec, [&] {
    e.after(10, [&] { order.push_back(2); });
    e.after(5, [&] { order.push_back(1); });
    e.after(kMsec * 10, [&] { order.push_back(3); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), kSec + kMsec * 10);
}

TEST(Engine, SameTimeFifoAcrossCalendarAndHeap) {
  // Same-instant events must run in scheduling order even when some were
  // queued while the instant was beyond the bucket window (heap) and some
  // after it entered the window (calendar).
  Engine e;
  std::vector<int> order;
  const Time t = kMsec * 20;  // beyond the window at schedule time
  e.at(t, [&] { order.push_back(0); });
  e.at(kMsec * 19, [&] {
    // Now t is within the window: these land in a calendar bucket.
    e.at(t, [&] { order.push_back(1); });
    e.at(t, [&] { order.push_back(2); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, ElideLedgerFoldsIntoSimulatedCount) {
  Engine e;
  e.at(10, [] {});
  e.at(20, [] {});
  e.run();
  EXPECT_EQ(e.events_executed(), 2u);
  EXPECT_EQ(e.events_simulated(), 2u);
  e.note_elided(5);
  EXPECT_EQ(e.events_executed(), 2u);
  EXPECT_EQ(e.events_simulated(), 7u);
  e.note_elided(-2);  // rollbacks may return elided events to the real queue
  EXPECT_EQ(e.events_simulated(), 5u);
}

TEST(Engine, TrySkipElapseRespectsQueuedEvents) {
  Engine e;
  e.set_fastpath(true);
  bool ran = false;
  e.at(0, [&] {
    e.after(100, [&ran] { ran = true; });
    // Skip would cross (or tie) the queued event: must be denied.  A tie
    // must be denied because the queued event has the smaller seq.
    EXPECT_FALSE(e.try_skip_elapse(150));
    EXPECT_FALSE(e.try_skip_elapse(100));
    // Strictly before the queued event: allowed, advances the clock and
    // counts the avoided wake as elided.
    const std::uint64_t elided = e.events_elided();
    EXPECT_TRUE(e.try_skip_elapse(99));
    EXPECT_EQ(e.now(), 99u);
    EXPECT_EQ(e.events_elided(), elided + 1);
  });
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.now(), 100u);
}

TEST(Engine, TrySkipElapseDisabledInPerHopMode) {
  Engine e;
  e.set_fastpath(false);
  e.at(0, [&] { EXPECT_FALSE(e.try_skip_elapse(10)); });
  e.run();
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(usec(1.0), 1000u);
  EXPECT_EQ(usec(1.3), 1300u);
  EXPECT_DOUBLE_EQ(to_usec(2500), 2.5);
  EXPECT_EQ(transfer_time(0, 40.0), 0u);
  // 256 bytes at 80 MB/s = 3.2 us.
  EXPECT_EQ(transfer_time(256, 80.0), usec(3.2));
  // Tiny transfers round up to at least one tick.
  EXPECT_GE(transfer_time(1, 1e9), 1u);
}

TEST(Rng, DeterministicAndSplittable) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  // Different seeds diverge.
  Rng a2(42);
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
  // Split streams are independent of parent's later output.
  Rng p1(7), p2(7);
  Rng s1 = p1.split(0);
  Rng s2 = p2.split(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s1.next_u64(), s2.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace spam::sim
