// Unit tests for the sender-side eager-buffer allocator (first-fit and
// binned configurations) and for the MPI matching engine.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/buffer_alloc.hpp"
#include "mpi/match.hpp"
#include "sim/rng.hpp"

namespace spam::mpi {
namespace {

TEST(BufferAlloc, FirstFitAllocatesSequentially) {
  BufferAllocator a(16 * 1024, /*binned=*/false);
  const std::size_t o1 = a.alloc(1000);
  const std::size_t o2 = a.alloc(2000);
  EXPECT_EQ(o1, 0u);
  EXPECT_EQ(o2, 1000u);
  EXPECT_EQ(a.bytes_in_use(), 3000u);
}

TEST(BufferAlloc, FailsWhenFull) {
  BufferAllocator a(16 * 1024, false);
  EXPECT_NE(a.alloc(16 * 1024), BufferAllocator::kFail);
  EXPECT_EQ(a.alloc(1), BufferAllocator::kFail);
  EXPECT_EQ(a.stats().failures, 1u);
}

TEST(BufferAlloc, FreeCoalescesNeighbours) {
  BufferAllocator a(16 * 1024, false);
  const std::size_t o1 = a.alloc(4096);
  const std::size_t o2 = a.alloc(4096);
  const std::size_t o3 = a.alloc(4096);
  const std::size_t o4 = a.alloc(4096);
  EXPECT_EQ(a.alloc(1), BufferAllocator::kFail);
  // Free out of order; coalescing must reassemble the whole region.
  a.free(o2, 4096);
  a.free(o4, 4096);
  a.free(o3, 4096);
  a.free(o1, 4096);
  EXPECT_EQ(a.bytes_in_use(), 0u);
  EXPECT_NE(a.alloc(16 * 1024), BufferAllocator::kFail);
}

TEST(BufferAlloc, BinnedFastPathServesSmall) {
  BufferAllocator a(16 * 1024, /*binned=*/true);
  std::vector<std::size_t> offs;
  for (int i = 0; i < 8; ++i) {
    const std::size_t o = a.alloc(512);
    ASSERT_NE(o, BufferAllocator::kFail);
    offs.push_back(o);
  }
  EXPECT_EQ(a.stats().bin_allocs, 8u);
  EXPECT_EQ(a.stats().fit_allocs, 0u);
  // Ninth small alloc spills into first-fit.
  EXPECT_NE(a.alloc(512), BufferAllocator::kFail);
  EXPECT_EQ(a.stats().fit_allocs, 1u);
  // Bin frees identified by offset.
  for (std::size_t o : offs) a.free(o, 512);
  EXPECT_EQ(a.alloc(100), offs[0]);
}

TEST(BufferAlloc, BinnedReducesSearchSteps) {
  // The paper's rationale for the binned allocator: first-fit search cost
  // grows with fragmentation; bins dodge it for small messages.
  auto churn = [](bool binned) {
    BufferAllocator a(16 * 1024, binned);
    sim::Rng rng(7);
    std::vector<std::pair<std::size_t, std::size_t>> live;
    for (int i = 0; i < 4000; ++i) {
      if (live.size() > 6 && rng.chance(0.6)) {
        const std::size_t k = rng.next_below(live.size());
        a.free(live[k].first, live[k].second);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        const std::size_t len = 64 + rng.next_below(900);
        const std::size_t o = a.alloc(len);
        if (o != BufferAllocator::kFail) live.emplace_back(o, len);
      }
    }
    return a.stats().fit_search_steps;
  };
  EXPECT_LT(churn(true), churn(false) / 2);
}

TEST(BufferAlloc, RandomChurnNeverOverlaps) {
  // Property: live allocations never overlap and stay in range.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    BufferAllocator a(16 * 1024, seed % 2 == 0);
    sim::Rng rng(seed);
    std::vector<std::pair<std::size_t, std::size_t>> live;
    for (int i = 0; i < 3000; ++i) {
      if (!live.empty() && rng.chance(0.5)) {
        const std::size_t k = rng.next_below(live.size());
        a.free(live[k].first, live[k].second);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        const std::size_t len = 1 + rng.next_below(3000);
        const std::size_t o = a.alloc(len);
        if (o == BufferAllocator::kFail) continue;
        const std::size_t span = (a.binned() && o < 8 * 1024 && len <= 1024)
                                     ? 1024
                                     : len;
        EXPECT_LE(o + span, a.total_bytes());
        for (const auto& [lo, ll] : live) {
          const std::size_t lspan =
              (a.binned() && lo < 8 * 1024 && ll <= 1024) ? 1024 : ll;
          EXPECT_TRUE(o + span <= lo || lo + lspan <= o)
              << "overlap at " << o << "+" << span << " vs " << lo << "+"
              << lspan;
        }
        live.emplace_back(o, len);
      }
    }
  }
}

TEST(Match, PostedMatchesArrivalBySourceAndTag) {
  MatchEngine m;
  PostedRecv r;
  r.req_id = 1;
  r.src = 2;
  r.tag = 5;
  EXPECT_FALSE(m.post(r).has_value());
  InMsg wrong;
  wrong.src = 3;
  wrong.tag = 5;
  EXPECT_FALSE(m.arrive(wrong).has_value());  // wrong source: unexpected
  InMsg right;
  right.src = 2;
  right.tag = 5;
  auto matched = m.arrive(right);
  ASSERT_TRUE(matched.has_value());
  EXPECT_EQ(matched->req_id, 1);
  EXPECT_EQ(m.unexpected_count(), 1u);
}

TEST(Match, WildcardsMatchInArrivalOrder) {
  MatchEngine m;
  for (int i = 0; i < 3; ++i) {
    InMsg msg;
    msg.src = i;
    msg.tag = 9;
    msg.cookie = static_cast<std::uint64_t>(i + 100);
    EXPECT_FALSE(m.arrive(msg).has_value());
  }
  PostedRecv r;
  r.src = kAnySource;
  r.tag = kAnyTag;
  auto a = m.post(r);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->cookie, 100u) << "must match the earliest unexpected";
  auto b = m.post(r);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->cookie, 101u);
}

TEST(Match, PostedOrderRespectedForSameMatch) {
  MatchEngine m;
  PostedRecv r1{1, kAnySource, kAnyTag, nullptr, 0};
  PostedRecv r2{2, kAnySource, kAnyTag, nullptr, 0};
  m.post(r1);
  m.post(r2);
  InMsg msg;
  msg.src = 0;
  msg.tag = 0;
  auto hit = m.arrive(msg);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->req_id, 1) << "earliest posted receive wins";
}

}  // namespace
}  // namespace spam::mpi
