// Protocol-selection and device-internals tests for MPI-over-AM: which wire
// protocol each message size takes, buffer accounting, free batching,
// hybrid prefix behaviour including the early-prefix (unexpected) path.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mpif/mpi_world.hpp"

namespace spam::mpi {
namespace {

struct Fixture {
  sim::World world;
  sphw::SpMachine machine;
  am::AmNet amnet;
  MpiAmNet net;
  Fixture(int nodes, MpiAmConfig cfg, std::uint64_t seed = 1)
      : world(nodes, seed),
        machine(world, sphw::SpParams::thin_node()),
        amnet(machine),
        net(amnet, cfg) {}
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  sim::Rng rng(seed);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  return v;
}

void exchange(Fixture& f, std::size_t len) {
  auto src = pattern(len);
  static std::vector<std::byte> dst;
  dst.assign(len, std::byte{0});
  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.mpi(0).send(src.data(), len, 1, 0);
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.mpi(1).recv(dst.data(), len, 0, 0);
  });
  f.world.run();
  ASSERT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
}

TEST(MpiProtocol, SmallMessageTakesEagerPath) {
  Fixture f(2, MpiAmConfig::opt());
  exchange(f, 100);
  EXPECT_EQ(f.net.mpi(0).dev_stats().eager_sends, 1u);
  EXPECT_EQ(f.net.mpi(0).dev_stats().rdv_sends, 0u);
  EXPECT_EQ(f.net.mpi(0).dev_stats().hybrid_sends, 0u);
}

TEST(MpiProtocol, LargeMessageTakesHybridPathWhenOptimized) {
  Fixture f(2, MpiAmConfig::opt());
  exchange(f, 50000);
  EXPECT_EQ(f.net.mpi(0).dev_stats().eager_sends, 0u);
  EXPECT_EQ(f.net.mpi(0).dev_stats().hybrid_sends, 1u);
}

TEST(MpiProtocol, LargeMessageTakesPureRdvWhenUnoptimized) {
  Fixture f(2, MpiAmConfig::unopt());
  exchange(f, 50000);
  EXPECT_EQ(f.net.mpi(0).dev_stats().eager_sends, 0u);
  EXPECT_EQ(f.net.mpi(0).dev_stats().hybrid_sends, 0u);
  EXPECT_EQ(f.net.mpi(0).dev_stats().rdv_sends, 1u);
}

TEST(MpiProtocol, UnoptimizedSwitchesAtSixteenK) {
  Fixture f(2, MpiAmConfig::unopt());
  exchange(f, 12000);  // under the 16 KB switch: still eager
  EXPECT_EQ(f.net.mpi(0).dev_stats().eager_sends, 1u);
  EXPECT_EQ(f.net.mpi(0).dev_stats().rdv_sends, 0u);
}

TEST(MpiProtocol, HybridPrefixArrivingBeforeRecvIsStashed) {
  // Delay the receiver so announcement + prefix are both unexpected, then
  // post the receive: the stashed prefix must land correctly.
  Fixture f(2, MpiAmConfig::opt());
  const std::size_t len = 40000;
  auto src = pattern(len, 5);
  std::vector<std::byte> dst(len, std::byte{0});
  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.mpi(0).send(src.data(), len, 1, 3);
  });
  f.world.spawn(1, [&](sim::NodeCtx& ctx) {
    ctx.elapse(sim::usec(20000));  // everything arrives before the post
    f.net.mpi(1).recv(dst.data(), len, 0, 3);
  });
  f.world.run();
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
  EXPECT_EQ(f.net.mpi(0).dev_stats().hybrid_sends, 1u);
}

TEST(MpiProtocol, EagerBufferBlocksThenRecycles) {
  // Saturate the eager region with unconsumed messages; the sender must
  // block (pending queue), then drain as the receiver consumes.
  Fixture f(2, MpiAmConfig::opt());
  const std::size_t piece = 3000;
  const int n = 30;
  auto src = pattern(piece * n);
  std::vector<std::byte> dst(piece * n, std::byte{0});
  f.world.spawn(0, [&](sim::NodeCtx&) {
    for (int i = 0; i < n; ++i) {
      f.net.mpi(0).send(src.data() + i * piece, piece, 1, i);
    }
  });
  f.world.spawn(1, [&](sim::NodeCtx& ctx) {
    ctx.elapse(sim::usec(30000));  // let the region fill
    for (int i = 0; i < n; ++i) {
      f.net.mpi(1).recv(dst.data() + i * piece, piece, 0, i);
    }
  });
  f.world.run();
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  EXPECT_GT(f.net.mpi(0).dev_stats().sends_blocked_on_buffer, 0u);
  EXPECT_GT(f.net.mpi(1).dev_stats().free_msgs, 0u);
}

TEST(MpiProtocol, BatchedFreesSendFewerMessagesThanPerBuffer) {
  auto free_msgs = [](bool batch) {
    MpiAmConfig cfg = MpiAmConfig::opt();
    cfg.batch_frees = batch;
    Fixture f(2, cfg);
    const std::size_t piece = 512;
    const int n = 60;
    auto src = pattern(piece * n);
    static std::vector<std::byte> dst;
    dst.assign(piece * n, std::byte{0});
    f.world.spawn(0, [&](sim::NodeCtx&) {
      for (int i = 0; i < n; ++i) {
        f.net.mpi(0).send(src.data() + i * piece, piece, 1, 0);
      }
    });
    f.world.spawn(1, [&](sim::NodeCtx&) {
      for (int i = 0; i < n; ++i) {
        f.net.mpi(1).recv(dst.data() + i * piece, piece, 0, 0);
      }
    });
    f.world.run();
    return f.net.mpi(1).dev_stats().free_msgs;
  };
  const auto batched = free_msgs(true);
  const auto unbatched = free_msgs(false);
  EXPECT_EQ(unbatched, 60u) << "unoptimized: one free per buffer";
  EXPECT_LT(batched, unbatched) << "optimized frees must combine";
}

TEST(MpiProtocol, ZeroEagerMaxForcesRendezvousForEverything) {
  MpiAmConfig cfg = MpiAmConfig::opt();
  cfg.eager_max = 0;
  cfg.hybrid = false;
  Fixture f(2, cfg);
  exchange(f, 64);
  EXPECT_EQ(f.net.mpi(0).dev_stats().rdv_sends, 1u);
  EXPECT_EQ(f.net.mpi(0).dev_stats().eager_sends, 0u);
}

}  // namespace
}  // namespace spam::mpi
