// Collective-algorithm correctness across node counts (including
// non-powers-of-two, which exercise the binomial trees' guards) and both
// the generic (MPICH) and tuned (MPI-F) schedules.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "mpif/mpi_world.hpp"

namespace spam::mpi {
namespace {

struct Case {
  MpiImpl impl;
  int nodes;
};

class Collectives : public ::testing::TestWithParam<Case> {};

MpiWorldConfig cfg_of(const Case& c) {
  MpiWorldConfig cfg;
  cfg.impl = c.impl;
  cfg.nodes = c.nodes;
  return cfg;
}

TEST_P(Collectives, BcastFromEveryRoot) {
  const Case c = GetParam();
  MpiWorld w(cfg_of(c));
  w.run([&](Mpi& mpi) {
    for (int root = 0; root < c.nodes; ++root) {
      std::int64_t v = mpi.rank() == root ? 4000 + root : -1;
      mpi.bcast(&v, sizeof v, root);
      EXPECT_EQ(v, 4000 + root) << "root=" << root << " rank=" << mpi.rank();
    }
  });
}

TEST_P(Collectives, ReduceToEveryRoot) {
  const Case c = GetParam();
  MpiWorld w(cfg_of(c));
  const std::int64_t expect =
      static_cast<std::int64_t>(c.nodes) * (c.nodes + 1) / 2;
  w.run([&](Mpi& mpi) {
    for (int root = 0; root < c.nodes; ++root) {
      const std::int64_t mine = mpi.rank() + 1;
      std::int64_t out = 0;
      mpi.reduce(&mine, &out, 1, Dtype::kInt64, ReduceOp::kSum, root);
      if (mpi.rank() == root) {
        EXPECT_EQ(out, expect);
      }
    }
  });
}

TEST_P(Collectives, AllreduceVectorSum) {
  const Case c = GetParam();
  MpiWorld w(cfg_of(c));
  constexpr int kCount = 257;  // odd length, multi-packet payload
  w.run([&](Mpi& mpi) {
    std::vector<double> v(kCount), out(kCount);
    for (int i = 0; i < kCount; ++i) v[i] = mpi.rank() + i * 0.5;
    mpi.allreduce(v.data(), out.data(), kCount, Dtype::kDouble,
                  ReduceOp::kSum);
    const double ranksum = c.nodes * (c.nodes - 1) / 2.0;
    for (int i = 0; i < kCount; ++i) {
      ASSERT_DOUBLE_EQ(out[i], ranksum + c.nodes * i * 0.5) << i;
    }
  });
}

TEST_P(Collectives, AlltoallAndAllgatherAnyCount) {
  const Case c = GetParam();
  MpiWorld w(cfg_of(c));
  w.run([&](Mpi& mpi) {
    const int p = mpi.size();
    const int me = mpi.rank();
    std::vector<std::int32_t> s(p), r(p, -1);
    for (int i = 0; i < p; ++i) s[i] = me * 1000 + i;
    mpi.alltoall(s.data(), r.data(), sizeof(std::int32_t));
    for (int i = 0; i < p; ++i) EXPECT_EQ(r[i], i * 1000 + me);

    std::int32_t mine = me * 3;
    std::vector<std::int32_t> all(p, -1);
    mpi.allgather(&mine, sizeof mine, all.data());
    for (int i = 0; i < p; ++i) EXPECT_EQ(all[i], i * 3);
  });
}

TEST_P(Collectives, BarrierCountsAgree) {
  const Case c = GetParam();
  MpiWorld w(cfg_of(c));
  std::vector<int> counter(static_cast<std::size_t>(c.nodes), 0);
  w.run([&](Mpi& mpi) {
    for (int round = 0; round < 5; ++round) {
      ++counter[static_cast<std::size_t>(mpi.rank())];
      mpi.barrier();
      for (int i = 0; i < c.nodes; ++i) {
        EXPECT_GE(counter[static_cast<std::size_t>(i)], round + 1);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    NodeCounts, Collectives,
    ::testing::Values(Case{MpiImpl::kAmOptimized, 2},
                      Case{MpiImpl::kAmOptimized, 3},
                      Case{MpiImpl::kAmOptimized, 5},
                      Case{MpiImpl::kAmOptimized, 7},
                      Case{MpiImpl::kAmOptimized, 8},
                      Case{MpiImpl::kMpiF, 3},
                      Case{MpiImpl::kMpiF, 6},
                      Case{MpiImpl::kMpiF, 8}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(info.param.impl == MpiImpl::kMpiF ? "MpiF" : "AmOpt") +
             "_n" + std::to_string(info.param.nodes);
    });

}  // namespace
}  // namespace spam::mpi
