// LogGP machine-model tests: parameter fidelity (Table 4 round-trips and
// bandwidths), port serialization, receiver-debt accounting, message path.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "logp/loggp.hpp"

namespace spam::logp {
namespace {

/// Measures a put-flag ping-pong round-trip on the given machine.
double ping_pong_rtt_us(LogGpParams params) {
  sim::World w(2);
  LogGpMachine m(w, params);
  std::uint64_t flag0 = 0, flag1 = 0;
  sim::Time rtt = 0;

  w.spawn(0, [&](sim::NodeCtx& ctx) {
    std::uint64_t one = 1;
    // Warm-up.
    m.ep(0).put_bytes(1, &flag1, &one, 8);
    while (flag0 < 1) m.ep(0).poll();
    const sim::Time t0 = ctx.now();
    std::uint64_t two = 2;
    m.ep(0).put_bytes(1, &flag1, &two, 8);
    while (flag0 < 2) m.ep(0).poll();
    rtt = ctx.now() - t0;
  });
  w.spawn(1, [&](sim::NodeCtx&) {
    for (std::uint64_t v = 1; v <= 2; ++v) {
      while (flag1 < v) m.ep(1).poll();
      m.ep(1).put_bytes(0, &flag0, &v, 8);
    }
  });
  w.run();
  return sim::to_usec(rtt);
}

TEST(LogGp, Cm5RoundTripNearPaper) {
  // Table 4: CM-5 round-trip 12 us.  The put path includes flag-poll
  // quantization, so allow a band.
  const double rtt = ping_pong_rtt_us(LogGpParams::cm5());
  EXPECT_GT(rtt, 9.0);
  EXPECT_LT(rtt, 17.0);
}

TEST(LogGp, MeikoRoundTripNearPaper) {
  const double rtt = ping_pong_rtt_us(LogGpParams::meiko_cs2());
  EXPECT_GT(rtt, 20.0);
  EXPECT_LT(rtt, 32.0);
}

TEST(LogGp, UnetRoundTripNearPaper) {
  const double rtt = ping_pong_rtt_us(LogGpParams::unet_atm());
  EXPECT_GT(rtt, 58.0);
  EXPECT_LT(rtt, 76.0);
}

double bulk_bandwidth_mbps(LogGpParams params, std::size_t len) {
  sim::World w(2);
  LogGpMachine m(w, params);
  std::vector<std::byte> src(len, std::byte{1}), dst(len);
  sim::Time elapsed = 0;
  w.spawn(0, [&](sim::NodeCtx& ctx) {
    const sim::Time t0 = ctx.now();
    m.ep(0).put_bytes(1, dst.data(), src.data(), len);
    while (m.ep(0).outstanding() > 0) m.ep(0).poll();
    elapsed = ctx.now() - t0;
  });
  w.run();
  return static_cast<double>(len) / sim::to_sec(elapsed) / 1e6;
}

TEST(LogGp, BandwidthMatchesGapParameter) {
  // 1 MB transfers approach 1/G.
  EXPECT_NEAR(bulk_bandwidth_mbps(LogGpParams::cm5(), 1 << 20), 10.0, 1.5);
  EXPECT_NEAR(bulk_bandwidth_mbps(LogGpParams::meiko_cs2(), 1 << 20), 39.0,
              4.0);
  EXPECT_NEAR(bulk_bandwidth_mbps(LogGpParams::unet_atm(), 1 << 20), 14.0,
              2.0);
}

TEST(LogGp, GetFetchesRemoteBytes) {
  sim::World w(2);
  LogGpMachine m(w, LogGpParams::cm5());
  std::vector<std::byte> remote(1000);
  for (std::size_t i = 0; i < remote.size(); ++i) {
    remote[i] = static_cast<std::byte>(i & 0xff);
  }
  std::vector<std::byte> local(1000, std::byte{0});
  w.spawn(0, [&](sim::NodeCtx&) {
    m.ep(0).get_bytes(1, remote.data(), local.data(), remote.size());
    while (m.ep(0).outstanding() > 0) m.ep(0).poll();
  });
  w.run();
  EXPECT_EQ(std::memcmp(local.data(), remote.data(), remote.size()), 0);
}

TEST(LogGp, PortSerializesConcurrentPuts) {
  // Two 100 KB puts from the same node must take ~2x one put's wire time.
  LogGpParams p = LogGpParams::cm5();
  const std::size_t len = 100000;
  auto run = [&](int puts) {
    sim::World w(3);
    LogGpMachine m(w, p);
    static std::vector<std::byte> src, d1, d2;
    src.assign(len, std::byte{7});
    d1.assign(len, std::byte{0});
    d2.assign(len, std::byte{0});
    sim::Time elapsed = 0;
    w.spawn(0, [&, puts](sim::NodeCtx& ctx) {
      const sim::Time t0 = ctx.now();
      m.ep(0).put_bytes(1, d1.data(), src.data(), len);
      if (puts == 2) m.ep(0).put_bytes(2, d2.data(), src.data(), len);
      while (m.ep(0).outstanding() > 0) m.ep(0).poll();
      elapsed = ctx.now() - t0;
    });
    w.run();
    return elapsed;
  };
  const sim::Time one = run(1);
  const sim::Time two = run(2);
  EXPECT_GT(two, one + one / 2) << "port must serialize same-source puts";
}

TEST(LogGp, MessagePathDispatchesAtPoll) {
  sim::World w(2);
  LogGpMachine m(w, LogGpParams::cm5());
  std::vector<std::uint64_t> got;
  m.ep(1).set_handler([&](const LogGpMsg& msg) {
    EXPECT_EQ(msg.src, 0);
    got.push_back(msg.h[0]);
  });
  w.spawn(0, [&](sim::NodeCtx&) {
    for (std::uint64_t i = 0; i < 5; ++i) {
      LogGpMsg msg;
      msg.kind = 1;
      msg.h[0] = i;
      m.ep(0).send(1, std::move(msg));
    }
  });
  w.spawn(1, [&](sim::NodeCtx&) {
    while (got.size() < 5) m.ep(1).poll();
  });
  w.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(LogGp, ReceiverDebtChargedAtPoll) {
  sim::World w(2);
  LogGpMachine m(w, LogGpParams::meiko_cs2());  // o_r = 5.5 us
  std::uint64_t sink = 0;
  sim::Time poll_cost = 0;
  w.spawn(0, [&](sim::NodeCtx&) {
    std::uint64_t v = 1;
    for (int i = 0; i < 10; ++i) m.ep(0).put_bytes(1, &sink, &v, 8);
    while (m.ep(0).outstanding() > 0) m.ep(0).poll();
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    ctx.elapse(sim::usec(5000));  // let all ten arrive and accrue debt
    const sim::Time t0 = ctx.now();
    m.ep(1).poll();
    poll_cost = ctx.now() - t0;
  });
  w.run();
  // 10 messages x 5.5 us debt + poll cost itself.
  EXPECT_GE(sim::to_usec(poll_cost), 55.0);
  EXPECT_LT(sim::to_usec(poll_cost), 60.0);
}

}  // namespace
}  // namespace spam::logp
