// Split-C runtime tests, parameterized over all three backends (SP AM,
// SP MPL, LogGP/CM-5): puts/gets, bulk transfers, sync semantics, barrier,
// reductions, pointer exchange, and phase-time accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "splitc/splitc_world.hpp"

namespace spam::splitc {
namespace {

SplitCConfig make_config(Backend b, int nodes) {
  SplitCConfig cfg;
  cfg.nodes = nodes;
  cfg.backend = b;
  if (b == Backend::kLogGp) cfg.loggp = logp::LogGpParams::cm5();
  return cfg;
}

class SplitCBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(SplitCBackends, ScalarPutGetRoundTrip) {
  SplitCWorld w(make_config(GetParam(), 4));
  std::vector<std::uint64_t> cell(4, 0);
  std::vector<double> dcell(4, 0.0);

  w.run([&](Runtime& rt) {
    const int me = rt.my_proc();
    const int right = (me + 1) % rt.procs();
    rt.write(gptr<std::uint64_t>{right, &cell[right]},
             static_cast<std::uint64_t>(100 + me));
    rt.write(gptr<double>{right, &dcell[right]}, 0.5 + me);
    rt.barrier();
    // Read back what our left neighbour wrote into our cell via a get from
    // our own slot on ourselves, and their value via remote read.
    const auto left = (me + rt.procs() - 1) % rt.procs();
    EXPECT_EQ(cell[me], 100u + static_cast<unsigned>(left));
    EXPECT_DOUBLE_EQ(dcell[me], 0.5 + left);
    const auto remote =
        rt.read(gptr<std::uint64_t>{right, &cell[right]});
    EXPECT_EQ(remote, 100u + static_cast<unsigned>(me));
  });
}

TEST_P(SplitCBackends, SplitPhaseManyPutsThenSync) {
  const int n = 64;
  SplitCWorld w(make_config(GetParam(), 2));
  std::vector<std::uint64_t> target(n, 0);

  w.run([&](Runtime& rt) {
    if (rt.my_proc() == 0) {
      for (int i = 0; i < n; ++i) {
        rt.put(gptr<std::uint64_t>{1, &target[i]},
               static_cast<std::uint64_t>(i * i));
      }
      rt.sync();
    }
    rt.barrier();
    if (rt.my_proc() == 1) {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(target[i], static_cast<std::uint64_t>(i) * i);
      }
    }
  });
}

TEST_P(SplitCBackends, BulkTransfersMoveExactBytes) {
  const std::size_t count = 50000;  // 400 KB of doubles
  SplitCWorld w(make_config(GetParam(), 2));
  std::vector<double> src(count), dst(count, 0.0), back(count, 0.0);
  std::iota(src.begin(), src.end(), 1.0);

  w.run([&](Runtime& rt) {
    if (rt.my_proc() == 0) {
      rt.bulk_write(gptr<double>{1, dst.data()}, src.data(), count);
      rt.bulk_read(back.data(), gptr<double>{1, dst.data()}, count);
      EXPECT_EQ(std::memcmp(back.data(), src.data(), count * sizeof(double)),
                0);
    }
    rt.barrier();
  });
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), count * sizeof(double)), 0);
}

TEST_P(SplitCBackends, BarrierSynchronizesAllNodes) {
  const int nodes = 8;
  SplitCWorld w(make_config(GetParam(), nodes));
  std::vector<int> phase(nodes, 0);

  w.run([&](Runtime& rt) {
    const int me = rt.my_proc();
    // Stagger arrival heavily.
    rt.charge_us(100.0 * me);
    phase[me] = 1;
    rt.barrier();
    // After the barrier every node must have *arrived* (>= 1); fast peers
    // may already be in phase 2 — a barrier synchronizes arrival, not exit.
    for (int i = 0; i < nodes; ++i) EXPECT_GE(phase[i], 1);
    phase[me] = 2;
    rt.barrier();
    for (int i = 0; i < nodes; ++i) EXPECT_EQ(phase[i], 2);
  });
}

TEST_P(SplitCBackends, ReductionsAndBroadcast) {
  const int nodes = 8;
  SplitCWorld w(make_config(GetParam(), nodes));

  w.run([&](Runtime& rt) {
    const auto me = static_cast<std::uint64_t>(rt.my_proc());
    EXPECT_EQ(rt.all_reduce_add(me + 1), 36u);  // 1+2+...+8
    EXPECT_EQ(rt.all_reduce_max(me * 10), 70u);
    EXPECT_DOUBLE_EQ(rt.all_reduce_add(0.5), 4.0);
    const auto got = rt.bcast(me == 3 ? 777u : 0u, /*root=*/3);
    EXPECT_EQ(got, 777u);
    // Repeated collectives must not interfere.
    EXPECT_EQ(rt.all_reduce_add(std::uint64_t{1}), 8u);
  });
}

TEST_P(SplitCBackends, SharePtrExchangesBases) {
  const int nodes = 4;
  SplitCWorld w(make_config(GetParam(), nodes));
  std::vector<std::vector<std::uint64_t>> arrays(nodes);

  w.run([&](Runtime& rt) {
    const int me = rt.my_proc();
    arrays[me].assign(16, static_cast<std::uint64_t>(me) * 1000);
    rt.share_ptr(/*key=*/1, arrays[me].data());
    // Everyone reads element 5 from everyone else.
    for (int p = 0; p < nodes; ++p) {
      auto g = rt.peer_gptr<std::uint64_t>(1, p);
      EXPECT_EQ(rt.read(g + 5), static_cast<std::uint64_t>(p) * 1000);
    }
    rt.barrier();
  });
}

TEST_P(SplitCBackends, StoreWithAllStoreSync) {
  const int nodes = 4;
  const std::size_t count = 1024;
  SplitCWorld w(make_config(GetParam(), nodes));
  std::vector<std::vector<std::uint32_t>> inbox(
      nodes, std::vector<std::uint32_t>(count * nodes, 0));

  w.run([&](Runtime& rt) {
    const int me = rt.my_proc();
    std::vector<std::uint32_t> mine(count,
                                    static_cast<std::uint32_t>(me + 1));
    rt.share_ptr(2, inbox[me].data());
    for (int p = 0; p < nodes; ++p) {
      auto base = rt.peer_gptr<std::uint32_t>(2, p);
      rt.store(base + static_cast<std::ptrdiff_t>(me * count), mine.data(),
               count);
    }
    rt.all_store_sync();
    for (int p = 0; p < nodes; ++p) {
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(inbox[me][p * count + i],
                  static_cast<std::uint32_t>(p + 1));
      }
    }
    rt.barrier();
  });
}

TEST_P(SplitCBackends, CommTimeAccountingSeparatesPhases) {
  SplitCWorld w(make_config(GetParam(), 2));
  w.run([&](Runtime& rt) {
    rt.reset_timers();
    const sim::Time t0 = rt.ctx().now();
    rt.charge_us(500.0);  // pure compute
    const sim::Time comm_after_compute = rt.comm_time();
    rt.barrier();         // pure comm
    const sim::Time total = rt.ctx().now() - t0;
    EXPECT_EQ(comm_after_compute, 0u) << "compute must not count as comm";
    EXPECT_GT(rt.comm_time(), 0u);
    EXPECT_LT(rt.comm_time(), total);
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, SplitCBackends,
                         ::testing::Values(Backend::kSpAm, Backend::kSpMpl,
                                           Backend::kLogGp),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kSpAm: return std::string("SpAm");
                             case Backend::kSpMpl: return std::string("SpMpl");
                             default: return std::string("LogGpCm5");
                           }
                         });

TEST(SplitCCosts, FineGrainPutsAreCheaperOverAmThanMpl) {
  // The paper's core Split-C finding: fine-grain traffic is much cheaper
  // over SP AM than over MPL.
  auto measure = [](Backend b) {
    SplitCWorld w(make_config(b, 2));
    static std::vector<std::uint64_t> sink;
    sink.assign(2048, 0);
    sim::Time elapsed = 0;
    w.run([&](Runtime& rt) {
      if (rt.my_proc() == 0) {
        const sim::Time t0 = rt.ctx().now();
        for (int i = 0; i < 2048; ++i) {
          rt.put(gptr<std::uint64_t>{1, &sink[i]},
                 static_cast<std::uint64_t>(i));
        }
        rt.sync();
        elapsed = rt.ctx().now() - t0;
      }
      rt.barrier();
    });
    return elapsed;
  };
  const sim::Time am = measure(Backend::kSpAm);
  const sim::Time mpl = measure(Backend::kSpMpl);
  EXPECT_GT(sim::to_usec(mpl), 2.0 * sim::to_usec(am))
      << "MPL fine-grain traffic should cost multiples of AM";
}

}  // namespace
}  // namespace spam::splitc
