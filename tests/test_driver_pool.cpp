// ThreadPool: start/stop, job execution, stealing, and exception
// propagation.  These tests run real threads; keep them TSan-clean (the
// `tsan` CMake preset runs everything labelled `driver` under
// ThreadSanitizer).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "driver/pool.hpp"

namespace {

using spam::driver::ThreadPool;

TEST(ThreadPool, StartStopWithoutWork) {
  for (int i = 0; i < 10; ++i) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    EXPECT_EQ(pool.workers_used(), 0u);  // nobody ran anything
  }
}

TEST(ThreadPool, ZeroThreadsSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExecutesEveryJob) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kJobs = 500;
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), kJobs);
  EXPECT_EQ(pool.jobs_executed(), static_cast<std::uint64_t>(kJobs));
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 50 * (round + 1));
  }
}

TEST(ThreadPool, StealsFromBusyWorkers) {
  // Round-robin submission puts long jobs on every worker's deque; if one
  // worker's jobs are slow, the others must steal to finish the batch in
  // reasonable time.  Check all jobs complete and more than one worker ran
  // something (on any host with real preemption this is deterministic in
  // effect: a blocked worker cannot execute 63 jobs queued behind a 200 ms
  // sleep within the 10 s ctest budget unless stealing works).
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    count.fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < 63; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, DestructorDrainsPendingJobs) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool waits for idle
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&executed, i] {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (i == 7) throw std::runtime_error("job 7 failed");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // All jobs still ran; one failure does not cancel the batch.
  EXPECT_EQ(executed.load(), 20);
  // The exception is consumed: the next wait_idle succeeds.
  pool.submit([&executed] { executed.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, SubmitFromWorkerThread) {
  // Jobs may enqueue follow-up work (nested sweeps do this).
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
