// Interrupt-driven reception (the paper's unused-but-available mode):
// handlers fire during long computations, at the price of the interrupt
// latency — quantifying why the paper's analysis sticks to polling.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "am/net.hpp"

namespace spam::am {
namespace {

struct Fixture {
  sim::World world;
  sphw::SpMachine machine;
  AmNet net;
  explicit Fixture(AmParams amp, int nodes = 2)
      : world(nodes), machine(world, sphw::SpParams::thin_node()),
        net(machine, amp) {}
};

TEST(AmInterrupts, PollingModeStarvesHandlersDuringCompute) {
  Fixture f(AmParams{});  // polling mode
  std::vector<sim::Time> handled_at;
  const int h = f.net.ep(1).register_handler(
      [&](Endpoint& ep, Token, const Word*, int) {
        handled_at.push_back(ep.ctx().now());
      });
  sim::Time compute_end = 0;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    for (Word i = 0; i < 5; ++i) f.net.ep(0).request_1(1, h, i);
  });
  f.world.spawn(1, [&](sim::NodeCtx& ctx) {
    f.net.ep(1).compute(20000.0);  // 20 ms of computation, no polling
    compute_end = ctx.now();
    f.net.ep(1).poll_until([&] { return handled_at.size() == 5; });
  });
  f.world.run();
  for (sim::Time t : handled_at) {
    EXPECT_GE(t, compute_end) << "polling mode must defer handlers";
  }
}

TEST(AmInterrupts, InterruptModeServicesHandlersDuringCompute) {
  AmParams amp;
  amp.interrupt_driven = true;
  Fixture f(amp);
  std::vector<sim::Time> handled_at;
  const int h = f.net.ep(1).register_handler(
      [&](Endpoint& ep, Token, const Word*, int) {
        handled_at.push_back(ep.ctx().now());
      });
  sim::Time compute_end = 0;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    for (Word i = 0; i < 5; ++i) f.net.ep(0).request_1(1, h, i);
  });
  f.world.spawn(1, [&](sim::NodeCtx& ctx) {
    f.net.ep(1).compute(20000.0);
    compute_end = ctx.now();
    f.net.ep(1).poll_until([&] { return handled_at.size() == 5; });
  });
  f.world.run();
  ASSERT_EQ(handled_at.size(), 5u);
  for (sim::Time t : handled_at) {
    EXPECT_LT(t, compute_end) << "interrupts must service during compute";
  }
}

TEST(AmInterrupts, InterruptServiceExtendsComputeTime) {
  // The work still gets done: total elapsed = work + interrupt costs.
  AmParams amp;
  amp.interrupt_driven = true;
  Fixture f(amp);
  int handled = 0;
  const int h = f.net.ep(1).register_handler(
      [&](Endpoint&, Token, const Word*, int) { ++handled; });
  sim::Time elapsed = 0;
  const int n = 8;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    for (Word i = 0; i < n; ++i) f.net.ep(0).request_1(1, h, i);
  });
  f.world.spawn(1, [&](sim::NodeCtx& ctx) {
    const sim::Time t0 = ctx.now();
    f.net.ep(1).compute(5000.0);
    elapsed = ctx.now() - t0;
    f.net.ep(1).poll_until([&] { return handled == n; });
  });
  f.world.run();
  // At least the pure work, plus one interrupt latency per service pass.
  EXPECT_GE(sim::to_usec(elapsed), 5000.0 + amp.interrupt_latency_us);
  // But bounded: interrupts batch nearby arrivals.
  EXPECT_LT(sim::to_usec(elapsed),
            5000.0 + n * (amp.interrupt_latency_us + 60.0));
}

TEST(AmInterrupts, ComputeWithoutTrafficCostsExactlyTheWork) {
  AmParams amp;
  amp.interrupt_driven = true;
  Fixture f(amp);
  sim::Time elapsed = 0;
  f.world.spawn(0, [&](sim::NodeCtx& ctx) {
    const sim::Time t0 = ctx.now();
    f.net.ep(0).compute(1234.5);
    elapsed = ctx.now() - t0;
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {});
  f.world.run();
  EXPECT_EQ(elapsed, sim::usec(1234.5));
}

TEST(AmInterrupts, BulkTransfersCompleteUnderInterruptMode) {
  AmParams amp;
  amp.interrupt_driven = true;
  Fixture f(amp);
  const std::size_t len = 100000;
  std::vector<std::byte> src(len, std::byte{0x42}), dst(len);
  bool done = false;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).store_async(1, dst.data(), src.data(), len, 0, 0,
                            [&] { done = true; });
    f.net.ep(0).poll_until([&] { return done; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    // The receiver computes the whole time; interrupts must service the
    // incoming chunks (and send the per-chunk acks that keep the sender's
    // window open).
    while (!done) f.net.ep(1).compute(100.0);
  });
  f.world.run();
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
}

}  // namespace
}  // namespace spam::am
