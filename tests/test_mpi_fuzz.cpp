// MPI fuzz property suite: seeded random traffic (mixed sizes crossing
// every protocol boundary, random tags, random posting order, wildcard
// receives) executed on the simulated stack and validated message-by-
// message against a sequential reference, over both MPI implementations.
#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "mpif/mpi_world.hpp"

#include "bytes_equal.hpp"

namespace spam::mpi {
namespace {

struct FuzzCase {
  MpiImpl impl;
  std::uint64_t seed;
  int nodes;
  int msgs_per_pair;
};

/// Deterministic payload for message k of pair (src, dst).
std::vector<std::byte> payload_of(int src, int dst, int k, std::size_t len) {
  std::vector<std::byte> v(len);
  sim::Rng rng((static_cast<std::uint64_t>(src) << 40) ^
               (static_cast<std::uint64_t>(dst) << 20) ^
               static_cast<std::uint64_t>(k) * 2654435761u);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  return v;
}

/// Sizes chosen to straddle the eager bins, the first-fit region, the
/// 8/16 KB switches, the hybrid prefix, and the chunk size.
std::size_t pick_size(sim::Rng& rng) {
  static const std::size_t anchors[] = {0,    1,    17,   1000, 1024,
                                        4095, 4096, 8064, 8192, 16384,
                                        20000, 40000};
  const std::size_t base = anchors[rng.next_below(std::size(anchors))];
  return base + rng.next_below(7);
}

class MpiFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(MpiFuzz, RandomTrafficDeliveredExactly) {
  const FuzzCase fc = GetParam();
  MpiWorldConfig cfg;
  cfg.impl = fc.impl;
  cfg.nodes = fc.nodes;
  cfg.seed = fc.seed;
  MpiWorld w(cfg);

  // Pre-plan the traffic deterministically so every rank agrees.
  // plan[src][dst] = list of (len, tag).
  sim::Rng plan_rng(fc.seed * 31337);
  std::map<std::pair<int, int>, std::vector<std::pair<std::size_t, int>>>
      plan;
  for (int s = 0; s < fc.nodes; ++s) {
    for (int d = 0; d < fc.nodes; ++d) {
      if (s == d) continue;
      auto& msgs = plan[{s, d}];
      for (int k = 0; k < fc.msgs_per_pair; ++k) {
        msgs.emplace_back(pick_size(plan_rng),
                          static_cast<int>(plan_rng.next_below(3)));
      }
    }
  }

  std::vector<std::string> failures;
  w.run([&](Mpi& mpi) {
    const int me = mpi.rank();
    const int p = mpi.size();
    sim::Rng rng(fc.seed + static_cast<std::uint64_t>(me));

    // Each rank: post all receives (as irecv, random interleave with
    // sends), send everything, then wait and validate.
    struct PendingRecv {
      int req;
      int src;
      int k;
      std::size_t len;
      std::vector<std::byte> buf;
    };
    std::vector<PendingRecv> recvs;
    struct PendingSend {
      int req;
    };
    std::vector<int> sends;

    // Build the per-source receive schedules.  Within one (src, tag) the
    // posts must be in message order (non-overtaking); different sources
    // interleave randomly.
    std::vector<std::pair<int, int>> post_order;  // (src, k)
    for (int s = 0; s < p; ++s) {
      if (s == me) continue;
      for (int k = 0; k < fc.msgs_per_pair; ++k) post_order.push_back({s, k});
    }
    // Shuffle preserving per-source order: random merge.
    std::vector<std::size_t> cursor(static_cast<std::size_t>(p), 0);
    std::vector<std::pair<int, int>> merged;
    while (merged.size() < post_order.size()) {
      const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p)));
      if (s == me) continue;
      auto& c = cursor[static_cast<std::size_t>(s)];
      if (c < static_cast<std::size_t>(fc.msgs_per_pair)) {
        merged.push_back({s, static_cast<int>(c)});
        ++c;
      }
    }

    // Alternate posting receives and issuing sends.
    std::size_t ri = 0;
    std::vector<std::pair<int, int>> send_order;  // (dst, k)
    for (int d = 0; d < p; ++d) {
      if (d == me) continue;
      for (int k = 0; k < fc.msgs_per_pair; ++k) send_order.push_back({d, k});
    }
    std::size_t si = 0;
    std::vector<std::vector<std::byte>> send_bufs;
    while (ri < merged.size() || si < send_order.size()) {
      const bool do_recv =
          ri < merged.size() && (si >= send_order.size() || rng.chance(0.5));
      if (do_recv) {
        const auto [s, k] = merged[ri++];
        const auto& m = plan[{s, me}][static_cast<std::size_t>(k)];
        PendingRecv pr;
        pr.src = s;
        pr.k = k;
        pr.len = m.first;
        pr.buf.assign(m.first + 4, std::byte{0x7e});  // canary tail
        pr.req = mpi.irecv(pr.buf.data(), m.first, s, m.second);
        recvs.push_back(std::move(pr));
      } else {
        const auto [d, k] = send_order[si++];
        const auto& m = plan[{me, d}][static_cast<std::size_t>(k)];
        send_bufs.push_back(payload_of(me, d, k, m.first));
        sends.push_back(
            mpi.isend(send_bufs.back().data(), m.first, d, m.second));
      }
    }
    for (int r : sends) mpi.wait(r);
    for (auto& pr : recvs) {
      Status st;
      mpi.wait(pr.req, &st);
      if (st.bytes != pr.len || st.source != pr.src) {
        failures.push_back("rank " + std::to_string(me) + ": bad status");
        continue;
      }
      const auto want = payload_of(pr.src, me, pr.k, pr.len);
      if (!spam::test::bytes_equal(pr.buf.data(), want.data(), pr.len)) {
        failures.push_back("rank " + std::to_string(me) + ": bad bytes from " +
                           std::to_string(pr.src) + " msg " +
                           std::to_string(pr.k));
      }
      for (std::size_t i = pr.len; i < pr.buf.size(); ++i) {
        if (pr.buf[i] != std::byte{0x7e}) {
          failures.push_back("rank " + std::to_string(me) + ": overrun");
          break;
        }
      }
    }
    mpi.barrier();
  });

  for (const auto& f : failures) ADD_FAILURE() << f;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MpiFuzz,
    ::testing::Values(FuzzCase{MpiImpl::kAmOptimized, 1, 3, 4},
                      FuzzCase{MpiImpl::kAmOptimized, 2, 4, 3},
                      FuzzCase{MpiImpl::kAmOptimized, 3, 2, 8},
                      FuzzCase{MpiImpl::kAmOptimized, 4, 4, 5},
                      FuzzCase{MpiImpl::kAmUnoptimized, 5, 3, 4},
                      FuzzCase{MpiImpl::kAmUnoptimized, 6, 4, 3},
                      FuzzCase{MpiImpl::kMpiF, 7, 3, 4},
                      FuzzCase{MpiImpl::kMpiF, 8, 4, 3}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      const char* impl = info.param.impl == MpiImpl::kMpiF        ? "MpiF"
                         : info.param.impl == MpiImpl::kAmOptimized
                             ? "AmOpt"
                             : "AmUnopt";
      return std::string(impl) + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace spam::mpi
