// Full-stack MPI tests, parameterized over the three implementations the
// paper compares: optimized MPI-AM, unoptimized MPI-AM, and MPI-F.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "mpif/mpi_world.hpp"

#include "bytes_equal.hpp"

namespace spam::mpi {
namespace {

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  sim::Rng rng(seed);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  return v;
}

MpiWorldConfig make_config(MpiImpl impl, int nodes) {
  MpiWorldConfig cfg;
  cfg.impl = impl;
  cfg.nodes = nodes;
  return cfg;
}

std::string impl_name(MpiImpl impl) {
  switch (impl) {
    case MpiImpl::kAmOptimized: return "AmOpt";
    case MpiImpl::kAmUnoptimized: return "AmUnopt";
    case MpiImpl::kMpiF: return "MpiF";
  }
  return "unknown";
}

class MpiImpls : public ::testing::TestWithParam<MpiImpl> {};

class MpiImplsAndSizes
    : public ::testing::TestWithParam<std::tuple<MpiImpl, std::size_t>> {};

TEST_P(MpiImplsAndSizes, SendRecvRoundTripsBytes) {
  const auto [impl, len] = GetParam();
  MpiWorld w(make_config(impl, 2));
  auto src = pattern(len);
  std::vector<std::byte> dst(len + 8, std::byte{0});

  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(src.data(), len, 1, 42);
    } else {
      Status st;
      mpi.recv(dst.data(), len, 0, 42, &st);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 42);
      EXPECT_EQ(st.bytes, len);
    }
  });
  EXPECT_TRUE(spam::test::bytes_equal(dst.data(), src.data(), len));
  for (std::size_t i = len; i < dst.size(); ++i) {
    EXPECT_EQ(dst[i], std::byte{0});
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MpiImplsAndSizes,
    ::testing::Combine(::testing::Values(MpiImpl::kAmOptimized,
                                         MpiImpl::kAmUnoptimized,
                                         MpiImpl::kMpiF),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{100}, std::size_t{1024},
                                         std::size_t{4096}, std::size_t{4097},
                                         std::size_t{8192}, std::size_t{8193},
                                         std::size_t{16384},
                                         std::size_t{20000},
                                         std::size_t{100000})),
    [](const auto& info) {
      return impl_name(std::get<0>(info.param)) + "_len" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(MpiImpls, UnexpectedMessagesMatchLater) {
  MpiWorld w(make_config(GetParam(), 2));
  int a = 0, b = 0;
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      const int x = 1, y = 2;
      mpi.send(&x, sizeof x, 1, 10);
      mpi.send(&y, sizeof y, 1, 20);
    } else {
      mpi.ctx().elapse(sim::usec(2000));  // both arrive unexpected
      // Receive in reverse tag order.
      mpi.recv(&b, sizeof b, 0, 20);
      mpi.recv(&a, sizeof a, 0, 10);
    }
  });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST_P(MpiImpls, NonOvertakingSameTag) {
  MpiWorld w(make_config(GetParam(), 2));
  std::vector<int> got;
  w.run([&](Mpi& mpi) {
    const int n = 50;
    if (mpi.rank() == 0) {
      for (int i = 0; i < n; ++i) mpi.send(&i, sizeof i, 1, 7);
    } else {
      for (int i = 0; i < n; ++i) {
        int v = -1;
        mpi.recv(&v, sizeof v, 0, 7);
        got.push_back(v);
      }
    }
  });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST_P(MpiImpls, IsendIrecvOverlapBothDirections) {
  MpiWorld w(make_config(GetParam(), 2));
  const std::size_t len = 60000;  // rendez-vous territory
  auto s0 = pattern(len, 1), s1 = pattern(len, 2);
  std::vector<std::byte> r0(len), r1(len);
  w.run([&](Mpi& mpi) {
    const int other = 1 - mpi.rank();
    auto& r = mpi.rank() == 0 ? r0 : r1;
    const auto& s = mpi.rank() == 0 ? s0 : s1;
    const int rr = mpi.irecv(r.data(), len, other, 3);
    const int ss = mpi.isend(s.data(), len, other, 3);
    mpi.wait(ss);
    mpi.wait(rr);
  });
  EXPECT_TRUE(spam::test::bytes_equal(r0.data(), s1.data(), len));
  EXPECT_TRUE(spam::test::bytes_equal(r1.data(), s0.data(), len));
}

TEST_P(MpiImpls, ManyEagerSendsExhaustAndRecycleBuffer) {
  // 100 x 2 KB messages = far more than the 16 KB eager region: the free
  // protocol must recycle space.
  MpiWorld w(make_config(GetParam(), 2));
  const std::size_t piece = 2048;
  const int n = 100;
  auto src = pattern(piece * n);
  std::vector<std::byte> dst(piece * n);
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      for (int i = 0; i < n; ++i) {
        mpi.send(src.data() + i * piece, piece, 1, i);
      }
    } else {
      for (int i = 0; i < n; ++i) {
        mpi.recv(dst.data() + i * piece, piece, 0, i);
      }
    }
  });
  EXPECT_TRUE(spam::test::bytes_equal(dst.data(), src.data(), src.size()));
}

TEST_P(MpiImpls, SendrecvRing) {
  const int nodes = 4;
  MpiWorld w(make_config(GetParam(), nodes));
  std::vector<int> out(nodes, -1);
  w.run([&](Mpi& mpi) {
    const int me = mpi.rank();
    const int right = (me + 1) % nodes;
    const int left = (me + nodes - 1) % nodes;
    int token = me * 10;
    int incoming = -1;
    mpi.sendrecv(&token, sizeof token, right, 1, &incoming, sizeof incoming,
                 left, 1);
    out[me] = incoming;
  });
  for (int i = 0; i < nodes; ++i) {
    EXPECT_EQ(out[i], ((i + nodes - 1) % nodes) * 10);
  }
}

TEST_P(MpiImpls, BarrierBcastReduce) {
  const int nodes = 8;
  MpiWorld w(make_config(GetParam(), nodes));
  w.run([&](Mpi& mpi) {
    mpi.barrier();
    double v = mpi.rank() == 2 ? 3.25 : 0.0;
    mpi.bcast(&v, sizeof v, 2);
    EXPECT_DOUBLE_EQ(v, 3.25);

    const double mine = 1.0 + mpi.rank();
    double sum = 0;
    mpi.reduce(&mine, &sum, 1, Dtype::kDouble, ReduceOp::kSum, 0);
    if (mpi.rank() == 0) {
      EXPECT_DOUBLE_EQ(sum, 36.0);
    }

    double all = 0;
    mpi.allreduce(&mine, &all, 1, Dtype::kDouble, ReduceOp::kMax);
    EXPECT_DOUBLE_EQ(all, 8.0);

    std::int64_t imin = 100 - mpi.rank();
    std::int64_t rmin = 0;
    mpi.allreduce(&imin, &rmin, 1, Dtype::kInt64, ReduceOp::kMin);
    EXPECT_EQ(rmin, 93);
  });
}

TEST_P(MpiImpls, AlltoallAndAllgather) {
  const int nodes = 8;
  MpiWorld w(make_config(GetParam(), nodes));
  w.run([&](Mpi& mpi) {
    const int me = mpi.rank();
    std::vector<std::int32_t> send(nodes), recv(nodes, -1);
    for (int i = 0; i < nodes; ++i) send[i] = me * 100 + i;
    mpi.alltoall(send.data(), recv.data(), sizeof(std::int32_t));
    for (int i = 0; i < nodes; ++i) EXPECT_EQ(recv[i], i * 100 + me);

    std::int32_t mine = me + 1000;
    std::vector<std::int32_t> gathered(nodes, -1);
    mpi.allgather(&mine, sizeof mine, gathered.data());
    for (int i = 0; i < nodes; ++i) EXPECT_EQ(gathered[i], i + 1000);
  });
}

TEST_P(MpiImpls, GatherScatter) {
  const int nodes = 4;
  MpiWorld w(make_config(GetParam(), nodes));
  w.run([&](Mpi& mpi) {
    const int me = mpi.rank();
    std::int32_t mine = me * 7;
    std::vector<std::int32_t> all(nodes, -1);
    mpi.gather(&mine, sizeof mine, all.data(), 1);
    if (me == 1) {
      for (int i = 0; i < nodes; ++i) EXPECT_EQ(all[i], i * 7);
    }
    std::vector<std::int32_t> src(nodes);
    for (int i = 0; i < nodes; ++i) src[i] = 500 + i;
    std::int32_t got = -1;
    mpi.scatter(src.data(), sizeof got, &got, 1);
    EXPECT_EQ(got, 500 + me);
  });
}

TEST_P(MpiImpls, WildcardRecvAnySource) {
  const int nodes = 4;
  MpiWorld w(make_config(GetParam(), nodes));
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      int sum = 0;
      for (int i = 1; i < nodes; ++i) {
        int v = 0;
        Status st;
        mpi.recv(&v, sizeof v, kAnySource, kAnyTag, &st);
        EXPECT_EQ(st.source * 11, v);
        sum += v;
      }
      EXPECT_EQ(sum, 11 + 22 + 33);
    } else {
      const int v = mpi.rank() * 11;
      mpi.send(&v, sizeof v, 0, mpi.rank());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Impls, MpiImpls,
                         ::testing::Values(MpiImpl::kAmOptimized,
                                           MpiImpl::kAmUnoptimized,
                                           MpiImpl::kMpiF),
                         [](const ::testing::TestParamInfo<MpiImpl>& info) {
                           return impl_name(info.param);
                         });

TEST(MpiShapes, HybridAvoidsProtocolSwitchDiscontinuity) {
  // MPI-F: a 5 KB message (rendez-vous) can be slower than a 4 KB one
  // (eager).  MPI-AM's hybrid protocol must not regress across its switch.
  auto hop_us = [](MpiImpl impl, std::size_t len) {
    MpiWorld w(make_config(impl, 2));
    static std::vector<std::byte> buf;
    buf.assign(len, std::byte{1});
    sim::Time t = 0;
    w.run([&](Mpi& mpi) {
      if (mpi.rank() == 0) {
        // Warm-up + measured round.
        for (int i = 0; i < 2; ++i) {
          mpi.send(buf.data(), len, 1, 0);
          mpi.recv(buf.data(), len, 1, 0);
        }
      } else {
        const sim::Time t0 = mpi.ctx().now();
        for (int i = 0; i < 2; ++i) {
          mpi.recv(buf.data(), len, 0, 0);
          mpi.send(buf.data(), len, 0, 0);
        }
        t = mpi.ctx().now() - t0;
      }
    });
    return sim::to_usec(t) / 4.0;
  };
  // MPI-AM optimized: crossing the 8 KB switch must not cost extra.
  const double below = hop_us(MpiImpl::kAmOptimized, 8 * 1024);
  const double above = hop_us(MpiImpl::kAmOptimized, 9 * 1024);
  EXPECT_LT(above, below * 1.35)
      << "hybrid protocol should smooth the switch";
  // MPI-F: crossing 4 KB pays the rendez-vous round-trip.
  const double f_below = hop_us(MpiImpl::kMpiF, 4 * 1024);
  const double f_above = hop_us(MpiImpl::kMpiF, 5 * 1024);
  EXPECT_GT(f_above, f_below * 1.2)
      << "MPI-F should show the documented discontinuity";
}

TEST(MpiShapes, DeterministicAcrossRuns) {
  auto run_once = [] {
    MpiWorld w(make_config(MpiImpl::kAmOptimized, 4));
    sim::Time end = 0;
    w.run([&](Mpi& mpi) {
      std::vector<double> v(1000, mpi.rank());
      std::vector<double> r(1000);
      mpi.allreduce(v.data(), r.data(), 1000, Dtype::kDouble, ReduceOp::kSum);
      mpi.barrier();
      if (mpi.rank() == 0) end = mpi.ctx().now();
    });
    return end;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace spam::mpi
