// Unit tests for cooperative fibers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/fiber.hpp"

namespace spam::sim {
namespace {

TEST(Fiber, RunsToCompletion) {
  int x = 0;
  Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> trace;
  Fiber f([&] {
    trace.push_back(1);
    Fiber::yield();
    trace.push_back(3);
    Fiber::yield();
    trace.push_back(5);
  });
  f.resume();
  trace.push_back(2);
  f.resume();
  trace.push_back(4);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksExecution) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f([&] { seen = Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, InterleavesTwoFibers) {
  std::vector<int> trace;
  Fiber a([&] {
    trace.push_back(10);
    Fiber::yield();
    trace.push_back(30);
  });
  Fiber b([&] {
    trace.push_back(20);
    Fiber::yield();
    trace.push_back(40);
  });
  a.resume();
  b.resume();
  a.resume();
  b.resume();
  EXPECT_EQ(trace, (std::vector<int>{10, 20, 30, 40}));
}

TEST(Fiber, DeepStackWorks) {
  // Recursion exercising a good chunk of the 512 KB default stack.
  std::function<int(int)> rec = [&](int n) -> int {
    char pad[512];
    pad[0] = static_cast<char>(n);
    if (n == 0) return pad[0];
    return rec(n - 1) + 1;
  };
  int result = -1;
  Fiber f([&] { result = rec(400); });
  f.resume();
  EXPECT_EQ(result, 400);
}

TEST(Fiber, AbandonedSuspendedFiberIsSafe) {
  // A fiber destroyed while suspended must not crash (deadlock teardown).
  auto* f = new Fiber([&] {
    Fiber::yield();
    ADD_FAILURE() << "should never run again";
  });
  f->resume();
  EXPECT_EQ(f->state(), Fiber::State::kSuspended);
  delete f;
}

}  // namespace
}  // namespace spam::sim
