// Flow-control and reliability: go-back-N retransmission under injected
// drops, NACK behaviour, keep-alive recovery, window invariants, and
// exactly-once in-order delivery as a seeded property suite.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "am/net.hpp"

namespace spam::am {
namespace {

struct Fixture {
  sim::World world;
  sphw::SpMachine machine;
  AmNet net;
  explicit Fixture(int nodes, std::uint64_t seed = 1,
                   sphw::SpParams hw = sphw::SpParams::thin_node(),
                   AmParams am = {})
      : world(nodes, seed), machine(world, hw), net(machine, am) {}
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  sim::Rng rng(seed);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  return v;
}

TEST(AmFlow, SingleDroppedRequestIsRetransmitted) {
  Fixture f(2);
  // Drop exactly the third data packet on the request channel.
  int seen = 0;
  f.machine.fabric().set_drop_fn([&](const sphw::Packet& p) {
    if (p.channel == 0 && !(p.flags & 0x01)) {
      return ++seen == 3;
    }
    return false;
  });

  std::vector<Word> got;
  const int h = f.net.ep(1).register_handler(
      [&](Endpoint&, Token, const Word* a, int) { got.push_back(a[0]); });
  const int n = 10;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    for (Word i = 0; i < n; ++i) f.net.ep(0).request_1(1, h, i);
    f.net.ep(0).poll_until([&] { return static_cast<int>(got.size()) == n; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until([&] { return static_cast<int>(got.size()) == n; });
  });
  f.world.run();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
  for (Word i = 0; i < n; ++i) EXPECT_EQ(got[i], i) << "order broken";
  EXPECT_GE(f.net.ep(0).stats().retransmitted_chunks, 1u);
  EXPECT_GE(f.net.ep(1).stats().nacks_sent, 1u);
}

TEST(AmFlow, DroppedTailRecoveredByKeepAlive) {
  // Drop the very last packet of a burst: no later packet triggers a NACK,
  // so only the keep-alive probe can recover it.
  AmParams am;
  am.keepalive_poll_threshold = 200;  // keep the test fast
  Fixture f(2, 1, sphw::SpParams::thin_node(), am);
  int data_count = 0;
  f.machine.fabric().set_drop_fn([&](const sphw::Packet& p) {
    if (p.channel == 0 && !(p.flags & 0x01)) {
      return ++data_count == 5;  // the 5th and final request
    }
    return false;
  });

  int got = 0;
  const int h = f.net.ep(1).register_handler(
      [&](Endpoint&, Token, const Word*, int) { ++got; });
  f.world.spawn(0, [&](sim::NodeCtx&) {
    for (Word i = 0; i < 5; ++i) f.net.ep(0).request_1(1, h, i);
    f.net.ep(0).poll_until([&] { return got == 5; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until([&] { return got == 5; });
  });
  f.world.run();

  EXPECT_EQ(got, 5);
  EXPECT_GE(f.net.ep(0).stats().probes_sent, 1u);
}

TEST(AmFlow, DroppedChunkMidStoreRecovers) {
  Fixture f(2);
  const std::size_t len = 5 * 8064;
  // Drop one mid-chunk packet of the third chunk.
  int bulk_pkts = 0;
  f.machine.fabric().set_drop_fn([&](const sphw::Packet& p) {
    if (p.channel == 0 && !(p.flags & 0x05)) {  // data, not small/control
      return ++bulk_pkts == 80;
    }
    return false;
  });

  auto src = pattern(len);
  std::vector<std::byte> dst(len, std::byte{0});
  bool done = false;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).store_async(1, dst.data(), src.data(), len, 0, 0,
                            [&] { done = true; });
    f.net.ep(0).poll_until([&] { return done; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until([&] { return done; });
  });
  f.world.run();

  EXPECT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
  EXPECT_GE(f.net.ep(0).stats().retransmitted_chunks, 1u);
}

TEST(AmFlow, WindowNeverExceeded) {
  AmParams am;
  Fixture f(2, 1, sphw::SpParams::thin_node(), am);
  const std::size_t len = 200000;
  auto src = pattern(len);
  std::vector<std::byte> dst(len);
  bool done = false;
  int max_inflight = 0;

  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).store_async(1, dst.data(), src.data(), len, 0, 0,
                            [&] { done = true; });
    while (!done) {
      max_inflight =
          std::max(max_inflight, f.net.ep(0).packets_in_flight(1, 0));
      f.net.ep(0).poll();
    }
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until([&] { return done; });
  });
  f.world.run();

  EXPECT_LE(max_inflight, am.request_window_packets);
  EXPECT_GE(max_inflight, am.chunk_packets) << "pipeline should fill";
}

TEST(AmFlow, ReceiverOverflowIsRecovered) {
  // A receiver that stalls long enough to overflow its FIFO must still end
  // up with every message, exactly once, in order.  Shrink the FIFO below
  // the request window so the stall genuinely overflows it (on a real SP
  // this is the many-senders-one-receiver case).
  sphw::SpParams hw = sphw::SpParams::thin_node();
  hw.recv_fifo_entries_per_node = 16;  // capacity 32 < 72-packet window
  AmParams am;
  am.keepalive_poll_threshold = 300;
  Fixture f(2, 1, hw, am);
  std::vector<Word> got;
  const int h = f.net.ep(1).register_handler(
      [&](Endpoint&, Token, const Word* a, int) { got.push_back(a[0]); });
  const int n = 400;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    for (Word i = 0; i < n; ++i) f.net.ep(0).request_1(1, h, i);
    f.net.ep(0).poll_until([&] { return static_cast<int>(got.size()) == n; });
  });
  f.world.spawn(1, [&](sim::NodeCtx& ctx) {
    ctx.elapse(sim::usec(20000));  // stall: FIFO (128 entries) overflows
    f.net.ep(1).poll_until([&] { return static_cast<int>(got.size()) == n; });
  });
  f.world.run();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(got[i], static_cast<Word>(i));
  EXPECT_GT(f.machine.adapter(1).stats().rx_dropped_fifo_full, 0u);
}

// ---------------------------------------------------------------------------
// Property suite: random traffic under seeded random drops is delivered
// exactly once, in order, with correct bytes.
// ---------------------------------------------------------------------------

struct LossyCase {
  std::uint64_t seed;
  double drop_rate;
};

class AmLossyProperty : public ::testing::TestWithParam<LossyCase> {};

TEST_P(AmLossyProperty, ExactlyOnceInOrderUnderRandomDrops) {
  const LossyCase c = GetParam();
  AmParams am;
  am.keepalive_poll_threshold = 300;
  Fixture f(2, c.seed, sphw::SpParams::thin_node(), am);

  sim::Rng drop_rng(c.seed * 77 + 1);
  f.machine.fabric().set_drop_fn([&](const sphw::Packet& p) {
    // Never drop control packets' acks entirely deterministically; just a
    // uniform loss over everything, which also exercises lost NACK/ACK.
    (void)p;
    return drop_rng.chance(c.drop_rate);
  });

  // Workload: interleaved small requests and stores with seeded sizes.
  sim::Rng wl(c.seed);
  const int n_msgs = 60;
  std::vector<std::size_t> sizes;
  std::size_t total = 0;
  for (int i = 0; i < n_msgs; ++i) {
    const std::size_t s = 1 + wl.next_below(12000);
    sizes.push_back(s);
    total += s;
  }
  std::vector<std::byte> src = pattern(total, static_cast<unsigned>(c.seed));
  std::vector<std::byte> dst(total, std::byte{0});

  std::vector<int> small_got;
  const int h_small = f.net.ep(1).register_handler(
      [&](Endpoint&, Token, const Word* a, int) {
        small_got.push_back(static_cast<int>(a[0]));
      });
  int bulk_done = 0;
  const int h_bulk = f.net.ep(1).register_bulk_handler(
      [&](Endpoint&, Token, void*, std::size_t, Word) { ++bulk_done; });

  int completions = 0;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    std::size_t off = 0;
    for (int i = 0; i < n_msgs; ++i) {
      f.net.ep(0).request_1(1, h_small, static_cast<Word>(i));
      f.net.ep(0).store_async(1, dst.data() + off, src.data() + off, sizes[i],
                              h_bulk, 0, [&] { ++completions; });
      off += sizes[i];
    }
    f.net.ep(0).poll_until([&] { return completions == n_msgs; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    // Keep serving (re-NACKing, re-acking) until the sender has seen every
    // completion — with lossy acks the receiver must stay alive to resend.
    f.net.ep(1).poll_until([&] { return completions == n_msgs; });
  });
  f.world.run();

  ASSERT_EQ(small_got.size(), static_cast<std::size_t>(n_msgs));
  for (int i = 0; i < n_msgs; ++i) {
    EXPECT_EQ(small_got[i], i) << "small message order broken";
  }
  EXPECT_EQ(bulk_done, n_msgs);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), total), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AmLossyProperty,
    ::testing::Values(LossyCase{1, 0.001}, LossyCase{2, 0.01},
                      LossyCase{3, 0.03}, LossyCase{4, 0.05},
                      LossyCase{5, 0.10}, LossyCase{6, 0.02},
                      LossyCase{7, 0.08}, LossyCase{8, 0.005}),
    [](const ::testing::TestParamInfo<LossyCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_drop" +
             std::to_string(static_cast<int>(info.param.drop_rate * 1000));
    });

TEST(AmFlow, DeterministicUnderSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    AmParams am;
    am.keepalive_poll_threshold = 300;
    Fixture f(2, seed, sphw::SpParams::thin_node(), am);
    sim::Rng drop_rng(seed);
    f.machine.fabric().set_drop_fn(
        [&](const sphw::Packet&) { return drop_rng.chance(0.03); });
    const std::size_t len = 50000;
    auto src = pattern(len);
    std::vector<std::byte> dst(len);
    bool done = false;
    sim::Time end = 0;
    f.world.spawn(0, [&](sim::NodeCtx& ctx) {
      f.net.ep(0).store_async(1, dst.data(), src.data(), len, 0, 0,
                              [&] { done = true; });
      f.net.ep(0).poll_until([&] { return done; });
      end = ctx.now();
    });
    f.world.spawn(1, [&](sim::NodeCtx&) {
      f.net.ep(1).poll_until([&] { return done; });
    });
    f.world.run();
    return end;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

}  // namespace
}  // namespace spam::am
