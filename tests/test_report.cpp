// Tests for the reporting helpers: r-infinity / n-1/2 extraction and table
// formatting.
#include <gtest/gtest.h>

#include <cmath>

#include "report/report.hpp"

namespace spam::report {
namespace {

std::vector<BwPoint> synthetic_curve(double r_inf, double c_us) {
  // BW(n) = n / (c + n/r_inf)  [bytes/us == MB/s with these units]
  std::vector<BwPoint> v;
  for (std::size_t n = 16; n <= (1u << 20); n *= 2) {
    const double bw = static_cast<double>(n) /
                      (c_us + static_cast<double>(n) / r_inf);
    v.push_back({n, bw});
  }
  return v;
}

TEST(Report, RInfinityRecoversAsymptote) {
  const auto curve = synthetic_curve(34.3, 8.0);
  EXPECT_NEAR(r_infinity(curve), 34.3, 1.0);
}

TEST(Report, NHalfMatchesClosedForm) {
  // For BW(n) = n/(c + n/r), half power is exactly n = c*r.
  for (double c : {2.0, 8.0, 52.0}) {
    const auto curve = synthetic_curve(34.3, c);
    const double expect = c * 34.3;
    const double got = n_half(curve);
    EXPECT_NEAR(got, expect, expect * 0.30)
        << "c=" << c << " expected~" << expect << " got " << got;
  }
}

TEST(Report, NHalfMonotoneInOverhead) {
  const double small = n_half(synthetic_curve(34.3, 4.0));
  const double big = n_half(synthetic_curve(34.3, 40.0));
  EXPECT_GT(big, 5.0 * small);
}

TEST(Report, EmptyCurveSafe) {
  std::vector<BwPoint> none;
  EXPECT_EQ(r_infinity(none), 0.0);
  EXPECT_EQ(n_half(none), 0.0);
}

TEST(Report, TablePrintsAllCells) {
  Table t("unit");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  char buf[4096] = {0};
  std::FILE* f = fmemopen(buf, sizeof buf, "w");
  ASSERT_NE(f, nullptr);
  t.print(f);
  std::fclose(f);
  const std::string s(buf);
  EXPECT_NE(s.find("unit"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
}

TEST(Report, Formatters) {
  EXPECT_EQ(fmt(1.25, 1), "1.2");
  EXPECT_EQ(fmt_us(51.04), "51.0 us");
  EXPECT_EQ(fmt_mbps(34.27), "34.3 MB/s");
  EXPECT_EQ(fmt_bytes(260.4), "260 B");
}

}  // namespace
}  // namespace spam::report
