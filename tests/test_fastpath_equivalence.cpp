// Dual-mode equivalence suite for the network fast path.
//
// Every table/figure workload of the paper reproduction is run twice —
// `network_fastpath = false` (the per-hop reference event chain) and
// `true` (fused deliveries + merged wakes) — and every virtual-time
// result must be IDENTICAL: the fast path is an event-count optimization
// with a bit-exactness contract, never an approximation.  Doubles are
// compared with EXPECT_EQ (exact bits, not a tolerance) and the Figure 3
// sweep is additionally rendered to a report::Table whose output must be
// byte-identical across modes.
//
// The suite ends with a seeded random-congestion fuzz that forces
// mid-flight disengagement (many-to-one contention rollbacks plus a fault
// hook armed mid-burst) and checks the delivery trace, the drop counts,
// and the events_simulated() ledger all match the per-hop reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "apps/nas.hpp"
#include "apps/splitc_apps.hpp"
#include "micro.hpp"
#include "report/report.hpp"
#include "sphw/machine.hpp"

namespace spam {
namespace {

sphw::SpParams thin(bool fastpath) {
  sphw::SpParams p = sphw::SpParams::thin_node();
  p.network_fastpath = fastpath;
  return p;
}

sphw::SpParams wide(bool fastpath) {
  sphw::SpParams p = sphw::SpParams::wide_node();
  p.network_fastpath = fastpath;
  return p;
}

mpi::MpiWorldConfig mpi_cfg(mpi::MpiImpl impl, bool fastpath,
                            bool wide_nodes = false) {
  mpi::MpiWorldConfig cfg;
  cfg.impl = impl;
  cfg.nodes = 4;
  cfg.hw = wide_nodes ? wide(fastpath) : thin(fastpath);
  if (impl == mpi::MpiImpl::kMpiF) {
    cfg.f_cfg =
        wide_nodes ? mpif::MpiFConfig::wide() : mpif::MpiFConfig::thin();
  }
  return cfg;
}

splitc::SplitCConfig splitc_cfg(bool fastpath, int nodes = 8) {
  splitc::SplitCConfig cfg;
  cfg.nodes = nodes;
  cfg.backend = splitc::Backend::kSpAm;
  cfg.hw = thin(fastpath);
  return cfg;
}

// --- Table 2: AM primitive overheads ----------------------------------------

TEST(FastpathEquivalence, Table2AmOverheads) {
  for (int words = 1; words <= 4; ++words) {
    EXPECT_EQ(bench::am_request_cost_us(words, thin(false)),
              bench::am_request_cost_us(words, thin(true)))
        << "request_" << words;
    EXPECT_EQ(bench::am_reply_cost_us(words, thin(false)),
              bench::am_reply_cost_us(words, thin(true)))
        << "reply_" << words;
  }
  EXPECT_EQ(bench::am_poll_empty_us(thin(false)),
            bench::am_poll_empty_us(thin(true)));
  EXPECT_EQ(bench::am_poll_per_msg_us(thin(false)),
            bench::am_poll_per_msg_us(thin(true)));
}

// --- Table 3 / Table 4: round-trip latencies, thin and wide nodes -----------

TEST(FastpathEquivalence, Table3And4RoundTrips) {
  for (int words = 1; words <= 4; ++words) {
    EXPECT_EQ(bench::am_rtt_us(words, thin(false)),
              bench::am_rtt_us(words, thin(true)))
        << "am_rtt words=" << words;
  }
  EXPECT_EQ(bench::raw_rtt_us(thin(false)), bench::raw_rtt_us(thin(true)));
  EXPECT_EQ(bench::mpl_rtt_us(thin(false)), bench::mpl_rtt_us(thin(true)));
  // Table 4's wide-node (model-590) column.
  EXPECT_EQ(bench::am_rtt_us(1, wide(false)), bench::am_rtt_us(1, wide(true)));
  EXPECT_EQ(bench::mpl_rtt_us(wide(false)), bench::mpl_rtt_us(wide(true)));
}

// --- Figure 3: the bandwidth sweep, rendered byte-identically ----------------

TEST(FastpathEquivalence, Fig3BandwidthTableByteIdentical) {
  const std::vector<std::size_t> sizes = {16, 512, 8192, 65536, 1u << 20};
  auto render = [&](bool fastpath) {
    report::Table t("Figure 3: AM/MPL bandwidth vs transfer size");
    t.set_header({"bytes", "store", "get", "async store", "async get",
                  "mpl block", "mpl pipe"});
    const sphw::SpParams hw = thin(fastpath);
    for (std::size_t s : sizes) {
      char cell[32];
      std::vector<std::string> row;
      auto add = [&](double v) {
        std::snprintf(cell, sizeof cell, "%.6f", v);
        row.emplace_back(cell);
      };
      std::snprintf(cell, sizeof cell, "%zu", s);
      row.emplace_back(cell);
      add(bench::am_bandwidth_mbps(bench::AmBwMode::kSyncStore, s, hw));
      add(bench::am_bandwidth_mbps(bench::AmBwMode::kSyncGet, s, hw));
      add(bench::am_bandwidth_mbps(bench::AmBwMode::kPipelinedAsyncStore, s,
                                   hw));
      add(bench::am_bandwidth_mbps(bench::AmBwMode::kPipelinedAsyncGet, s, hw));
      add(bench::mpl_bandwidth_mbps(bench::MplBwMode::kBlocking, s, hw));
      add(bench::mpl_bandwidth_mbps(bench::MplBwMode::kPipelined, s, hw));
      t.add_row(std::move(row));
    }
    return t.render();
  };
  const std::string slow = render(false);
  const std::string fast = render(true);
  EXPECT_EQ(slow, fast) << "Figure 3 rendering must be byte-identical";
}

// --- Figure 7: MPI protocol regimes -----------------------------------------

TEST(FastpathEquivalence, Fig7ProtocolCurves) {
  auto protocol_cfg = [](int which, bool fastpath) {
    mpi::MpiWorldConfig cfg = mpi_cfg(mpi::MpiImpl::kAmOptimized, fastpath);
    cfg.am_cfg = mpi::MpiAmConfig::opt();
    if (which == 0) {  // buffered: everything eager
      cfg.am_cfg.peer_buffer_bytes = 256 * 1024;
      cfg.am_cfg.eager_max = 200 * 1024;
      cfg.am_cfg.hybrid = false;
    } else if (which == 1) {  // rendezvous: nothing eager
      cfg.am_cfg.eager_max = 0;
      cfg.am_cfg.hybrid = false;
    } else {  // hybrid path for every message
      cfg.am_cfg.eager_max = 0;
      cfg.am_cfg.hybrid = true;
    }
    return cfg;
  };
  for (int which = 0; which < 3; ++which) {
    for (std::size_t s : {std::size_t{512}, std::size_t{8192}}) {
      EXPECT_EQ(bench::mpi_bandwidth_mbps(protocol_cfg(which, false), s),
                bench::mpi_bandwidth_mbps(protocol_cfg(which, true), s))
          << "protocol " << which << " size " << s;
    }
  }
}

// --- Figures 8-11: MPI latency/bandwidth, thin and wide nodes ---------------

TEST(FastpathEquivalence, Fig8To11MpiCurves) {
  using mpi::MpiImpl;
  for (bool wide_nodes : {false, true}) {
    for (auto impl :
         {MpiImpl::kAmOptimized, MpiImpl::kAmUnoptimized, MpiImpl::kMpiF}) {
      for (std::size_t s : {std::size_t{16}, std::size_t{4096}}) {
        EXPECT_EQ(
            bench::mpi_hop_latency_us(mpi_cfg(impl, false, wide_nodes), s),
            bench::mpi_hop_latency_us(mpi_cfg(impl, true, wide_nodes), s))
            << "hop latency impl=" << static_cast<int>(impl) << " size=" << s
            << " wide=" << wide_nodes;
      }
      const std::size_t bw_size = 65536;
      EXPECT_EQ(
          bench::mpi_bandwidth_mbps(mpi_cfg(impl, false, wide_nodes), bw_size),
          bench::mpi_bandwidth_mbps(mpi_cfg(impl, true, wide_nodes), bw_size))
          << "bandwidth impl=" << static_cast<int>(impl)
          << " wide=" << wide_nodes;
    }
    // The raw am_store reference curves drawn alongside the MPI data.
    const sphw::SpParams slow_hw = wide_nodes ? wide(false) : thin(false);
    const sphw::SpParams fast_hw = wide_nodes ? wide(true) : thin(true);
    EXPECT_EQ(bench::am_store_hop_latency_us(1024, slow_hw),
              bench::am_store_hop_latency_us(1024, fast_hw));
    EXPECT_EQ(bench::am_store_bandwidth_mbps(65536, slow_hw),
              bench::am_store_bandwidth_mbps(65536, fast_hw));
  }
}

// --- Table 5: Split-C applications ------------------------------------------

void expect_phase_equal(const apps::PhaseTimes& slow,
                        const apps::PhaseTimes& fast, const char* what) {
  EXPECT_TRUE(slow.valid) << what;
  EXPECT_TRUE(fast.valid) << what;
  EXPECT_EQ(slow.checksum, fast.checksum) << what;
  EXPECT_EQ(slow.total_s, fast.total_s) << what;
  EXPECT_EQ(slow.comm_s, fast.comm_s) << what;
  EXPECT_EQ(slow.cpu_s, fast.cpu_s) << what;
}

TEST(FastpathEquivalence, Table5SplitCApps) {
  auto run = [](bool fastpath) {
    splitc::SplitCWorld w(splitc_cfg(fastpath));
    return apps::run_matmul(w, /*nb=*/4, /*bd=*/16);
  };
  expect_phase_equal(run(false), run(true), "matmul");
  for (auto variant :
       {apps::SortVariant::kSmallMessage, apps::SortVariant::kBulk}) {
    auto sample = [&](bool fastpath) {
      splitc::SplitCWorld w(splitc_cfg(fastpath));
      return apps::run_sample_sort(w, 4096, variant);
    };
    expect_phase_equal(sample(false), sample(true), "sample_sort");
    auto radix = [&](bool fastpath) {
      splitc::SplitCWorld w(splitc_cfg(fastpath));
      return apps::run_radix_sort(w, 2048, variant);
    };
    expect_phase_equal(radix(false), radix(true), "radix_sort");
  }
}

// --- Table 6: NAS kernels ----------------------------------------------------

TEST(FastpathEquivalence, Table6NasKernels) {
  using Runner = apps::NasResult (*)(mpi::MpiWorld&, int, int);
  struct Kernel {
    const char* name;
    Runner run;
    int n;
    int iters;
  };
  const Kernel kernels[] = {
      {"FT", apps::run_ft, 16, 1}, {"MG", apps::run_mg, 16, 1},
      {"LU", apps::run_lu, 64, 1}, {"BT", apps::run_bt, 16, 1},
      {"SP", apps::run_sp, 16, 1},
  };
  for (const Kernel& k : kernels) {
    auto run = [&](bool fastpath) {
      mpi::MpiWorld w(mpi_cfg(mpi::MpiImpl::kAmOptimized, fastpath));
      return k.run(w, k.n, k.iters);
    };
    const apps::NasResult slow = run(false);
    const apps::NasResult fast = run(true);
    EXPECT_TRUE(slow.finished) << k.name;
    EXPECT_TRUE(fast.finished) << k.name;
    EXPECT_EQ(slow.checksum, fast.checksum) << k.name;
    EXPECT_EQ(slow.time_s, fast.time_s) << k.name;
  }
}

// --- Seeded congestion fuzz: force mid-flight disengagement ------------------
//
// Three senders blast randomly sized bursts at random gaps, biased toward
// one hot receiver (many-to-one contention makes later-engaging packets
// exit the switch before queued reservations, rolling the ledger back),
// while the hot receiver arms and disarms a fault hook mid-burst
// (disengaging every reservation still ahead of its switch entry).  The
// entire observable outcome — per-receiver delivery traces with arrival
// instants, drop counts, and the events_simulated() ledger — must match
// the per-hop reference run exactly.

struct FuzzOutcome {
  // (receiver, src, seq, arrival time) in take order per receiver.
  std::vector<std::tuple<int, int, std::uint32_t, sim::Time>> trace;
  std::uint64_t injected_drops = 0;
  std::uint64_t fifo_drops = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t fused = 0;
  std::uint64_t events_simulated = 0;
};

FuzzOutcome run_congestion_fuzz(bool fastpath, std::uint64_t seed) {
  constexpr int kNodes = 4;
  constexpr int kHot = 3;  // every sender favors this receiver
  constexpr int kPacketsPerSender = 160;
  const sim::Time kDeadline = sim::usec(60000);

  FuzzOutcome out;
  sim::World w(kNodes);
  sphw::SpMachine m(w, thin(fastpath));

  // One fiber per node (the World contract: one NodeCtx, one program).
  // Nodes 0..2 alternate sending bursts with draining their own receive
  // FIFO, then keep draining until the deadline; the hot node only drains,
  // and toggles the fault hook at seeded instants so bursts are mid-flight
  // when it arms.  Toggling happens between polls on the hot node's fiber,
  // a deterministic virtual instant in both modes.
  for (int node = 0; node < kNodes; ++node) {
    w.spawn(node, [&, node](sim::NodeCtx& ctx) {
      std::mt19937_64 rng(seed * 1000003u + static_cast<unsigned>(node));
      std::uniform_int_distribution<int> pick_dst(0, kNodes - 1);
      std::uniform_int_distribution<int> payload(0, 224);
      std::uniform_int_distribution<int> burst_len(1, 12);
      std::uniform_real_distribution<double> gap_us(0.1, 40.0);
      std::uniform_real_distribution<double> pause_us(0.3, 2.1);
      std::uniform_real_distribution<double> arm_gap_us(150.0, 900.0);
      sphw::Tb2Adapter& ad = m.adapter(node);
      const bool sender = node != kHot;
      int sent = 0;
      std::uint32_t seq = 0;
      sim::Time next_toggle =
          node == kHot ? sim::usec(arm_gap_us(rng)) : sim::Time{0};
      bool armed = false;
      auto drain = [&] {
        while (ad.host_rx_ready()) {
          sphw::Packet p = ad.host_rx_take(ctx);
          out.trace.emplace_back(node, static_cast<int>(p.src), p.seq,
                                 ctx.now());
        }
      };
      while (ctx.now() < kDeadline) {
        if (node == kHot && ctx.now() >= next_toggle) {
          armed = !armed;
          if (armed) {
            m.fabric().set_drop_fn(
                [](const sphw::Packet& p) { return p.seq % 7 == 3; });
          } else {
            m.fabric().set_drop_fn(nullptr);
          }
          next_toggle = ctx.now() + sim::usec(arm_gap_us(rng));
        }
        if (sender && sent < kPacketsPerSender) {
          const int burst = std::min(burst_len(rng), kPacketsPerSender - sent);
          for (int i = 0; i < burst; ++i) {
            ctx.poll_until([&] { return ad.host_send_space(); },
                           sim::usec(0.7));
            sphw::Packet p;
            // Mostly many-to-one onto the hot node; occasionally elsewhere.
            int dst = (rng() % 4 != 0) ? kHot : pick_dst(rng);
            if (dst == node) dst = (node + 1) % kNodes;
            p.dst = static_cast<std::int16_t>(dst);
            p.seq = seq++;
            const std::uint32_t bytes =
                static_cast<std::uint32_t>(payload(rng));
            p.payload_bytes = bytes;
            p.payload.assign(bytes, std::byte{0x5a});
            ad.host_enqueue(ctx, std::move(p));
            ++sent;
          }
          drain();
          ctx.elapse(sim::usec(gap_us(rng)));
        } else {
          drain();
          ctx.elapse(sim::usec(pause_us(rng)));
        }
      }
      // Settle the lazily tracked FIFO-free instants so the elide ledger
      // is complete before the engine counters are read: per-hop mode runs
      // each free as a real event, while the fast path counts it at the
      // next host query — which this is.
      (void)ad.host_send_space();
    });
  }

  w.run();
  for (int node = 0; node < kNodes; ++node) {
    const sphw::Tb2Adapter::Stats& st = m.adapter(node).stats();
    out.fifo_drops += st.rx_dropped_fifo_full;
    out.rollbacks += st.fused_rollbacks;
    out.fused += st.fused_deliveries;
  }
  out.injected_drops = m.fabric().stats().dropped_injected;
  out.events_simulated = w.engine().events_simulated();
  return out;
}

TEST(FastpathEquivalence, CongestionFuzzForcesRollbacks) {
  bool saw_rollback = false;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const FuzzOutcome slow = run_congestion_fuzz(false, seed);
    const FuzzOutcome fast = run_congestion_fuzz(true, seed);
    EXPECT_EQ(slow.trace, fast.trace) << "seed " << seed;
    EXPECT_EQ(slow.injected_drops, fast.injected_drops) << "seed " << seed;
    EXPECT_EQ(slow.fifo_drops, fast.fifo_drops) << "seed " << seed;
    // The elide ledger must balance exactly: fused mode simulates the same
    // per-hop-equivalent event count that the reference mode executes.
    EXPECT_EQ(slow.events_simulated, fast.events_simulated)
        << "seed " << seed;
    EXPECT_EQ(slow.rollbacks, 0u);
    EXPECT_EQ(slow.fused, 0u);
    EXPECT_GT(fast.fused, 0u) << "seed " << seed;
    saw_rollback = saw_rollback || fast.rollbacks > 0;
    // Some traffic must actually flow for the comparison to mean anything.
    EXPECT_GT(slow.trace.size(), 100u) << "seed " << seed;
  }
  EXPECT_TRUE(saw_rollback)
      << "no seed forced a mid-flight disengagement; strengthen the fuzz";
}

}  // namespace
}  // namespace spam
