// Dual-mode equivalence suite for the node-local virtual clocks.
//
// Every table/figure workload of the paper reproduction is run twice —
// `local_clock = false` (each charge is its own engine elapse) and `true`
// (charges accumulate into a per-node debt ledger that materializes as one
// engine event at the next interaction point) — and every virtual-time
// result must be IDENTICAL: deferred charging is a fiber-switch
// optimization with a bit-exactness contract, never an approximation.
// Doubles are compared with EXPECT_EQ (exact bits, not a tolerance) and
// the Figure 3 sweep is additionally rendered to a report::Table whose
// output must be byte-identical across modes.
//
// The suite ends with a seeded fuzz over the raw World layer that mixes
// fine-grain charges with suspends, racing resumers (fired between a
// node's make_resumer() and its suspend()), mid-debt wakes, cross-node
// clock observations and trace emission, and checks the observation log,
// the trace stream, and the events_simulated() ledger all match the
// per-charge reference byte for byte.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

#include "apps/nas.hpp"
#include "apps/splitc_apps.hpp"
#include "micro.hpp"
#include "report/report.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"
#include "sphw/machine.hpp"

namespace spam {
namespace {

sphw::SpParams thin(bool local_clock) {
  sphw::SpParams p = sphw::SpParams::thin_node();
  p.local_clock = local_clock;
  return p;
}

sphw::SpParams wide(bool local_clock) {
  sphw::SpParams p = sphw::SpParams::wide_node();
  p.local_clock = local_clock;
  return p;
}

mpi::MpiWorldConfig mpi_cfg(mpi::MpiImpl impl, bool local_clock,
                            bool wide_nodes = false) {
  mpi::MpiWorldConfig cfg;
  cfg.impl = impl;
  cfg.nodes = 4;
  cfg.hw = wide_nodes ? wide(local_clock) : thin(local_clock);
  if (impl == mpi::MpiImpl::kMpiF) {
    cfg.f_cfg =
        wide_nodes ? mpif::MpiFConfig::wide() : mpif::MpiFConfig::thin();
  }
  return cfg;
}

splitc::SplitCConfig splitc_cfg(bool local_clock, int nodes = 8,
                                splitc::Backend backend =
                                    splitc::Backend::kSpAm) {
  splitc::SplitCConfig cfg;
  cfg.nodes = nodes;
  cfg.backend = backend;
  cfg.hw = thin(local_clock);
  return cfg;
}

// --- Table 2: AM primitive overheads ----------------------------------------

TEST(LocalClockEquivalence, Table2AmOverheads) {
  for (int words = 1; words <= 4; ++words) {
    EXPECT_EQ(bench::am_request_cost_us(words, thin(false)),
              bench::am_request_cost_us(words, thin(true)))
        << "request_" << words;
    EXPECT_EQ(bench::am_reply_cost_us(words, thin(false)),
              bench::am_reply_cost_us(words, thin(true)))
        << "reply_" << words;
  }
  EXPECT_EQ(bench::am_poll_empty_us(thin(false)),
            bench::am_poll_empty_us(thin(true)));
  EXPECT_EQ(bench::am_poll_per_msg_us(thin(false)),
            bench::am_poll_per_msg_us(thin(true)));
}

// --- Table 3 / Table 4: round-trip latencies, thin and wide nodes -----------

TEST(LocalClockEquivalence, Table3And4RoundTrips) {
  for (int words = 1; words <= 4; ++words) {
    EXPECT_EQ(bench::am_rtt_us(words, thin(false)),
              bench::am_rtt_us(words, thin(true)))
        << "am_rtt words=" << words;
  }
  EXPECT_EQ(bench::raw_rtt_us(thin(false)), bench::raw_rtt_us(thin(true)));
  EXPECT_EQ(bench::mpl_rtt_us(thin(false)), bench::mpl_rtt_us(thin(true)));
  EXPECT_EQ(bench::am_rtt_us(1, wide(false)), bench::am_rtt_us(1, wide(true)));
  EXPECT_EQ(bench::mpl_rtt_us(wide(false)), bench::mpl_rtt_us(wide(true)));
}

// --- Figure 3: the bandwidth sweep, rendered byte-identically ----------------

TEST(LocalClockEquivalence, Fig3BandwidthTableByteIdentical) {
  const std::vector<std::size_t> sizes = {16, 512, 8192, 65536, 1u << 20};
  auto render = [&](bool local_clock) {
    report::Table t("Figure 3: AM/MPL bandwidth vs transfer size");
    t.set_header({"bytes", "store", "get", "async store", "async get",
                  "mpl block", "mpl pipe"});
    const sphw::SpParams hw = thin(local_clock);
    for (std::size_t s : sizes) {
      char cell[32];
      std::vector<std::string> row;
      auto add = [&](double v) {
        std::snprintf(cell, sizeof cell, "%.6f", v);
        row.emplace_back(cell);
      };
      std::snprintf(cell, sizeof cell, "%zu", s);
      row.emplace_back(cell);
      add(bench::am_bandwidth_mbps(bench::AmBwMode::kSyncStore, s, hw));
      add(bench::am_bandwidth_mbps(bench::AmBwMode::kSyncGet, s, hw));
      add(bench::am_bandwidth_mbps(bench::AmBwMode::kPipelinedAsyncStore, s,
                                   hw));
      add(bench::am_bandwidth_mbps(bench::AmBwMode::kPipelinedAsyncGet, s, hw));
      add(bench::mpl_bandwidth_mbps(bench::MplBwMode::kBlocking, s, hw));
      add(bench::mpl_bandwidth_mbps(bench::MplBwMode::kPipelined, s, hw));
      t.add_row(std::move(row));
    }
    return t.render();
  };
  const std::string slow = render(false);
  const std::string fast = render(true);
  EXPECT_EQ(slow, fast) << "Figure 3 rendering must be byte-identical";
}

// --- Figure 7: MPI protocol regimes -----------------------------------------

TEST(LocalClockEquivalence, Fig7ProtocolCurves) {
  auto protocol_cfg = [](int which, bool local_clock) {
    mpi::MpiWorldConfig cfg = mpi_cfg(mpi::MpiImpl::kAmOptimized, local_clock);
    cfg.am_cfg = mpi::MpiAmConfig::opt();
    if (which == 0) {  // buffered: everything eager
      cfg.am_cfg.peer_buffer_bytes = 256 * 1024;
      cfg.am_cfg.eager_max = 200 * 1024;
      cfg.am_cfg.hybrid = false;
    } else if (which == 1) {  // rendezvous: nothing eager
      cfg.am_cfg.eager_max = 0;
      cfg.am_cfg.hybrid = false;
    } else {  // hybrid path for every message
      cfg.am_cfg.eager_max = 0;
      cfg.am_cfg.hybrid = true;
    }
    return cfg;
  };
  for (int which = 0; which < 3; ++which) {
    for (std::size_t s : {std::size_t{512}, std::size_t{8192}}) {
      EXPECT_EQ(bench::mpi_bandwidth_mbps(protocol_cfg(which, false), s),
                bench::mpi_bandwidth_mbps(protocol_cfg(which, true), s))
          << "protocol " << which << " size " << s;
    }
  }
}

// --- Figures 8-11: MPI latency/bandwidth, thin and wide nodes ---------------

TEST(LocalClockEquivalence, Fig8To11MpiCurves) {
  using mpi::MpiImpl;
  for (bool wide_nodes : {false, true}) {
    for (auto impl :
         {MpiImpl::kAmOptimized, MpiImpl::kAmUnoptimized, MpiImpl::kMpiF}) {
      for (std::size_t s : {std::size_t{16}, std::size_t{4096}}) {
        EXPECT_EQ(
            bench::mpi_hop_latency_us(mpi_cfg(impl, false, wide_nodes), s),
            bench::mpi_hop_latency_us(mpi_cfg(impl, true, wide_nodes), s))
            << "hop latency impl=" << static_cast<int>(impl) << " size=" << s
            << " wide=" << wide_nodes;
      }
      const std::size_t bw_size = 65536;
      EXPECT_EQ(
          bench::mpi_bandwidth_mbps(mpi_cfg(impl, false, wide_nodes), bw_size),
          bench::mpi_bandwidth_mbps(mpi_cfg(impl, true, wide_nodes), bw_size))
          << "bandwidth impl=" << static_cast<int>(impl)
          << " wide=" << wide_nodes;
    }
    const sphw::SpParams slow_hw = wide_nodes ? wide(false) : thin(false);
    const sphw::SpParams fast_hw = wide_nodes ? wide(true) : thin(true);
    EXPECT_EQ(bench::am_store_hop_latency_us(1024, slow_hw),
              bench::am_store_hop_latency_us(1024, fast_hw));
    EXPECT_EQ(bench::am_store_bandwidth_mbps(65536, slow_hw),
              bench::am_store_bandwidth_mbps(65536, fast_hw));
  }
}

// --- Table 5: Split-C applications (both backends) --------------------------

void expect_phase_equal(const apps::PhaseTimes& slow,
                        const apps::PhaseTimes& fast, const char* what) {
  EXPECT_TRUE(slow.valid) << what;
  EXPECT_TRUE(fast.valid) << what;
  EXPECT_EQ(slow.checksum, fast.checksum) << what;
  EXPECT_EQ(slow.total_s, fast.total_s) << what;
  EXPECT_EQ(slow.comm_s, fast.comm_s) << what;
  EXPECT_EQ(slow.cpu_s, fast.cpu_s) << what;
}

TEST(LocalClockEquivalence, Table5SplitCApps) {
  auto run = [](bool local_clock) {
    splitc::SplitCWorld w(splitc_cfg(local_clock));
    return apps::run_matmul(w, /*nb=*/4, /*bd=*/16);
  };
  expect_phase_equal(run(false), run(true), "matmul");
  for (auto variant :
       {apps::SortVariant::kSmallMessage, apps::SortVariant::kBulk}) {
    auto sample = [&](bool local_clock) {
      splitc::SplitCWorld w(splitc_cfg(local_clock));
      return apps::run_sample_sort(w, 4096, variant);
    };
    expect_phase_equal(sample(false), sample(true), "sample_sort");
    auto radix = [&](bool local_clock) {
      splitc::SplitCWorld w(splitc_cfg(local_clock));
      return apps::run_radix_sort(w, 2048, variant);
    };
    expect_phase_equal(radix(false), radix(true), "radix_sort");
  }
}

// The LogGP backend is the one transport whose endpoint state advances via
// engine events (arrival deliveries) rather than the node's own handlers,
// so it exercises the poll-side settle points hardest.
TEST(LocalClockEquivalence, Table5LogGpBackend) {
  auto run = [](bool local_clock) {
    splitc::SplitCWorld w(
        splitc_cfg(local_clock, /*nodes=*/8, splitc::Backend::kLogGp));
    return apps::run_matmul(w, /*nb=*/4, /*bd=*/16);
  };
  expect_phase_equal(run(false), run(true), "matmul_loggp");
  auto sample = [](bool local_clock) {
    splitc::SplitCWorld w(
        splitc_cfg(local_clock, /*nodes=*/8, splitc::Backend::kLogGp));
    return apps::run_sample_sort(w, 4096, apps::SortVariant::kSmallMessage);
  };
  expect_phase_equal(sample(false), sample(true), "sample_sort_loggp");
}

// --- Table 6: NAS kernels ----------------------------------------------------

TEST(LocalClockEquivalence, Table6NasKernels) {
  using Runner = apps::NasResult (*)(mpi::MpiWorld&, int, int);
  struct Kernel {
    const char* name;
    Runner run;
    int n;
    int iters;
  };
  const Kernel kernels[] = {
      {"FT", apps::run_ft, 16, 1}, {"MG", apps::run_mg, 16, 1},
      {"LU", apps::run_lu, 64, 1}, {"BT", apps::run_bt, 16, 1},
      {"SP", apps::run_sp, 16, 1},
  };
  for (const Kernel& k : kernels) {
    auto run = [&](bool local_clock) {
      mpi::MpiWorld w(mpi_cfg(mpi::MpiImpl::kAmOptimized, local_clock));
      return k.run(w, k.n, k.iters);
    };
    const apps::NasResult slow = run(false);
    const apps::NasResult fast = run(true);
    EXPECT_TRUE(slow.finished) << k.name;
    EXPECT_TRUE(fast.finished) << k.name;
    EXPECT_EQ(slow.checksum, fast.checksum) << k.name;
    EXPECT_EQ(slow.time_s, fast.time_s) << k.name;
  }
}

// --- Seeded clock fuzz: suspends, racing resumers, mid-debt wakes ------------
//
// Four nodes run a seeded mix of fine-grain charges, real elapses,
// cross-node clock observations, trace emission, and suspend/resume through
// a shared mailbox of resumers.  The racing-resumer case arises naturally:
// a node arms its resumer, charges more debt, then suspend() settles —
// which yields — so a peer can fire the resumer before the suspend
// consumes it (a latched, mid-debt wake).  Node 0 never suspends and
// drains the mailbox after the deadline so no wake is ever lost.
//
// The fuzz keeps every node's shared-state touches at a *distinct* virtual
// instant: all durations are multiples of kFuzzNodes, node r's clock stays
// in residue class r (mod kFuzzNodes), and a node woken at a peer's
// instant realigns before acting.  This is deliberate — the equivalence
// contract (DESIGN.md §8) guarantees bit-identical per-node virtual times
// and engine-ordered effects, not the seq tie-break among *different*
// nodes' events at the same tick: deferral collapses a run of charge wakes
// into one settle wake whose seq is assigned earlier, so exact-tie order
// against an unrelated third event can permute.  The protocol stack never
// races shared host state at tied instants (the paper-workload suites
// above are the byte-identical proof); a fuzz that did would test an
// ordering no layer relies on.

constexpr int kFuzzNodes = 4;

struct ClockFuzzOutcome {
  // Per-observer streams of (observed node, observed now).  Observations
  // are logged per node, not in one global vector: host-side append order
  // across nodes is legitimately mode-dependent (a deferred-mode node runs
  // several pure-compute iterations in one resumption), while the *global*
  // interleaving of engine-ordered effects is checked via the trace
  // stream, whose emission settles first.
  std::array<std::vector<std::pair<int, sim::Time>>, kFuzzNodes> samples;
  std::string trace;
  std::uint64_t events_simulated = 0;
};

ClockFuzzOutcome run_clock_fuzz(bool local_clock, std::uint64_t seed) {
  constexpr int kNodes = kFuzzNodes;
  const sim::Time kDeadline = sim::usec(4000);

  ClockFuzzOutcome out;
  sim::World w(kNodes, seed);
  w.engine().set_localclock(local_clock);
  sim::Trace::capture_to(&out.trace);
  sim::Trace::enable(sim::TraceCat::kApp);

  std::vector<std::function<void()>> mailbox;
  std::array<bool, kNodes> done{};

  for (int node = 0; node < kNodes; ++node) {
    w.spawn(node, [&, node](sim::NodeCtx& ctx) {
      auto& log = out.samples[static_cast<std::size_t>(node)];
      std::uint64_t marks = 0;
      // Durations are quantized to multiples of kNodes and each node is
      // offset into its own residue class, so no two nodes ever touch the
      // shared mailbox/done state at the same tick (see comment above).
      auto q = [](std::uint64_t n) {
        return static_cast<sim::Time>(kNodes) * n;
      };
      auto realign = [&] {
        const sim::Time mis = (static_cast<sim::Time>(node) + kNodes -
                               ctx.now() % kNodes) % kNodes;
        if (mis != 0) ctx.elapse(mis);
      };
      if (node != 0) ctx.elapse(static_cast<sim::Time>(node));
      while (ctx.now() < kDeadline) {
        const std::uint64_t roll = ctx.rng().next_below(100);
        if (roll < 50) {
          // Fine-grain compute: accumulates debt with the clock on.
          ctx.charge(q(1 + ctx.rng().next_below(75)));
        } else if (roll < 65) {
          ctx.elapse(q(1 + ctx.rng().next_below(125)));
        } else if (roll < 75) {
          // Cross-node clock observation: an interaction point that must
          // settle this node's debt before reading engine time.
          const int peer = static_cast<int>(ctx.rng().next_below(kNodes));
          log.emplace_back(peer, w.node(peer).now());
        } else if (roll < 83) {
          sim::Trace::log(sim::TraceCat::kApp, ctx.now(), "n%d mark %llu",
                          node, static_cast<unsigned long long>(marks++));
        } else if (roll < 93) {
          // Fire someone's pending resumer, possibly racing their suspend.
          // The mailbox is cross-fiber state: settle before reading it, the
          // same discipline the protocol layers follow for shared flags.
          ctx.settle();
          if (!mailbox.empty()) {
            auto wake = std::move(mailbox.back());
            mailbox.pop_back();
            ctx.charge(q(1 + ctx.rng().next_below(12)));  // wake mid-debt
            wake();
          } else {
            ctx.charge(q(2));
          }
        } else if (node != 0) {
          // Arm a resumer, pile on debt, then suspend: settle-then-sleep,
          // with the wake possibly already latched by the time we get
          // there.  Settle before publishing the resumer so peers see it
          // at this node's virtual instant in both modes.  The wake lands
          // at the waker's instant, so realign before acting again.
          ctx.settle();
          mailbox.push_back(ctx.make_resumer());
          ctx.charge(q(1 + ctx.rng().next_below(50)));
          ctx.suspend();
          realign();
        }
        log.emplace_back(node, ctx.now());
      }
      ctx.settle();  // publish `done` at this node's virtual instant
      done[static_cast<std::size_t>(node)] = true;
      if (node == 0) {
        // Drain: keep firing stranded resumers until every node exits.
        auto all_done = [&] {
          for (bool d : done) {
            if (!d) return false;
          }
          return true;
        };
        while (!all_done()) {
          while (!mailbox.empty()) {
            auto wake = std::move(mailbox.back());
            mailbox.pop_back();
            wake();
          }
          ctx.elapse(q(250));  // 1 µs per drain round, residue-preserving
        }
      }
    });
  }

  w.run();
  sim::Trace::capture_to(nullptr);
  sim::Trace::disable_all();
  out.events_simulated = w.engine().events_simulated();
  return out;
}

TEST(LocalClockEquivalence, ClockFuzzMatchesPerChargeReference) {
  for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    const ClockFuzzOutcome slow = run_clock_fuzz(false, seed);
    const ClockFuzzOutcome fast = run_clock_fuzz(true, seed);
    std::size_t total = 0;
    for (int n = 0; n < kFuzzNodes; ++n) {
      EXPECT_EQ(slow.samples[static_cast<std::size_t>(n)],
                fast.samples[static_cast<std::size_t>(n)])
          << "seed " << seed << " node " << n;
      total += slow.samples[static_cast<std::size_t>(n)].size();
    }
    EXPECT_EQ(slow.trace, fast.trace) << "seed " << seed;
    // The elide ledger must balance exactly: deferred mode simulates the
    // same per-charge-equivalent event count the reference executes.
    EXPECT_EQ(slow.events_simulated, fast.events_simulated) << "seed " << seed;
    EXPECT_GT(total, 400u) << "seed " << seed;
    EXPECT_FALSE(slow.trace.empty()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace spam
