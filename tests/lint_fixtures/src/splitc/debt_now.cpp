// Fixture: debt-engine-now.  Under the runtime layers the engine clock
// excludes the node's unsettled charge debt, so raw engine_.now() /
// engine().now() reads are flagged; NodeCtx-style ctx.now() is the
// correct spelling and passes.
//
// This file is linted, never compiled.

namespace fixture {

struct DfxEngine {
  long now();
};

struct DfxCtx {
  DfxEngine& engine();
  long now();
};

struct DfxNode {
  DfxEngine& engine_;
  DfxCtx& ctx_;

  long dfx_bad_direct() {
    return engine_.now();  // EXPECT: debt-engine-now
  }

  long dfx_bad_via_accessor() {
    return ctx_.engine().now();  // EXPECT: debt-engine-now
  }

  long dfx_good(DfxCtx& ctx) { return ctx.now(); }  // folds the ledger

  long dfx_audited() {
    // spam-lint: allow(debt-engine-now) fixture: engine-context code
    return engine_.now();
  }
};

}  // namespace fixture
