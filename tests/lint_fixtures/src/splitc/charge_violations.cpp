// Fixture for the hot-charge-loop rule: per-element time charging inside
// loop bodies under src/apps/ and src/splitc/.  Every line the linter must
// flag carries an EXPECT marker naming the rule; the rest exercises the
// shapes the rule must leave alone (hoisted batches, audited per-pass
// charges, do-while tails).

struct Rt {
  void charge_flops(unsigned long long n);
  void charge_int_ops(unsigned long long n);
  void charge_mem_bytes(unsigned long long n);
  void charge_us(double us);
  void elapse(long d);
};

void per_element_charges(Rt& rt, int n) {
  for (int i = 0; i < n; ++i) {
    rt.charge_flops(2);  // EXPECT: hot-charge-loop
  }
  int i = 0;
  while (i < n) {
    rt.charge_int_ops(8);  // EXPECT: hot-charge-loop
    ++i;
  }
  do {
    rt.elapse(100);  // EXPECT: hot-charge-loop
  } while (--n > 0);
  // Single-statement body, no braces.
  for (int j = 0; j < n; ++j) rt.charge_mem_bytes(4);  // EXPECT: hot-charge-loop
}

void nested_loop_charge(Rt& rt, int n) {
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      rt.charge_us(0.1);  // EXPECT: hot-charge-loop
    }
  }
}

void hoisted_and_audited(Rt& rt, int n) {
  // Hoisted batch charge: outside any loop body — clean.
  rt.charge_flops(2ull * static_cast<unsigned long long>(n));
  for (int i = 0; i < n; ++i) {
    (void)i;
  }
  for (int pass = 0; pass < 4; ++pass) {
    // spam-lint: charge-ok (one batched charge per pass)
    rt.charge_int_ops(static_cast<unsigned long long>(n) * 3);
  }
  for (int pass = 0; pass < 4; ++pass) {
    rt.charge_mem_bytes(4ull * static_cast<unsigned long long>(n));  // spam-lint: charge-ok (per-pass batch)
  }
  // A do-while tail has no body; charges after the loop are clean.
  do {
    (void)n;
  } while (--n > 0);
  rt.charge_us(1.0);
}
