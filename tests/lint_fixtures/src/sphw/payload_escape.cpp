// Fixture: payload-escape.  A stored view of a packet's payload outlives
// the delivering handler (the arena recycles the storage), so member
// stores and container stores are flagged; consuming the bytes in place
// and re-pointing a packet's own payload are allowed, and an audited
// drained ring passes with `spam-lint: payload-ok`.
//
// This file is linted, never compiled.
#include <cstddef>
#include <cstring>
#include <vector>

namespace fixture {

struct PfxView {
  const void* p = nullptr;
  std::size_t n = 0;
};

struct PfxPacket {
  PfxView payload;
};

struct PfxState {
  PfxView saved_;
  std::vector<PfxView> ring_;

  void pfx_escape_member(const PfxPacket& pkt) {
    saved_ = pkt.payload;  // EXPECT: payload-escape
  }

  void pfx_escape_container(const PfxPacket& pkt) {
    ring_.push_back(pkt.payload);  // EXPECT: payload-escape
  }

  void pfx_consume_ok(const PfxPacket& pkt, void* dst) {
    std::memcpy(dst, pkt.payload.p, pkt.payload.n);  // copies: allowed
  }

  void pfx_repoint_ok(PfxPacket& pkt, const PfxPacket& other) {
    pkt.payload = other.payload;  // assignment TO a packet's view: allowed
  }

  void pfx_audited(const PfxPacket& pkt) {
    // spam-lint: payload-ok fixture: ring drained before the pool recycles
    ring_.push_back(pkt.payload);
  }
};

}  // namespace fixture
