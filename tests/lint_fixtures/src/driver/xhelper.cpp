// Fixture: the callee side of the cross-TU pair (see src/sim/xcaller.cpp).
// src/driver is outside both the sim scope and any SPAM_HOT body, so the
// v1 linter never looks at this file's internals; the EXPECT lines below
// fire only when xcaller.cpp is linted in the same run and the call graph
// links the TUs.
//
// This file is linted, never compiled.
#include <ctime>
#include <vector>

namespace fixture {

void xfx_helper_reads_clock() {
  (void)time(nullptr);  // EXPECT: det-wallclock
}

void xfx_helper_hot_leaf() {
  std::vector<int> v;
  v.push_back(1);  // EXPECT: hot-growth
}

}  // namespace fixture
