// Fixture: hot-alloc / hot-growth inside SPAM_HOT bodies, plus the three
// sanctioned escapes (placement new, capacity-ok audit, non-hot code).
// Lines with a trailing EXPECT marker are parsed by tests/test_spam_lint.cpp.
//
// This file is linted, never compiled.
#include <functional>
#include <memory>
#include <vector>

#define SPAM_HOT [[gnu::hot]]

namespace fixture {

SPAM_HOT inline int* hot_new() {
  return new int[4];  // EXPECT: hot-alloc
}

SPAM_HOT inline std::unique_ptr<int> hot_make_unique() {
  return std::make_unique<int>(1);  // EXPECT: hot-alloc
}

SPAM_HOT inline void* hot_malloc() {
  return malloc(16);  // EXPECT: hot-alloc
}

SPAM_HOT inline void hot_std_function() {
  std::function<void()> cb;  // EXPECT: hot-alloc
  (void)cb;
}

SPAM_HOT inline void hot_unaudited_growth(std::vector<int>& v) {
  v.push_back(1);  // EXPECT: hot-growth
}

SPAM_HOT inline void hot_audited_growth(std::vector<int>& v) {
  // spam-lint: capacity-ok fixture pretends capacity was reserved up front
  v.push_back(2);
}

SPAM_HOT inline int* hot_placement_new(void* slot) {
  return new (slot) int(3);  // placement new reuses storage: allowed
}

inline int* cold_new() {
  return new int(4);  // not SPAM_HOT: allocation is fine here
}

}  // namespace fixture
