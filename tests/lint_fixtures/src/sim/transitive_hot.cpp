// Fixture: transitive hot-path rules.  None of the flagged functions is
// SPAM_HOT itself — each is *reachable* from a SPAM_HOT root through the
// call graph, one or two call levels deep.  Under --no-callgraph (the v1
// per-body linter) this file is clean; with the call graph both EXPECT
// lines fire.  tests/test_spam_lint.cpp checks both directions.
//
// This file is linted, never compiled.
#include <vector>

#define SPAM_HOT [[gnu::hot]]

namespace fixture {

// One level below a hot root.
inline int* tvh_level1_alloc() {
  return new int(1);  // EXPECT: hot-alloc
}

// Two levels below a hot root.
inline void tvh_level2_inner(std::vector<int>& v) {
  v.push_back(7);  // EXPECT: hot-growth
}

inline void tvh_level2_outer(std::vector<int>& v) { tvh_level2_inner(v); }

SPAM_HOT inline int* tvh_hot_root_one() { return tvh_level1_alloc(); }

SPAM_HOT inline void tvh_hot_root_two(std::vector<int>& v) {
  tvh_level2_outer(v);
}

// Definition-line suppression: the marker on the *definition* covers the
// whole hot-reachable body, unlike the per-line markers above.
// spam-lint: allow(hot-alloc) fixture: pooled at startup
inline int* tvh_audited_def() { return new int(2); }

SPAM_HOT inline int* tvh_hot_root_three() { return tvh_audited_def(); }

// Not reachable from any SPAM_HOT root: allocation is fine here.
inline int* tvh_cold_helper() { return new int(3); }

}  // namespace fixture
