// Fixture: a file every rule should pass.  tests/test_spam_lint.cpp
// asserts spam_lint exits 0 with no output on it.
#include <cstddef>
#include <vector>

namespace fixture {

inline std::size_t total(const std::vector<int>& v) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < v.size(); ++i) n += static_cast<std::size_t>(v[i]);
  return n;
}

}  // namespace fixture
