// Fixture: a violation covered by tests/lint_fixtures/allowlist.txt.
// With that allowlist, linting this file exits 0; without it, fiber-tls
// fires.  tests/test_spam_lint.cpp checks both directions plus the
// unused-entry notice.
//
// This file is linted, never compiled.
namespace fixture {

thread_local int audited_fixture_tls = 0;

}  // namespace fixture
