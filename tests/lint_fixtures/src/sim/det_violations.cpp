// Fixture: one representative violation per det-* pattern.  Lines the
// linter must flag carry a trailing EXPECT marker naming the rule id;
// tests/test_spam_lint.cpp parses those into the expected (line, rule)
// set and compares it against the tool's actual output, so the fixture
// stays self-describing when lines move.
//
// This file is linted, never compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

namespace fixture {

inline long wallclock_type() {
  auto t = std::chrono::steady_clock::now();  // EXPECT: det-wallclock
  return t.time_since_epoch().count();
}

inline long wallclock_call() {
  return static_cast<long>(time(nullptr));  // EXPECT: det-wallclock
}

inline unsigned rand_type() {
  std::mt19937 rng(7);  // EXPECT: det-rand
  return rng();
}

inline int rand_call() {
  return rand();  // EXPECT: det-rand
}

inline const char* env_call() {
  return getenv("SPAM_FIXTURE");  // EXPECT: det-env
}

inline int suppressed_rand() {
  return rand();  // spam-lint: allow(det-rand) fixture exercises suppression
}

inline int unordered_iteration() {
  std::unordered_map<int, int> table;
  int sum = 0;
  for (const auto& kv : table) {  // EXPECT: det-unordered-iter
    sum += kv.second;
  }
  return sum;
}

}  // namespace fixture
