// Fixture: fiber-unsafe patterns.  Lines with a trailing EXPECT marker
// are parsed by tests/test_spam_lint.cpp.
//
// This file is linted, never compiled.
extern "C" void __tsan_switch_to_fiber(void* fiber, unsigned flags);

namespace fixture {

thread_local int cached_across_switches = 0;  // EXPECT: fiber-tls

inline void announce_out_of_line(void* f) {
  __tsan_switch_to_fiber(f, 0);  // EXPECT: fiber-tsan-inline
}

__attribute__((always_inline)) inline void announce_inline(void* f) {
  __tsan_switch_to_fiber(f, 0);  // inlined into the switching frame: ok
}

}  // namespace fixture
