// Fixture: cross-TU reachability roots.  This file (sim scope) holds the
// SPAM_HOT root and the sim-scope entry point; the functions they call
// live in src/driver/xhelper.cpp, a directory where neither hot-* nor
// det-* rules apply *directly*.  Linted together, the call graph carries
// both taints across the TU boundary and xhelper.cpp's EXPECT lines fire;
// linted alone, xhelper.cpp is clean.
//
// This file is linted, never compiled.

#define SPAM_HOT [[gnu::hot]]

namespace fixture {

void xfx_helper_reads_clock();  // defined in src/driver/xhelper.cpp
void xfx_helper_hot_leaf();

// A sim-scope definition: a det root for everything it reaches.
inline void xfx_sim_entry() { xfx_helper_reads_clock(); }

// A hot root whose leaf lives in the other TU.
SPAM_HOT inline void xfx_hot_entry() { xfx_helper_hot_leaf(); }

}  // namespace fixture
