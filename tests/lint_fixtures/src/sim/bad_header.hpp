// Fixture: header-hygiene violations.  No #pragma once, and std:: symbols
// whose canonical headers are missing from the include set.
// Lines with a trailing EXPECT marker are parsed by tests/test_spam_lint.cpp.
//
// This file is linted, never compiled.
#include <cstdint>  // EXPECT: hdr-pragma-once

namespace fixture {

inline int count_entries(const std::vector<int>& v) {  // EXPECT: hdr-self-contained
  assert(!v.empty());  // EXPECT: hdr-self-contained
  return static_cast<int>(v.size());
}

}  // namespace fixture
