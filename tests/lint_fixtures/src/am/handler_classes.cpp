// Fixture: the AM handler-suspension classifier.  Four handlers are
// registered, one per verdict path:
//
//   h_never_    calls only resolvable, non-suspending code -> NEVER_SUSPENDS
//   h_may_      reaches a suspension primitive two calls deep -> MAY_SUSPEND
//   h_unknown_  invokes a std::function member -> UNKNOWN
//   h_audited_  reaches the same primitive but carries an audited
//               `spam-lint: never-suspends` at the registration -> NEVER
//
// tests/test_spam_lint.cpp runs `--handlers-out` over this file and
// asserts the emitted handler_classes.json matches.
//
// This file is linted, never compiled.
#include <functional>

namespace fixture {

struct HfxCtx {
  int counter = 0;
  void suspend();  // name matches the suspension-primitive set
  void bookkeep() { ++counter; }
};

struct HfxEndpoint {
  template <class F>
  int register_handler(F f);
  template <class F>
  int register_bulk_handler(F f);
};

inline void hfx_blocks_two_deep(HfxCtx& c) { c.suspend(); }
inline void hfx_blocks_one_deep(HfxCtx& c) { hfx_blocks_two_deep(c); }
inline void hfx_leaf_bookkeeping(HfxCtx& c) { c.bookkeep(); }

struct HfxBackend {
  HfxEndpoint ep_;
  HfxCtx ctx_;
  std::function<void()> cb_;
  int h_never_ = 0;
  int h_may_ = 0;
  int h_unknown_ = 0;
  int h_audited_ = 0;

  void install() {
    h_never_ = ep_.register_handler([this]() { hfx_leaf_bookkeeping(ctx_); });
    h_may_ = ep_.register_handler([this]() { hfx_blocks_one_deep(ctx_); });
    h_unknown_ = ep_.register_handler([this]() { cb_(); });
    // spam-lint: never-suspends fixture audit: asserted run-to-completion
    h_audited_ =
        ep_.register_bulk_handler([this]() { hfx_blocks_one_deep(ctx_); });
  }
};

}  // namespace fixture
