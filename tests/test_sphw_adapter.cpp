// Tests for the TB2 adapter and switch models: delivery, timing, FIFO
// geometry, overflow drops, doorbell batching, lazy pops.
#include <gtest/gtest.h>

#include <vector>

#include "sphw/machine.hpp"

namespace spam::sphw {
namespace {

Packet mk(int dst, std::uint32_t payload, std::uint32_t seq = 0) {
  Packet p;
  p.dst = static_cast<std::int16_t>(dst);
  p.seq = seq;
  p.payload_bytes = payload;
  p.payload.assign(payload, std::byte{0xab});
  return p;
}

TEST(Adapter, DeliversOnePacket) {
  sim::World w(2);
  SpMachine m(w, SpParams::thin_node());
  sim::Time arrival = 0;
  std::uint32_t got_seq = 0;

  w.spawn(0, [&](sim::NodeCtx& ctx) {
    m.adapter(0).host_enqueue(ctx, mk(1, 64, 7));
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    ctx.poll_until([&] { return m.adapter(1).host_rx_ready(); },
                   sim::usec(0.5));
    Packet p = m.adapter(1).host_rx_take(ctx);
    arrival = ctx.now();
    got_seq = p.seq;
    EXPECT_EQ(p.src, 0);
    EXPECT_EQ(p.payload_bytes, 64u);
    ASSERT_EQ(p.payload.size(), 64u);
    EXPECT_EQ(p.payload[63], std::byte{0xab});
  });
  w.run();

  EXPECT_EQ(got_seq, 7u);
  // Sanity band: small-packet one-way through the adapter pipeline should
  // land in the 10-30 us window the paper implies for TB2.
  EXPECT_GT(arrival, sim::usec(10));
  EXPECT_LT(arrival, sim::usec(30));
  EXPECT_EQ(m.adapter(0).stats().tx_packets, 1u);
  EXPECT_EQ(m.adapter(1).stats().rx_packets, 1u);
}

TEST(Adapter, InOrderDelivery) {
  sim::World w(2);
  SpMachine m(w, SpParams::thin_node());
  std::vector<std::uint32_t> seqs;

  w.spawn(0, [&](sim::NodeCtx& ctx) {
    for (std::uint32_t i = 0; i < 20; ++i) {
      ctx.poll_until([&] { return m.adapter(0).host_send_space(); },
                     sim::usec(0.5));
      m.adapter(0).host_enqueue(ctx, mk(1, 224, i));
    }
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    while (seqs.size() < 20) {
      ctx.poll_until([&] { return m.adapter(1).host_rx_ready(); },
                     sim::usec(0.5));
      seqs.push_back(m.adapter(1).host_rx_take(ctx).seq);
    }
  });
  w.run();
  for (std::uint32_t i = 0; i < 20; ++i) EXPECT_EQ(seqs[i], i);
}

TEST(Adapter, BatchedDoorbellCostsOneAccess) {
  // Enqueue k packets without doorbells, then ring once: the doorbell stage
  // must charge exactly one MicroChannel access regardless of k.
  SpParams params = SpParams::thin_node();
  sim::Time t_one = 0, t_batch = 0;
  {
    sim::World w(2);
    SpMachine m(w, params);
    w.spawn(0, [&](sim::NodeCtx& ctx) {
      m.adapter(0).host_enqueue(ctx, mk(1, 224), /*ring_doorbell=*/false);
      sim::Time before = ctx.now();
      m.adapter(0).host_doorbell(ctx, 1);
      t_one = ctx.now() - before;
    });
    w.spawn(1, [&](sim::NodeCtx& ctx) {
      ctx.poll_until([&] { return m.adapter(1).host_rx_pending() == 1; },
                     sim::usec(0.5));
    });
    w.run();
  }
  {
    sim::World w(2);
    SpMachine m(w, params);
    w.spawn(0, [&](sim::NodeCtx& ctx) {
      for (int i = 0; i < 8; ++i) {
        m.adapter(0).host_enqueue(ctx, mk(1, 224), /*ring_doorbell=*/false);
      }
      sim::Time before = ctx.now();
      m.adapter(0).host_doorbell(ctx, 8);
      t_batch = ctx.now() - before;
    });
    w.spawn(1, [&](sim::NodeCtx& ctx) {
      ctx.poll_until([&] { return m.adapter(1).host_rx_pending() == 8; },
                     sim::usec(0.5));
      while (m.adapter(1).host_rx_ready()) m.adapter(1).host_rx_take(ctx);
    });
    w.run();
  }
  EXPECT_EQ(t_one, t_batch) << "batched doorbell must amortize the access";
  EXPECT_EQ(t_one, sim::usec(params.mc_access_us));
}

TEST(Adapter, SendFifoBackpressure) {
  SpParams params = SpParams::thin_node();
  sim::World w(2);
  SpMachine m(w, params);
  int max_outstanding = 0;

  w.spawn(0, [&](sim::NodeCtx& ctx) {
    for (int i = 0; i < 300; ++i) {
      ctx.poll_until([&] { return m.adapter(0).host_send_space(); },
                     sim::usec(0.5));
      const int used = params.send_fifo_entries - m.adapter(0).host_send_free();
      max_outstanding = std::max(max_outstanding, used + 1);
      m.adapter(0).host_enqueue(ctx, mk(1, 224, static_cast<unsigned>(i)));
    }
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    int got = 0;
    while (got < 300) {
      ctx.poll_until([&] { return m.adapter(1).host_rx_ready(); },
                     sim::usec(0.5));
      m.adapter(1).host_rx_take(ctx);
      ++got;
    }
  });
  w.run();
  EXPECT_LE(max_outstanding, params.send_fifo_entries);
}

TEST(Adapter, RecvFifoOverflowDrops) {
  // Receiver never drains: with 2 nodes the FIFO holds 64*2 entries; the
  // rest must be dropped, not delivered and not crash.
  SpParams params = SpParams::thin_node();
  sim::World w(2);
  SpMachine m(w, params);
  const int total = 200;

  w.spawn(0, [&](sim::NodeCtx& ctx) {
    for (int i = 0; i < total; ++i) {
      ctx.poll_until([&] { return m.adapter(0).host_send_space(); },
                     sim::usec(0.5));
      m.adapter(0).host_enqueue(ctx, mk(1, 224, static_cast<unsigned>(i)));
    }
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    // Sleep long enough for everything to arrive, draining nothing.
    ctx.elapse(sim::usec(50000));
  });
  w.run();

  const auto& st = m.adapter(1).stats();
  const int cap = params.recv_fifo_entries_per_node * 2;
  EXPECT_EQ(static_cast<int>(st.rx_packets), cap);
  EXPECT_EQ(static_cast<int>(st.rx_dropped_fifo_full), total - cap);
}

TEST(Adapter, LazyPopFreesEntriesInBatches) {
  SpParams params = SpParams::thin_node();
  params.lazy_pop_batch = 4;
  sim::World w(2);
  SpMachine m(w, params);

  w.spawn(0, [&](sim::NodeCtx& ctx) {
    for (int i = 0; i < 6; ++i) m.adapter(0).host_enqueue(ctx, mk(1, 32));
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    ctx.poll_until([&] { return m.adapter(1).host_rx_pending() == 6; },
                   sim::usec(0.5));
    EXPECT_EQ(m.adapter(1).rx_fifo_occupied(), 6);
    // Taking three packets does not yet return entries to the adapter.
    m.adapter(1).host_rx_take(ctx);
    m.adapter(1).host_rx_take(ctx);
    m.adapter(1).host_rx_take(ctx);
    EXPECT_EQ(m.adapter(1).rx_fifo_occupied(), 6);
    // The fourth take crosses the batch threshold and flushes the pops.
    m.adapter(1).host_rx_take(ctx);
    EXPECT_EQ(m.adapter(1).rx_fifo_occupied(), 2);
    // Explicit flush releases the remainder.
    m.adapter(1).host_rx_take(ctx);
    m.adapter(1).host_rx_take(ctx);
    m.adapter(1).host_rx_flush_pops(ctx);
    EXPECT_EQ(m.adapter(1).rx_fifo_occupied(), 0);
  });
  w.run();
}

TEST(Switch, FaultInjectionDropsSelectedPackets) {
  sim::World w(2);
  SpMachine m(w, SpParams::thin_node());
  m.fabric().set_drop_fn([](const Packet& p) { return p.seq % 2 == 1; });
  std::vector<std::uint32_t> got;

  w.spawn(0, [&](sim::NodeCtx& ctx) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      ctx.poll_until([&] { return m.adapter(0).host_send_space(); },
                     sim::usec(0.5));
      m.adapter(0).host_enqueue(ctx, mk(1, 64, i));
    }
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    while (got.size() < 5) {
      ctx.poll_until([&] { return m.adapter(1).host_rx_ready(); },
                     sim::usec(0.5));
      got.push_back(m.adapter(1).host_rx_take(ctx).seq);
    }
  });
  w.run();
  EXPECT_EQ(got, (std::vector<std::uint32_t>{0, 2, 4, 6, 8}));
  EXPECT_EQ(m.fabric().stats().dropped_injected, 5u);
}

TEST(Adapter, BandwidthApproachesLinkRate) {
  // Blast 2000 full packets and verify the sustained rate is link-bound:
  // 224 data bytes per 256-byte wire packet at 40 MB/s -> ~35 MB/s of data.
  SpParams params = SpParams::thin_node();
  sim::World w(2);
  SpMachine m(w, params);
  sim::Time t_first = 0, t_last = 0;
  const int total = 2000;

  w.spawn(0, [&](sim::NodeCtx& ctx) {
    int rung = 0;
    for (int i = 0; i < total; ++i) {
      ctx.poll_until([&] { return m.adapter(0).host_send_space(); },
                     sim::usec(0.2));
      m.adapter(0).host_enqueue(ctx, mk(1, 224), /*ring_doorbell=*/false);
      if (++rung == 16) {
        m.adapter(0).host_doorbell(ctx, rung);
        rung = 0;
      }
    }
    if (rung) m.adapter(0).host_doorbell(ctx, rung);
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    int got = 0;
    while (got < total) {
      ctx.poll_until([&] { return m.adapter(1).host_rx_ready(); },
                     sim::usec(0.2));
      m.adapter(1).host_rx_take(ctx);
      if (++got == 1) t_first = ctx.now();
    }
    t_last = ctx.now();
  });
  w.run();

  const double secs = sim::to_sec(t_last - t_first);
  const double mbps = 224.0 * (total - 1) / secs / 1e6;
  EXPECT_GT(mbps, 30.0);
  EXPECT_LT(mbps, 40.0);
}

TEST(Fastpath, UncontendedTrafficArrivesFused) {
  sim::World w(2);
  SpMachine m(w, SpParams::thin_node());
  std::vector<sim::Time> arrivals;

  w.spawn(0, [&](sim::NodeCtx& ctx) {
    for (std::uint32_t i = 0; i < 8; ++i) {
      ctx.poll_until([&] { return m.adapter(0).host_send_space(); },
                     sim::usec(0.5));
      m.adapter(0).host_enqueue(ctx, mk(1, 224, i));
    }
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    while (arrivals.size() < 8) {
      ctx.poll_until([&] { return m.adapter(1).host_rx_ready(); },
                     sim::usec(0.5));
      m.adapter(1).host_rx_take(ctx);
      arrivals.push_back(ctx.now());
    }
  });
  w.run();

  // A single sender to a single destination is provably uncontended: every
  // packet must take the fused path, and none may roll back.
  EXPECT_EQ(m.adapter(1).stats().fused_deliveries, 8u);
  EXPECT_EQ(m.adapter(1).stats().fused_rollbacks, 0u);
  EXPECT_EQ(m.adapter(1).stats().rx_packets, 8u);
}

TEST(Fastpath, ArrivalTimesMatchPerHopExactly) {
  // The bit-exactness contract at adapter level: take-side timestamps of a
  // bursty one-way stream must be identical ticks in both modes.
  auto run_mode = [](bool fastpath) {
    SpParams params = SpParams::thin_node();
    params.network_fastpath = fastpath;
    sim::World w(2);
    SpMachine m(w, params);
    std::vector<sim::Time> arrivals;
    w.spawn(0, [&](sim::NodeCtx& ctx) {
      int rung = 0;
      for (std::uint32_t i = 0; i < 40; ++i) {
        ctx.poll_until([&] { return m.adapter(0).host_send_space(); },
                       sim::usec(0.5));
        m.adapter(0).host_enqueue(ctx, mk(1, (i * 37) % 225, i),
                                  /*doorbell_npackets=*/0);
        if (++rung == 4 || i == 39) {
          m.adapter(0).host_doorbell(ctx, rung);
          rung = 0;
        }
        if (i % 7 == 3) ctx.elapse(sim::usec(11.3));
      }
    });
    w.spawn(1, [&](sim::NodeCtx& ctx) {
      while (arrivals.size() < 40) {
        ctx.poll_until([&] { return m.adapter(1).host_rx_ready(); },
                       sim::usec(0.5));
        m.adapter(1).host_rx_take(ctx);
        arrivals.push_back(ctx.now());
      }
    });
    w.run();
    return arrivals;
  };
  EXPECT_EQ(run_mode(false), run_mode(true));
}

TEST(Fastpath, ArmingFaultHookDisengagesInFlightReservations) {
  // Packets engaged fused but still ahead of their switch entry must fall
  // back to per-hop when a drop hook arms, so the hook sees them.
  SpParams params = SpParams::thin_node();
  sim::World w(2);
  SpMachine m(w, params);
  std::vector<std::uint32_t> got;

  w.spawn(0, [&](sim::NodeCtx& ctx) {
    // A batched burst: doorbell rings once, so several packets engage
    // fused with switch-entry instants spread out by link serialization.
    for (std::uint32_t i = 0; i < 10; ++i) {
      m.adapter(0).host_enqueue(ctx, mk(1, 224, i), /*doorbell_npackets=*/0);
    }
    m.adapter(0).host_doorbell(ctx, 10);
    // Arm while the tail of the burst is still ahead of the switch: those
    // reservations must be rolled back and re-checked by the hook.
    ctx.elapse(sim::usec(20));
    m.fabric().set_drop_fn([](const Packet& p) { return p.seq >= 5; });
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    // Drain whatever survives; stop once the line is quiet for a while.
    sim::Time last = 0;
    while (ctx.now() < sim::usec(400)) {
      if (m.adapter(1).host_rx_ready()) {
        got.push_back(m.adapter(1).host_rx_take(ctx).seq);
        last = ctx.now();
      } else {
        ctx.elapse(sim::usec(1));
      }
    }
    (void)last;
  });
  w.run();

  EXPECT_GT(m.adapter(1).stats().fused_rollbacks, 0u);
  // Everything the hook admitted must still arrive, in order.
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(m.fabric().stats().dropped_injected + got.size(), 10u);
}

TEST(Fastpath, RxReadyTimeIsAnExactLowerBound) {
  sim::World w(2);
  SpMachine m(w, SpParams::thin_node());
  bool checked = false;

  w.spawn(0, [&](sim::NodeCtx& ctx) {
    m.adapter(0).host_enqueue(ctx, mk(1, 224, 1));
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    // Wait until the reservation exists, then interrogate the hint.
    ctx.poll_until([&] { return m.adapter(1).host_rx_ready_time() != 0 ||
                                m.adapter(1).host_rx_ready(); },
                   sim::usec(0.5));
    const sim::Time ready = m.adapter(1).host_rx_ready_time();
    if (ready != 0) {
      EXPECT_FALSE(m.adapter(1).host_rx_ready());
      EXPECT_GT(ready, ctx.now());
      // The hint must be exact for an uncontended packet: not ready one
      // tick before, ready at the instant itself.
      ctx.elapse(ready - ctx.now() - 1);
      EXPECT_FALSE(m.adapter(1).host_rx_ready());
      ctx.elapse(1);
      EXPECT_TRUE(m.adapter(1).host_rx_ready());
      checked = true;
      m.adapter(1).host_rx_take(ctx);
    }
  });
  w.run();
  EXPECT_TRUE(checked);
}

TEST(Fastpath, SendFreeReadyTimeSettlesExactly) {
  SpParams params = SpParams::thin_node();
  params.send_fifo_entries = 4;
  sim::World w(2);
  SpMachine m(w, params);

  w.spawn(0, [&](sim::NodeCtx& ctx) {
    Tb2Adapter& ad = m.adapter(0);
    // Deferred doorbells: nothing is submitted, so the FIFO genuinely
    // fills and no free instants are scheduled yet.
    for (std::uint32_t i = 0; i < 4; ++i) {
      ad.host_enqueue(ctx, mk(1, 224, i), /*doorbell_npackets=*/0);
    }
    EXPECT_FALSE(ad.host_send_space());
    // Entries awaiting their doorbell have no scheduled free instant: the
    // hint must decline rather than guess.
    EXPECT_EQ(ad.send_free_ready_time(1), 0u);
    // Ringing submits all four to the tx DMA; now every entry has an exact
    // future free instant and the hint must be tick-exact.
    ad.host_doorbell(ctx, 4);
    const sim::Time ready = ad.send_free_ready_time(1);
    ASSERT_NE(ready, 0u);
    EXPECT_GT(ready, ctx.now());
    const sim::Time all_ready = ad.send_free_ready_time(4);
    EXPECT_GE(all_ready, ready);
    ctx.elapse(ready - ctx.now() - 1);
    EXPECT_FALSE(ad.host_send_space());
    ctx.elapse(1);
    EXPECT_TRUE(ad.host_send_space());
    ctx.elapse(all_ready - ctx.now());
    EXPECT_EQ(ad.host_send_free(), 4);
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    for (int got = 0; got < 4; ++got) {
      ctx.poll_until([&] { return m.adapter(1).host_rx_ready(); },
                     sim::usec(0.5));
      m.adapter(1).host_rx_take(ctx);
    }
  });
  w.run();
}

}  // namespace
}  // namespace spam::sphw
