// SweepRunner + ResultCache + Hasher: slot-ordered aggregation under
// adversarial job durations, deterministic exception selection, memoize
// semantics, key distinctness, and the serial-vs-parallel determinism
// guarantee on a real Figure-3 sub-sweep.  TSan-clean by design (the
// `tsan` CMake preset runs everything labelled `driver` under
// ThreadSanitizer).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "driver/sweep.hpp"
#include "harness.hpp"
#include "sim/action.hpp"

namespace {

using spam::driver::Hasher;
using spam::driver::ResultCache;
using spam::driver::SweepRunner;

TEST(SweepRunner, ResultsAreSlotOrderedUnderAdversarialDurations) {
  // Job i sleeps longer the *lower* its index, so on a multi-threaded pool
  // the completion order is roughly the reverse of the submission order.
  // Results must land in slot order regardless.
  constexpr std::size_t kJobs = 8;
  std::vector<std::function<int()>> points;
  for (std::size_t i = 0; i < kJobs; ++i) {
    points.push_back([i] {
      std::this_thread::sleep_for(
          std::chrono::milliseconds((kJobs - 1 - i) * 10));
      return static_cast<int>(i) * 7;
    });
  }
  const std::vector<int> out = SweepRunner(4).run(points);
  ASSERT_EQ(out.size(), kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 7) << "slot " << i;
  }
}

TEST(SweepRunner, JobsOneRunsInlineOnCallingThread) {
  const std::thread::id me = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  SweepRunner(1).run_indexed(16, [&](std::size_t) {
    if (std::this_thread::get_id() != me) off_thread.fetch_add(1);
  });
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(SweepRunner, SinglePointRunsInlineEvenWithManyJobs) {
  const std::thread::id me = std::this_thread::get_id();
  bool inline_run = false;
  SweepRunner(8).run_indexed(1, [&](std::size_t i) {
    inline_run = (std::this_thread::get_id() == me) && i == 0;
  });
  EXPECT_TRUE(inline_run);
}

TEST(SweepRunner, RethrowsLowestIndexedFailure) {
  // Three jobs fail; the higher-indexed failures finish *first* (shorter
  // sleeps).  The runner must still report the failure of job 3, exactly
  // what a serial run would have thrown.  Every job runs to completion —
  // one failure does not cancel the batch.
  std::atomic<int> executed{0};
  auto sweep = [&](int jobs) -> std::string {
    executed.store(0);
    try {
      SweepRunner(jobs).run_indexed(16, [&](std::size_t i) {
        if (i == 12 || i == 9 || i == 3) {
          std::this_thread::sleep_for(std::chrono::milliseconds(i));
          executed.fetch_add(1);
          throw std::runtime_error("fail " + std::to_string(i));
        }
        executed.fetch_add(1);
      });
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_EQ(sweep(4), "fail 3");
  EXPECT_EQ(executed.load(), 16);
  // Serial rethrows the same exception (it stops at the first failure, and
  // every job below index 3 had succeeded).
  EXPECT_EQ(sweep(1), "fail 3");
}

TEST(ResultCache, ComputesOnceThenHits) {
  ResultCache& cache = ResultCache::instance();
  cache.clear();
  const auto before = cache.stats();
  const std::uint64_t key = Hasher("test_compute_once").mix(42).digest();
  std::atomic<int> computes{0};
  auto compute = [&] {
    computes.fetch_add(1);
    return 6.25;
  };
  EXPECT_EQ(cache.memoize(key, compute), 6.25);
  EXPECT_EQ(cache.memoize(key, compute), 6.25);
  EXPECT_EQ(computes.load(), 1);
  const auto after = cache.stats();
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 1u);

  double v = 0;
  EXPECT_TRUE(cache.lookup(key, &v));
  EXPECT_EQ(v, 6.25);
  cache.clear();
  EXPECT_FALSE(cache.lookup(key, &v));
}

TEST(ResultCache, ConcurrentMissesOnSharedKeysAgree) {
  // 64 jobs hammer 8 distinct keys; duplicate computes are allowed but the
  // stored value must be the deterministic per-key value for every caller.
  ResultCache& cache = ResultCache::instance();
  cache.clear();
  std::array<std::atomic<int>, 64> wrong{};
  SweepRunner(4).run_indexed(64, [&](std::size_t i) {
    const int k = static_cast<int>(i % 8);
    const std::uint64_t key =
        Hasher("test_concurrent_miss").mix(k).digest();
    const double v = cache.memoize(key, [&] { return k * 1.5; });
    if (v != k * 1.5) wrong[i].fetch_add(1);
  });
  for (const auto& w : wrong) EXPECT_EQ(w.load(), 0);
  for (int k = 0; k < 8; ++k) {
    double v = 0;
    ASSERT_TRUE(cache.lookup(
        Hasher("test_concurrent_miss").mix(k).digest(), &v));
    EXPECT_EQ(v, k * 1.5);
  }
  cache.clear();
}

TEST(Hasher, DistinguishesBenchIdFieldsAndOrder) {
  const auto d = [](Hasher h) { return h.digest(); };
  // Same inputs, same key.
  EXPECT_EQ(d(Hasher("a").mix(1).mix(2)), d(Hasher("a").mix(1).mix(2)));
  // Different bench id, field value, or field order: different keys.
  EXPECT_NE(d(Hasher("a").mix(1).mix(2)), d(Hasher("b").mix(1).mix(2)));
  EXPECT_NE(d(Hasher("a").mix(1).mix(2)), d(Hasher("a").mix(1).mix(3)));
  EXPECT_NE(d(Hasher("a").mix(1).mix(2)), d(Hasher("a").mix(2).mix(1)));
  // String boundaries cannot alias: ("ab","c") != ("a","bc").
  EXPECT_NE(d(Hasher("x").mix("ab").mix("c")),
            d(Hasher("x").mix("a").mix("bc")));
  // The key is independent of the caller's integer width.
  EXPECT_EQ(d(Hasher("w").mix(static_cast<int>(5))),
            d(Hasher("w").mix(static_cast<std::int64_t>(5))));
  EXPECT_EQ(d(Hasher("w").mix(static_cast<std::size_t>(5))),
            d(Hasher("w").mix(static_cast<short>(5))));
}

TEST(ThreadLocalState, HeapFallbackCounterIsPerThread) {
  // InlineAction's fallback counter is thread-local: a worker thread
  // spilling closures to the heap must not perturb this thread's counter
  // (each engine reads its own thread's count).
  const std::uint64_t mine = spam::sim::InlineAction::heap_fallbacks();
  std::uint64_t worker_delta = 0;
  std::thread t([&] {
    const std::uint64_t before = spam::sim::InlineAction::heap_fallbacks();
    std::array<char, 256> big{};  // larger than the inline buffer
    spam::sim::InlineAction a = [big] { (void)big; };
    a();
    worker_delta = spam::sim::InlineAction::heap_fallbacks() - before;
  });
  t.join();
  EXPECT_EQ(worker_delta, 1u);
  EXPECT_EQ(spam::sim::InlineAction::heap_fallbacks(), mine);
}

TEST(SweepDeterminism, Figure3SubSweepIsByteIdenticalSerialVsParallel) {
  // The PR's core guarantee: the rendered Figure-3 table is byte-for-byte
  // identical whether the points were computed at --jobs 1 or --jobs 8.
  // Cold cache both times so the parallel run really computes in parallel.
  const std::vector<std::size_t> sizes = {16, 512, 8192, 65536};
  ResultCache& cache = ResultCache::instance();

  cache.clear();
  SweepRunner(1).run(spam::bench::fig3_points(sizes));
  const std::string serial = spam::bench::fig3_table(sizes).render();

  cache.clear();
  SweepRunner(8).run(spam::bench::fig3_points(sizes));
  const std::string parallel = spam::bench::fig3_table(sizes).render();

  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  cache.clear();
}

}  // namespace
