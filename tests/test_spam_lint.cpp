// End-to-end tests for tools/spam_lint against tests/lint_fixtures/.
//
// The fixtures are self-describing: every line the linter must flag ends
// with `// EXPECT: <rule-id>`.  Each test parses that expectation set out
// of the fixture source and compares it — exactly, line numbers and rule
// ids both — against the tool's stdout, so a rule that stops firing, fires
// on the wrong line, or fires where it should not is a concrete diff in
// the failure message.
//
// SPAM_LINT_BIN, SPAM_LINT_FIXTURES and SPAM_LINT_SRC_ROOT are injected by
// tests/CMakeLists.txt.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

// Runs the lint binary with `args`; captures stdout (and stderr too when
// `merge_stderr`).  popen gives us exactly the CI-facing interface: argv,
// streams, exit code.
RunResult run_lint(const std::string& args, bool merge_stderr = false) {
  std::string cmd = std::string(SPAM_LINT_BIN) + " " + args;
  cmd += merge_stderr ? " 2>&1" : " 2>/dev/null";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    r.output.append(buf, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::string fixture(const std::string& rel) {
  return std::string(SPAM_LINT_FIXTURES) + "/" + rel;
}

std::string lint_args(const std::string& rel) {
  return "--root " + std::string(SPAM_LINT_FIXTURES) +
         " --no-default-allowlist " + fixture(rel);
}

using LineRule = std::pair<int, std::string>;

// Parses `// EXPECT: <rule-id>` markers out of a fixture file.
std::vector<LineRule> expected_violations(const std::string& rel) {
  std::ifstream in(fixture(rel));
  EXPECT_TRUE(in.is_open()) << "missing fixture " << rel;
  std::vector<LineRule> out;
  std::string line;
  const std::string key = "// EXPECT: ";
  for (int lineno = 1; std::getline(in, line); ++lineno) {
    const std::size_t at = line.find(key);
    if (at == std::string::npos) continue;
    std::string rule = line.substr(at + key.size());
    while (!rule.empty() && (rule.back() == ' ' || rule.back() == '\r')) {
      rule.pop_back();
    }
    out.emplace_back(lineno, rule);
  }
  return out;
}

// Parses spam_lint stdout (`rel:line: rule message`) into (line, rule),
// asserting every line refers to the expected file.
std::vector<LineRule> reported_violations(const std::string& out,
                                          const std::string& rel) {
  std::vector<LineRule> parsed;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t c1 = line.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : line.find(':', c1 + 1);
    if (c2 == std::string::npos) {
      ADD_FAILURE() << "unparseable lint output line: " << line;
      continue;
    }
    EXPECT_EQ(line.substr(0, c1), rel) << line;
    const int lineno = std::stoi(line.substr(c1 + 1, c2 - c1 - 1));
    std::istringstream rest(line.substr(c2 + 1));
    std::string rule;
    rest >> rule;
    parsed.emplace_back(lineno, rule);
  }
  return parsed;
}

// One fixture file, full expectation match, nonzero exit.
void check_fixture(const std::string& rel) {
  const std::vector<LineRule> want = expected_violations(rel);
  ASSERT_FALSE(want.empty()) << rel << " has no EXPECT markers";
  const RunResult r = run_lint(lint_args(rel));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(reported_violations(r.output, rel), want) << r.output;
}

TEST(SpamLint, DeterminismRules) {
  check_fixture("src/sim/det_violations.cpp");
}

TEST(SpamLint, HotPathRules) { check_fixture("src/sim/hot_violations.cpp"); }

TEST(SpamLint, FiberRules) { check_fixture("src/sim/fiber_violations.cpp"); }

TEST(SpamLint, ChargeLoopRules) {
  check_fixture("src/splitc/charge_violations.cpp");
}

TEST(SpamLint, HeaderRules) { check_fixture("src/sim/bad_header.hpp"); }

TEST(SpamLint, CleanFileExitsZero) {
  const RunResult r = run_lint(lint_args("src/sim/clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SpamLint, AllowlistCoversAuditedViolation) {
  const RunResult r =
      run_lint("--root " + std::string(SPAM_LINT_FIXTURES) + " --allowlist " +
                   fixture("allowlist.txt") + " " +
                   fixture("src/sim/allowlisted.cpp"),
               /*merge_stderr=*/true);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("fiber-tls"), std::string::npos) << r.output;
  // The deliberately-stale entry must be called out.
  EXPECT_NE(r.output.find("unused allowlist entry: det-rand"),
            std::string::npos)
      << r.output;
}

TEST(SpamLint, WithoutAllowlistViolationResurfaces) {
  const RunResult r = run_lint(lint_args("src/sim/allowlisted.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("fiber-tls"), std::string::npos) << r.output;
}

TEST(SpamLint, WholeTreeSweepAggregates) {
  std::size_t expected = 0;
  for (const char* rel :
       {"src/sim/det_violations.cpp", "src/sim/hot_violations.cpp",
        "src/sim/fiber_violations.cpp", "src/sim/bad_header.hpp",
        "src/sim/transitive_hot.cpp", "src/driver/xhelper.cpp",
        "src/sphw/payload_escape.cpp", "src/splitc/charge_violations.cpp",
        "src/splitc/debt_now.cpp"}) {
    expected += expected_violations(rel).size();
  }
  expected += 1;  // allowlisted.cpp's fiber-tls (no allowlist in this run)
  const RunResult r = run_lint("--root " + std::string(SPAM_LINT_FIXTURES) +
                               " --no-default-allowlist " +
                               std::string(SPAM_LINT_FIXTURES));
  EXPECT_EQ(r.exit_code, 1);
  std::size_t lines = 0;
  for (char c : r.output) lines += c == '\n' ? 1u : 0u;
  EXPECT_EQ(lines, expected) << r.output;
}

TEST(SpamLint, MissingInputExitsTwo) {
  const RunResult r = run_lint(lint_args("src/sim/no_such_file.cpp"));
  EXPECT_EQ(r.exit_code, 2);
}

// --- v2: call graph, transitive rules, handler classifier -----------------

TEST(SpamLint, TransitiveHotRules) {
  check_fixture("src/sim/transitive_hot.cpp");
}

// The same fixture is clean for the v1 per-body linter: every finding in
// it exists only through the call graph.
TEST(SpamLint, TransitiveFixtureCleanWithoutCallgraph) {
  const RunResult r =
      run_lint("--no-callgraph " + lint_args("src/sim/transitive_hot.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, "");
}

TEST(SpamLint, PayloadEscapeRules) {
  check_fixture("src/sphw/payload_escape.cpp");
}

TEST(SpamLint, DebtEngineNowRules) { check_fixture("src/splitc/debt_now.cpp"); }

// Hot/det taints cross the TU boundary: xhelper.cpp's findings fire only
// when the file holding the roots is linted in the same run.
TEST(SpamLint, CrossTuReachability) {
  const std::string rel = "src/driver/xhelper.cpp";
  const std::vector<LineRule> want = expected_violations(rel);
  ASSERT_FALSE(want.empty());

  const RunResult solo = run_lint(lint_args(rel));
  EXPECT_EQ(solo.exit_code, 0) << solo.output;
  EXPECT_EQ(solo.output, "");

  const RunResult pair =
      run_lint(lint_args(rel) + " " + fixture("src/sim/xcaller.cpp"));
  EXPECT_EQ(pair.exit_code, 1) << pair.output;
  EXPECT_EQ(reported_violations(pair.output, rel), want) << pair.output;
}

// Minimal JSON value extraction, enough for the documents spam_lint emits
// (no nested strings with unescaped quotes in the probed fields).
int count_occurrences(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(SpamLint, HandlerClassifierFixture) {
  const std::string out_path = testing::TempDir() + "spam_lint_hfx.json";
  const RunResult r = run_lint("--handlers-out " + out_path + " " +
                               lint_args("src/am/handler_classes.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const std::string doc = read_file(out_path);

  EXPECT_NE(doc.find("\"handlers\": 4,"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"never_suspends\": 2"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"may_suspend\": 1"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"unknown\": 1"), std::string::npos) << doc;

  // Each handler's verdict, keyed by registration target name.
  EXPECT_NE(doc.find("\"name\": \"h_never_\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"name\": \"h_may_\""), std::string::npos) << doc;
  // The MAY witness names the primitive the chain reaches.
  EXPECT_NE(doc.find("reaches suspension primitive `suspend`"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("reaches unresolved call `cb_`"), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"kind\": \"bulk\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"audited\": true"), std::string::npos) << doc;

  // Round trip: a second run over identical input is byte-identical.
  const std::string out2 = testing::TempDir() + "spam_lint_hfx2.json";
  run_lint("--handlers-out " + out2 + " " +
           lint_args("src/am/handler_classes.cpp"));
  EXPECT_EQ(doc, read_file(out2));
}

// The classifier over the real tree: every handler registered in src/
// resolves — the ISSUE's >= 90% bar — and the report is deterministic.
TEST(SpamLint, HandlerClassifierRealTree) {
  const std::string root(SPAM_LINT_SRC_ROOT);
  const std::string out_path = testing::TempDir() + "spam_lint_real.json";
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult r =
      run_lint("--root " + root + " --handlers-out " + out_path + " " + root +
               "/src " + root + "/bench " + root + "/tools");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // Whole-tree lint plus the graph must stay fast enough for CI's 2 s
  // budget (tools/check.sh asserts the same bound on the tool alone).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);

  const std::string doc = read_file(out_path);
  const int total = count_occurrences(doc, "\"class\": ");
  const int unknown = count_occurrences(doc, "\"class\": \"UNKNOWN\"");
  EXPECT_GE(total, 13) << doc;
  EXPECT_LE(unknown * 10, total) << "more than 10% UNKNOWN handlers\n" << doc;

  // The known registration sites are all present.
  for (const char* needle :
       {"src/splitc/am_backend.cpp", "src/mpi/am_device.cpp",
        "src/am/endpoint.cpp", "\"name\": \"h_put_\"",
        "\"name\": \"h_eager_\"", "\"name\": \"reserved-noop\""}) {
    EXPECT_NE(doc.find(needle), std::string::npos) << "missing " << needle;
  }

  const std::string out2 = testing::TempDir() + "spam_lint_real2.json";
  run_lint("--root " + root + " --handlers-out " + out2 + " " + root +
           "/src " + root + "/bench " + root + "/tools");
  EXPECT_EQ(doc, read_file(out2));
}

// --- v2: CLI contract ------------------------------------------------------

TEST(SpamLint, JsonFormat) {
  const RunResult r =
      run_lint("--format=json " + lint_args("src/sim/hot_violations.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("\"tool\": \"spam_lint\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"rule\": \"hot-alloc\""), std::string::npos)
      << r.output;
  EXPECT_EQ(count_occurrences(r.output, "\"rule\": "),
            static_cast<int>(
                expected_violations("src/sim/hot_violations.cpp").size()))
      << r.output;
}

TEST(SpamLint, SarifFormat) {
  const RunResult r =
      run_lint("--format=sarif " + lint_args("src/sim/hot_violations.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("\"version\": \"2.1.0\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"name\": \"spam_lint\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"ruleId\": \"hot-alloc\""), std::string::npos)
      << r.output;
}

TEST(SpamLint, BogusFormatExitsTwo) {
  const RunResult r =
      run_lint("--format=bogus " + lint_args("src/sim/clean.cpp"));
  EXPECT_EQ(r.exit_code, 2);
}

TEST(SpamLint, HandlersOutRequiresCallgraph) {
  const RunResult r = run_lint("--no-callgraph --handlers-out /dev/null " +
                               lint_args("src/sim/clean.cpp"));
  EXPECT_EQ(r.exit_code, 2);
}

// A stale allowlist entry is advisory by default (the audited-violation
// test above relies on exit 0) but fails the run under --stale=error.
TEST(SpamLint, StaleAllowlistEntryFailsUnderStaleError) {
  const RunResult r =
      run_lint("--stale=error --root " + std::string(SPAM_LINT_FIXTURES) +
                   " --allowlist " + fixture("allowlist.txt") + " " +
                   fixture("src/sim/allowlisted.cpp"),
               /*merge_stderr=*/true);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("error: unused allowlist entry: det-rand"),
            std::string::npos)
      << r.output;
}

TEST(SpamLint, HelpExitsZero) {
  const RunResult r = run_lint("--help", /*merge_stderr=*/true);
  EXPECT_EQ(r.exit_code, 0);
  for (const char* flag : {"--format", "--handlers-out", "--stale",
                           "--no-callgraph", "--allowlist"}) {
    EXPECT_NE(r.output.find(flag), std::string::npos) << "help lacks " << flag;
  }
}

}  // namespace
