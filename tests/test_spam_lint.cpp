// End-to-end tests for tools/spam_lint against tests/lint_fixtures/.
//
// The fixtures are self-describing: every line the linter must flag ends
// with `// EXPECT: <rule-id>`.  Each test parses that expectation set out
// of the fixture source and compares it — exactly, line numbers and rule
// ids both — against the tool's stdout, so a rule that stops firing, fires
// on the wrong line, or fires where it should not is a concrete diff in
// the failure message.
//
// SPAM_LINT_BIN and SPAM_LINT_FIXTURES are injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

// Runs the lint binary with `args`; captures stdout (and stderr too when
// `merge_stderr`).  popen gives us exactly the CI-facing interface: argv,
// streams, exit code.
RunResult run_lint(const std::string& args, bool merge_stderr = false) {
  std::string cmd = std::string(SPAM_LINT_BIN) + " " + args;
  cmd += merge_stderr ? " 2>&1" : " 2>/dev/null";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    r.output.append(buf, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::string fixture(const std::string& rel) {
  return std::string(SPAM_LINT_FIXTURES) + "/" + rel;
}

std::string lint_args(const std::string& rel) {
  return "--root " + std::string(SPAM_LINT_FIXTURES) +
         " --no-default-allowlist " + fixture(rel);
}

using LineRule = std::pair<int, std::string>;

// Parses `// EXPECT: <rule-id>` markers out of a fixture file.
std::vector<LineRule> expected_violations(const std::string& rel) {
  std::ifstream in(fixture(rel));
  EXPECT_TRUE(in.is_open()) << "missing fixture " << rel;
  std::vector<LineRule> out;
  std::string line;
  const std::string key = "// EXPECT: ";
  for (int lineno = 1; std::getline(in, line); ++lineno) {
    const std::size_t at = line.find(key);
    if (at == std::string::npos) continue;
    std::string rule = line.substr(at + key.size());
    while (!rule.empty() && (rule.back() == ' ' || rule.back() == '\r')) {
      rule.pop_back();
    }
    out.emplace_back(lineno, rule);
  }
  return out;
}

// Parses spam_lint stdout (`rel:line: rule message`) into (line, rule),
// asserting every line refers to the expected file.
std::vector<LineRule> reported_violations(const std::string& out,
                                          const std::string& rel) {
  std::vector<LineRule> parsed;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t c1 = line.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : line.find(':', c1 + 1);
    if (c2 == std::string::npos) {
      ADD_FAILURE() << "unparseable lint output line: " << line;
      continue;
    }
    EXPECT_EQ(line.substr(0, c1), rel) << line;
    const int lineno = std::stoi(line.substr(c1 + 1, c2 - c1 - 1));
    std::istringstream rest(line.substr(c2 + 1));
    std::string rule;
    rest >> rule;
    parsed.emplace_back(lineno, rule);
  }
  return parsed;
}

// One fixture file, full expectation match, nonzero exit.
void check_fixture(const std::string& rel) {
  const std::vector<LineRule> want = expected_violations(rel);
  ASSERT_FALSE(want.empty()) << rel << " has no EXPECT markers";
  const RunResult r = run_lint(lint_args(rel));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(reported_violations(r.output, rel), want) << r.output;
}

TEST(SpamLint, DeterminismRules) {
  check_fixture("src/sim/det_violations.cpp");
}

TEST(SpamLint, HotPathRules) { check_fixture("src/sim/hot_violations.cpp"); }

TEST(SpamLint, FiberRules) { check_fixture("src/sim/fiber_violations.cpp"); }

TEST(SpamLint, ChargeLoopRules) {
  check_fixture("src/splitc/charge_violations.cpp");
}

TEST(SpamLint, HeaderRules) { check_fixture("src/sim/bad_header.hpp"); }

TEST(SpamLint, CleanFileExitsZero) {
  const RunResult r = run_lint(lint_args("src/sim/clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SpamLint, AllowlistCoversAuditedViolation) {
  const RunResult r =
      run_lint("--root " + std::string(SPAM_LINT_FIXTURES) + " --allowlist " +
                   fixture("allowlist.txt") + " " +
                   fixture("src/sim/allowlisted.cpp"),
               /*merge_stderr=*/true);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("fiber-tls"), std::string::npos) << r.output;
  // The deliberately-stale entry must be called out.
  EXPECT_NE(r.output.find("unused allowlist entry: det-rand"),
            std::string::npos)
      << r.output;
}

TEST(SpamLint, WithoutAllowlistViolationResurfaces) {
  const RunResult r = run_lint(lint_args("src/sim/allowlisted.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("fiber-tls"), std::string::npos) << r.output;
}

TEST(SpamLint, WholeTreeSweepAggregates) {
  std::size_t expected = 0;
  for (const char* rel :
       {"src/sim/det_violations.cpp", "src/sim/hot_violations.cpp",
        "src/sim/fiber_violations.cpp", "src/sim/bad_header.hpp",
        "src/splitc/charge_violations.cpp"}) {
    expected += expected_violations(rel).size();
  }
  expected += 1;  // allowlisted.cpp's fiber-tls (no allowlist in this run)
  const RunResult r = run_lint("--root " + std::string(SPAM_LINT_FIXTURES) +
                               " --no-default-allowlist " +
                               std::string(SPAM_LINT_FIXTURES));
  EXPECT_EQ(r.exit_code, 1);
  std::size_t lines = 0;
  for (char c : r.output) lines += c == '\n' ? 1u : 0u;
  EXPECT_EQ(lines, expected) << r.output;
}

TEST(SpamLint, MissingInputExitsTwo) {
  const RunResult r = run_lint(lint_args("src/sim/no_such_file.cpp"));
  EXPECT_EQ(r.exit_code, 2);
}

}  // namespace
