// Application-kernel tests: Split-C benchmarks verify their results across
// backends; NAS kernels produce identical checksums under MPI-AM and MPI-F.
#include <gtest/gtest.h>

#include "apps/nas.hpp"
#include "apps/splitc_apps.hpp"

namespace spam::apps {
namespace {

splitc::SplitCConfig sc_config(splitc::Backend b, int nodes) {
  splitc::SplitCConfig cfg;
  cfg.nodes = nodes;
  cfg.backend = b;
  if (b == splitc::Backend::kLogGp) cfg.loggp = logp::LogGpParams::cm5();
  return cfg;
}

class SplitCAppBackends : public ::testing::TestWithParam<splitc::Backend> {};

TEST_P(SplitCAppBackends, MatmulComputesExactProduct) {
  splitc::SplitCWorld w(sc_config(GetParam(), 4));
  const PhaseTimes r = run_matmul(w, /*nb=*/4, /*bd=*/16);
  EXPECT_TRUE(r.valid);
  EXPECT_GT(r.total_s, 0.0);
  EXPECT_GT(r.comm_s, 0.0);
  EXPECT_GT(r.cpu_s, 0.0);
}

TEST_P(SplitCAppBackends, SampleSortSmallSortsGlobally) {
  splitc::SplitCWorld w(sc_config(GetParam(), 4));
  const PhaseTimes r = run_sample_sort(w, 4096, SortVariant::kSmallMessage);
  EXPECT_TRUE(r.valid);
}

TEST_P(SplitCAppBackends, SampleSortBulkSortsGlobally) {
  splitc::SplitCWorld w(sc_config(GetParam(), 4));
  const PhaseTimes r = run_sample_sort(w, 4096, SortVariant::kBulk);
  EXPECT_TRUE(r.valid);
}

TEST_P(SplitCAppBackends, RadixSortSmallSortsGlobally) {
  splitc::SplitCWorld w(sc_config(GetParam(), 4));
  const PhaseTimes r = run_radix_sort(w, 2048, SortVariant::kSmallMessage);
  EXPECT_TRUE(r.valid);
}

TEST_P(SplitCAppBackends, RadixSortBulkSortsGlobally) {
  splitc::SplitCWorld w(sc_config(GetParam(), 4));
  const PhaseTimes r = run_radix_sort(w, 2048, SortVariant::kBulk);
  EXPECT_TRUE(r.valid);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, SplitCAppBackends,
    ::testing::Values(splitc::Backend::kSpAm, splitc::Backend::kSpMpl,
                      splitc::Backend::kLogGp),
    [](const ::testing::TestParamInfo<splitc::Backend>& info) {
      switch (info.param) {
        case splitc::Backend::kSpAm: return std::string("SpAm");
        case splitc::Backend::kSpMpl: return std::string("SpMpl");
        default: return std::string("LogGpCm5");
      }
    });

TEST(SplitCApps, BulkSortBeatsSmallMessageSortOverMpl) {
  // The paper's observation: fine-grain sorting over MPL is dominated by
  // per-message overhead; the bulk variant is several times faster.
  splitc::SplitCWorld w1(sc_config(splitc::Backend::kSpMpl, 4));
  const PhaseTimes sm = run_sample_sort(w1, 8192, SortVariant::kSmallMessage);
  splitc::SplitCWorld w2(sc_config(splitc::Backend::kSpMpl, 4));
  const PhaseTimes lg = run_sample_sort(w2, 8192, SortVariant::kBulk);
  ASSERT_TRUE(sm.valid);
  ASSERT_TRUE(lg.valid);
  EXPECT_GT(sm.total_s, 2.0 * lg.total_s);
}

// --- NAS kernels -----------------------------------------------------------

mpi::MpiWorldConfig mpi_config(mpi::MpiImpl impl, int nodes) {
  mpi::MpiWorldConfig cfg;
  cfg.impl = impl;
  cfg.nodes = nodes;
  return cfg;
}

TEST(NasKernels, FtChecksumIdenticalAcrossImplementations) {
  mpi::MpiWorld am(mpi_config(mpi::MpiImpl::kAmOptimized, 4));
  mpi::MpiWorld f(mpi_config(mpi::MpiImpl::kMpiF, 4));
  const NasResult a = run_ft(am, 16, 2);
  const NasResult b = run_ft(f, 16, 2);
  EXPECT_TRUE(a.finished);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_GT(a.time_s, 0.0);
}

TEST(NasKernels, MgChecksumIdenticalAcrossImplementations) {
  mpi::MpiWorld am(mpi_config(mpi::MpiImpl::kAmOptimized, 4));
  mpi::MpiWorld f(mpi_config(mpi::MpiImpl::kMpiF, 4));
  const NasResult a = run_mg(am, 16, 2);
  const NasResult b = run_mg(f, 16, 2);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(NasKernels, LuChecksumIdenticalAcrossImplementations) {
  mpi::MpiWorld am(mpi_config(mpi::MpiImpl::kAmOptimized, 4));
  mpi::MpiWorld f(mpi_config(mpi::MpiImpl::kMpiF, 4));
  const NasResult a = run_lu(am, 64, 2);
  const NasResult b = run_lu(f, 64, 2);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(NasKernels, BtAndSpChecksumsIdenticalAcrossImplementations) {
  mpi::MpiWorld am1(mpi_config(mpi::MpiImpl::kAmOptimized, 4));
  mpi::MpiWorld f1(mpi_config(mpi::MpiImpl::kMpiF, 4));
  const NasResult a = run_bt(am1, 16, 2);
  const NasResult b = run_bt(f1, 16, 2);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);

  mpi::MpiWorld am2(mpi_config(mpi::MpiImpl::kAmOptimized, 4));
  mpi::MpiWorld f2(mpi_config(mpi::MpiImpl::kMpiF, 4));
  const NasResult c = run_sp(am2, 16, 2);
  const NasResult d = run_sp(f2, 16, 2);
  EXPECT_DOUBLE_EQ(c.checksum, d.checksum);
}

TEST(NasKernels, UnoptimizedAmIsNotFasterThanOptimized) {
  mpi::MpiWorld opt(mpi_config(mpi::MpiImpl::kAmOptimized, 4));
  mpi::MpiWorld unopt(mpi_config(mpi::MpiImpl::kAmUnoptimized, 4));
  const NasResult a = run_mg(opt, 16, 2);
  const NasResult b = run_mg(unopt, 16, 2);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_LE(a.time_s, b.time_s * 1.02);
}

}  // namespace
}  // namespace spam::apps
