// Edge cases and invariants for the hardware models: payload bounds,
// loopback, multi-node fan-in contention, pipeline conservation laws,
// wide-node parameterization.
#include <gtest/gtest.h>

#include <vector>

#include "sphw/machine.hpp"

namespace spam::sphw {
namespace {

Packet mk(int dst, std::uint32_t payload, std::uint32_t seq = 0) {
  Packet p;
  p.dst = static_cast<std::int16_t>(dst);
  p.seq = seq;
  p.payload_bytes = payload;
  p.payload.assign(payload, std::byte{0x61});
  return p;
}

TEST(SphwEdge, MaxPayloadPacketRoundTrips) {
  sim::World w(2);
  SpMachine m(w, SpParams::thin_node());
  w.spawn(0, [&](sim::NodeCtx& ctx) {
    m.adapter(0).host_enqueue(ctx, mk(1, 224));
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    ctx.poll_until([&] { return m.adapter(1).host_rx_ready(); },
                   sim::usec(0.5));
    const Packet p = m.adapter(1).host_rx_take(ctx);
    EXPECT_EQ(p.payload_bytes, 224u);
    EXPECT_EQ(p.wire_bytes(m.params()), 256u);
  });
  w.run();
}

TEST(SphwEdge, ZeroPayloadControlPacket) {
  sim::World w(2);
  SpMachine m(w, SpParams::thin_node());
  sim::Time arrival = 0;
  w.spawn(0, [&](sim::NodeCtx& ctx) {
    m.adapter(0).host_enqueue(ctx, mk(1, 0));
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    ctx.poll_until([&] { return m.adapter(1).host_rx_ready(); },
                   sim::usec(0.5));
    arrival = ctx.now();
    m.adapter(1).host_rx_take(ctx);
  });
  w.run();
  // Header-only packets are the fastest thing on the wire.
  EXPECT_LT(arrival, sim::usec(25));
}

TEST(SphwEdge, LoopbackToSelfWorks) {
  sim::World w(2);
  SpMachine m(w, SpParams::thin_node());
  w.spawn(0, [&](sim::NodeCtx& ctx) {
    m.adapter(0).host_enqueue(ctx, mk(0, 64, 9));
    ctx.poll_until([&] { return m.adapter(0).host_rx_ready(); },
                   sim::usec(0.5));
    EXPECT_EQ(m.adapter(0).host_rx_take(ctx).seq, 9u);
  });
  w.spawn(1, [&](sim::NodeCtx&) {});
  w.run();
}

TEST(SphwEdge, FanInSerializesAtReceiver) {
  // 4 senders blast one receiver: aggregate goodput cannot exceed one
  // receive pipeline (~link rate), and nothing is lost while the receiver
  // keeps draining.
  const int senders = 4, per_sender = 200;
  sim::World w(senders + 1);
  SpMachine m(w, SpParams::thin_node());
  int got = 0;
  sim::Time t_last = 0;
  for (int s = 0; s < senders; ++s) {
    w.spawn(s + 1, [&, s](sim::NodeCtx& ctx) {
      for (int i = 0; i < per_sender; ++i) {
        ctx.poll_until([&] { return m.adapter(s + 1).host_send_space(); },
                       sim::usec(0.5));
        m.adapter(s + 1).host_enqueue(ctx, mk(0, 224));
      }
    });
  }
  w.spawn(0, [&](sim::NodeCtx& ctx) {
    while (got < senders * per_sender) {
      ctx.poll_until([&] { return m.adapter(0).host_rx_ready(); },
                     sim::usec(0.2));
      m.adapter(0).host_rx_take(ctx);
      ++got;
    }
    t_last = ctx.now();
  });
  w.run();
  EXPECT_EQ(got, senders * per_sender);
  const double mbps =
      224.0 * senders * per_sender / sim::to_sec(t_last) / 1e6;
  EXPECT_LT(mbps, 40.0) << "cannot beat one rx pipeline";
  EXPECT_GT(mbps, 25.0) << "fan-in should still saturate the receiver";
}

TEST(SphwEdge, ConservationDeliveredPlusDroppedEqualsSent) {
  sim::World w(3, 5);
  SpMachine m(w, SpParams::thin_node());
  sim::Rng rng(17);
  m.fabric().set_drop_fn([&](const Packet&) { return rng.chance(0.2); });
  const int n = 300;
  for (int s = 0; s < 2; ++s) {
    w.spawn(s, [&, s](sim::NodeCtx& ctx) {
      for (int i = 0; i < n; ++i) {
        ctx.poll_until([&] { return m.adapter(s).host_send_space(); },
                       sim::usec(0.5));
        m.adapter(s).host_enqueue(ctx, mk(2, 32));
      }
    });
  }
  w.spawn(2, [&](sim::NodeCtx& ctx) { ctx.elapse(sim::usec(100000)); });
  w.run();
  const auto& sw = m.fabric().stats();
  const std::uint64_t sent =
      m.adapter(0).stats().tx_packets + m.adapter(1).stats().tx_packets;
  EXPECT_EQ(sw.delivered + sw.dropped_injected, sent);
  const auto& rx = m.adapter(2).stats();
  EXPECT_EQ(rx.rx_packets + rx.rx_dropped_fifo_full, sw.delivered);
}

TEST(SphwEdge, WideNodeHostCostsAreCheaper) {
  auto enqueue_cost = [](SpParams p) {
    sim::World w(2);
    SpMachine m(w, p);
    sim::Time cost = 0;
    w.spawn(0, [&](sim::NodeCtx& ctx) {
      const sim::Time t0 = ctx.now();
      m.adapter(0).host_enqueue(ctx, mk(1, 224));
      cost = ctx.now() - t0;
    });
    w.spawn(1, [&](sim::NodeCtx& ctx) {
      ctx.poll_until([&] { return m.adapter(1).host_rx_ready(); },
                     sim::usec(0.5));
    });
    w.run();
    return cost;
  };
  EXPECT_LT(enqueue_cost(SpParams::wide_node()),
            enqueue_cost(SpParams::thin_node()));
}

TEST(SphwEdge, DoorbellCountTracksBatches) {
  sim::World w(2);
  SpMachine m(w, SpParams::thin_node());
  w.spawn(0, [&](sim::NodeCtx& ctx) {
    for (int i = 0; i < 6; ++i) {
      m.adapter(0).host_enqueue(ctx, mk(1, 32), /*ring_doorbell=*/false);
    }
    m.adapter(0).host_doorbell(ctx, 3);
    m.adapter(0).host_doorbell(ctx, 3);
  });
  w.spawn(1, [&](sim::NodeCtx& ctx) {
    ctx.poll_until([&] { return m.adapter(1).host_rx_pending() == 6; },
                   sim::usec(0.5));
    while (m.adapter(1).host_rx_ready()) m.adapter(1).host_rx_take(ctx);
  });
  w.run();
  EXPECT_EQ(m.adapter(0).stats().doorbells, 2u);
}

}  // namespace
}  // namespace spam::sphw
