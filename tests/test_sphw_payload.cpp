// Tests for the payload arena: ref-counted sharing, slicing, and
// free-list reuse (the zero-copy / zero-steady-state-allocation story).
#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "sphw/payload.hpp"

namespace spam::sphw {
namespace {

TEST(Payload, EmptyRef) {
  PayloadRef r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
}

TEST(Payload, CopyFromHoldsBytes) {
  const char msg[] = "hello, tb2";
  PayloadRef r = PayloadPool::instance().copy_from(msg, sizeof msg);
  ASSERT_EQ(r.size(), sizeof msg);
  EXPECT_EQ(std::memcmp(r.data(), msg, sizeof msg), 0);
}

TEST(Payload, CopySharesBuffer) {
  PayloadRef a = PayloadPool::instance().copy_from("abcd", 4);
  PayloadRef b = a;
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(b.size(), 4u);
  a.reset();
  // b keeps the buffer alive.
  EXPECT_EQ(std::memcmp(b.data(), "abcd", 4), 0);
}

TEST(Payload, SliceSharesWithoutCopy) {
  const char msg[] = "0123456789";
  PayloadRef whole = PayloadPool::instance().copy_from(msg, 10);
  PayloadRef mid = whole.slice(3, 4);
  ASSERT_EQ(mid.size(), 4u);
  EXPECT_EQ(mid.data(), whole.data() + 3);
  EXPECT_EQ(mid[0], std::byte{'3'});
  whole.reset();
  // The slice still pins the underlying buffer.
  EXPECT_EQ(std::memcmp(mid.data(), "3456", 4), 0);
}

TEST(Payload, AssignFill) {
  PayloadRef r;
  r.assign(64, std::byte{0xab});
  ASSERT_EQ(r.size(), 64u);
  EXPECT_EQ(r[0], std::byte{0xab});
  EXPECT_EQ(r[63], std::byte{0xab});
}

TEST(Payload, ReleaseReturnsBufferToFreeList) {
  PayloadPool& pool = PayloadPool::instance();
  const auto before = pool.stats();
  {
    PayloadRef r = pool.allocate(128);
    (void)r;
  }
  const auto after = pool.stats();
  EXPECT_EQ(after.buffers_free, before.buffers_free + 1);
}

TEST(Payload, SteadyStateReusesBuffers) {
  PayloadPool& pool = PayloadPool::instance();
  // Warm the 1 KiB class.
  { PayloadRef r = pool.allocate(1024); }
  const auto warm = pool.stats();
  for (int i = 0; i < 100; ++i) {
    PayloadRef r = pool.allocate(1024);
    PayloadRef copy = r;
    PayloadRef part = r.slice(16, 64);
  }
  const auto after = pool.stats();
  // Same-class allocations are all served from the free list.
  EXPECT_EQ(after.buffers_allocated, warm.buffers_allocated);
  EXPECT_EQ(after.buffers_reused, warm.buffers_reused + 100);
}

TEST(Payload, RefcountSurvivesVectorChurn) {
  // The retransmit path keeps packet copies in vectors that reallocate.
  PayloadRef src = PayloadPool::instance().copy_from("wxyz", 4);
  std::vector<PayloadRef> saved;
  for (int i = 0; i < 50; ++i) saved.push_back(src.slice(0, 4));
  src.reset();
  for (const PayloadRef& r : saved) {
    EXPECT_EQ(std::memcmp(r.data(), "wxyz", 4), 0);
  }
}

TEST(Payload, MutableDataOnSoleOwner) {
  PayloadRef r = PayloadPool::instance().allocate(8);
  std::memset(r.mutable_data(), 0x5a, 8);
  EXPECT_EQ(r[7], std::byte{0x5a});
}

TEST(Payload, MoveLeavesSourceEmpty) {
  PayloadRef a = PayloadPool::instance().copy_from("pq", 2);
  PayloadRef b = std::move(a);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.size(), 2u);
}

}  // namespace
}  // namespace spam::sphw
