// SP AM basics: request/reply semantics, argument marshalling, latency
// calibration bands, window behaviour for small messages.
#include <gtest/gtest.h>

#include <vector>

#include "am/net.hpp"

namespace spam::am {
namespace {

struct Fixture {
  sim::World world;
  sphw::SpMachine machine;
  AmNet net;
  explicit Fixture(int nodes, sphw::SpParams hw = sphw::SpParams::thin_node(),
                   AmParams am = {})
      : world(nodes), machine(world, hw), net(machine, am) {}
};

TEST(AmBasic, RequestDeliversArgs) {
  Fixture f(2);
  std::vector<Word> got;
  int from = -1;

  const int h = f.net.ep(1).register_handler(
      [&](Endpoint&, Token t, const Word* a, int n) {
        from = t.src;
        got.assign(a, a + n);
      });

  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).request_4(1, h, 11, 22, 33, 44);
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until([&] { return !got.empty(); });
  });
  f.world.run();

  EXPECT_EQ(from, 0);
  EXPECT_EQ(got, (std::vector<Word>{11, 22, 33, 44}));
}

TEST(AmBasic, PingPongRoundTripLatencyMatchesPaper) {
  // Paper section 2.3: one-word round-trip of 51.0 us on thin nodes.
  Fixture f(2);
  Endpoint& e0 = f.net.ep(0);
  Endpoint& e1 = f.net.ep(1);

  bool pong = false;
  const int h_pong = e0.register_handler(
      [&](Endpoint&, Token, const Word*, int) { pong = true; });
  const int h_ping = e1.register_handler(
      [&](Endpoint& ep, Token t, const Word* a, int) {
        ep.reply_1(t, h_pong, a[0]);
      });

  sim::Time rtt = 0;
  f.world.spawn(0, [&](sim::NodeCtx& ctx) {
    // Warm-up round, then measure.
    pong = false;
    e0.request_1(1, h_ping, 1);
    e0.poll_until([&] { return pong; });
    const sim::Time t0 = ctx.now();
    pong = false;
    e0.request_1(1, h_ping, 2);
    e0.poll_until([&] { return pong; });
    rtt = ctx.now() - t0;
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    e1.poll_until([&] { return e1.stats().replies_sent >= 2; });
  });
  f.world.run();

  EXPECT_GT(sim::to_usec(rtt), 40.0);
  EXPECT_LT(sim::to_usec(rtt), 62.0);
}

TEST(AmBasic, ManyRequestsAllDelivered) {
  Fixture f(2);
  int count = 0;
  Word sum = 0;
  const int h = f.net.ep(1).register_handler(
      [&](Endpoint&, Token, const Word* a, int) {
        ++count;
        sum += a[0];
      });
  const int n = 500;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    for (Word i = 1; i <= n; ++i) f.net.ep(0).request_1(1, h, i);
    // Drain until the peer acknowledged everything we sent.
    f.net.ep(0).poll_until([&] { return count == n; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until([&] { return count == n; });
  });
  f.world.run();
  EXPECT_EQ(count, n);
  EXPECT_EQ(sum, static_cast<Word>(n) * (n + 1) / 2);
}

TEST(AmBasic, RepliesFlowOnSeparateChannel) {
  // Saturate the request window from 0->1 while 1 replies to each; replies
  // must never be blocked behind requests (separate window), so the whole
  // exchange completes.
  Fixture f(2);
  int acks = 0;
  const int h_ack = f.net.ep(0).register_handler(
      [&](Endpoint&, Token, const Word*, int) { ++acks; });
  const int h_req = f.net.ep(1).register_handler(
      [&](Endpoint& ep, Token t, const Word* a, int) {
        ep.reply_1(t, h_ack, a[0]);
      });
  const int n = 300;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    for (Word i = 0; i < n; ++i) f.net.ep(0).request_1(1, h_req, i);
    f.net.ep(0).poll_until([&] { return acks == n; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until([&] { return f.net.ep(1).stats().replies_sent == n; });
  });
  f.world.run();
  EXPECT_EQ(acks, n);
}

TEST(AmBasic, RequestCostMatchesTable2) {
  // Paper Table 2: am_request_1 = 7.7 us (with an empty-network poll),
  // am_reply_1 = 4.0 us.  Allow a modest band around each.
  Fixture f(2);
  sim::Time req_cost = 0;
  const int h = f.net.ep(1).register_handler(
      [](Endpoint&, Token, const Word*, int) {});
  f.world.spawn(0, [&](sim::NodeCtx& ctx) {
    const sim::Time t0 = ctx.now();
    f.net.ep(0).request_1(1, h, 5);
    req_cost = ctx.now() - t0;
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until(
        [&] { return f.net.ep(1).stats().msgs_delivered >= 1; });
  });
  f.world.run();
  EXPECT_GT(sim::to_usec(req_cost), 6.5);
  EXPECT_LT(sim::to_usec(req_cost), 9.0);
}

TEST(AmBasic, PerWordCostIsSmall) {
  // Paper: round-trip grows ~0.2 us per extra 32-bit word.
  auto measure = [](int nwords) {
    Fixture f(2);
    Endpoint& e0 = f.net.ep(0);
    Endpoint& e1 = f.net.ep(1);
    bool pong = false;
    const int h_pong = e0.register_handler(
        [&](Endpoint&, Token, const Word*, int) { pong = true; });
    const int h_ping = e1.register_handler(
        [&, h_pong](Endpoint& ep, Token t, const Word* a, int n) {
          if (n == 1) ep.reply_1(t, h_pong, a[0]);
          else if (n == 2) ep.reply_2(t, h_pong, a[0], a[1]);
          else if (n == 3) ep.reply_3(t, h_pong, a[0], a[1], a[2]);
          else ep.reply_4(t, h_pong, a[0], a[1], a[2], a[3]);
        });
    sim::Time rtt = 0;
    f.world.spawn(0, [&](sim::NodeCtx& ctx) {
      const sim::Time t0 = ctx.now();
      if (nwords == 1) e0.request_1(1, h_ping, 1);
      else if (nwords == 2) e0.request_2(1, h_ping, 1, 2);
      else if (nwords == 3) e0.request_3(1, h_ping, 1, 2, 3);
      else e0.request_4(1, h_ping, 1, 2, 3, 4);
      e0.poll_until([&] { return pong; });
      rtt = ctx.now() - t0;
    });
    f.world.spawn(1, [&](sim::NodeCtx&) {
      e1.poll_until([&] { return e1.stats().replies_sent >= 1; });
    });
    f.world.run();
    return sim::to_usec(rtt);
  };
  const double r1 = measure(1);
  const double r4 = measure(4);
  EXPECT_GT(r4, r1);
  EXPECT_LT(r4 - r1, 3.0) << "adding three words must cost ~1 us round-trip";
}

TEST(AmBasic, BidirectionalTrafficCompletes) {
  Fixture f(2);
  int got[2] = {0, 0};
  int h[2];
  h[0] = f.net.ep(0).register_handler(
      [&](Endpoint&, Token, const Word*, int) { ++got[0]; });
  h[1] = f.net.ep(1).register_handler(
      [&](Endpoint&, Token, const Word*, int) { ++got[1]; });
  const int n = 200;
  for (int r = 0; r < 2; ++r) {
    f.world.spawn(r, [&, r](sim::NodeCtx&) {
      Endpoint& ep = f.net.ep(r);
      for (Word i = 0; i < n; ++i) ep.request_1(1 - r, h[1 - r], i);
      ep.poll_until([&] { return got[0] == n && got[1] == n; });
    });
  }
  f.world.run();
  EXPECT_EQ(got[0], n);
  EXPECT_EQ(got[1], n);
}

}  // namespace
}  // namespace spam::am
