// Null-safe byte comparison for tests that parameterize over message
// length including 0: memcmp's pointer arguments are declared nonnull,
// so passing an empty vector's data() (which may be nullptr) is UB even
// with a zero count.  UBSan (-fsanitize=undefined) flags exactly that.
#pragma once

#include <cstddef>
#include <cstring>

namespace spam::test {

inline bool bytes_equal(const void* a, const void* b, std::size_t n) {
  if (n == 0) return true;
  return std::memcmp(a, b, n) == 0;
}

}  // namespace spam::test
