// Tests for the World / NodeCtx layer: virtual time charging, suspension,
// deadlock detection, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/world.hpp"

namespace spam::sim {
namespace {

TEST(World, ElapseAdvancesVirtualTime) {
  World w(1);
  Time end = 0;
  w.spawn(0, [&](NodeCtx& ctx) {
    EXPECT_EQ(ctx.now(), 0u);
    ctx.elapse(100);
    EXPECT_EQ(ctx.now(), 100u);
    ctx.elapse_us(2.5);
    end = ctx.now();
  });
  w.run();
  EXPECT_EQ(end, 100u + usec(2.5));
}

TEST(World, NodesRunConcurrentlyInVirtualTime) {
  World w(2);
  std::vector<std::pair<int, Time>> log;
  w.spawn(0, [&](NodeCtx& ctx) {
    ctx.elapse(10);
    log.emplace_back(0, ctx.now());
    ctx.elapse(20);
    log.emplace_back(0, ctx.now());
  });
  w.spawn(1, [&](NodeCtx& ctx) {
    ctx.elapse(15);
    log.emplace_back(1, ctx.now());
    ctx.elapse(30);
    log.emplace_back(1, ctx.now());
  });
  w.run();
  ASSERT_EQ(log.size(), 4u);
  // Interleaving strictly by virtual time: 10(n0), 15(n1), 30(n0), 45(n1).
  EXPECT_EQ(log[0], (std::pair<int, Time>{0, 10}));
  EXPECT_EQ(log[1], (std::pair<int, Time>{1, 15}));
  EXPECT_EQ(log[2], (std::pair<int, Time>{0, 30}));
  EXPECT_EQ(log[3], (std::pair<int, Time>{1, 45}));
}

TEST(World, SuspendResumeAcrossNodes) {
  World w(2);
  int delivered = -1;
  std::function<void()> wake;
  w.spawn(0, [&](NodeCtx& ctx) {
    wake = ctx.make_resumer();
    ctx.suspend();
    delivered = static_cast<int>(ctx.now());
  });
  w.spawn(1, [&](NodeCtx& ctx) {
    ctx.elapse(500);
    wake();
  });
  w.run();
  EXPECT_EQ(delivered, 500);
}

TEST(World, ResumerBeforeSuspendIsNotLost) {
  World w(1);
  bool done = false;
  w.spawn(0, [&](NodeCtx& ctx) {
    auto wake = ctx.make_resumer();
    wake();  // fires while we are still running
    ctx.suspend();  // must consume the pending wake, not sleep forever
    done = true;
  });
  w.run();
  EXPECT_TRUE(done);
}

TEST(World, PollUntilChargesPollCost) {
  World w(2);
  bool flag = false;
  Time woke = 0;
  w.spawn(0, [&](NodeCtx& ctx) {
    ctx.poll_until([&] { return flag; }, 7);
    woke = ctx.now();
  });
  w.spawn(1, [&](NodeCtx& ctx) {
    ctx.elapse(100);
    flag = true;
  });
  w.run();
  EXPECT_GE(woke, 100u);
  EXPECT_EQ(woke % 7, 0u) << "wake time must be a multiple of the poll cost";
}

TEST(World, DeadlockDetectionThrows) {
  World w(1);
  w.spawn(0, [&](NodeCtx& ctx) {
    ctx.suspend();  // nobody will ever wake us
  });
  EXPECT_THROW(w.run(), std::runtime_error);
}

TEST(World, RunUntilReportsUnfinished) {
  World w(1);
  w.spawn(0, [&](NodeCtx& ctx) { ctx.elapse(1000); });
  EXPECT_FALSE(w.run_until(10));
}

// --- Node-local virtual clocks: the charge-debt ledger -----------------------

TEST(LocalClock, ChargeDefersUntilSettle) {
  World w(1);
  w.spawn(0, [&](NodeCtx& ctx) {
    ctx.charge(100);
    ctx.charge(25);
    EXPECT_EQ(ctx.debt(), 125u);
    EXPECT_EQ(ctx.engine().now(), 0u) << "charge must not touch the engine";
    EXPECT_EQ(ctx.now(), 125u) << "now() is debt-inclusive";
    ctx.settle();
    EXPECT_EQ(ctx.debt(), 0u);
    EXPECT_EQ(ctx.engine().now(), 125u);
    EXPECT_EQ(ctx.now(), 125u);
  });
  w.run();
}

TEST(LocalClock, ElapseFoldsOutstandingDebt) {
  World w(1);
  w.spawn(0, [&](NodeCtx& ctx) {
    ctx.charge(30);
    ctx.charge(12);
    ctx.elapse(8);  // one engine sleep covering 30+12+8
    EXPECT_EQ(ctx.debt(), 0u);
    EXPECT_EQ(ctx.engine().now(), 50u);
    EXPECT_EQ(ctx.now(), 50u);
  });
  w.run();
}

TEST(LocalClock, KnobOffChargesImmediately) {
  World w(1);
  w.engine().set_localclock(false);
  w.spawn(0, [&](NodeCtx& ctx) {
    ctx.charge(100);
    EXPECT_EQ(ctx.debt(), 0u);
    EXPECT_EQ(ctx.engine().now(), 100u);
  });
  w.run();
}

TEST(LocalClock, SuspendSettlesBeforeSleeping) {
  World w(2);
  Time woke = 0;
  std::function<void()> wake;
  w.spawn(0, [&](NodeCtx& ctx) {
    wake = ctx.make_resumer();
    ctx.charge(50);
    ctx.suspend();  // must pay the 50 first, then sleep
    woke = ctx.now();
  });
  w.spawn(1, [&](NodeCtx& ctx) {
    ctx.elapse(500);
    wake();
  });
  w.run();
  // Had suspend slept with the debt outstanding, the wake would land at
  // 500 and the stale 50 would fold in afterwards (550).
  EXPECT_EQ(woke, 500u);
}

TEST(LocalClock, CrossNodeObservationSettlesObserver) {
  World w(2);
  w.spawn(0, [&](NodeCtx& ctx) {
    ctx.charge(40);
    const Time peer_now = ctx.world().node(1).now();
    EXPECT_EQ(ctx.debt(), 0u) << "observation is an interaction point";
    EXPECT_EQ(ctx.engine().now(), 40u);
    EXPECT_EQ(peer_now, 40u);
  });
  w.spawn(1, [](NodeCtx&) {});
  w.run();
}

TEST(LocalClock, PollUntilSettlesThenPolls) {
  World w(1);
  Time woke = 0;
  w.spawn(0, [&](NodeCtx& ctx) {
    ctx.charge(5);
    int polls = 0;
    ctx.poll_until([&] { return ++polls > 3; }, 7);
    woke = ctx.now();
  });
  w.run();
  // One debt settlement (5) then three poll quanta (7 each).
  EXPECT_EQ(woke, 5u + 3u * 7u);
}

TEST(LocalClock, EventLedgerMatchesPerChargeMode) {
  auto run = [](bool local_clock) {
    World w(2);
    w.engine().set_localclock(local_clock);
    for (int r = 0; r < 2; ++r) {
      w.spawn(r, [](NodeCtx& ctx) {
        for (int i = 0; i < 20; ++i) {
          ctx.charge(3);
          ctx.charge(4);
          if (i % 3 == 0) ctx.elapse(10);
          if (i % 7 == 0) ctx.settle();
        }
      });
    }
    w.run();
    return w.engine().events_simulated();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(World, DeterministicAcrossRuns) {
  auto run_once = [] {
    World w(4, /*seed=*/99);
    std::vector<std::uint64_t> trail;
    for (int r = 0; r < 4; ++r) {
      w.spawn(r, [&trail](NodeCtx& ctx) {
        for (int i = 0; i < 10; ++i) {
          ctx.elapse(1 + ctx.rng().next_below(50));
          trail.push_back(ctx.now() * 4 + static_cast<unsigned>(ctx.rank()));
        }
      });
    }
    w.run();
    return trail;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace spam::sim
