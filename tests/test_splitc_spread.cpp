// Tests for the Split-C spread-array helper and for the strided MPI
// transfers that MPICH's generic layers provide.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpif/mpi_world.hpp"
#include "splitc/splitc_world.hpp"
#include "splitc/spread.hpp"

namespace spam {
namespace {

TEST(Spread, GlobalIndexingAndOwnership) {
  splitc::SplitCConfig cfg;
  cfg.nodes = 4;
  splitc::SplitCWorld w(cfg);
  w.run([&](splitc::Runtime& rt) {
    splitc::Spread<std::uint64_t> a(rt, /*key=*/10, /*total=*/103);
    EXPECT_EQ(a.block(), 26u);
    EXPECT_EQ(a.owner(0), 0);
    EXPECT_EQ(a.owner(25), 0);
    EXPECT_EQ(a.owner(26), 1);
    EXPECT_EQ(a.owner(102), 3);
    // Last processor owns the short tail.
    if (rt.my_proc() == 3) {
      EXPECT_EQ(a.local_size(), 103u - 3 * 26u);
    }
    rt.barrier();
  });
}

TEST(Spread, EveryoneWritesOwnSliceEveryoneReadsAll) {
  splitc::SplitCConfig cfg;
  cfg.nodes = 4;
  splitc::SplitCWorld w(cfg);
  w.run([&](splitc::Runtime& rt) {
    splitc::Spread<std::uint64_t> a(rt, 11, 64);
    for (std::size_t i = 0; i < a.local_size(); ++i) {
      a.local()[i] = (a.local_begin() + i) * 3;
    }
    rt.barrier();
    for (std::size_t i = 0; i < a.size(); i += 7) {
      EXPECT_EQ(a.read(i), i * 3);
    }
    rt.barrier();
  });
}

TEST(Spread, SplitPhasePutsLandAfterSync) {
  splitc::SplitCConfig cfg;
  cfg.nodes = 4;
  splitc::SplitCWorld w(cfg);
  w.run([&](splitc::Runtime& rt) {
    splitc::Spread<std::uint64_t> a(rt, 12, 40);
    // Processor p writes elements p, p+4, p+8, ... (scattered ownership).
    for (std::size_t i = static_cast<std::size_t>(rt.my_proc()); i < a.size();
         i += static_cast<std::size_t>(rt.procs())) {
      a.put(i, i + 1000);
    }
    rt.sync();
    rt.barrier();
    for (std::size_t i = 0; i < a.local_size(); ++i) {
      EXPECT_EQ(a.local()[i], a.local_begin() + i + 1000);
    }
    rt.barrier();
  });
}

TEST(Spread, BulkTransfersSpanOwnerBoundaries) {
  splitc::SplitCConfig cfg;
  cfg.nodes = 4;
  splitc::SplitCWorld w(cfg);
  w.run([&](splitc::Runtime& rt) {
    splitc::Spread<std::uint32_t> a(rt, 13, 80);  // block = 20
    if (rt.my_proc() == 0) {
      std::vector<std::uint32_t> v(50);
      std::iota(v.begin(), v.end(), 100u);
      a.bulk_write(10, v.data(), v.size());  // spans procs 0,1,2
      rt.sync();
      std::vector<std::uint32_t> back(50, 0);
      a.bulk_read(back.data(), 10, back.size());
      rt.sync();
      EXPECT_EQ(back, v);
    }
    rt.barrier();
  });
}

TEST(MpiStrided, RoundTripsAMatrixColumn) {
  mpi::MpiWorldConfig cfg;
  cfg.nodes = 2;
  mpi::MpiWorld w(cfg);
  constexpr int kRows = 32, kCols = 16;
  static std::vector<double> m, col;
  m.assign(kRows * kCols, 0.0);
  col.assign(kRows, 0.0);
  for (int r = 0; r < kRows; ++r) {
    for (int c = 0; c < kCols; ++c) m[r * kCols + c] = r * 100.0 + c;
  }
  w.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      // Send column 5: kRows blocks of 8 bytes, stride = row size.
      mpi.send_strided(&m[5], kRows, sizeof(double), kCols * sizeof(double),
                       1, 2);
    } else {
      mpi.recv(col.data(), kRows * sizeof(double), 0, 2);
    }
  });
  for (int r = 0; r < kRows; ++r) EXPECT_EQ(col[r], r * 100.0 + 5);
}

TEST(MpiStrided, ScattersIntoStridedDestination) {
  mpi::MpiWorldConfig cfg;
  cfg.nodes = 2;
  mpi::MpiWorld w(cfg);
  constexpr int kN = 20;
  static std::vector<std::int32_t> dst;
  dst.assign(kN * 3, -1);  // stride 3 ints, block 1 int
  w.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      std::vector<std::int32_t> v(kN);
      std::iota(v.begin(), v.end(), 0);
      mpi.send(v.data(), v.size() * 4, 1, 9);
    } else {
      mpi.recv_strided(dst.data(), kN, 4, 12, 0, 9);
    }
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(dst[i * 3], i);
    EXPECT_EQ(dst[i * 3 + 1], -1);
  }
}

}  // namespace
}  // namespace spam
