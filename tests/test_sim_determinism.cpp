// Determinism regression for the event core.
//
// The pooled 4-ary heap, InlineAction storage and payload arena are all
// host-side optimizations: they must not change the virtual execution in
// any observable way.  This runs an AM bulk exchange workload three ways —
// twice via run() and once stepped through run_until() in small slices —
// and requires identical event counts, final virtual times, and traces.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "am/net.hpp"
#include "sim/trace.hpp"

namespace spam::am {
namespace {

struct RunResult {
  std::uint64_t events = 0;
  sim::Time final_time = 0;
  std::string trace;
  std::vector<std::byte> received;
};

/// Two nodes exchange bulk data both ways (async stores) while node 0 also
/// fires a few small requests, exercising both channels, chunking, acks,
/// and same-timestamp event ordering.
RunResult run_workload(bool stepped) {
  constexpr std::size_t kLen = 48 * 1024;

  sim::World world(2);
  sphw::SpMachine machine(world, sphw::SpParams::thin_node());
  AmNet net(machine, AmParams{});

  RunResult out;
  out.received.assign(kLen, std::byte{0});
  std::vector<std::byte> src(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    src[i] = static_cast<std::byte>(i * 7 + 3);
  }
  std::vector<std::byte> back(kLen, std::byte{0});

  int pongs = 0;
  const int h_pong = net.ep(0).register_handler(
      [&pongs](Endpoint&, Token, const Word*, int) { ++pongs; });
  const int h_ping = net.ep(1).register_handler(
      [h_pong](Endpoint& ep, Token t, const Word* args, int) {
        ep.reply_1(t, h_pong, args[0]);
      });
  bool got_back = false;
  const int h_back = net.ep(0).register_bulk_handler(
      [&got_back](Endpoint&, Token, void*, std::size_t, Word) {
        got_back = true;
      });
  bool got_stream = false;
  const int h_stream = net.ep(1).register_bulk_handler(
      [&got_stream](Endpoint&, Token, void*, std::size_t, Word) {
        got_stream = true;
      });

  world.spawn(0, [&](sim::NodeCtx&) {
    Endpoint& ep = net.ep(0);
    bool stored = false;
    ep.store_async(1, out.received.data(), src.data(), kLen, h_stream, 0,
                   [&stored] { stored = true; });
    for (Word i = 0; i < 4; ++i) ep.request_1(1, h_ping, i);
    ep.poll_until([&] { return stored && pongs == 4 && got_back; });
  });
  world.spawn(1, [&](sim::NodeCtx&) {
    Endpoint& ep = net.ep(1);
    ep.store(0, back.data(), src.data(), kLen / 2, h_back);
    ep.poll_until(
        [&] { return ep.outstanding_bulk_ops() == 0 && got_stream; });
  });

  std::string trace;
  sim::Trace::capture_to(&trace);
  sim::Trace::enable(sim::TraceCat::kAdapter);
  sim::Trace::enable(sim::TraceCat::kFlow);

  if (stepped) {
    // Drive the same schedule through repeated bounded slices; slicing
    // must be invisible to the virtual execution.
    sim::Time deadline = sim::usec(25);
    while (!world.run_until(deadline)) deadline += sim::usec(25);
    world.run();  // drain trailing hardware events, as run() does
  } else {
    world.run();
  }

  sim::Trace::disable_all();
  sim::Trace::capture_to(nullptr);

  // Simulated (per-hop-equivalent) count, not executed: a deadline-crossing
  // elapse cannot be skip-ahead elided under run_until slicing, so raw
  // executed counts legitimately differ between sliced and free runs.  The
  // executed + elided sum is the slicing-invariant measure of work.
  out.events = world.engine().events_simulated();
  out.final_time = world.engine().now();
  out.trace = std::move(trace);
  return out;
}

TEST(Determinism, BulkExchangeIsBitIdenticalAcrossRuns) {
  RunResult a = run_workload(/*stepped=*/false);
  RunResult b = run_workload(/*stepped=*/false);

  EXPECT_GT(a.events, 0u);
  EXPECT_GT(a.final_time, 0u);
  EXPECT_FALSE(a.trace.empty());

  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.received, b.received);
}

TEST(Determinism, SteppedRunMatchesFreeRun) {
  RunResult free_run = run_workload(/*stepped=*/false);
  RunResult stepped = run_workload(/*stepped=*/true);

  EXPECT_EQ(free_run.events, stepped.events);
  EXPECT_EQ(free_run.final_time, stepped.final_time);
  EXPECT_EQ(free_run.trace, stepped.trace);
  EXPECT_EQ(free_run.received, stepped.received);
}

}  // namespace
}  // namespace spam::am
