// Tests for InlineAction: small-buffer storage, move-only semantics,
// captured-state lifetime, and heap-fallback accounting.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

#include "sim/action.hpp"

namespace spam::sim {
namespace {

TEST(InlineAction, EmptyByDefault) {
  InlineAction a;
  EXPECT_FALSE(static_cast<bool>(a));
}

TEST(InlineAction, InvokesStoredCallable) {
  int hits = 0;
  InlineAction a = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(a));
  a();
  a();
  EXPECT_EQ(hits, 2);
}

TEST(InlineAction, MoveTransfersAndEmptiesSource) {
  int hits = 0;
  InlineAction a = [&hits] { ++hits; };
  InlineAction b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineAction c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineAction, MoveOnlyCallablesWork) {
  auto p = std::make_unique<int>(41);
  InlineAction a = [q = std::move(p)]() mutable { ++*q; };
  InlineAction b = std::move(a);
  b();  // must not crash; unique_ptr travelled with the closure
}

TEST(InlineAction, DestroysCapturedState) {
  auto guard = std::make_shared<int>(7);
  std::weak_ptr<int> watch = guard;
  {
    InlineAction a = [g = std::move(guard)] { (void)g; };
    EXPECT_FALSE(watch.expired());
  }
  // Dropping the action must release the capture even without invocation.
  EXPECT_TRUE(watch.expired());
}

TEST(InlineAction, MovedFromReleasesOnlyOnce) {
  auto guard = std::make_shared<int>(7);
  std::weak_ptr<int> watch = guard;
  InlineAction a = [g = std::move(guard)] { (void)g; };
  {
    InlineAction b = std::move(a);
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
  // Destroying the moved-from action must not double-free.
}

TEST(InlineAction, SmallClosuresFitInline) {
  struct Big {
    std::array<std::byte, InlineAction::kInlineBytes> pad;
    void operator()() const {}
  };
  struct TooBig {
    std::array<std::byte, InlineAction::kInlineBytes + 1> pad;
    void operator()() const {}
  };
  static_assert(InlineAction::fits_inline<Big>);
  static_assert(!InlineAction::fits_inline<TooBig>);

  const std::uint64_t before = InlineAction::heap_fallbacks();
  InlineAction a = Big{};
  EXPECT_EQ(InlineAction::heap_fallbacks(), before);
  a();
}

TEST(InlineAction, OversizedClosureFallsBackToHeapAndCounts) {
  struct TooBig {
    std::array<std::byte, InlineAction::kInlineBytes + 1> pad{};
    int* hits = nullptr;
    void operator()() const { ++*hits; }
  };
  int hits = 0;
  const std::uint64_t before = InlineAction::heap_fallbacks();
  TooBig f;
  f.hits = &hits;
  InlineAction a = f;
  EXPECT_EQ(InlineAction::heap_fallbacks(), before + 1);
  InlineAction b = std::move(a);  // heap pointer relocates, no new fallback
  EXPECT_EQ(InlineAction::heap_fallbacks(), before + 1);
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineAction, AcceptsLvalueStdFunction) {
  int hits = 0;
  std::function<void()> fn = [&hits] { ++hits; };
  InlineAction a = fn;  // copies, leaving fn usable
  a();
  fn();
  EXPECT_EQ(hits, 2);
}

}  // namespace
}  // namespace spam::sim
