// SP AM bulk transfers: store / store_async / get correctness, chunking,
// handler invocation, completion semantics, bandwidth calibration.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "am/net.hpp"

#include "bytes_equal.hpp"

namespace spam::am {
namespace {

struct Fixture {
  sim::World world;
  sphw::SpMachine machine;
  AmNet net;
  explicit Fixture(int nodes, sphw::SpParams hw = sphw::SpParams::thin_node(),
                   AmParams am = {})
      : world(nodes), machine(world, hw), net(machine, am) {}
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  sim::Rng rng(seed);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  return v;
}

class AmStoreSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AmStoreSize, StoreDeliversExactBytes) {
  const std::size_t len = GetParam();
  Fixture f(2);
  auto src = pattern(len);
  std::vector<std::byte> dst(len + 64, std::byte{0});  // canary tail

  bool handled = false;
  std::size_t handled_len = 0;
  Word handled_arg = 0;
  const int h = f.net.ep(1).register_bulk_handler(
      [&](Endpoint&, Token t, void* addr, std::size_t l, Word arg) {
        handled = true;
        handled_len = l;
        handled_arg = arg;
        EXPECT_EQ(addr, dst.data());
        EXPECT_EQ(t.src, 0);
      });

  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).store(1, dst.data(), src.data(), len, h, 0xbeef);
    f.net.ep(0).poll_until(
        [&] { return f.net.ep(0).outstanding_bulk_ops() == 0; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until([&] { return handled; });
  });
  f.world.run();

  EXPECT_TRUE(handled);
  EXPECT_EQ(handled_len, len);
  EXPECT_EQ(handled_arg, 0xbeefu);
  EXPECT_TRUE(spam::test::bytes_equal(dst.data(), src.data(), len));
  for (std::size_t i = len; i < dst.size(); ++i) {
    EXPECT_EQ(dst[i], std::byte{0}) << "overwrite beyond destination at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AmStoreSize,
                         ::testing::Values(0, 1, 4, 223, 224, 225, 1000, 8063,
                                           8064, 8065, 16128, 20000, 65536));

class AmGetSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AmGetSize, GetFetchesExactBytes) {
  const std::size_t len = GetParam();
  Fixture f(2);
  auto remote = pattern(len, 9);
  std::vector<std::byte> local(len + 32, std::byte{0});

  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).get_blocking(1, remote.data(), local.data(), len);
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until(
        [&] { return f.net.ep(1).stats().bulk_bytes_sent >= len; });
  });
  f.world.run();

  EXPECT_TRUE(spam::test::bytes_equal(local.data(), remote.data(), len));
  for (std::size_t i = len; i < local.size(); ++i) {
    EXPECT_EQ(local[i], std::byte{0});
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AmGetSize,
                         ::testing::Values(1, 224, 4096, 8064, 30000));

TEST(AmBulk, StoreAsyncCompletionFiresAfterAck) {
  Fixture f(2);
  const std::size_t len = 4096;
  auto src = pattern(len);
  std::vector<std::byte> dst(len);
  bool completed = false;

  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).store_async(1, dst.data(), src.data(), len, 0, 0,
                            [&] { completed = true; });
    EXPECT_FALSE(completed) << "completion must be asynchronous";
    f.net.ep(0).poll_until([&] { return completed; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until([&] { return completed; });
  });
  f.world.run();
  EXPECT_TRUE(completed);
  EXPECT_TRUE(spam::test::bytes_equal(dst.data(), src.data(), len));
}

TEST(AmBulk, ManyAsyncStoresAllLandInOrder) {
  // 40 async stores back-to-back into adjacent slots; content and the
  // in-order arrival of the *final* handler verify pipelined chunking.
  Fixture f(2);
  const std::size_t piece = 2048;
  const int n = 40;
  auto src = pattern(piece * n);
  std::vector<std::byte> dst(piece * n, std::byte{0});
  int handled = 0;
  std::vector<int> order;
  const int h = f.net.ep(1).register_bulk_handler(
      [&](Endpoint&, Token, void*, std::size_t, Word arg) {
        ++handled;
        order.push_back(static_cast<int>(arg));
      });

  int completions = 0;
  f.world.spawn(0, [&](sim::NodeCtx&) {
    for (int i = 0; i < n; ++i) {
      f.net.ep(0).store_async(1, dst.data() + i * piece,
                              src.data() + i * piece, piece, h,
                              static_cast<Word>(i), [&] { ++completions; });
    }
    f.net.ep(0).poll_until([&] { return completions == n; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until([&] { return handled == n; });
  });
  f.world.run();

  EXPECT_TRUE(spam::test::bytes_equal(dst.data(), src.data(), src.size()));
  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(order[i], i) << "ordered delivery";
}

TEST(AmBulk, StoreThenRequestStaysOrdered) {
  // A small request issued after an async store must arrive after the
  // store's data (MPI over AM depends on this).
  Fixture f(2);
  const std::size_t len = 3 * 8064;  // three chunks
  auto src = pattern(len);
  std::vector<std::byte> dst(len);
  bool store_handled = false, req_handled = false;
  bool order_ok = false;
  const int hb = f.net.ep(1).register_bulk_handler(
      [&](Endpoint&, Token, void*, std::size_t, Word) { store_handled = true; });
  const int hr = f.net.ep(1).register_handler(
      [&](Endpoint&, Token, const Word*, int) {
        req_handled = true;
        order_ok = store_handled;
      });

  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).store_async(1, dst.data(), src.data(), len, hb, 0, {});
    f.net.ep(0).request_1(1, hr, 1);
    f.net.ep(0).poll_until(
        [&] { return f.net.ep(0).outstanding_bulk_ops() == 0 && req_handled; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until([&] { return req_handled; });
  });
  f.world.run();
  EXPECT_TRUE(order_ok) << "request overtook bulk data";
  EXPECT_TRUE(spam::test::bytes_equal(dst.data(), src.data(), len));
}

TEST(AmBulk, ChunkCountMatchesProtocol) {
  // 3*8064+1 bytes => 4 chunks (36+36+36+1 packets).
  Fixture f(2);
  const std::size_t len = 3 * 8064 + 1;
  auto src = pattern(len);
  std::vector<std::byte> dst(len);

  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).store(1, dst.data(), src.data(), len);
    f.net.ep(0).poll_until(
        [&] { return f.net.ep(0).outstanding_bulk_ops() == 0; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until([&] {
      return spam::test::bytes_equal(dst.data(), src.data(), len);
    });
  });
  f.world.run();
  EXPECT_EQ(f.net.ep(0).stats().chunks_sent, 4u);
}

TEST(AmBulk, AsyncStoreBandwidthMatchesPaper) {
  // Pipelined 1 MB store should run at the paper's asymptotic 34.3 MB/s
  // (within a band; the limiter is the 40 MB/s link at 224/256 efficiency).
  Fixture f(2);
  const std::size_t len = 1 << 20;
  auto src = pattern(len);
  std::vector<std::byte> dst(len);
  bool done = false;
  sim::Time elapsed = 0;

  f.world.spawn(0, [&](sim::NodeCtx& ctx) {
    const sim::Time t0 = ctx.now();
    f.net.ep(0).store_async(1, dst.data(), src.data(), len, 0, 0,
                            [&] { done = true; });
    f.net.ep(0).poll_until([&] { return done; });
    elapsed = ctx.now() - t0;
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).poll_until([&] { return done; });
  });
  f.world.run();

  const double mbps = static_cast<double>(len) / sim::to_sec(elapsed) / 1e6;
  EXPECT_GT(mbps, 31.0);
  EXPECT_LT(mbps, 36.5);
  EXPECT_TRUE(spam::test::bytes_equal(dst.data(), src.data(), len));
}

TEST(AmBulk, GetIntoOwnBufferWhileServingGets) {
  // Symmetric gets in both directions at once.
  Fixture f(2);
  const std::size_t len = 10000;
  auto a = pattern(len, 3), b = pattern(len, 4);
  std::vector<std::byte> ra(len), rb(len);
  bool d0 = false, d1 = false;

  f.world.spawn(0, [&](sim::NodeCtx&) {
    f.net.ep(0).get(1, b.data(), rb.data(), len, 0, 0, [&] { d0 = true; });
    f.net.ep(0).poll_until([&] { return d0 && d1; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    f.net.ep(1).get(0, a.data(), ra.data(), len, 0, 0, [&] { d1 = true; });
    f.net.ep(1).poll_until([&] { return d0 && d1; });
  });
  f.world.run();
  EXPECT_TRUE(spam::test::bytes_equal(rb.data(), b.data(), len));
  EXPECT_TRUE(spam::test::bytes_equal(ra.data(), a.data(), len));
}

}  // namespace
}  // namespace spam::am
