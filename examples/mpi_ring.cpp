// MPI demo: a classic ring-and-reduce program running unchanged over the
// two MPI implementations the paper compares — MPICH-over-Active-Messages
// and the MPI-F baseline.
//
//   $ ./mpi_ring [nodes]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "mpif/mpi_world.hpp"

namespace {

void ring_program(spam::mpi::Mpi& mpi) {
  const int me = mpi.rank();
  const int p = mpi.size();
  const int right = (me + 1) % p;
  const int left = (me + p - 1) % p;

  // Pass a token around the ring, each rank adding its id.
  int token = 0;
  if (me == 0) {
    token = 1;
    mpi.send(&token, sizeof token, right, 0);
    mpi.recv(&token, sizeof token, left, 0);
    std::printf("[rank 0] token came home: %d (expected %d)\n", token,
                1 + (p - 1) * p / 2);
  } else {
    mpi.recv(&token, sizeof token, left, 0);
    token += me;
    mpi.send(&token, sizeof token, right, 0);
  }

  // A collective: everyone learns the global sum of squares.
  const double mine = static_cast<double>(me) * me;
  double sum = 0;
  mpi.allreduce(&mine, &sum, 1, spam::mpi::Dtype::kDouble,
                spam::mpi::ReduceOp::kSum);
  if (me == 0) std::printf("[rank 0] allreduce sum of squares = %.0f\n", sum);

  // A 256 KB transfer from rank 0 to the last rank (rendez-vous path).
  std::vector<double> block(32768, 1.5);
  if (me == 0) {
    const double t0 = mpi.wtime();
    mpi.send(block.data(), block.size() * sizeof(double), p - 1, 9);
    std::printf("[rank 0] 256 KB send issued at t=%.6f s\n", t0);
  } else if (me == p - 1) {
    std::vector<double> in(block.size());
    const double t0 = mpi.wtime();
    mpi.recv(in.data(), in.size() * sizeof(double), 0, 9);
    const double dt = mpi.wtime() - t0;
    std::printf("[rank %d] 256 KB received in %.1f us -> %.1f MB/s\n", me,
                dt * 1e6, in.size() * sizeof(double) / dt / 1e6);
  }
  mpi.barrier();
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 8;

  for (const auto impl : {spam::mpi::MpiImpl::kAmOptimized,
                          spam::mpi::MpiImpl::kMpiF}) {
    std::printf("==== %s, %d nodes ====\n",
                impl == spam::mpi::MpiImpl::kAmOptimized
                    ? "MPICH over SP Active Messages (optimized)"
                    : "MPI-F baseline",
                nodes);
    spam::mpi::MpiWorldConfig cfg;
    cfg.nodes = nodes;
    cfg.impl = impl;
    spam::mpi::MpiWorld world(cfg);
    world.run(ring_program);
    std::printf("virtual end time: %.3f ms\n\n",
                spam::sim::to_usec(world.world().engine().now()) / 1000.0);
  }
  return 0;
}
