// Fault-injection demo: SP AM's flow control recovering from packet loss.
// Injects a seeded drop rate into the switch fabric and shows go-back-N
// retransmission, NACKs, and the keep-alive probe doing their jobs while a
// bulk transfer completes byte-perfectly.
//
//   $ ./am_fault_injection [drop_percent]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "am/net.hpp"

int main(int argc, char** argv) {
  using namespace spam;

  const double drop = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.05;
  std::printf("injecting %.1f%% uniform packet loss\n", drop * 100.0);

  am::AmParams amp;
  amp.keepalive_poll_threshold = 400;
  sim::World world(2, /*seed=*/2026);
  sphw::SpMachine machine(world, sphw::SpParams::thin_node());
  am::AmNet net(machine, amp);

  sim::Rng drop_rng(12345);
  machine.fabric().set_drop_fn(
      [&](const sphw::Packet&) { return drop_rng.chance(drop); });

  const std::size_t len = 256 * 1024;
  std::vector<std::byte> src(len), dst(len, std::byte{0});
  sim::Rng fill(7);
  for (auto& b : src) b = static_cast<std::byte>(fill.next_u64() & 0xff);

  bool done = false;
  sim::Time elapsed = 0;
  world.spawn(0, [&](sim::NodeCtx& ctx) {
    const sim::Time t0 = ctx.now();
    net.ep(0).store_async(1, dst.data(), src.data(), len, 0, 0,
                          [&] { done = true; });
    net.ep(0).poll_until([&] { return done; });
    elapsed = ctx.now() - t0;
  });
  world.spawn(1, [&](sim::NodeCtx&) {
    net.ep(1).poll_until([&] { return done; });
  });
  world.run();

  const auto& s0 = net.ep(0).stats();
  const auto& s1 = net.ep(1).stats();
  const auto& sw = machine.fabric().stats();
  std::printf("transfer of %zu KB %s in %.2f ms (%.1f MB/s effective)\n",
              len / 1024,
              std::memcmp(src.data(), dst.data(), len) == 0 ? "intact"
                                                            : "CORRUPTED",
              sim::to_usec(elapsed) / 1000.0,
              static_cast<double>(len) / sim::to_sec(elapsed) / 1e6);
  std::printf("switch: %llu delivered, %llu dropped by injection\n",
              static_cast<unsigned long long>(sw.delivered),
              static_cast<unsigned long long>(sw.dropped_injected));
  std::printf("sender: %llu chunks sent, %llu chunks retransmitted, "
              "%llu keep-alive probes\n",
              static_cast<unsigned long long>(s0.chunks_sent),
              static_cast<unsigned long long>(s0.retransmitted_chunks),
              static_cast<unsigned long long>(s0.probes_sent));
  std::printf("receiver: %llu NACKs, %llu acks, %llu duplicates dropped, "
              "%llu out-of-seq dropped\n",
              static_cast<unsigned long long>(s1.nacks_sent),
              static_cast<unsigned long long>(s1.acks_sent),
              static_cast<unsigned long long>(s1.duplicates_dropped),
              static_cast<unsigned long long>(s1.out_of_seq_dropped));
  return 0;
}
