// Quickstart: bring up a simulated 2-node SP, exchange Active Messages,
// and move bulk data — the five-minute tour of the library.
//
//   $ ./quickstart
//
// Walks through: building a World + SpMachine + AmNet, registering
// handlers, am_request/am_reply, am_store, and reading the virtual clock.
#include <cstdio>
#include <cstring>
#include <vector>

#include "am/net.hpp"

int main() {
  using namespace spam;

  // A World holds the virtual clock and one fiber per simulated node; the
  // SpMachine attaches a TB2 adapter per node and the SP switch; AmNet
  // layers one SP Active Messages endpoint on each adapter.
  sim::World world(/*num_nodes=*/2);
  sphw::SpMachine machine(world, sphw::SpParams::thin_node());
  am::AmNet net(machine);

  am::Endpoint& e0 = net.ep(0);
  am::Endpoint& e1 = net.ep(1);

  // Handlers are registered up front (same order on every endpoint).
  bool got_pong = false;
  const int h_pong = e0.register_handler(
      [&](am::Endpoint&, am::Token, const am::Word* args, int) {
        std::printf("[node 0] pong! payload=%u\n", args[0]);
        got_pong = true;
      });
  const int h_ping = e1.register_handler(
      [&](am::Endpoint& ep, am::Token token, const am::Word* args, int) {
        std::printf("[node 1] ping received, replying...\n");
        ep.reply_1(token, h_pong, args[0] + 1);
      });

  bool bulk_done = false;
  std::vector<std::byte> inbox(1 << 16);
  const int h_bulk = e1.register_bulk_handler(
      [&](am::Endpoint&, am::Token, void*, std::size_t len, am::Word arg) {
        std::printf("[node 1] bulk transfer landed: %zu bytes, arg=%u\n",
                    len, arg);
        bulk_done = true;
      });

  // Node programs run on fibers; blocking calls poll the network while
  // virtual time advances.
  world.spawn(0, [&](sim::NodeCtx& ctx) {
    const sim::Time t0 = ctx.now();
    e0.request_1(1, h_ping, 41);
    e0.poll_until([&] { return got_pong; });
    std::printf("[node 0] one-word round-trip: %.1f us (paper: 51.0 us)\n",
                sim::to_usec(ctx.now() - t0));

    std::vector<std::byte> payload(1 << 16, std::byte{0xcd});
    const sim::Time t1 = ctx.now();
    e0.store(1, inbox.data(), payload.data(), payload.size(), h_bulk, 7);
    e0.poll_until([&] { return e0.outstanding_bulk_ops() == 0; });
    const double secs = sim::to_sec(ctx.now() - t1);
    std::printf("[node 0] 64 KB store: %.1f us -> %.1f MB/s\n",
                sim::to_usec(ctx.now() - t1),
                static_cast<double>(payload.size()) / secs / 1e6);
  });
  world.spawn(1, [&](sim::NodeCtx&) {
    e1.poll_until([&] { return got_pong && bulk_done; });
  });

  world.run();
  std::printf("done: virtual time %.3f ms, %llu packets delivered\n",
              sim::to_usec(world.engine().now()) / 1000.0,
              static_cast<unsigned long long>(
                  machine.fabric().stats().delivered));
  return 0;
}
