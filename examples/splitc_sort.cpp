// Split-C demo: the paper's sample-sort benchmark on 8 simulated SP nodes,
// over SP Active Messages and over MPL, in both the fine-grain and bulk
// variants — the core "overhead beats latency" result of section 3.
//
//   $ ./splitc_sort [keys]
#include <cstdio>
#include <cstdlib>

#include "apps/splitc_apps.hpp"

int main(int argc, char** argv) {
  using namespace spam;

  const std::size_t keys =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64 * 1024;

  struct Case {
    const char* label;
    splitc::Backend backend;
    apps::SortVariant variant;
  };
  const Case cases[] = {
      {"SP AM,  one put per key ", splitc::Backend::kSpAm,
       apps::SortVariant::kSmallMessage},
      {"SP MPL, one put per key ", splitc::Backend::kSpMpl,
       apps::SortVariant::kSmallMessage},
      {"SP AM,  bulk stores     ", splitc::Backend::kSpAm,
       apps::SortVariant::kBulk},
      {"SP MPL, bulk stores     ", splitc::Backend::kSpMpl,
       apps::SortVariant::kBulk},
  };

  std::printf("sample sort, %zu keys, 8 processors\n", keys);
  std::printf("%-26s %10s %10s %10s  %s\n", "configuration", "total(s)",
              "cpu(s)", "net(s)", "sorted?");
  for (const Case& c : cases) {
    splitc::SplitCConfig cfg;
    cfg.nodes = 8;
    cfg.backend = c.backend;
    splitc::SplitCWorld world(cfg);
    const apps::PhaseTimes r = apps::run_sample_sort(world, keys, c.variant);
    std::printf("%-26s %10.4f %10.4f %10.4f  %s\n", c.label, r.total_s,
                r.cpu_s, r.comm_s, r.valid ? "yes" : "NO");
  }
  std::printf(
      "\nThe paper's point: per-message overhead dominates fine-grain "
      "traffic, so the\nAM column beats MPL by several times on the "
      "put-per-key runs and ties on bulk.\n");
  return 0;
}
