#include "lexer.hpp"

#include <cctype>

namespace spam::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Records any `spam-lint: <marker> [<marker>...]` directives found in a
// comment body against `line`.
void scan_markers(const std::string& comment, int line, LexedFile* out) {
  const std::string key = "spam-lint:";
  std::size_t at = comment.find(key);
  if (at == std::string::npos) return;
  at += key.size();
  while (at < comment.size()) {
    while (at < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[at]))) {
      ++at;
    }
    std::size_t end = at;
    while (end < comment.size() &&
           !std::isspace(static_cast<unsigned char>(comment[end]))) {
      ++end;
    }
    if (end == at) break;
    const std::string word = comment.substr(at, end - at);
    // Free-text rationale is allowed after the markers; stop at the first
    // word that is not marker-shaped (markers use [a-z-()] only).
    bool markerish = true;
    for (char c : word) {
      if (!(std::islower(static_cast<unsigned char>(c)) || c == '-' ||
            c == '(' || c == ')' || c == '_')) {
        markerish = false;
        break;
      }
    }
    if (!markerish) break;
    out->markers[line].insert(word);
    at = end;
  }
}

}  // namespace

LexedFile lex(const std::string& text) {
  LexedFile out;

  // Split raw lines first: rules and the allowlist match on line text.
  {
    std::size_t start = 0;
    while (start <= text.size()) {
      std::size_t nl = text.find('\n', start);
      if (nl == std::string::npos) {
        out.lines.push_back(text.substr(start));
        break;
      }
      out.lines.push_back(text.substr(start, nl - start));
      start = nl + 1;
    }
  }

  int line = 1;
  bool in_directive = false;
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto push = [&](TokKind kind, std::string t) {
    out.tokens.push_back(Token{kind, std::move(t), line, in_directive});
  };

  while (i < n) {
    const char c = text[i];

    if (c == '\n') {
      // A directive ends at an unescaped newline.
      if (in_directive && !(i > 0 && text[i - 1] == '\\')) {
        in_directive = false;
      }
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      scan_markers(text.substr(i, end - i), line, &out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      const std::string body = text.substr(i, end - i);
      scan_markers(body, line, &out);
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (text[k] == '\n') ++line;
      }
      i = end == n ? n : end + 2;
      continue;
    }

    // Raw string literal: R"delim( ... )delim".  Must be skipped verbatim
    // (no escape processing) or embedded quotes derail the lexer.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && text[p] != '(' && delim.size() < 16) {
        delim.push_back(text[p++]);
      }
      const std::string close = ")" + delim + "\"";
      std::size_t end = text.find(close, p);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (text[k] == '\n') ++line;
      }
      i = end == n ? n : end + close.size();
      continue;
    }

    // String / char literal (with escape handling).
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      while (p < n && text[p] != quote) {
        if (text[p] == '\\' && p + 1 < n) ++p;
        if (text[p] == '\n') ++line;
        ++p;
      }
      i = p == n ? n : p + 1;
      continue;
    }

    if (c == '#') {
      in_directive = true;
      push(TokKind::kPunct, "#");
      ++i;
      continue;
    }

    if (ident_start(c)) {
      std::size_t p = i + 1;
      while (p < n && ident_char(text[p])) ++p;
      push(TokKind::kIdent, text.substr(i, p - i));
      i = p;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t p = i + 1;
      // Good enough for rule purposes: digits, hex, suffixes, exponents,
      // separators and dots all fold into one number token.
      while (p < n && (ident_char(text[p]) || text[p] == '.' ||
                       text[p] == '\'' ||
                       ((text[p] == '+' || text[p] == '-') &&
                        (text[p - 1] == 'e' || text[p - 1] == 'E' ||
                         text[p - 1] == 'p' || text[p - 1] == 'P')))) {
        ++p;
      }
      push(TokKind::kNumber, text.substr(i, p - i));
      i = p;
      continue;
    }

    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }

  return out;
}

}  // namespace spam::lint
