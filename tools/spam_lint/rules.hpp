// spam_lint rules: the repo's load-bearing invariants, as machine checks.
//
// Rule ids (stable; the allowlist and inline markers key off them):
//
//   det-wallclock       wall-clock reads inside the simulation layers
//   det-rand            host RNGs inside the simulation layers (use sim::Rng)
//   det-env             getenv/secure_getenv inside the simulation layers
//   det-unordered-iter  range-for over an unordered container declared in
//                       the same file — iteration order is host-dependent
//                       and must never feed results
//   hot-alloc           heap-allocating construct (`new`, make_unique/shared,
//                       malloc-family, std::function) inside a SPAM_HOT
//                       function, or in any function the call graph proves
//                       reachable from one
//   hot-growth          push_back/emplace_back inside a SPAM_HOT (or
//                       hot-reachable) function without a
//                       `// spam-lint: capacity-ok` annotation
//   hot-charge-loop     charge_*()/elapse() inside a loop body under
//                       src/apps or src/splitc, or in any hot-reachable
//                       function — per-element time charging defeats
//                       local-clock batching; hoist one `count * unit`
//                       charge or audit the batching with
//                       `// spam-lint: charge-ok`
//   fiber-tls           a thread_local declaration in src/ — a raw
//                       thread_local read cached in a register across a
//                       Fiber switch goes stale; every such variable must
//                       be audited into the allowlist
//   fiber-tsan-inline   __tsan_*fiber announcement called from a function
//                       not marked always_inline (out-of-line helpers
//                       unbalance TSan's shadow call stacks — the PR 2 bug)
//   payload-escape      a Packet::payload view stored into a member or a
//                       container — the zero-copy arena recycles payload
//                       storage after the handler returns, so views must
//                       not outlive handler scope; audit a drained ring
//                       with `// spam-lint: payload-ok`
//   debt-engine-now     a raw engine().now()/engine_.now() read under the
//                       runtime layers (src/am, src/mpi, src/splitc,
//                       src/apps) — the engine clock excludes this node's
//                       unsettled charge debt; NodeCtx::now() folds the
//                       ledger and is the only correct read there
//   hdr-pragma-once     a header whose first directive is not #pragma once
//   hdr-self-contained  a header using a std:: symbol whose canonical
//                       <header> it does not itself include
//
// Scoping: the det-* rules apply only under the deterministic simulation
// roots (src/sim, src/sphw, src/am, src/mpi, src/splitc) plus, through the
// call graph, anything those roots reach; fiber-* rules apply under src/;
// hot-alloc/hot-growth apply wherever SPAM_HOT appears plus anything
// hot-reachable; hot-charge-loop applies under src/apps and src/splitc
// plus anything hot-reachable; payload-escape applies under the sim roots;
// debt-engine-now applies under src/am, src/mpi, src/splitc, src/apps;
// hdr-* rules apply to every .hpp.  Paths are evaluated relative to
// --root.
//
// Suppression: a violation is dropped when (a) the allowlist has a matching
// entry (see allowlist.hpp), or (b) the line (or up to two lines above)
// carries `// spam-lint: allow(<rule-id>)`, or (c) for call-graph findings,
// the same marker sits at the reachable function's *definition*.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace spam::lint {

struct Violation {
  std::string rule;     // rule id, e.g. "hot-alloc"
  int line = 0;         // 1-based
  std::string message;  // human-readable explanation
  std::string file;     // rel path; filled by cross-TU passes (the per-file
                        // pass leaves it empty and the caller knows the file)
};

/// True under the deterministic simulation roots (src/sim, src/sphw,
/// src/am, src/mpi, src/splitc).
bool in_sim_scope(const std::string& rel_path);

/// Runs every applicable per-file rule over one lexed file.  `rel_path` is
/// the path relative to the lint root, using '/' separators.
std::vector<Violation> run_rules(const LexedFile& file,
                                 const std::string& rel_path);

// Body-scoped scans reused by the call-graph layer (callgraph.cpp) for
// functions that are only *transitively* hot or sim-reachable.  The token
// range is [body_begin, body_end] as recorded in FunctionSym; `provenance`
// is appended to each message (e.g. the hot chain).  Inline
// `spam-lint:` markers at the offending line are honored; definition-line
// suppression is the caller's job.
void scan_hot_body(const LexedFile& file, std::size_t body_begin,
                   std::size_t body_end, const std::string& provenance,
                   std::vector<Violation>* out);
void scan_charge_loop_body(const LexedFile& file, std::size_t body_begin,
                           std::size_t body_end,
                           const std::string& provenance,
                           std::vector<Violation>* out);
void scan_det_body(const LexedFile& file, std::size_t body_begin,
                   std::size_t body_end, const std::string& provenance,
                   std::vector<Violation>* out);

}  // namespace spam::lint
