// spam_lint rules: the repo's load-bearing invariants, as machine checks.
//
// Rule ids (stable; the allowlist and inline markers key off them):
//
//   det-wallclock       wall-clock reads inside the simulation layers
//   det-rand            host RNGs inside the simulation layers (use sim::Rng)
//   det-env             getenv/secure_getenv inside the simulation layers
//   det-unordered-iter  range-for over an unordered container declared in
//                       the same file — iteration order is host-dependent
//                       and must never feed results
//   hot-alloc           heap-allocating construct (`new`, make_unique/shared,
//                       malloc-family, std::function) inside a SPAM_HOT
//                       function
//   hot-growth          push_back/emplace_back inside a SPAM_HOT function
//                       without a `// spam-lint: capacity-ok` annotation
//   hot-charge-loop     charge_*()/elapse() inside a loop body under
//                       src/apps or src/splitc — per-element time charging
//                       defeats local-clock batching; hoist one
//                       `count * unit` charge or audit the batching with
//                       `// spam-lint: charge-ok`
//   fiber-tls           a thread_local declaration in src/ — a raw
//                       thread_local read cached in a register across a
//                       Fiber switch goes stale; every such variable must
//                       be audited into the allowlist
//   fiber-tsan-inline   __tsan_*fiber announcement called from a function
//                       not marked always_inline (out-of-line helpers
//                       unbalance TSan's shadow call stacks — the PR 2 bug)
//   hdr-pragma-once     a header whose first directive is not #pragma once
//   hdr-self-contained  a header using a std:: symbol whose canonical
//                       <header> it does not itself include
//
// Scoping: the det-* rules apply only under the deterministic simulation
// roots (src/sim, src/sphw, src/am, src/mpi, src/splitc); fiber-* rules
// apply under src/; hot-alloc/hot-growth apply wherever SPAM_HOT appears;
// hot-charge-loop applies under src/apps and src/splitc; hdr-* rules apply
// to every .hpp.  Paths are evaluated relative to --root.
//
// Suppression: a violation is dropped when (a) the allowlist has a matching
// entry (see allowlist.hpp), or (b) the line or the line above carries
// `// spam-lint: allow(<rule-id>)`.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace spam::lint {

struct Violation {
  std::string rule;     // rule id, e.g. "hot-alloc"
  int line = 0;         // 1-based
  std::string message;  // human-readable explanation
};

/// Runs every applicable rule over one lexed file.  `rel_path` is the
/// path relative to the lint root, using '/' separators.
std::vector<Violation> run_rules(const LexedFile& file,
                                 const std::string& rel_path);

}  // namespace spam::lint
