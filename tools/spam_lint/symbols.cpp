#include "symbols.hpp"

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

namespace spam::lint {
namespace {

// Keywords that look like `ident (` but never name a callee.
const std::unordered_set<std::string>& call_skip_words() {
  static const std::unordered_set<std::string> set = {
      "if",       "for",      "while",    "switch",        "catch",
      "return",   "sizeof",   "alignof",  "alignas",       "decltype",
      "noexcept", "throw",    "new",      "delete",        "goto",
      "typeid",   "requires", "defined",  "static_assert", "co_return",
      "co_await", "co_yield", "typename",
  };
  return set;
}

// Keywords after which `ident (` is still a call expression, not the
// start of a declaration (`Foo bar(...)`).
bool call_after_ident_ok(const std::string& p) {
  return p == "return" || p == "else" || p == "do" || p == "case" ||
         p == "throw" || p == "co_return" || p == "co_await" ||
         p == "co_yield";
}

bool qualifier_ident(const std::string& s) {
  return s == "const" || s == "noexcept" || s == "override" || s == "final" ||
         s == "mutable" || s == "try";
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock, kInit };
  Kind kind;
  int sym;           // index into the output for kFunction scopes, else -1
  std::string name;  // qualification component for kNamespace/kClass
};

// A `register_handler(...)` / `register_bulk_handler(...)` call (or a
// reserved `msg_handlers_`/`bulk_handlers_` emplace) whose argument list
// is still open: the next lambda inside it becomes a handler root.
struct PendingReg {
  bool active = false;
  bool bulk = false;
  bool lambda_only = false;  // emplace flavor: only a literal lambda roots
  bool got_lambda = false;
  bool parens_closed = false;
  int open_depth = 0;  // paren depth just before the registration '('
  int line = 0;
  std::string target;          // LHS of `h_x_ = register_handler(...)`
  std::string last_arg_ident;  // fallback for `register_handler(named_fn)`
};

class Extractor {
 public:
  Extractor(const LexedFile& file, const std::string& rel)
      : file_(file), rel_(rel) {
    for (std::size_t i = 0; i < file.tokens.size(); ++i) {
      if (!file.tokens[i].in_directive) idx_.push_back(i);
    }
  }

  std::vector<FunctionSym> run();

 private:
  const Token& tok(std::size_t k) const { return file_.tokens[idx_[k]]; }
  std::size_t n() const { return idx_.size(); }

  // Matching ')' for the '(' at k, over the filtered stream; n() if
  // unbalanced.
  std::size_t match_paren(std::size_t k) const {
    int depth = 0;
    for (std::size_t j = k; j < n(); ++j) {
      if (tok(j).text == "(") ++depth;
      if (tok(j).text == ")" && --depth == 0) return j;
    }
    return n();
  }

  struct ArgCount {
    int count = 0;      // comma-separated top-level entries
    int defaults = 0;   // `=` at top level (parameter default values)
    bool ellipsis = false;
  };

  // Lexical argument/parameter count for the list opened by '(' at k.
  // Angle brackets are tracked heuristically (`ident <` opens) so that
  // template-argument commas don't inflate the count.
  ArgCount count_args(std::size_t k) const {
    ArgCount out;
    const std::size_t close = match_paren(k);
    if (close >= n() || close == k + 1) return out;
    out.count = 1;
    int depth = 0, angle = 0;
    for (std::size_t j = k + 1; j < close; ++j) {
      const std::string& t = tok(j).text;
      if (t == "(" || t == "{" || t == "[") ++depth;
      if (t == ")" || t == "}" || t == "]") --depth;
      if (t == "<" && j > 0 && tok(j - 1).kind == TokKind::kIdent) ++angle;
      if (t == ">" && angle > 0 && tok(j - 1).text != "-") --angle;
      if (depth != 0 || angle != 0) continue;
      if (t == ",") ++out.count;
      if (t == "=") ++out.defaults;
      if (t == "." && j + 2 < close && tok(j + 1).text == "." &&
          tok(j + 2).text == ".") {
        out.ellipsis = true;
      }
    }
    return out;
  }

  // Joins the enclosing namespace/class names.
  std::string scope_prefix() const {
    std::string out;
    for (const Scope& s : scopes_) {
      if (s.name.empty()) continue;
      if (!out.empty()) out += "::";
      out += s.name;
    }
    return out;
  }

  int innermost_function() const {
    for (std::size_t i = scopes_.size(); i-- > 0;) {
      if (scopes_[i].kind == Scope::kFunction) return scopes_[i].sym;
      if (scopes_[i].kind == Scope::kClass ||
          scopes_[i].kind == Scope::kNamespace) {
        break;  // a class/namespace nested in a body shadows the body
      }
    }
    return -1;
  }

  bool in_definition_scope() const {
    for (std::size_t i = scopes_.size(); i-- > 0;) {
      switch (scopes_[i].kind) {
        case Scope::kNamespace:
        case Scope::kClass:
          return true;
        case Scope::kFunction:
        case Scope::kBlock:
          return false;
        case Scope::kInit:
          continue;  // transparent: look through initializers
      }
    }
    return true;  // file scope
  }

  // True when the '{' at k closes a lambda introducer: `] {` or
  // `](params) quals {`.
  bool is_lambda_brace(std::size_t k) const;
  std::size_t lambda_intro(std::size_t k) const;

  // Head classification for a '{' at filtered index k with head
  // [head_start_, k).
  Scope classify_brace(std::size_t k);

  void handle_registration(std::size_t k);
  void open_scope(std::size_t k);

  const LexedFile& file_;
  const std::string& rel_;
  std::vector<std::size_t> idx_;
  std::vector<Scope> scopes_;
  std::vector<FunctionSym> out_;
  std::size_t head_start_ = 0;
  int paren_depth_ = 0;
  PendingReg pending_;
};

bool Extractor::is_lambda_brace(std::size_t k) const {
  std::size_t j = k;
  while (j-- > head_start_) {
    const std::string& t = tok(j).text;
    if (tok(j).kind == TokKind::kIdent || t == ">" || t == "-" || t == ":" ||
        t == "*" || t == "&") {
      continue;  // trailing-return / qualifier tokens
    }
    if (t == "]") return j == 0 || tok(j - 1).text != "]";  // not `]]` attr
    if (t == ")") {
      int depth = 0;
      for (std::size_t m = j + 1; m-- > 0;) {
        if (tok(m).text == ")") ++depth;
        if (tok(m).text == "(" && --depth == 0) {
          return m > 0 && tok(m - 1).text == "]" &&
                 (m < 2 || tok(m - 2).text != "]");
        }
      }
      return false;
    }
    return false;
  }
  return false;
}

// Index of the lambda introducer '[' for the lambda whose body brace is at
// k (mirrors is_lambda_brace's back-scan), or n() when not found.
std::size_t Extractor::lambda_intro(std::size_t k) const {
  std::size_t rb = n();  // the introducer's closing ']'
  std::size_t j = k;
  while (j-- > head_start_) {
    const std::string& t = tok(j).text;
    if (tok(j).kind == TokKind::kIdent || t == ">" || t == "-" || t == ":" ||
        t == "*" || t == "&") {
      continue;
    }
    if (t == "]") {
      rb = j;
    } else if (t == ")") {
      int depth = 0;
      for (std::size_t m = j + 1; m-- > 0;) {
        if (tok(m).text == ")") ++depth;
        if (tok(m).text == "(" && --depth == 0) {
          if (m > 0 && tok(m - 1).text == "]") rb = m - 1;
          break;
        }
      }
    }
    break;
  }
  if (rb == n()) return n();
  int depth = 0;
  for (std::size_t m = rb + 1; m-- > 0;) {
    if (tok(m).text == "]") ++depth;
    if (tok(m).text == "[" && --depth == 0) return m;
  }
  return n();
}

Scope Extractor::classify_brace(std::size_t k) {
  const std::string prev = k > 0 ? tok(k - 1).text : std::string();

  if (prev == "do" || prev == "else" || prev == "try") {
    return Scope{Scope::kBlock, -1, ""};
  }
  if (prev == "=" || prev == "," || prev == "(" || prev == "[" ||
      prev == "{" || prev == "return") {
    return Scope{Scope::kInit, -1, ""};
  }
  if (is_lambda_brace(k)) {
    // Non-handler lambdas are transparent blocks: their calls belong to
    // the enclosing function (a lambda built and run on a hot path runs
    // on the hot path).  Registration-site lambdas become symbols below.
    if (pending_.active && !pending_.parens_closed && !pending_.got_lambda) {
      pending_.got_lambda = true;
      FunctionSym sym;
      sym.name = "<lambda>";
      sym.qual = scope_prefix();
      if (!sym.qual.empty()) sym.qual += "::";
      sym.qual += pending_.target.empty() ? "<lambda>" : pending_.target;
      sym.file = rel_;
      sym.line = tok(k).line;
      sym.is_handler = true;
      sym.handler_bulk = pending_.bulk;
      sym.handler_name = pending_.target;
      sym.handler_line = pending_.line;
      out_.push_back(sym);
      return Scope{Scope::kFunction, static_cast<int>(out_.size() - 1), ""};
    }
    // Named local lambda (`auto name = [..](..) {`): becomes its own
    // definition so later calls to `name` resolve instead of tainting the
    // caller as unresolved.  Parameters are not parsed — wildcard arity.
    const std::size_t lb = lambda_intro(k);
    if (lb != n() && lb >= 2 && tok(lb - 1).text == "=" &&
        tok(lb - 2).kind == TokKind::kIdent) {
      FunctionSym sym;
      sym.name = tok(lb - 2).text;
      sym.qual = scope_prefix();
      if (!sym.qual.empty()) sym.qual += "::";
      sym.qual += sym.name;
      sym.file = rel_;
      sym.line = tok(k).line;
      sym.param_min = 0;
      sym.param_max = -1;
      out_.push_back(sym);
      return Scope{Scope::kFunction, static_cast<int>(out_.size() - 1), ""};
    }
    return Scope{Scope::kBlock, -1, ""};
  }

  // Head keyword scan: namespaces and classes.
  bool saw_namespace = false;
  std::size_t class_kw = n();
  for (std::size_t j = head_start_; j < k; ++j) {
    const std::string& t = tok(j).text;
    if (t == "namespace") saw_namespace = true;
    if (class_kw == n() &&
        (t == "class" || t == "struct" || t == "union" || t == "enum")) {
      class_kw = j;
    }
  }
  if (saw_namespace || (k == head_start_ + 1 && tok(head_start_).text == "extern")) {
    std::string name;
    for (std::size_t j = head_start_; j < k; ++j) {
      if (tok(j).kind != TokKind::kIdent || tok(j).text == "namespace" ||
          tok(j).text == "inline" || tok(j).text == "extern") {
        continue;
      }
      if (!name.empty()) name += "::";
      name += tok(j).text;
    }
    return Scope{Scope::kNamespace, -1, name};
  }

  // Function definition: first `ident (` in the head with a matching ')'
  // before the brace.
  if (in_definition_scope()) {
    for (std::size_t c = head_start_; c + 1 < k; ++c) {
      if (tok(c).kind != TokKind::kIdent || tok(c + 1).text != "(") continue;
      if (call_skip_words().count(tok(c).text) != 0) continue;
      const std::size_t close = match_paren(c + 1);
      if (close >= k) continue;  // unbalanced: not this candidate

      // Decide body vs. ctor member-brace-initializer from the tokens
      // between the parameter list and the brace.
      const std::string& last = tok(k - 1).text;
      bool is_body = last == ")" || last == "}";
      if (!is_body && (tok(k - 1).kind == TokKind::kIdent || last == ">")) {
        if (qualifier_ident(last)) {
          is_body = true;
        } else {
          bool arrow = false, colon = false;
          int depth = 0;
          for (std::size_t j = close + 1; j < k; ++j) {
            const std::string& t = tok(j).text;
            if (t == "(") ++depth;
            if (t == ")") --depth;
            if (depth != 0) continue;
            if (t == ">" && j > 0 && tok(j - 1).text == "-") arrow = true;
            if (t == ":" && (j == 0 || tok(j - 1).text != ":") &&
                (j + 1 >= k || tok(j + 1).text != ":")) {
              colon = true;
            }
          }
          if (colon && !arrow) {
            return Scope{Scope::kInit, -1, ""};  // `: a_{x}` member init
          }
          is_body = true;
        }
      } else if (!is_body) {
        is_body = true;  // `) const {`-style punctuation already consumed
      }
      if (!is_body) break;

      FunctionSym sym;
      sym.name = tok(c).text;
      if (c > head_start_ && tok(c - 1).text == "~") sym.name = "~" + sym.name;
      // Explicit `Cls::name` qualifiers in the head.
      std::string explicit_qual;
      for (std::size_t j = c; j >= head_start_ + 3; j -= 3) {
        if (tok(j - 1).text != ":" || tok(j - 2).text != ":" ||
            tok(j - 3).kind != TokKind::kIdent) {
          break;
        }
        explicit_qual = tok(j - 3).text +
                        (explicit_qual.empty() ? "" : "::") + explicit_qual;
        if (j < 3) break;
      }
      sym.qual = scope_prefix();
      if (!explicit_qual.empty()) {
        sym.qual += sym.qual.empty() ? explicit_qual : "::" + explicit_qual;
      }
      sym.qual += sym.qual.empty() ? sym.name : "::" + sym.name;
      sym.file = rel_;
      sym.line = tok(c).line;
      const ArgCount params = count_args(c + 1);
      if (!params.ellipsis) {
        sym.param_min = params.count - params.defaults;
        sym.param_max = params.count;
      }
      for (std::size_t j = head_start_; j < k; ++j) {
        if (tok(j).text == "SPAM_HOT") sym.spam_hot = true;
        if (tok(j).text == "always_inline" ||
            tok(j).text == "SPAM_ALWAYS_INLINE") {
          sym.always_inline = true;
        }
      }
      out_.push_back(sym);
      return Scope{Scope::kFunction, static_cast<int>(out_.size() - 1), ""};
    }
  }

  if (class_kw != n()) {
    // Class name: the last identifier before the brace or the base-clause
    // ':' (skips attributes, alignas(...) arguments, `final`).
    std::string name;
    int depth = 0;
    for (std::size_t j = class_kw + 1; j < k; ++j) {
      const std::string& t = tok(j).text;
      if (t == "(") ++depth;
      if (t == ")") --depth;
      if (depth != 0) continue;
      if (t == ":" && tok(j - 1).text != ":" &&
          (j + 1 >= k || tok(j + 1).text != ":")) {
        break;
      }
      if (tok(j).kind == TokKind::kIdent && t != "class" && t != "final") {
        name = t;
      }
    }
    return Scope{Scope::kClass, -1, name};
  }

  const Token* p = k > 0 ? &tok(k - 1) : nullptr;
  if (p != nullptr && (p->kind == TokKind::kIdent || p->text == ">")) {
    return Scope{Scope::kInit, -1, ""};  // braced initializer `Type{...}`
  }
  return Scope{Scope::kBlock, -1, ""};
}

void Extractor::handle_registration(std::size_t k) {
  const std::string& t = tok(k).text;
  bool bulk = false, lambda_only = false, match = false;
  if (t == "register_handler" || t == "register_bulk_handler") {
    // Only member-spelled calls (`ep.register_handler(...)`) are
    // registration sites; the Endpoint's own definitions/declarations of
    // these methods are spelled without a receiver.
    const bool member =
        k >= 1 &&
        (tok(k - 1).text == "." ||
         (tok(k - 1).text == ">" && k >= 2 && tok(k - 2).text == "-"));
    if (!member) return;
    match = true;
    bulk = t == "register_bulk_handler";
  } else if (t == "emplace_back" && k >= 2 && tok(k - 1).text == "." &&
             (tok(k - 2).text == "msg_handlers_" ||
              tok(k - 2).text == "bulk_handlers_")) {
    match = true;
    lambda_only = true;
    bulk = tok(k - 2).text == "bulk_handlers_";
  }
  if (!match) return;

  pending_ = PendingReg{};
  pending_.active = true;
  pending_.bulk = bulk;
  pending_.lambda_only = lambda_only;
  pending_.open_depth = paren_depth_;
  pending_.line = tok(k).line;
  if (lambda_only) pending_.target = "reserved-noop";

  // LHS of `h_x_ = ep_.register_handler(...)`: scan back to the statement
  // boundary for an `ident =` prefix.
  for (std::size_t j = k; j-- > 0;) {
    const std::string& b = tok(j).text;
    if (b == ";" || b == "{" || b == "}") break;
    if (b == "=" && j > 0 && tok(j - 1).kind == TokKind::kIdent) {
      pending_.target = tok(j - 1).text;
      break;
    }
  }
}

void Extractor::open_scope(std::size_t k) {
  Scope s = classify_brace(k);
  if (s.kind == Scope::kFunction && s.sym >= 0) {
    out_[static_cast<std::size_t>(s.sym)].body_begin = idx_[k];
  }
  scopes_.push_back(s);
  if (s.kind != Scope::kInit) head_start_ = k + 1;
}

std::vector<FunctionSym> Extractor::run() {
  for (std::size_t k = 0; k < n(); ++k) {
    const Token& t = tok(k);

    if (t.text == "(") {
      ++paren_depth_;
    } else if (t.text == ")") {
      --paren_depth_;
      if (pending_.active && paren_depth_ <= pending_.open_depth) {
        pending_.parens_closed = true;
      }
    } else if (t.text == ";") {
      if (pending_.active) {
        // `register_handler(named_fn)`: no lambda appeared — synthesize a
        // handler symbol that simply calls the named target.
        if (!pending_.got_lambda && !pending_.lambda_only &&
            !pending_.last_arg_ident.empty()) {
          FunctionSym sym;
          sym.name = "<handler>";
          sym.qual = pending_.target.empty() ? pending_.last_arg_ident
                                             : pending_.target;
          sym.file = rel_;
          sym.line = pending_.line;
          sym.is_handler = true;
          sym.handler_bulk = pending_.bulk;
          sym.handler_name = pending_.target.empty() ? pending_.last_arg_ident
                                                     : pending_.target;
          sym.handler_line = pending_.line;
          CallSite target;
          target.name = pending_.last_arg_ident;
          target.line = pending_.line;
          target.argc = -1;  // arity unknown: match any definition
          sym.calls.push_back(target);
          out_.push_back(sym);
        }
        pending_ = PendingReg{};
      }
      head_start_ = k + 1;
    } else if (t.text == "{") {
      open_scope(k);
      continue;
    } else if (t.text == "}") {
      if (!scopes_.empty()) {
        const Scope s = scopes_.back();
        scopes_.pop_back();
        if (s.kind == Scope::kFunction && s.sym >= 0) {
          out_[static_cast<std::size_t>(s.sym)].body_end = idx_[k];
        }
        if (s.kind != Scope::kInit) head_start_ = k + 1;
      } else {
        head_start_ = k + 1;
      }
      continue;
    }

    if (t.kind != TokKind::kIdent) continue;

    handle_registration(k);
    if (pending_.active && !pending_.parens_closed && k + 1 < n() &&
        tok(k).kind == TokKind::kIdent && paren_depth_ > pending_.open_depth) {
      const std::string& nx = tok(k + 1).text;
      if ((nx == ")" || nx == ",") && t.text != "std" && t.text != "move" &&
          t.text != "forward") {
        pending_.last_arg_ident = t.text;
      }
    }

    // Call collection for the innermost function body.
    const int fn = innermost_function();
    if (fn < 0) continue;
    if (k + 1 >= n() || tok(k + 1).text != "(") continue;
    if (call_skip_words().count(t.text) != 0) continue;

    CallSite site;
    site.name = t.text;
    site.line = t.line;
    if (k > 0) {
      const Token& p = tok(k - 1);
      if (p.kind == TokKind::kIdent) {
        if (!call_after_ident_ok(p.text)) continue;  // a declaration
      } else if (p.text == ">") {
        if (k < 2 || tok(k - 2).text != "-") continue;  // template-type decl
        site.member = true;  // `x->f(...)`
      } else if (p.text == "~") {
        continue;
      } else if (p.text == "." || p.text == ":") {
        site.member = true;
        site.std_qual =
            k >= 3 && tok(k - 1).text == ":" && tok(k - 2).text == ":" &&
            tok(k - 3).text == "std";
      }
    }
    site.argc = count_args(k + 1).count;
    out_[static_cast<std::size_t>(fn)].calls.push_back(site);
  }

  // Indirect invocations: `expr[...](...)` and `expr(...)(...)` — the
  // callee is unknowable at this level, which the graph turns into
  // "reaches unresolved code".
  for (FunctionSym& sym : out_) {
    if (sym.body_begin == 0 && sym.body_end == 0) continue;
    for (std::size_t i = sym.body_begin + 1;
         i + 1 < sym.body_end && i + 1 < file_.tokens.size(); ++i) {
      const Token& t = file_.tokens[i];
      if (t.in_directive || t.text != "(") continue;
      const Token& p = file_.tokens[i - 1];
      if (p.in_directive) continue;
      if (p.text == "]" || p.text == ")") {
        // `)` form: skip casts/parenthesized callees conservatively only
        // when this is clearly a call chain — `for (...) (void)x;` has no
        // such shape; `handlers_[h](...)` and `fn.get()(...)` do.  A
        // `](` pair that opens a lambda's parameter list is not a call.
        bool lambda_params = false;
        if (p.text == "]") {
          int depth = 0;
          for (std::size_t m = i; m-- > 0;) {
            if (file_.tokens[m].text == "]") ++depth;
            if (file_.tokens[m].text == "[" && --depth == 0) {
              lambda_params =
                  m == 0 || (file_.tokens[m - 1].kind != TokKind::kIdent &&
                             file_.tokens[m - 1].text != "]" &&
                             file_.tokens[m - 1].text != ")");
              break;
            }
          }
        }
        if (!lambda_params) {
          sym.calls.push_back(CallSite{"", t.line, false, true});
        }
      }
    }
  }

  return out_;
}

}  // namespace

std::vector<FunctionSym> extract_symbols(const LexedFile& file,
                                         const std::string& rel_path) {
  return Extractor(file, rel_path).run();
}

}  // namespace spam::lint
