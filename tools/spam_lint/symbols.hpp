// spam_lint symbol extraction: function definitions and the calls inside
// them, recovered from the lexer's flat token stream.
//
// This is the layer that turns spam_lint from a per-body linter into a
// whole-program analyzer: each lexed file yields a list of FunctionSym
// records (name, body token range, SPAM_HOT-ness, outgoing calls), and
// callgraph.hpp links them across translation units by name.
//
// The extractor is a single forward pass with a scope stack.  Every `{`
// is classified — namespace, class/enum, function body, lambda body,
// brace initializer, or plain block — from the "head" tokens accumulated
// since the last statement boundary.  That classification is deliberately
// lexical: no templates are instantiated, no overloads resolved, no
// types known.  docs/static-analysis.md spells out what this can and
// cannot see; the call graph turns "cannot see" into UNKNOWN rather than
// silently guessing.
//
// Lambdas normally contribute their calls to the enclosing function (a
// lambda defined and invoked on a hot path runs on the hot path).  The
// exception is a lambda passed to `register_handler` /
// `register_bulk_handler` (or installed into the reserved
// `msg_handlers_`/`bulk_handlers_` slots): that lambda becomes its own
// symbol, rooted in the graph as an AM handler, because it runs on the
// *delivering* context, not the registering one.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace spam::lint {

/// One call site inside a function body.
struct CallSite {
  std::string name;      // callee identifier (last component: `x.f()` -> "f")
  int line = 0;          // 1-based
  bool member = false;    // spelled as a member/qualified access
  bool indirect = false;  // `fn()`, `handlers_[h](...)`: target unknowable
  bool std_qual = false;  // spelled `std::name(...)`: never an in-repo def
  int argc = 0;           // top-level argument count (-1: unknown, match any)
};

/// One function definition (or registered handler lambda).
struct FunctionSym {
  std::string name;  // unqualified name; "<lambda>" for lambdas
  std::string qual;  // display name with enclosing class/namespace scopes
  std::string file;  // path relative to the lint root
  int line = 0;      // 1-based line of the definition

  bool spam_hot = false;       // SPAM_HOT in the declaration head
  bool always_inline = false;  // always_inline/SPAM_ALWAYS_INLINE in the head

  // Parameter-count range for call/definition arity matching: a call with
  // argc in [param_min, param_max] may target this definition.
  // param_max == -1 means "matches any count" (variadic, or a lambda /
  // synthesized handler whose list was not parsed).
  int param_min = 0;
  int param_max = -1;

  // AM handler registration root.
  bool is_handler = false;
  bool handler_bulk = false;     // register_bulk_handler / bulk_handlers_
  std::string handler_name;      // LHS of `h_x_ = register_handler(...)`
  int handler_line = 0;          // line of the registration call

  std::size_t body_begin = 0;  // token index of the body '{'
  std::size_t body_end = 0;    // token index of the matching '}'

  std::vector<CallSite> calls;
};

/// Extracts every function definition (including registration-site handler
/// lambdas) and the calls inside each from one lexed file.
std::vector<FunctionSym> extract_symbols(const LexedFile& file,
                                         const std::string& rel_path);

}  // namespace spam::lint
