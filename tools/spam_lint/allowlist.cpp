#include "allowlist.hpp"

#include <fstream>
#include <sstream>

namespace spam::lint {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool Allowlist::load(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open allowlist '" + path + "'";
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    AllowEntry e;
    if (!(ss >> e.rule)) continue;  // blank/comment line
    if (!(ss >> e.path_suffix)) {
      *error = path + ":" + std::to_string(lineno) +
               ": allowlist entry needs `<rule> <path-suffix> [<substring>]`";
      return false;
    }
    std::string rest;
    std::getline(ss, rest);
    const std::size_t a = rest.find_first_not_of(" \t");
    if (a != std::string::npos) {
      const std::size_t b = rest.find_last_not_of(" \t");
      e.line_substring = rest.substr(a, b - a + 1);
    }
    entries_.push_back(Entry{std::move(e), false});
  }
  return true;
}

bool Allowlist::covers(const Violation& v, const std::string& rel_path,
                       const std::string& line_text) {
  for (Entry& entry : entries_) {
    const AllowEntry& e = entry.e;
    if (e.rule != v.rule) continue;
    if (!ends_with(rel_path, e.path_suffix)) continue;
    if (!e.line_substring.empty() &&
        line_text.find(e.line_substring) == std::string::npos) {
      continue;
    }
    entry.used = true;
    return true;
  }
  return false;
}

std::vector<AllowEntry> Allowlist::unused() const {
  std::vector<AllowEntry> out;
  for (const Entry& entry : entries_) {
    if (!entry.used) out.push_back(entry.e);
  }
  return out;
}

}  // namespace spam::lint
