// spam_lint report rendering: machine-readable output formats.
//
//   render_json    — the full lint result (findings + stale allowlist
//                    entries + counts) as one JSON document, for scripting
//                    against CI runs;
//   render_sarif   — the same findings as SARIF 2.1.0, the code-scanning
//                    interchange format GitHub ingests;
//   render_handler_report — handler_classes.json: every registered AM/bulk
//                    handler with its suspension class.  This file is the
//                    safety whitelist a future inline-handler optimization
//                    consumes: only NEVER_SUSPENDS handlers may run inline
//                    on the delivering context.
//
// All renderers emit deterministic output (inputs are pre-sorted by the
// caller; no timestamps, no absolute paths) so CI diffs are stable.
#pragma once

#include <string>
#include <vector>

#include "allowlist.hpp"
#include "callgraph.hpp"

namespace spam::lint {

/// One post-suppression finding, fully qualified with its file.
struct Finding {
  std::string file;  // relative to --root
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string json_escape(const std::string& s);

/// Full lint result as JSON: schema documented in docs/static-analysis.md.
std::string render_json(const std::vector<Finding>& findings,
                        int files_linted,
                        const std::vector<AllowEntry>& stale);

/// Findings as a SARIF 2.1.0 log (single run, tool.driver.name "spam_lint").
std::string render_sarif(const std::vector<Finding>& findings);

/// handler_classes.json: the classifier's verdict for every registered
/// handler, plus summary counts.
std::string render_handler_report(const CallGraph& graph,
                                  const std::vector<HandlerInfo>& handlers);

}  // namespace spam::lint
