#include "report.hpp"

#include <cstdio>
#include <set>
#include <string>
#include <vector>

namespace spam::lint {
namespace {

std::string itoa(int v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", v);
  return buf;
}

std::string q(const std::string& s) { return "\"" + json_escape(s) + "\""; }

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_json(const std::vector<Finding>& findings,
                        int files_linted,
                        const std::vector<AllowEntry>& stale) {
  std::string out = "{\n";
  out += "  \"tool\": \"spam_lint\",\n";
  out += "  \"files_linted\": " + itoa(files_linted) + ",\n";
  out += "  \"violation_count\": " +
         itoa(static_cast<int>(findings.size())) + ",\n";
  out += "  \"violations\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": " + q(f.file) + ", \"line\": " + itoa(f.line) +
           ", \"rule\": " + q(f.rule) + ", \"message\": " + q(f.message) +
           "}";
  }
  out += findings.empty() ? "],\n" : "\n  ],\n";
  out += "  \"stale_allowlist_entries\": [";
  for (std::size_t i = 0; i < stale.size(); ++i) {
    const AllowEntry& e = stale[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"rule\": " + q(e.rule) + ", \"path_suffix\": " +
           q(e.path_suffix) + ", \"line_substring\": " + q(e.line_substring) +
           "}";
  }
  out += stale.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string render_sarif(const std::vector<Finding>& findings) {
  // One rule descriptor per distinct ruleId, sorted for stable output.
  std::set<std::string> rule_ids;
  for (const Finding& f : findings) rule_ids.insert(f.rule);

  std::string out = "{\n";
  out += "  \"version\": \"2.1.0\",\n";
  out +=
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"runs\": [\n    {\n";
  out += "      \"tool\": {\n        \"driver\": {\n";
  out += "          \"name\": \"spam_lint\",\n";
  out +=
      "          \"informationUri\": "
      "\"docs/static-analysis.md\",\n";
  out += "          \"rules\": [";
  std::size_t ri = 0;
  for (const std::string& id : rule_ids) {
    out += ri++ == 0 ? "\n" : ",\n";
    out += "            {\"id\": " + q(id) + "}";
  }
  out += rule_ids.empty() ? "]\n" : "\n          ]\n";
  out += "        }\n      },\n";
  out += "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "        {\n";
    out += "          \"ruleId\": " + q(f.rule) + ",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": " + q(f.message) + "},\n";
    out += "          \"locations\": [{\"physicalLocation\": {";
    out += "\"artifactLocation\": {\"uri\": " + q(f.file) + "}, ";
    out += "\"region\": {\"startLine\": " + itoa(f.line) + "}}}]\n";
    out += "        }";
  }
  out += findings.empty() ? "]\n" : "\n      ]\n";
  out += "    }\n  ]\n}\n";
  return out;
}

std::string render_handler_report(const CallGraph& graph,
                                  const std::vector<HandlerInfo>& handlers) {
  int never = 0, may = 0, unknown = 0;
  for (const HandlerInfo& h : handlers) {
    switch (h.cls) {
      case HandlerClass::kNeverSuspends: ++never; break;
      case HandlerClass::kMaySuspend: ++may; break;
      case HandlerClass::kUnknown: ++unknown; break;
    }
  }

  std::string out = "{\n";
  out += "  \"tool\": \"spam_lint\",\n";
  out += "  \"report\": \"handler_classes\",\n";
  out += "  \"summary\": {\"handlers\": " +
         itoa(static_cast<int>(handlers.size())) +
         ", \"never_suspends\": " + itoa(never) +
         ", \"may_suspend\": " + itoa(may) +
         ", \"unknown\": " + itoa(unknown) + "},\n";
  out += "  \"handlers\": [";
  for (std::size_t i = 0; i < handlers.size(); ++i) {
    const HandlerInfo& h = handlers[i];
    const GraphNode& n = graph.nodes()[static_cast<std::size_t>(h.node)];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"name\": " + q(n.sym.handler_name) + ",\n";
    out += "      \"file\": " + q(n.sym.file) + ",\n";
    out += "      \"line\": " + itoa(n.sym.handler_line) + ",\n";
    out += std::string("      \"kind\": ") +
           (n.sym.handler_bulk ? "\"bulk\"" : "\"msg\"") + ",\n";
    out += std::string("      \"lambda\": ") +
           (n.sym.name == "<lambda>" ? "true" : "false") + ",\n";
    out += std::string("      \"class\": \"") + handler_class_name(h.cls) +
           "\",\n";
    out += std::string("      \"audited\": ") +
           (h.audited ? "true" : "false") + ",\n";
    out += "      \"why\": " + q(h.why);
    if (h.cls == HandlerClass::kMaySuspend && !h.witness.empty()) {
      out += ",\n      \"witness\": [";
      for (std::size_t w = 0; w < h.witness.size(); ++w) {
        if (w != 0) out += ", ";
        out += q(h.witness[w]);
      }
      out += "]";
    }
    if (h.cls == HandlerClass::kUnknown) {
      out += ",\n      \"unresolved\": " + q(n.first_unresolved);
    }
    out += "\n    }";
  }
  out += handlers.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace spam::lint
