#include "rules.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace spam::lint {
namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header(const std::string& rel) {
  return ends_with(rel, ".hpp") || ends_with(rel, ".h");
}

// The runtime layers living on top of the simulated clock: the only
// correct time read there is NodeCtx::now(), which folds unsettled debt.
bool in_runtime_scope(const std::string& rel) {
  static const std::array<const char*, 4> roots = {
      "src/am/", "src/mpi/", "src/splitc/", "src/apps/"};
  return std::any_of(roots.begin(), roots.end(),
                     [&](const char* r) { return starts_with(rel, r); });
}

// True when token i is qualified as `std::<tok>`.
bool std_qualified(const std::vector<Token>& toks, std::size_t i) {
  return i >= 3 && toks[i - 1].text == ":" && toks[i - 2].text == ":" &&
         toks[i - 3].text == "std";
}

// True when token i is a function call (next token is '(').
bool is_call(const std::vector<Token>& toks, std::size_t i) {
  return i + 1 < toks.size() && toks[i + 1].text == "(";
}

// True when token i is a member access (`x.tok` or `x->tok` or `X::tok`).
bool is_member_access(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  const std::string& p = toks[i - 1].text;
  return p == "." || p == ">" || p == ":";
}

struct RuleContext {
  const LexedFile& file;
  std::vector<Violation>* out;
  // Appended to every message: the call-graph passes use it to say *why*
  // an unannotated function is being held to hot/det rules.
  std::string provenance;

  void report(const std::string& rule, int line, std::string msg) {
    // Inline suppression: `// spam-lint: allow(rule)` on this line or the
    // line above.
    const std::string marker = "allow(" + rule + ")";
    for (int l : {line, line - 1, line - 2}) {
      auto it = file.markers.find(l);
      if (it != file.markers.end() && it->second.count(marker) != 0) return;
    }
    out->push_back(Violation{rule, line, std::move(msg) + provenance, ""});
  }

  // Markers may sit on the same line or in a (possibly two-line) comment
  // directly above the audited statement.
  bool has_marker(int line, const std::string& m) const {
    for (int l : {line, line - 1, line - 2}) {
      auto it = file.markers.find(l);
      if (it != file.markers.end() && it->second.count(m) != 0) return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// det-*: nondeterminism sources inside the simulation layers.
// ---------------------------------------------------------------------------

// Single-token determinism checks over [begin, end): shared between the
// whole-file pass and the call-graph's body pass.
void det_sites_scan(RuleContext& ctx, std::size_t begin, std::size_t end) {
  const auto& toks = ctx.file.tokens;

  static const std::unordered_set<std::string> wallclock_calls = {
      "time",        "clock",         "gettimeofday", "clock_gettime",
      "localtime",   "gmtime",        "timespec_get", "ftime",
  };
  static const std::unordered_set<std::string> wallclock_types = {
      "system_clock", "steady_clock", "high_resolution_clock",
  };
  static const std::unordered_set<std::string> rand_calls = {
      "rand", "srand", "random", "srandom", "drand48", "lrand48", "rand_r",
  };
  static const std::unordered_set<std::string> rand_types = {
      "random_device", "mt19937", "mt19937_64", "default_random_engine",
      "minstd_rand",
  };
  static const std::unordered_set<std::string> env_calls = {
      "getenv", "secure_getenv",
  };

  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.in_directive) continue;

    if (wallclock_types.count(t.text) != 0) {
      ctx.report("det-wallclock", t.line,
                 "std::chrono::" + t.text +
                     " in a simulation layer; virtual time must come from "
                     "sim::Engine::now()");
      continue;
    }
    if (wallclock_calls.count(t.text) != 0 && is_call(toks, i) &&
        !is_member_access(toks, i)) {
      ctx.report("det-wallclock", t.line,
                 t.text +
                     "() reads the host clock; virtual time must come from "
                     "sim::Engine::now()");
      continue;
    }
    if (rand_types.count(t.text) != 0) {
      ctx.report("det-rand", t.line,
                 t.text + " is host-seeded/nonportable; use sim::Rng");
      continue;
    }
    if (rand_calls.count(t.text) != 0 && is_call(toks, i) &&
        !is_member_access(toks, i)) {
      ctx.report("det-rand", t.line,
                 t.text + "() is host randomness; use sim::Rng");
      continue;
    }
    if (env_calls.count(t.text) != 0 && is_call(toks, i)) {
      ctx.report("det-env", t.line,
                 t.text +
                     "() makes results depend on the host environment; "
                     "plumb configuration through parameters");
      continue;
    }
  }
}

void check_determinism(RuleContext& ctx) {
  const auto& toks = ctx.file.tokens;

  det_sites_scan(ctx, 0, toks.size());

  // det-unordered-iter: collect names declared with an unordered container
  // type in this file, then flag range-for statements whose range
  // expression mentions one of them.  (File-level only: the declaration
  // and the loop must be matched up, which a body slice cannot do.)
  std::unordered_set<std::string> unordered_names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].in_directive) continue;
    if (toks[i].text != "unordered_map" && toks[i].text != "unordered_set" &&
        toks[i].text != "unordered_multimap" &&
        toks[i].text != "unordered_multiset") {
      continue;
    }
    // Skip the template argument list, then take the declared name.
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "<") ++depth;
      if (toks[j].text == ">" && --depth == 0) break;
    }
    if (j + 1 < toks.size() && toks[j + 1].kind == TokKind::kIdent) {
      unordered_names.insert(toks[j + 1].text);
    }
  }
  if (!unordered_names.empty()) {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
      // Find the matching ')' and the top-level ':' inside.
      int depth = 0;
      std::size_t colon = 0, close = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (toks[j].text == ":" && depth == 1 && colon == 0 &&
            toks[j - 1].text != ":" &&
            (j + 1 >= toks.size() || toks[j + 1].text != ":")) {
          colon = j;
        }
      }
      if (colon == 0 || close == 0) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == TokKind::kIdent &&
            unordered_names.count(toks[j].text) != 0) {
          ctx.report("det-unordered-iter", toks[j].line,
                     "range-for over unordered container '" + toks[j].text +
                         "': iteration order is host-dependent and must not "
                         "feed results; iterate a sorted copy or keyed order");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// hot-*: allocation bans inside SPAM_HOT (and hot-reachable) functions.
// ---------------------------------------------------------------------------

// Allocation/growth sites over [begin, end): shared between the direct
// SPAM_HOT-body pass and the call-graph's hot-reachable pass.
void hot_sites_scan(RuleContext& ctx, std::size_t begin, std::size_t end) {
  const auto& toks = ctx.file.tokens;
  for (std::size_t j = begin; j < end && j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.kind != TokKind::kIdent || t.in_directive) continue;
    if (t.text == "new") {
      // Placement new (`new (addr) T`) reuses storage; allowed.
      if (j + 1 < toks.size() && toks[j + 1].text == "(") continue;
      ctx.report("hot-alloc", t.line,
                 "operator new inside a SPAM_HOT function; hot-path "
                 "storage must come from a pool");
    } else if (t.text == "make_unique" || t.text == "make_shared") {
      ctx.report("hot-alloc", t.line,
                 "std::" + t.text +
                     " allocates inside a SPAM_HOT function; hot-path "
                     "storage must come from a pool");
    } else if ((t.text == "malloc" || t.text == "calloc" ||
                t.text == "realloc" || t.text == "strdup") &&
               is_call(toks, j)) {
      ctx.report("hot-alloc", t.line,
                 t.text + "() inside a SPAM_HOT function; hot-path "
                          "storage must come from a pool");
    } else if (t.text == "function" && std_qualified(toks, j)) {
      ctx.report("hot-alloc", t.line,
                 "std::function may heap-allocate its closure inside a "
                 "SPAM_HOT function; use sim::InlineAction");
    } else if ((t.text == "push_back" || t.text == "emplace_back") &&
               is_call(toks, j)) {
      if (!ctx.has_marker(t.line, "capacity-ok")) {
        ctx.report("hot-growth", t.line,
                   t.text +
                       " inside a SPAM_HOT function without a "
                       "`// spam-lint: capacity-ok` audit that steady-state "
                       "capacity is already reserved");
      }
    }
  }
}

void check_hot_paths(RuleContext& ctx) {
  const auto& toks = ctx.file.tokens;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "SPAM_HOT" || toks[i].in_directive) continue;

    // Find the function body: the first '{' before any ';' at file level.
    // A ';' first means this is a mere declaration — the contract is that
    // SPAM_HOT annotates definitions, where the body can be checked.
    std::size_t open = 0;
    int paren = 0;
    bool declaration_only = false;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++paren;
      if (toks[j].text == ")") --paren;
      if (paren == 0 && toks[j].text == ";") {
        declaration_only = true;
        break;
      }
      if (paren == 0 && toks[j].text == "{") {
        open = j;
        break;
      }
    }
    if (declaration_only || open == 0) continue;
    std::size_t close = open;
    int depth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}" && --depth == 0) {
        close = j;
        break;
      }
    }

    hot_sites_scan(ctx, open + 1, close);
    i = close;
  }
}

// ---------------------------------------------------------------------------
// hot-charge-loop: per-element time charging in app/runtime loop bodies.
// ---------------------------------------------------------------------------

// A charge_*()/elapse() call inside a loop body pays one ledger update per
// element at best — and one full engine sleep (two fiber switches plus an
// event push/pop) per element when the local clock is off.  The cost model
// is additive, so a loop's compute cost folds into a single hoisted
// `count * unit` charge with identical simulated time.  Where the loop
// itself *is* the batching (one charge per pass, per destination, per
// iteration), audit the call with `// spam-lint: charge-ok`.
void charge_loops_scan(RuleContext& ctx, std::size_t begin, std::size_t end) {
  const auto& toks = ctx.file.tokens;
  const std::size_t limit = std::min(end, toks.size());

  static const std::unordered_set<std::string> charge_calls = {
      "charge",         "charge_us",        "charge_flops",
      "charge_int_ops", "charge_mem_bytes", "elapse",
      "elapse_us",
  };

  // Pass 1: mark every token that sits inside some loop body.  Loop bodies
  // are found lexically: `for`/`while` followed by a parenthesized head and
  // either a brace block or a single statement, plus `do { ... }`.  A `;`
  // right after the head is a do-while tail or an empty body — skipped.
  std::vector<char> in_loop(toks.size(), 0);
  for (std::size_t i = begin; i < limit; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.in_directive) continue;
    std::size_t body = 0;  // index of the body's first token
    if (t.text == "for" || t.text == "while") {
      if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
      int depth = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
      }
      if (close == 0 || close + 1 >= toks.size()) continue;
      body = close + 1;
      if (toks[body].text == ";") continue;
    } else if (t.text == "do") {
      if (i + 1 >= toks.size() || toks[i + 1].text != "{") continue;
      body = i + 1;
    } else {
      continue;
    }
    std::size_t loop_end = body;
    if (toks[body].text == "{") {
      int depth = 0;
      for (std::size_t j = body; j < toks.size(); ++j) {
        if (toks[j].text == "{") ++depth;
        if (toks[j].text == "}" && --depth == 0) {
          loop_end = j;
          break;
        }
      }
    } else {
      // Single-statement body: through the next ';' at top nesting level.
      int paren = 0, brace = 0;
      for (std::size_t j = body; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++paren;
        if (toks[j].text == ")") --paren;
        if (toks[j].text == "{") ++brace;
        if (toks[j].text == "}") --brace;
        if (toks[j].text == ";" && paren == 0 && brace == 0) {
          loop_end = j;
          break;
        }
      }
    }
    for (std::size_t j = body; j <= loop_end && j < toks.size(); ++j) {
      in_loop[j] = 1;
    }
  }

  // Pass 2: flag charge-family calls on marked tokens.
  for (std::size_t i = begin; i < limit; ++i) {
    if (in_loop[i] == 0) continue;
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.in_directive) continue;
    if (charge_calls.count(t.text) == 0 || !is_call(toks, i)) continue;
    if (ctx.has_marker(t.line, "charge-ok")) continue;
    ctx.report("hot-charge-loop", t.line,
               t.text +
                   "() inside a loop body charges time per element; hoist "
                   "one batched charge out of the loop or audit with "
                   "`// spam-lint: charge-ok`");
  }
}

// ---------------------------------------------------------------------------
// payload-escape: Packet::payload views stored beyond handler scope.
// ---------------------------------------------------------------------------

// The PR 1 zero-copy arena recycles a packet's payload storage once the
// delivering handler returns; a view stashed in a member or pushed into a
// container dangles on the next pool cycle.  Consuming the bytes in place
// (memcpy from `pkt.payload.data()`) and re-pointing a *packet's* payload
// (`pkt.payload = ...`) are both fine; storing the view is not.  A ring
// that is provably drained before the pool recycles can be audited with
// `// spam-lint: payload-ok`.
void check_payload_escape(RuleContext& ctx) {
  const auto& toks = ctx.file.tokens;

  static const std::unordered_set<std::string> store_calls = {
      "push_back", "emplace_back", "push_front", "emplace_front",
      "emplace",   "insert",       "assign",
  };

  for (std::size_t i = 1; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.in_directive || t.text != "payload") {
      continue;
    }
    const std::string& prev = toks[i - 1].text;
    const bool via_dot = prev == ".";
    const bool via_arrow = prev == ">" && i >= 2 && toks[i - 2].text == "-";
    if (!via_dot && !via_arrow) continue;
    // Assignment TO the payload re-points the view: allowed.
    if (i + 1 < toks.size() && toks[i + 1].text == "=") continue;
    if (ctx.has_marker(t.line, "payload-ok")) continue;

    // Walk back through the statement: the first top-level `=` or
    // enclosing '(' decides what happens to the view.
    int depth = 0;
    for (std::size_t j = i - 1; j-- > 0;) {
      const std::string& b = toks[j].text;
      if (b == ";" || b == "{" || b == "}" || b == "return") break;
      if (b == ")" || b == "]") {
        ++depth;
        continue;
      }
      if (b == "[") {
        --depth;
        continue;
      }
      if (b == "(") {
        if (depth > 0) {
          --depth;
          continue;
        }
        // Enclosing call: storing the view into a container escapes it.
        if (j > 0 && toks[j - 1].kind == TokKind::kIdent &&
            store_calls.count(toks[j - 1].text) != 0) {
          ctx.report("payload-escape", t.line,
                     toks[j - 1].text +
                         "(... .payload ...) stores a payload view in a "
                         "container; the arena recycles the storage after "
                         "the handler returns — copy the bytes or audit a "
                         "drained ring with `// spam-lint: payload-ok`");
        }
        break;
      }
      if (b == "=" && depth == 0) {
        // `lhs = ... .payload`: flag stores into members (the `_`-suffix
        // convention, or an explicit this->).
        const bool member_lhs =
            (j > 0 && toks[j - 1].kind == TokKind::kIdent &&
             ends_with(toks[j - 1].text, "_")) ||
            (j > 3 && toks[j - 3].text == "this");
        if (member_lhs) {
          ctx.report("payload-escape", t.line,
                     "a payload view is stored into a member; the arena "
                     "recycles the storage after the handler returns — copy "
                     "the bytes or audit with `// spam-lint: payload-ok`");
        }
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// debt-engine-now: raw engine clock reads above the settlement line.
// ---------------------------------------------------------------------------

// PR 5's contract: under the runtime layers, a node's clock is
// engine().now() *plus its unsettled charge debt*.  Reading the engine
// clock raw silently drops the debt term and skips the cross-node
// settlement NodeCtx::now() performs.  src/sim and src/sphw run in engine
// context and are exempt.
void check_debt_now(RuleContext& ctx) {
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 2; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.in_directive || t.text != "now") {
      continue;
    }
    if (!is_call(toks, i)) continue;
    const std::string& p1 = toks[i - 1].text;
    if (p1 != "." && !(p1 == ">" && toks[i - 2].text == "-")) continue;
    const std::size_t recv = p1 == "." ? i - 2 : i - 3;
    bool engine_recv = false;
    if (toks[recv].text == "engine_") {
      engine_recv = true;
    } else if (toks[recv].text == ")" && recv >= 2 &&
               toks[recv - 1].text == "(" &&
               toks[recv - 2].text == "engine") {
      engine_recv = true;  // `engine().now()` / `ctx.engine().now()`
    }
    if (!engine_recv) continue;
    ctx.report("debt-engine-now", t.line,
               "raw engine clock read in a runtime layer drops this node's "
               "unsettled charge debt; use NodeCtx::now(), which folds the "
               "ledger and settles cross-node observations");
  }
}

// ---------------------------------------------------------------------------
// fiber-*: patterns that break under fiber stack switching.
// ---------------------------------------------------------------------------

void check_fiber_safety(RuleContext& ctx) {
  const auto& toks = ctx.file.tokens;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.in_directive) continue;

    if (t.text == "thread_local") {
      ctx.report("fiber-tls", t.line,
                 "thread_local in the simulation tree: a raw read cached "
                 "across Fiber::resume()/yield() goes stale, and state leaks "
                 "between Worlds sharing a host thread; audit into the "
                 "allowlist with a rationale");
      continue;
    }

    // The TSan fiber announcements must execute inside the very frame that
    // performs the stack switch: as out-of-line functions, their
    // __tsan_func_entry/exit pair lands on two *different* shadow call
    // stacks and underflows one (the exact PR 2 crash).  Enforced by
    // requiring always_inline somewhere in the enclosing function's
    // signature.
    if (t.text == "__tsan_switch_to_fiber" || t.text == "__tsan_create_fiber" ||
        t.text == "__tsan_get_current_fiber") {
      // Walk back to the opening '{' of the enclosing function, then scan
      // its signature region (back to the previous ';', '{' or '}') for
      // always_inline.
      int depth = 0;
      std::size_t open = 0;
      for (std::size_t j = i; j-- > 0;) {
        if (toks[j].text == "}") ++depth;
        if (toks[j].text == "{") {
          if (depth == 0) {
            open = j;
            break;
          }
          --depth;
        }
      }
      // No enclosing brace at all: a file-scope *declaration* of the
      // interface (e.g. an extern "C" prototype), not a call that can
      // execute — nothing to flag.
      if (open == 0) continue;
      bool inlined = false;
      {
        // The enclosing '{' may belong to a nested block; keep climbing
        // until the token before the candidate brace closes a parameter
        // list (a function signature) or we run out.
        std::size_t sig_end = open;
        for (;;) {
          std::size_t k = sig_end;
          bool is_function = false;
          while (k-- > 0) {
            const std::string& p = toks[k].text;
            if (p == ")") {
              is_function = true;
              break;
            }
            if (p == ";" || p == "{" || p == "}") break;
          }
          if (is_function || sig_end == 0) break;
          // Nested bare block: climb to the next enclosing '{'.
          int d = 0;
          std::size_t next_open = 0;
          for (std::size_t j = sig_end; j-- > 0;) {
            if (toks[j].text == "}") ++d;
            if (toks[j].text == "{") {
              if (d == 0) {
                next_open = j;
                break;
              }
              --d;
            }
          }
          if (next_open == 0) break;
          sig_end = next_open;
        }
        for (std::size_t k = sig_end; k-- > 0;) {
          const std::string& p = toks[k].text;
          if (p == ";" || p == "}" || p == "{") break;
          if (p == "always_inline" || p == "SPAM_ALWAYS_INLINE") {
            inlined = true;
            break;
          }
        }
      }
      if (!inlined) {
        ctx.report("fiber-tsan-inline", t.line,
                   t.text +
                       " called from a function not marked always_inline; "
                       "out-of-line TSan fiber announcements unbalance the "
                       "shadow call stacks");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// hdr-*: header hygiene.
// ---------------------------------------------------------------------------

// std symbol -> canonical header.  Only `std::`-qualified uses are matched
// (plus a few macro-ish names handled specially), which keeps false
// positives near zero at the cost of missing unqualified uses.
const std::unordered_map<std::string, std::string>& std_symbol_headers() {
  static const std::unordered_map<std::string, std::string> map = {
      {"vector", "vector"},
      {"string", "string"},
      {"deque", "deque"},
      {"array", "array"},
      {"map", "map"},
      {"set", "set"},
      {"unordered_map", "unordered_map"},
      {"unordered_set", "unordered_set"},
      {"mutex", "mutex"},
      {"lock_guard", "mutex"},
      {"unique_lock", "mutex"},
      {"scoped_lock", "mutex"},
      {"condition_variable", "condition_variable"},
      {"condition_variable_any", "condition_variable"},
      {"thread", "thread"},
      {"atomic", "atomic"},
      {"function", "functional"},
      {"unique_ptr", "memory"},
      {"shared_ptr", "memory"},
      {"weak_ptr", "memory"},
      {"make_unique", "memory"},
      {"make_shared", "memory"},
      {"addressof", "memory"},
      {"optional", "optional"},
      {"nullopt", "optional"},
      {"variant", "variant"},
      {"exception_ptr", "exception"},
      {"current_exception", "exception"},
      {"rethrow_exception", "exception"},
      {"uint8_t", "cstdint"},
      {"uint16_t", "cstdint"},
      {"uint32_t", "cstdint"},
      {"uint64_t", "cstdint"},
      {"int8_t", "cstdint"},
      {"int16_t", "cstdint"},
      {"int32_t", "cstdint"},
      {"int64_t", "cstdint"},
      {"uintptr_t", "cstdint"},
      {"intptr_t", "cstdint"},
      {"size_t", "cstddef"},
      {"ptrdiff_t", "cstddef"},
      {"byte", "cstddef"},
      {"max_align_t", "cstddef"},
      {"nullptr_t", "cstddef"},
      {"min", "algorithm"},
      {"max", "algorithm"},
      {"sort", "algorithm"},
      {"stable_sort", "algorithm"},
      {"fill", "algorithm"},
      {"clamp", "algorithm"},
      {"any_of", "algorithm"},
      {"all_of", "algorithm"},
      {"find_if", "algorithm"},
      {"move", "utility"},
      {"forward", "utility"},
      {"exchange", "utility"},
      {"swap", "utility"},
      {"pair", "utility"},
      {"declval", "utility"},
      {"numeric_limits", "limits"},
      {"launder", "new"},
      {"nothrow", "new"},
      {"snprintf", "cstdio"},
      {"fprintf", "cstdio"},
      {"printf", "cstdio"},
      {"fputc", "cstdio"},
      {"abort", "cstdlib"},
      {"exit", "cstdlib"},
      {"malloc", "cstdlib"},
      {"free", "cstdlib"},
      {"memcpy", "cstring"},
      {"memset", "cstring"},
      {"memcmp", "cstring"},
      {"strlen", "cstring"},
      {"ostream", "ostream"},
      {"ostringstream", "sstream"},
      {"istringstream", "sstream"},
      {"stringstream", "sstream"},
      {"is_same_v", "type_traits"},
      {"enable_if_t", "type_traits"},
      {"decay_t", "type_traits"},
      {"is_invocable_r_v", "type_traits"},
      {"is_nothrow_move_constructible_v", "type_traits"},
      {"is_arithmetic_v", "type_traits"},
      {"is_enum_v", "type_traits"},
      {"is_floating_point_v", "type_traits"},
      {"is_trivially_copyable_v", "type_traits"},
  };
  return map;
}

void check_header_hygiene(RuleContext& ctx) {
  const auto& toks = ctx.file.tokens;

  // hdr-pragma-once: the first directive must be `#pragma once`.
  bool pragma_once_first = false;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].in_directive) break;  // code before any directive
    if (toks[i].text == "#" && toks[i + 1].text == "pragma" &&
        toks[i + 2].text == "once") {
      pragma_once_first = true;
    }
    break;
  }
  if (!pragma_once_first) {
    const int line = toks.empty() ? 1 : toks.front().line;
    ctx.report("hdr-pragma-once", line,
               "header does not open with #pragma once");
  }

  // Collect this header's own #include set (both <...> and "...") —
  // note quoted include paths are stripped by the lexer as string
  // literals, so reparse them from the raw line text.
  std::unordered_set<std::string> includes;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!(toks[i].text == "#" && toks[i + 1].text == "include")) continue;
    const int line = toks[i].line;
    if (line - 1 < 0 || line - 1 >= static_cast<int>(ctx.file.lines.size())) {
      continue;
    }
    const std::string& raw = ctx.file.lines[static_cast<std::size_t>(line - 1)];
    for (const auto& [open_ch, close_ch] :
         std::vector<std::pair<char, char>>{{'<', '>'}, {'"', '"'}}) {
      const std::size_t a = raw.find(open_ch);
      if (a == std::string::npos) continue;
      const std::size_t b = raw.find(close_ch, a + 1);
      if (b == std::string::npos) continue;
      includes.insert(raw.substr(a + 1, b - a - 1));
      break;
    }
  }

  // hdr-self-contained: every std:: symbol used must have its canonical
  // header in the direct include set.
  const auto& symmap = std_symbol_headers();
  std::unordered_set<std::string> reported;  // one report per missing header
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.in_directive) continue;
    if (!std_qualified(toks, i)) continue;
    const auto it = symmap.find(t.text);
    if (it == symmap.end()) continue;
    if (includes.count(it->second) != 0) continue;
    if (!reported.insert(it->second).second) continue;
    ctx.report("hdr-self-contained", t.line,
               "std::" + t.text + " used but <" + it->second +
                   "> is not included by this header");
  }

  // assert() is macro-shaped, not std::-qualified.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text == "assert" && !toks[i].in_directive &&
        is_call(toks, i) && !is_member_access(toks, i) &&
        includes.count("cassert") == 0) {
      ctx.report("hdr-self-contained", toks[i].line,
                 "assert() used but <cassert> is not included by this header");
      break;
    }
  }
}

}  // namespace

// The deterministic simulation roots: everything the paper's numbers come
// out of.  Host-side tooling (driver, report, bench mains) may read clocks;
// these directories may not.
bool in_sim_scope(const std::string& rel_path) {
  static const std::array<const char*, 5> roots = {
      "src/sim/", "src/sphw/", "src/am/", "src/mpi/", "src/splitc/"};
  return std::any_of(roots.begin(), roots.end(),
                     [&](const char* r) { return starts_with(rel_path, r); });
}

std::vector<Violation> run_rules(const LexedFile& file,
                                 const std::string& rel_path) {
  std::vector<Violation> out;
  RuleContext ctx{file, &out, ""};

  if (in_sim_scope(rel_path)) {
    check_determinism(ctx);
    check_payload_escape(ctx);
  }
  if (in_runtime_scope(rel_path)) check_debt_now(ctx);
  if (starts_with(rel_path, "src/")) check_fiber_safety(ctx);
  if (starts_with(rel_path, "src/apps/") ||
      starts_with(rel_path, "src/splitc/")) {
    charge_loops_scan(ctx, 0, file.tokens.size());
  }
  check_hot_paths(ctx);
  if (is_header(rel_path)) check_header_hygiene(ctx);

  std::stable_sort(out.begin(), out.end(),
                   [](const Violation& a, const Violation& b) {
                     return a.line < b.line;
                   });
  return out;
}

void scan_hot_body(const LexedFile& file, std::size_t body_begin,
                   std::size_t body_end, const std::string& provenance,
                   std::vector<Violation>* out) {
  RuleContext ctx{file, out, provenance};
  hot_sites_scan(ctx, body_begin + 1, body_end);
}

void scan_charge_loop_body(const LexedFile& file, std::size_t body_begin,
                           std::size_t body_end,
                           const std::string& provenance,
                           std::vector<Violation>* out) {
  RuleContext ctx{file, out, provenance};
  charge_loops_scan(ctx, body_begin + 1, body_end);
}

void scan_det_body(const LexedFile& file, std::size_t body_begin,
                   std::size_t body_end, const std::string& provenance,
                   std::vector<Violation>* out) {
  RuleContext ctx{file, out, provenance};
  det_sites_scan(ctx, body_begin + 1, body_end);
}

}  // namespace spam::lint
