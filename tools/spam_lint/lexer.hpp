// spam_lint lexer: a comment/string-stripping tokenizer for C++ sources.
//
// This is deliberately not a real C++ front end.  The rules spam_lint
// enforces (see rules.hpp) key off identifiers, punctuation and a little
// brace structure, so a flat token stream with line numbers is enough —
// and it keeps the tool dependency-free and fast.  What the lexer *must*
// get right is never emitting tokens from inside comments, string
// literals (including raw strings — fiber.cpp carries an asm blob in one)
// or character literals, or every rule would fire on prose.
//
// Comments are not discarded entirely: lines whose comments carry a
// `spam-lint:` marker (inline suppressions, capacity annotations) are
// recorded so the rules can honor them.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace spam::lint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (incl. suffixes)
  kPunct,   // one punctuation character
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;          // 1-based
  bool in_directive = false;  // part of a preprocessor line
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<std::string> lines;  // raw source lines, 0-based index
  // Markers parsed from `// spam-lint: ...` comments, keyed by 1-based
  // line.  A marker is the token after "spam-lint:", e.g. "capacity-ok"
  // or "allow(hot-alloc)".
  std::unordered_map<int, std::unordered_set<std::string>> markers;
};

/// Tokenizes `text` (the contents of `path`, used only for messages).
LexedFile lex(const std::string& text);

}  // namespace spam::lint
