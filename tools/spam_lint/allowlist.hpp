// spam_lint allowlist: audited exceptions to the rules.
//
// File format (tools/spam_lint/allowlist.txt): one entry per line,
//
//   <rule-id>  <path-suffix>  [<substring of the offending source line>]
//
// '#' starts a comment.  An entry suppresses a violation when the rule id
// matches exactly, the violating file's relative path ends with
// <path-suffix>, and (if given) the raw source line contains <substring>.
// The substring keeps entries pinned to the audited construct: if the
// line changes, the entry stops matching and the violation resurfaces for
// re-audit.
#pragma once

#include <string>
#include <vector>

#include "rules.hpp"

namespace spam::lint {

struct AllowEntry {
  std::string rule;
  std::string path_suffix;
  std::string line_substring;  // empty = match any line in the file
};

class Allowlist {
 public:
  /// Parses `path`.  Returns false (and sets *error) on I/O failure or a
  /// malformed line.
  bool load(const std::string& path, std::string* error);

  /// True if `v` in file `rel_path` (with raw source `line_text`) is
  /// covered by an entry.  Matched entries are marked used.
  bool covers(const Violation& v, const std::string& rel_path,
              const std::string& line_text);

  /// Entries that never matched anything — stale audits worth deleting.
  std::vector<AllowEntry> unused() const;

 private:
  struct Entry {
    AllowEntry e;
    bool used = false;
  };
  std::vector<Entry> entries_;
};

}  // namespace spam::lint
