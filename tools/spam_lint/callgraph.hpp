// spam_lint call graph: cross-TU linking of the per-file symbol tables,
// reachability propagation, and the AM handler-suspension classifier.
//
// Edges are resolved by callee *name* (filtered by argument count) against
// every function definition seen across the lint run — no types, no
// overload resolution.  Three escape hatches keep that honest:
//
//   - a call whose name matches a known suspension primitive (`suspend`,
//     `elapse`, `settle`, `poll_until`, `yield`) marks the caller as
//     directly suspending, before any resolution;
//   - a call that resolves to nothing and is not a known-safe external
//     (std/libc names, container members, ALL_CAPS macros) taints the
//     caller as "reaches unresolved code";
//   - indirect invocations (`handlers_[h](...)`, `fn()` through a
//     std::function) taint the same way — the one exception is a lambda
//     literally passed to register_handler, which symbols.cpp roots as its
//     own handler node.
//
// Propagation is a fixpoint over the whole graph:
//   reaches-suspend / reaches-unresolved flow callee -> caller,
//   hot (from SPAM_HOT roots) and det (from sim-scope definitions) flow
//   caller -> callee.
//
// An audited `// spam-lint: never-suspends` marker on a definition (or a
// registration site) cuts suspend/unresolved propagation through that
// function: the audit asserts run-to-completion under the production
// configuration (see docs/static-analysis.md for the NodeCtx::charge
// example).  Hot/det propagation is *not* cut — the marker audits
// suspension only.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "symbols.hpp"

namespace spam::lint {

struct Violation;

enum class HandlerClass { kNeverSuspends, kMaySuspend, kUnknown };

const char* handler_class_name(HandlerClass c);

struct GraphNode {
  FunctionSym sym;
  const LexedFile* file = nullptr;  // owning lexed file (markers, body scans)

  std::vector<int> callees;              // resolved in-repo edges
  std::vector<std::string> unresolved;   // names with no definition match
  bool indirect_call = false;            // body invokes through a value
  bool calls_primitive = false;          // directly names a suspension prim
  std::string primitive;                 // which one
  bool audited_never = false;            // `spam-lint: never-suspends`

  bool reaches_suspend = false;
  int suspend_via = -1;  // callee edge that propagated it (-1: direct)
  bool reaches_unresolved = false;
  std::string first_unresolved;  // representative unresolved callee name

  bool hot_reach = false;  // reachable from a SPAM_HOT root
  int hot_from = -1;       // caller node that made it hot (-1: is a root)
  bool det_reach = false;  // reachable from a sim-scope definition
  int det_from = -1;
};

struct HandlerInfo {
  int node = -1;
  HandlerClass cls = HandlerClass::kUnknown;
  bool audited = false;
  std::string why;                   // one-line rationale
  std::vector<std::string> witness;  // call chain handler -> ... -> primitive
};

class CallGraph {
 public:
  /// Registers one lexed file's symbols.  `file` must outlive the graph.
  void add_file(const LexedFile* file, std::vector<FunctionSym> syms);

  /// Resolves edges and runs all reachability fixpoints.
  void finalize();

  const std::vector<GraphNode>& nodes() const { return nodes_; }

  /// Classifies every registered AM/bulk handler, sorted by (file, line).
  std::vector<HandlerInfo> classify_handlers() const;

  /// Chain of names from a SPAM_HOT root down to `node` ("a -> b -> c").
  std::string hot_chain(int node) const;
  /// Chain from a sim-scope definition down to `node`.
  std::string det_chain(int node) const;
  /// Chain from `node` down to the suspension primitive it reaches.
  std::vector<std::string> suspend_chain(int node) const;

  /// Rule findings only the graph can see: hot-alloc/hot-growth and
  /// hot-charge-loop in functions reachable from SPAM_HOT roots,
  /// det-* in out-of-scope functions reachable from sim-scope code.
  /// Suppression markers are honored at the offending line (the usual
  /// window) and at the reachable function's definition line.
  std::vector<Violation> transitive_violations() const;

 private:
  bool def_line_allows(const GraphNode& n, const std::string& rule) const;

  std::vector<GraphNode> nodes_;
};

}  // namespace spam::lint
