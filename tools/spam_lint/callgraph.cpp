#include "callgraph.hpp"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "rules.hpp"

namespace spam::lint {
namespace {

// Call names that ARE suspension points, matched before any resolution.
// `charge` is deliberately absent: its deferred-debt path never yields,
// and its localclock-off fallback to elapse() is covered by the audited
// `never-suspends` marker on NodeCtx::charge (see src/sim/world.hpp).
const std::unordered_set<std::string>& suspension_primitives() {
  static const std::unordered_set<std::string> set = {
      "suspend", "elapse", "elapse_us", "settle", "poll_until", "yield",
  };
  return set;
}

// External names known not to suspend a fiber: libc/std free functions,
// std container/utility members, and std type constructors.  A name that
// is neither here nor defined in the linted tree taints its caller as
// "reaches unresolved code".
const std::unordered_set<std::string>& safe_externals() {
  static const std::unordered_set<std::string> set = {
      // libc / cstdio / cstring / cstdlib
      "memcpy", "memmove", "memset", "memcmp", "strlen", "strcmp", "strncmp",
      "strchr", "strstr", "snprintf", "sprintf", "printf", "fprintf",
      "fputc", "fputs", "puts", "fwrite", "fread", "fopen", "fclose",
      "fflush", "ferror", "abort", "exit", "atexit", "malloc", "calloc",
      "realloc", "free", "strdup", "strtol", "strtoul", "strtoull",
      "strtod", "atoi", "atol", "abs", "labs", "llabs", "assert",
      "isalpha", "isalnum", "isdigit", "isspace", "islower", "isupper",
      "tolower", "toupper", "getline", "perror",
      // <algorithm> / <numeric> / <utility> / <memory>
      "min", "max", "clamp", "sort", "stable_sort", "fill", "fill_n",
      "copy", "copy_n", "any_of", "all_of", "none_of", "find_if",
      "find_first_of", "count_if", "accumulate", "iota", "lower_bound",
      "upper_bound", "equal", "lexicographical_compare", "remove",
      "remove_if", "unique", "reverse", "rotate", "swap", "exchange",
      "move", "forward", "declval", "get_if", "make_pair", "make_tuple",
      "tie", "apply", "visit", "holds_alternative", "distance", "advance",
      "next", "prev", "make_unique", "make_shared", "addressof", "launder",
      "to_string", "stoi", "stol", "stoull", "from_chars", "to_chars",
      // container / string / smart-pointer members
      "push_back", "emplace_back", "pop_back", "push_front", "emplace_front",
      "pop_front", "emplace", "emplace_hint", "insert", "erase", "clear",
      "resize", "reserve", "shrink_to_fit", "assign", "at", "front", "back",
      "begin", "end", "cbegin", "cend", "rbegin", "rend", "empty", "data",
      "capacity", "count", "contains", "find", "bucket_count", "substr",
      "c_str", "str", "append", "compare", "length", "push", "pop", "top",
      "reset", "release", "get_deleter", "swap", "load", "exchange",
      "fetch_add", "fetch_sub", "compare_exchange_weak",
      "compare_exchange_strong", "value", "value_or", "has_value",
      "operator",
      // std type constructors spelled as calls
      "string", "vector", "pair", "tuple", "optional", "function",
      "runtime_error", "logic_error", "out_of_range", "invalid_argument",
      "length_error",
  };
  return set;
}

// ALL_CAPS identifiers are macros by repo convention (SPAM_TRACE,
// SPAM_HOT, ...): opaque to a lexical parser, treated as neutral leaves
// rather than unresolved taint.  Documented in docs/static-analysis.md.
bool macro_like(const std::string& s) {
  if (s.empty() || !(std::isupper(static_cast<unsigned char>(s[0])) != 0)) {
    return false;
  }
  for (char c : s) {
    if (!(std::isupper(static_cast<unsigned char>(c)) != 0 ||
          std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '_')) {
      return false;
    }
  }
  return true;
}

bool has_marker_near(const LexedFile& file, int line, const char* marker) {
  for (int l : {line, line - 1, line - 2}) {
    auto it = file.markers.find(l);
    if (it != file.markers.end() && it->second.count(marker) != 0) return true;
  }
  return false;
}

}  // namespace

const char* handler_class_name(HandlerClass c) {
  switch (c) {
    case HandlerClass::kNeverSuspends:
      return "NEVER_SUSPENDS";
    case HandlerClass::kMaySuspend:
      return "MAY_SUSPEND";
    case HandlerClass::kUnknown:
      return "UNKNOWN";
  }
  return "UNKNOWN";
}

void CallGraph::add_file(const LexedFile* file, std::vector<FunctionSym> syms) {
  for (FunctionSym& s : syms) {
    GraphNode node;
    node.sym = std::move(s);
    node.file = file;
    nodes_.push_back(std::move(node));
  }
}

void CallGraph::finalize() {
  // Name index over real definitions (handler lambdas and synthesized
  // registration records are roots, never call targets).
  std::unordered_map<std::string, std::vector<int>> by_name;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const FunctionSym& sym = nodes_[i].sym;
    if (sym.name == "<lambda>" || sym.name == "<handler>") continue;
    by_name[sym.name].push_back(static_cast<int>(i));
  }

  for (GraphNode& node : nodes_) {
    std::unordered_set<int> edge_set;
    for (const CallSite& call : node.sym.calls) {
      if (call.indirect) {
        node.indirect_call = true;
        continue;
      }
      if (suspension_primitives().count(call.name) != 0) {
        if (!node.calls_primitive) {
          node.calls_primitive = true;
          node.primitive = call.name;
        }
        continue;
      }
      if (call.std_qual) continue;  // `std::name(...)`: external by spelling
      auto defs = by_name.find(call.name);
      if (defs != by_name.end()) {
        bool linked = false;
        for (int d : defs->second) {
          const FunctionSym& target = nodes_[static_cast<std::size_t>(d)].sym;
          const bool arity_ok =
              call.argc < 0 || target.param_max < 0 ||
              (call.argc >= target.param_min && call.argc <= target.param_max);
          if (!arity_ok) continue;
          linked = true;
          if (edge_set.insert(d).second) node.callees.push_back(d);
        }
        if (linked) continue;
        // Defined in-repo but no overload takes this many arguments: the
        // name collides with something else (e.g. `ptr.get()` vs a 7-arg
        // Endpoint::get).  Unresolved is the honest answer.
      }
      if (safe_externals().count(call.name) != 0) continue;
      if (macro_like(call.name)) continue;
      node.unresolved.push_back(call.name);
    }
    std::sort(node.unresolved.begin(), node.unresolved.end());
    node.unresolved.erase(
        std::unique(node.unresolved.begin(), node.unresolved.end()),
        node.unresolved.end());
    if (!node.unresolved.empty()) node.first_unresolved = node.unresolved[0];
    if (node.indirect_call && node.first_unresolved.empty()) {
      node.first_unresolved = "<indirect call>";
    }

    // Audited suspension cut: marker at the definition or registration.
    node.audited_never =
        node.file != nullptr &&
        (has_marker_near(*node.file, node.sym.line, "never-suspends") ||
         (node.sym.is_handler &&
          has_marker_near(*node.file, node.sym.handler_line,
                          "never-suspends")));
  }

  // Fixpoint: suspend / unresolved flow callee -> caller; an audited
  // function neither originates nor forwards either taint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (GraphNode& node : nodes_) {
      if (node.audited_never) continue;
      if (!node.reaches_suspend) {
        if (node.calls_primitive) {
          node.reaches_suspend = true;
          changed = true;
        } else {
          for (std::size_t e = 0; e < node.callees.size(); ++e) {
            const GraphNode& c =
                nodes_[static_cast<std::size_t>(node.callees[e])];
            if (c.reaches_suspend && !c.audited_never) {
              node.reaches_suspend = true;
              node.suspend_via = node.callees[e];
              changed = true;
              break;
            }
          }
        }
      }
      if (!node.reaches_unresolved) {
        if (!node.unresolved.empty() || node.indirect_call) {
          node.reaches_unresolved = true;
          changed = true;
        } else {
          for (int e : node.callees) {
            const GraphNode& c = nodes_[static_cast<std::size_t>(e)];
            if (c.reaches_unresolved && !c.audited_never) {
              node.reaches_unresolved = true;
              if (node.first_unresolved.empty()) {
                node.first_unresolved = c.first_unresolved;
              }
              changed = true;
              break;
            }
          }
        }
      }
    }
  }

  // Fixpoint: hot / det flow caller -> callee.
  changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      GraphNode& node = nodes_[i];
      const bool hot_src = node.sym.spam_hot || node.hot_reach;
      const bool det_src =
          node.det_reach || in_sim_scope(node.sym.file);
      if (!hot_src && !det_src) continue;
      for (int e : node.callees) {
        GraphNode& c = nodes_[static_cast<std::size_t>(e)];
        if (hot_src && !c.hot_reach && !c.sym.spam_hot) {
          c.hot_reach = true;
          c.hot_from = static_cast<int>(i);
          changed = true;
        }
        if (det_src && !c.det_reach && !in_sim_scope(c.sym.file)) {
          c.det_reach = true;
          c.det_from = static_cast<int>(i);
          changed = true;
        }
      }
    }
  }
}

std::vector<HandlerInfo> CallGraph::classify_handlers() const {
  std::vector<HandlerInfo> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const GraphNode& node = nodes_[i];
    if (!node.sym.is_handler) continue;
    HandlerInfo info;
    info.node = static_cast<int>(i);
    if (node.audited_never) {
      info.cls = HandlerClass::kNeverSuspends;
      info.audited = true;
      info.why = "audited: `spam-lint: never-suspends` at the registration "
                 "or definition";
    } else if (node.reaches_suspend) {
      info.cls = HandlerClass::kMaySuspend;
      info.witness = suspend_chain(static_cast<int>(i));
      info.why = "reaches suspension primitive";
      if (!info.witness.empty()) {
        info.why += " `" + info.witness.back() + "`";
      }
    } else if (node.reaches_unresolved) {
      info.cls = HandlerClass::kUnknown;
      info.why = "reaches unresolved call `" + node.first_unresolved + "`";
    } else {
      info.cls = HandlerClass::kNeverSuspends;
      info.why = "no suspension primitive reachable";
    }
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [this](const HandlerInfo& a, const HandlerInfo& b) {
              const FunctionSym& sa =
                  nodes_[static_cast<std::size_t>(a.node)].sym;
              const FunctionSym& sb =
                  nodes_[static_cast<std::size_t>(b.node)].sym;
              if (sa.file != sb.file) return sa.file < sb.file;
              if (sa.handler_line != sb.handler_line) {
                return sa.handler_line < sb.handler_line;
              }
              return sa.handler_bulk < sb.handler_bulk;
            });
  return out;
}

std::vector<std::string> CallGraph::suspend_chain(int node) const {
  std::vector<std::string> chain;
  int cur = node;
  for (int hops = 0; cur >= 0 && hops < 16; ++hops) {
    const GraphNode& n = nodes_[static_cast<std::size_t>(cur)];
    chain.push_back(n.sym.qual.empty() ? n.sym.name : n.sym.qual);
    if (n.calls_primitive) {
      chain.push_back(n.primitive);
      break;
    }
    cur = n.suspend_via;
  }
  return chain;
}

namespace {

std::string climb_chain(const std::vector<GraphNode>& nodes, int node,
                        int GraphNode::*from) {
  std::vector<std::string> names;
  int cur = node;
  for (int hops = 0; cur >= 0 && hops < 8; ++hops) {
    const GraphNode& n = nodes[static_cast<std::size_t>(cur)];
    names.push_back(n.sym.qual.empty() ? n.sym.name : n.sym.qual);
    cur = n.*from;
  }
  std::string out;
  for (std::size_t i = names.size(); i-- > 0;) {
    if (!out.empty()) out += " -> ";
    out += names[i];
  }
  return out;
}

}  // namespace

std::string CallGraph::hot_chain(int node) const {
  return climb_chain(nodes_, node, &GraphNode::hot_from);
}

std::string CallGraph::det_chain(int node) const {
  return climb_chain(nodes_, node, &GraphNode::det_from);
}

bool CallGraph::def_line_allows(const GraphNode& n,
                                const std::string& rule) const {
  if (n.file == nullptr) return false;
  const std::string marker = "allow(" + rule + ")";
  for (int l : {n.sym.line, n.sym.line - 1, n.sym.line - 2}) {
    auto it = n.file->markers.find(l);
    if (it != n.file->markers.end() && it->second.count(marker) != 0) {
      return true;
    }
  }
  return false;
}

std::vector<Violation> CallGraph::transitive_violations() const {
  std::vector<Violation> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const GraphNode& node = nodes_[i];
    const FunctionSym& sym = node.sym;
    if (node.file == nullptr) continue;
    if (sym.body_begin == 0 && sym.body_end == 0) continue;

    std::vector<Violation> local;
    if (node.hot_reach && !sym.spam_hot) {
      // Alloc/growth in a function the hot path reaches; SPAM_HOT bodies
      // themselves are covered by the direct per-body pass.
      scan_hot_body(*node.file, sym.body_begin, sym.body_end,
                    " [on the hot path: " + hot_chain(static_cast<int>(i)) +
                        "]",
                    &local);
    }
    if (node.hot_reach || sym.spam_hot) {
      // Charge-in-loop anywhere the hot path reaches; src/apps and
      // src/splitc files are already swept whole-file by the direct pass.
      const std::string& f = sym.file;
      const bool direct_swept = f.rfind("src/apps/", 0) == 0 ||
                                f.rfind("src/splitc/", 0) == 0;
      if (!direct_swept) {
        scan_charge_loop_body(
            *node.file, sym.body_begin, sym.body_end,
            " [on the hot path: " + hot_chain(static_cast<int>(i)) + "]",
            &local);
      }
    }
    if (node.det_reach && !in_sim_scope(sym.file)) {
      scan_det_body(*node.file, sym.body_begin, sym.body_end,
                    " [reachable from the simulation: " +
                        det_chain(static_cast<int>(i)) + "]",
                    &local);
    }
    for (Violation& v : local) {
      if (def_line_allows(node, v.rule)) continue;
      v.file = sym.file;
      out.push_back(std::move(v));
    }
  }
  return out;
}

}  // namespace spam::lint
