// spam_lint: the repo's determinism & hot-path invariant checker.
//
// v2 is a whole-program analyzer: after the per-file rule pass, every
// function definition is extracted into a cross-TU call graph, transitive
// rules (hot-*/det-* in functions merely *reachable* from SPAM_HOT roots
// or simulation code) are applied, and every registered AM handler is
// classified NEVER_SUSPENDS / MAY_SUSPEND / UNKNOWN (--handlers-out).
//
// Violations print relative to --root (default: the current directory),
// which is also the base for rule scoping.  Exit codes: 0 clean, 1 at
// least one violation (or a stale allowlist entry under --stale=error),
// 2 usage or I/O error — CI treats both nonzero codes as failure but can
// distinguish "found problems" from "broken invocation".
//
// This is a host-side tool: it may read the filesystem and allocate
// freely.  It is not part of the simulation and none of the determinism
// rules apply to it — but its *output* is deterministic (files, findings
// and handler records are sorted; no timestamps) so CI diffs are stable.

#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "allowlist.hpp"
#include "callgraph.hpp"
#include "lexer.hpp"
#include "report.hpp"
#include "rules.hpp"
#include "symbols.hpp"

namespace fs = std::filesystem;

namespace {

struct Options {
  fs::path root = fs::current_path();
  std::string allowlist_path;
  bool use_default_allowlist = true;
  std::string format = "text";  // text | json | sarif
  std::string stale = "warn";   // warn | error
  std::string handlers_out;     // write handler_classes.json here
  bool no_callgraph = false;    // per-file rules only (the v1 behavior)
  bool help = false;
  std::vector<fs::path> inputs;
};

// One row per flag; value flags accept both `--flag VALUE` and
// `--flag=VALUE`.  `set` returns false when the value is invalid.
struct Flag {
  const char* name;
  bool takes_value;
  const char* help;
  std::function<bool(Options&, const std::string&)> set;
};

const std::vector<Flag>& flag_table() {
  static const std::vector<Flag> flags = {
      {"--root", true, "DIR    base for relative paths and rule scoping",
       [](Options& o, const std::string& v) {
         o.root = fs::path(v);
         return true;
       }},
      {"--allowlist", true, "FILE   audited-violation list (see allowlist.hpp)",
       [](Options& o, const std::string& v) {
         o.allowlist_path = v;
         return true;
       }},
      {"--no-default-allowlist", false,
       "  skip ROOT/tools/spam_lint/allowlist.txt",
       [](Options& o, const std::string&) {
         o.use_default_allowlist = false;
         return true;
       }},
      {"--format", true, "FMT    output format: text (default), json, sarif",
       [](Options& o, const std::string& v) {
         if (v != "text" && v != "json" && v != "sarif") return false;
         o.format = v;
         return true;
       }},
      {"--stale", true,
       "MODE   stale allowlist entries: warn (default) or error (exit 1)",
       [](Options& o, const std::string& v) {
         if (v != "warn" && v != "error") return false;
         o.stale = v;
         return true;
       }},
      {"--handlers-out", true,
       "FILE  write the AM handler suspension report (handler_classes.json)",
       [](Options& o, const std::string& v) {
         o.handlers_out = v;
         return true;
       }},
      {"--no-callgraph", false,
       "      per-file rules only; no cross-TU analysis",
       [](Options& o, const std::string&) {
         o.no_callgraph = true;
         return true;
       }},
      {"--help", false, "             print this help and exit 0",
       [](Options& o, const std::string&) {
         o.help = true;
         return true;
       }},
  };
  return flags;
}

void print_help(std::FILE* to, const char* argv0) {
  std::fprintf(to, "usage: %s [options] <file-or-dir>...\n\noptions:\n",
               argv0);
  for (const Flag& f : flag_table()) {
    std::fprintf(to, "  %s %s\n", f.name, f.help);
  }
  std::fprintf(to,
               "\nLints every .hpp/.h/.cpp/.cc under the given paths; "
               "builds a cross-TU call\ngraph for transitive hot/det rules "
               "and AM handler suspension classification.\nExit codes: 0 "
               "clean, 1 violations (or stale allowlist under "
               "--stale=error),\n2 usage or I/O error.\n");
}

int usage(const char* argv0) {
  print_help(stderr, argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options* opts, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.empty() || arg[0] != '-') {
      opts->inputs.emplace_back(arg);
      continue;
    }
    if (arg == "-h") {
      opts->help = true;
      continue;
    }
    const Flag* match = nullptr;
    std::string value;
    bool has_value = false;
    for (const Flag& f : flag_table()) {
      if (arg == f.name) {
        match = &f;
        break;
      }
      const std::string prefix = std::string(f.name) + "=";
      if (f.takes_value && arg.rfind(prefix, 0) == 0) {
        match = &f;
        value = arg.substr(prefix.size());
        has_value = true;
        break;
      }
    }
    if (match == nullptr) {
      *error = "unknown option '" + arg + "'";
      return false;
    }
    if (match->takes_value && !has_value) {
      if (++i >= argc) {
        *error = std::string("missing value for ") + match->name;
        return false;
      }
      value = argv[i];
    }
    if (!match->set(*opts, value)) {
      *error = std::string("invalid value for ") + match->name + ": '" +
               value + "'";
      return false;
    }
  }
  return true;
}

bool has_lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::string to_rel(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty()) rel = p;
  return rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  {
    std::string error;
    if (!parse_args(argc, argv, &opts, &error)) {
      std::fprintf(stderr, "spam_lint: %s\n", error.c_str());
      return usage(argv[0]);
    }
  }
  if (opts.help) {
    print_help(stdout, argv[0]);
    return 0;
  }
  if (opts.inputs.empty()) return usage(argv[0]);
  if (!opts.handlers_out.empty() && opts.no_callgraph) {
    std::fprintf(stderr,
                 "spam_lint: --handlers-out requires the call graph "
                 "(drop --no-callgraph)\n");
    return 2;
  }

  std::error_code ec;
  opts.root = fs::canonical(opts.root, ec);
  if (ec) {
    std::fprintf(stderr, "spam_lint: bad --root: %s\n", ec.message().c_str());
    return 2;
  }

  spam::lint::Allowlist allowlist;
  if (opts.allowlist_path.empty() && opts.use_default_allowlist) {
    const fs::path def = opts.root / "tools" / "spam_lint" / "allowlist.txt";
    if (fs::exists(def, ec)) opts.allowlist_path = def.string();
  }
  if (!opts.allowlist_path.empty()) {
    std::string error;
    if (!allowlist.load(opts.allowlist_path, &error)) {
      std::fprintf(stderr, "spam_lint: %s\n", error.c_str());
      return 2;
    }
  }

  // Expand inputs into a sorted, de-duplicated file list: deterministic
  // output regardless of directory enumeration order.
  std::vector<fs::path> files;
  for (const fs::path& in : opts.inputs) {
    if (fs::is_directory(in, ec)) {
      for (fs::recursive_directory_iterator it(in, ec), end; !ec && it != end;
           it.increment(ec)) {
        if (it->is_regular_file(ec) && has_lintable_extension(it->path())) {
          files.push_back(fs::canonical(it->path(), ec));
        }
      }
    } else if (fs::is_regular_file(in, ec)) {
      files.push_back(fs::canonical(in, ec));
    } else {
      std::fprintf(stderr, "spam_lint: no such file or directory: %s\n",
                   in.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Lex everything up front: the call graph holds pointers into this deque
  // (stable addresses), and the allowlist filter needs line text later.
  std::deque<spam::lint::LexedFile> lexed;
  std::vector<std::string> rels;
  std::unordered_map<std::string, const spam::lint::LexedFile*> by_rel;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "spam_lint: cannot read %s\n",
                   file.string().c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    lexed.push_back(spam::lint::lex(buf.str()));
    rels.push_back(to_rel(file, opts.root));
    by_rel[rels.back()] = &lexed.back();
  }

  // Pass 1: per-file rules (exactly the v1 behavior).
  std::vector<spam::lint::Violation> all;
  for (std::size_t i = 0; i < lexed.size(); ++i) {
    for (spam::lint::Violation v : spam::lint::run_rules(lexed[i], rels[i])) {
      v.file = rels[i];
      all.push_back(std::move(v));
    }
  }

  // Pass 2: cross-TU call graph — transitive rules + handler classes.
  spam::lint::CallGraph graph;
  if (!opts.no_callgraph) {
    for (std::size_t i = 0; i < lexed.size(); ++i) {
      graph.add_file(&lexed[i],
                     spam::lint::extract_symbols(lexed[i], rels[i]));
    }
    graph.finalize();
    for (spam::lint::Violation& v : graph.transitive_violations()) {
      all.push_back(std::move(v));
    }
  }

  // Merge: sort by (file, line, rule); a direct and a transitive finding
  // at the same site collapse into one, the direct (first) message winning
  // because the sort is stable and pass 1 ran first.
  std::stable_sort(all.begin(), all.end(),
                   [](const spam::lint::Violation& a,
                      const spam::lint::Violation& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  all.erase(std::unique(all.begin(), all.end(),
                        [](const spam::lint::Violation& a,
                           const spam::lint::Violation& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule;
                        }),
            all.end());

  // Allowlist filter (needs the offending line's text).
  std::vector<spam::lint::Finding> findings;
  for (const spam::lint::Violation& v : all) {
    std::string line_text;
    const auto it = by_rel.find(v.file);
    if (it != by_rel.end()) {
      const std::size_t idx = static_cast<std::size_t>(v.line - 1);
      if (idx < it->second->lines.size()) line_text = it->second->lines[idx];
    }
    if (allowlist.covers(v, v.file, line_text)) continue;
    findings.push_back(
        spam::lint::Finding{v.file, v.line, v.rule, v.message});
  }

  const std::vector<spam::lint::AllowEntry> stale = allowlist.unused();

  if (opts.format == "text") {
    for (const spam::lint::Finding& f : findings) {
      std::printf("%s:%d: %s %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
  } else if (opts.format == "json") {
    const std::string doc = spam::lint::render_json(
        findings, static_cast<int>(lexed.size()), stale);
    std::fwrite(doc.data(), 1, doc.size(), stdout);
  } else {  // sarif
    const std::string doc = spam::lint::render_sarif(findings);
    std::fwrite(doc.data(), 1, doc.size(), stdout);
  }

  if (!opts.handlers_out.empty()) {
    const std::string doc = spam::lint::render_handler_report(
        graph, graph.classify_handlers());
    std::ofstream out(opts.handlers_out, std::ios::binary);
    if (!out || !(out << doc)) {
      std::fprintf(stderr, "spam_lint: cannot write %s\n",
                   opts.handlers_out.c_str());
      return 2;
    }
  }

  for (const spam::lint::AllowEntry& e : stale) {
    std::fprintf(stderr, "spam_lint: %s: unused allowlist entry: %s %s %s\n",
                 opts.stale == "error" ? "error" : "note", e.rule.c_str(),
                 e.path_suffix.c_str(), e.line_substring.c_str());
  }
  std::fprintf(stderr, "spam_lint: %d file(s), %d violation(s)\n",
               static_cast<int>(lexed.size()),
               static_cast<int>(findings.size()));
  if (!findings.empty()) return 1;
  if (!stale.empty() && opts.stale == "error") return 1;
  return 0;
}
