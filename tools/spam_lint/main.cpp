// spam_lint: the repo's determinism & hot-path invariant checker.
//
//   spam_lint [--root DIR] [--allowlist FILE] [--no-default-allowlist]
//             <file-or-dir>...
//
// Lints every .hpp/.h/.cpp/.cc under the given paths.  Violations print as
//
//   file:line: rule-id message
//
// relative to --root (default: the current directory), which is also the
// base for rule scoping (e.g. determinism rules fire only under src/sim,
// src/sphw, src/am, src/mpi, src/splitc).  Exit codes: 0 clean, 1 at
// least one violation, 2 usage or I/O error — CI treats both nonzero
// codes as failure but can distinguish "found problems" from "broken
// invocation".
//
// This is a host-side tool: it may read the filesystem and allocate
// freely.  It is not part of the simulation and none of the determinism
// rules apply to it — but its *output* is deterministic (files and
// violations are sorted) so CI diffs are stable.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "allowlist.hpp"
#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

bool has_lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::string to_rel(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty()) rel = p;
  return rel.generic_string();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--allowlist FILE] "
               "[--no-default-allowlist] <file-or-dir>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string allowlist_path;
  bool use_default_allowlist = true;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = fs::path(argv[i]);
    } else if (arg == "--allowlist") {
      if (++i >= argc) return usage(argv[0]);
      allowlist_path = argv[i];
    } else if (arg == "--no-default-allowlist") {
      use_default_allowlist = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "spam_lint: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::fprintf(stderr, "spam_lint: bad --root: %s\n", ec.message().c_str());
    return 2;
  }

  spam::lint::Allowlist allowlist;
  if (allowlist_path.empty() && use_default_allowlist) {
    const fs::path def = root / "tools" / "spam_lint" / "allowlist.txt";
    if (fs::exists(def, ec)) allowlist_path = def.string();
  }
  if (!allowlist_path.empty()) {
    std::string error;
    if (!allowlist.load(allowlist_path, &error)) {
      std::fprintf(stderr, "spam_lint: %s\n", error.c_str());
      return 2;
    }
  }

  // Expand inputs into a sorted, de-duplicated file list: deterministic
  // output regardless of directory enumeration order.
  std::vector<fs::path> files;
  for (const fs::path& in : inputs) {
    if (fs::is_directory(in, ec)) {
      for (fs::recursive_directory_iterator it(in, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && has_lintable_extension(it->path())) {
          files.push_back(fs::canonical(it->path(), ec));
        }
      }
    } else if (fs::is_regular_file(in, ec)) {
      files.push_back(fs::canonical(in, ec));
    } else {
      std::fprintf(stderr, "spam_lint: no such file or directory: %s\n",
                   in.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  int violations = 0;
  int files_linted = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "spam_lint: cannot read %s\n",
                   file.string().c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string rel = to_rel(file, root);

    const spam::lint::LexedFile lexed = spam::lint::lex(buf.str());
    ++files_linted;
    for (const spam::lint::Violation& v :
         spam::lint::run_rules(lexed, rel)) {
      const std::size_t idx = static_cast<std::size_t>(v.line - 1);
      const std::string line_text =
          idx < lexed.lines.size() ? lexed.lines[idx] : std::string();
      if (allowlist.covers(v, rel, line_text)) continue;
      std::printf("%s:%d: %s %s\n", rel.c_str(), v.line, v.rule.c_str(),
                  v.message.c_str());
      ++violations;
    }
  }

  for (const spam::lint::AllowEntry& e : allowlist.unused()) {
    std::fprintf(stderr,
                 "spam_lint: note: unused allowlist entry: %s %s %s\n",
                 e.rule.c_str(), e.path_suffix.c_str(),
                 e.line_substring.c_str());
  }
  std::fprintf(stderr, "spam_lint: %d file(s), %d violation(s)\n",
               files_linted, violations);
  return violations == 0 ? 0 : 1;
}
