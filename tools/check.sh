#!/usr/bin/env bash
# The repo gate: lint, build, and test across every analysis configuration.
#
#   tools/check.sh            # run everything available on this host
#   JOBS=4 tools/check.sh     # cap build/test parallelism
#   SPAM_CHECK_SKIP="asan ubsan" tools/check.sh   # skip named stages
#
# Stages (in order):
#   lint           spam_lint over src/ bench/ tools/ with the audited
#                  allowlist — determinism, hot-path, fiber, header rules,
#                  the cross-TU transitive passes and the AM handler
#                  classifier (artifacts under build-rwdi/lint/); stale
#                  allowlist entries are errors, and the full-tree run
#                  must finish inside a 2 s budget
#   lint-self      spam_lint over its own sources, plus a standalone
#                  -fsyntax-only compile of each tool header (the tool is
#                  not covered by the src/ header-hygiene object library)
#   build          default (RelWithDebInfo) build + full ctest suite
#   bench          bench_host_perf --quick smoke; fails if steady-state
#                  allocations are nonzero or the virtual-time anchors
#                  (pingpong RTT, bulk bandwidth) drift
#   app-bench      bench_app_perf --quick smoke; fails if steady-state
#                  allocations are nonzero or any Table 5/6 app's virtual
#                  result differs between the local-clock modes
#   asan           -fsanitize=address build + full suite
#   ubsan          -fsanitize=undefined (no recovery) build + full suite
#   tsan           ThreadSanitizer build + the `driver` label tests
#   thread-safety  Clang -Werror=thread-safety build (skipped when clang++
#                  is not installed)
#   clang-tidy     .clang-tidy over src/ and tools/ (skipped when
#                  clang-tidy is not installed)
#
# Toolchain-gated stages *skip with a notice* rather than fail so the gate
# is runnable on a gcc-only box; CI images with clang get full coverage.
# Any stage that runs and fails aborts the script with a nonzero exit.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
SKIP=" ${SPAM_CHECK_SKIP:-} "

note() { printf '\n==> %s\n' "$*"; }

skipped() {
  case "$SKIP" in *" $1 "*) return 0 ;; *) return 1 ;; esac
}

run_preset_suite() {  # <preset> [ctest-preset]
  local preset="$1" test_preset="${2:-$1}"
  cmake --preset "$preset" >/dev/null
  cmake --build --preset "$preset" -j "$JOBS"
  ctest --preset "$test_preset" -j "$JOBS"
}

if ! skipped lint; then
  note "spam_lint (per-file rules + call graph + handler classifier)"
  cmake --preset relwithdebinfo >/dev/null
  cmake --build --preset relwithdebinfo -j "$JOBS" --target spam_lint
  LINT=./build-rwdi/tools/spam_lint/spam_lint
  LINT_OUT=build-rwdi/lint
  mkdir -p "$LINT_OUT"
  # Machine-readable artifacts first (|| true: they must exist for CI
  # upload even when the gating run below fails).
  "$LINT" --root . --format=sarif src bench tools \
    > "$LINT_OUT/spam_lint.sarif" 2>/dev/null || true
  "$LINT" --root . --format=json src bench tools \
    > "$LINT_OUT/spam_lint.json" 2>/dev/null || true
  # The gating run: violations and stale allowlist entries both fail, and
  # the whole-tree walk (lex + rules + call graph) must stay under the 2 s
  # latency budget that keeps the lint viable as a pre-commit hook.
  start_ms=$(date +%s%3N)
  "$LINT" --root . --stale=error \
    --handlers-out "$LINT_OUT/handler_classes.json" src bench tools
  lint_ms=$(( $(date +%s%3N) - start_ms ))
  if [ "$lint_ms" -ge 2000 ]; then
    echo "lint gate: full-tree spam_lint took ${lint_ms} ms (budget 2000 ms)"
    exit 1
  fi
  echo "spam_lint: full tree in ${lint_ms} ms (budget 2000 ms)"
fi

if ! skipped lint-self; then
  note "spam_lint self-lint + tool header hygiene"
  # The linter holds itself to its own rules (hdr-* apply to every header;
  # the analyzer passes run over its sources like any others)...
  # (--no-default-allowlist: the audited exceptions are all src/-side, and
  # a subtree run would report every one of them stale)
  ./build-rwdi/tools/spam_lint/spam_lint --root . --no-default-allowlist \
    tools/spam_lint
  # ...and each tool header must compile standalone — the src/ hygiene
  # object library in tests/ does not cover tools/.
  for hdr in tools/spam_lint/*.hpp; do
    tu="$(mktemp --suffix=.cpp)"
    printf '#include "%s"\n#include "%s"\n' "$PWD/$hdr" "$PWD/$hdr" > "$tu"
    c++ -std=c++20 -fsyntax-only -I tools/spam_lint "$tu" ||
      { echo "lint-self: $hdr is not self-contained"; rm -f "$tu"; exit 1; }
    rm -f "$tu"
  done
fi

if ! skipped build; then
  note "default build + full test suite"
  run_preset_suite relwithdebinfo
fi

if ! skipped bench; then
  note "bench_host_perf --quick smoke (allocs + virtual-time anchors)"
  cmake --preset relwithdebinfo >/dev/null
  cmake --build --preset relwithdebinfo -j "$JOBS" --target bench_host_perf
  BENCH_JSON="$(mktemp)"
  ./build-rwdi/bench/bench_host_perf --quick --out "$BENCH_JSON" >/dev/null
  # Virtual-time anchors are exact: the model's RTT/bandwidth must not move
  # when host-perf work (fast path, queue layout) changes.  Wall-clock
  # numbers are NOT judged here — they belong to the committed baseline.
  fail=0
  grep -q '"zero": true' "$BENCH_JSON" ||
    { echo "bench gate: steady_state_allocs.zero != true"; fail=1; }
  grep -q '"virtual_rtt_us": 51.3418' "$BENCH_JSON" ||
    { echo "bench gate: pingpong virtual_rtt_us drifted from 51.3418"; fail=1; }
  grep -q '"virtual_bw_mbps": 34.2020' "$BENCH_JSON" ||
    { echo "bench gate: bulk virtual_bw_mbps drifted from 34.2020"; fail=1; }
  if [ "$fail" -ne 0 ]; then
    cat "$BENCH_JSON"
    rm -f "$BENCH_JSON"
    exit 1
  fi
  rm -f "$BENCH_JSON"
fi

if ! skipped app-bench; then
  note "bench_app_perf --quick smoke (allocs + local-clock mode identity)"
  cmake --preset relwithdebinfo >/dev/null
  cmake --build --preset relwithdebinfo -j "$JOBS" --target bench_app_perf
  APP_JSON="$(mktemp)"
  ./build-rwdi/bench/bench_app_perf --quick --out "$APP_JSON" >/dev/null
  # The bench itself runs every Table 5/6 app in both local-clock modes and
  # compares the virtual results bit-for-bit; the gate only reads the
  # verdict.  Wall-clock numbers are NOT judged here — they belong to the
  # committed baseline in the JSON.
  fail=0
  grep -q '"zero": true' "$APP_JSON" ||
    { echo "app-bench gate: steady_state_allocs.zero != true"; fail=1; }
  grep -q '"virt_identical": true, "all_valid": true' "$APP_JSON" ||
    { echo "app-bench gate: virtual results differ between clock modes"; \
      fail=1; }
  if [ "$fail" -ne 0 ]; then
    cat "$APP_JSON"
    rm -f "$APP_JSON"
    exit 1
  fi
  rm -f "$APP_JSON"
  # The microbenchmark virtual anchors (51.3418 us RTT, 34.2020 MB/s) are
  # checked by the bench stage above, whose default run already has the
  # local clock engaged — no separate anchor pass is needed here.
fi

if ! skipped asan; then
  note "AddressSanitizer build + full test suite"
  run_preset_suite asan
fi

if ! skipped ubsan; then
  note "UndefinedBehaviorSanitizer build + full test suite"
  run_preset_suite ubsan
fi

if ! skipped tsan; then
  note "ThreadSanitizer build + driver tests"
  run_preset_suite tsan tsan-driver
fi

if ! skipped thread-safety; then
  if command -v clang++ >/dev/null 2>&1; then
    note "Clang -Werror=thread-safety build"
    cmake --preset thread-safety >/dev/null
    cmake --build --preset thread-safety -j "$JOBS"
  else
    note "thread-safety: clang++ not installed, skipping"
  fi
fi

if ! skipped clang-tidy; then
  if command -v clang-tidy >/dev/null 2>&1; then
    note "clang-tidy over src/ and tools/"
    cmake --preset relwithdebinfo -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      >/dev/null
    find src tools -name '*.cpp' -print0 |
      xargs -0 -n 8 -P "$JOBS" clang-tidy -p build-rwdi --quiet
  else
    note "clang-tidy: not installed, skipping"
  fi
fi

note "all checks passed"
