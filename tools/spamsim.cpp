// spamsim — command-line driver for one-off experiments on the simulated
// SP, without writing a program: round-trips, bandwidth points, MPI
// latency, the Split-C sorts, NAS kernels, and fault-injection runs.
//
//   spamsim rtt   [--hw thin|wide] [--words 1..4]
//   spamsim raw-rtt
//   spamsim mpl-rtt
//   spamsim bw    [--mode sync-store|sync-get|async-store|async-get|
//                         mpl-block|mpl-pipe] [--bytes N] [--hw thin|wide]
//   spamsim mpi-lat [--impl amopt|amunopt|mpif] [--bytes N] [--nodes N]
//                   [--hw thin|wide]
//   spamsim mpi-bw  [--impl ...] [--bytes N] [--hw thin|wide]
//   spamsim sort  [--backend am|mpl|cm5|cs2|unet] [--keys N]
//                 [--variant small|bulk] [--kind sample|radix] [--nodes N]
//   spamsim nas   [--kernel bt|ft|lu|mg|sp] [--impl amopt|mpif] [--n N]
//                 [--iters N] [--nodes N]
//   spamsim fault [--drop 0.05] [--bytes N] [--seed S]
//   spamsim fig3  [--jobs N] [--sizes full|quick]
//
// `--jobs N` (fig3) spreads the sweep's independent simulations across N
// host threads via the driver::SweepRunner; the printed table is byte-for-
// byte identical for any N (see docs/benchmarks.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "apps/nas.hpp"
#include "apps/splitc_apps.hpp"
#include "driver/sweep.hpp"
#include "harness.hpp"
#include "micro.hpp"

namespace {

using spam::bench::AmBwMode;
using spam::bench::MplBwMode;

struct Args {
  std::string cmd;
  std::map<std::string, std::string> kv;

  std::string get(const std::string& k, const std::string& dflt) const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  long num(const std::string& k, long dflt) const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : std::strtol(it->second.c_str(), nullptr, 10);
  }
  double real(const std::string& k, double dflt) const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: spamsim <rtt|raw-rtt|mpl-rtt|bw|mpi-lat|mpi-bw|sort|"
               "nas|fault|fig3> [--key value ...]\n"
               "see the header of tools/spamsim.cpp for every flag\n");
  return 2;
}

int run_fig3(const Args& a) {
  // The full Figure 3 sweep: warm every (curve, size) point in parallel,
  // then render the table from the cache.  Output is independent of --jobs.
  std::vector<std::size_t> sizes = spam::bench::figure3_sizes();
  if (a.get("sizes", "full") == "quick") {
    sizes = {16, 512, 8192, 65536, 1u << 20};
  }
  spam::driver::SweepRunner runner(static_cast<int>(a.num("jobs", 0)));
  runner.run(spam::bench::fig3_points(sizes));
  const std::string rendered = spam::bench::fig3_table(sizes).render();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  return 0;
}

spam::sphw::SpParams hw_of(const Args& a) {
  return a.get("hw", "thin") == "wide" ? spam::sphw::SpParams::wide_node()
                                       : spam::sphw::SpParams::thin_node();
}

spam::mpi::MpiWorldConfig mpi_cfg(const Args& a) {
  spam::mpi::MpiWorldConfig cfg;
  cfg.nodes = static_cast<int>(a.num("nodes", 4));
  cfg.hw = hw_of(a);
  const std::string impl = a.get("impl", "amopt");
  if (impl == "mpif") {
    cfg.impl = spam::mpi::MpiImpl::kMpiF;
    cfg.f_cfg = a.get("hw", "thin") == "wide"
                    ? spam::mpif::MpiFConfig::wide()
                    : spam::mpif::MpiFConfig::thin();
  } else if (impl == "amunopt") {
    cfg.impl = spam::mpi::MpiImpl::kAmUnoptimized;
  } else {
    cfg.impl = spam::mpi::MpiImpl::kAmOptimized;
  }
  return cfg;
}

int run_sort(const Args& a) {
  spam::splitc::SplitCConfig cfg;
  cfg.nodes = static_cast<int>(a.num("nodes", 8));
  const std::string backend = a.get("backend", "am");
  if (backend == "mpl") {
    cfg.backend = spam::splitc::Backend::kSpMpl;
  } else if (backend == "cm5" || backend == "cs2" || backend == "unet") {
    cfg.backend = spam::splitc::Backend::kLogGp;
    cfg.loggp = backend == "cm5"   ? spam::logp::LogGpParams::cm5()
                : backend == "cs2" ? spam::logp::LogGpParams::meiko_cs2()
                                   : spam::logp::LogGpParams::unet_atm();
  } else {
    cfg.backend = spam::splitc::Backend::kSpAm;
  }
  const auto variant = a.get("variant", "small") == "bulk"
                           ? spam::apps::SortVariant::kBulk
                           : spam::apps::SortVariant::kSmallMessage;
  const auto keys = static_cast<std::size_t>(a.num("keys", 65536));
  spam::splitc::SplitCWorld world(cfg);
  const spam::apps::PhaseTimes r =
      a.get("kind", "sample") == "radix"
          ? spam::apps::run_radix_sort(world, keys, variant)
          : spam::apps::run_sample_sort(world, keys, variant);
  std::printf("%s sort, %zu keys, backend=%s, variant=%s\n",
              a.get("kind", "sample").c_str(), keys, backend.c_str(),
              a.get("variant", "small").c_str());
  std::printf("total %.4f s  cpu %.4f s  net %.4f s  valid=%s\n", r.total_s,
              r.cpu_s, r.comm_s, r.valid ? "yes" : "NO");
  return r.valid ? 0 : 1;
}

int run_nas(const Args& a) {
  auto cfg = mpi_cfg(a);
  if (a.kv.find("nodes") == a.kv.end()) cfg.nodes = 16;
  spam::mpi::MpiWorld world(cfg);
  const std::string k = a.get("kernel", "mg");
  const int n = static_cast<int>(a.num("n", k == "lu" ? 128 : 32));
  const int iters = static_cast<int>(a.num("iters", 2));
  spam::apps::NasResult r;
  if (k == "bt") r = spam::apps::run_bt(world, n, iters);
  else if (k == "ft") r = spam::apps::run_ft(world, n, iters);
  else if (k == "lu") r = spam::apps::run_lu(world, n, iters);
  else if (k == "sp") r = spam::apps::run_sp(world, n, iters);
  else r = spam::apps::run_mg(world, n, iters);
  std::printf("NAS %s, n=%d, iters=%d, nodes=%d, impl=%s\n", k.c_str(), n,
              iters, cfg.nodes, a.get("impl", "amopt").c_str());
  std::printf("time %.4f s  checksum %.10g\n", r.time_s, r.checksum);
  return 0;
}

int run_fault(const Args& a) {
  const double drop = a.real("drop", 0.05);
  const auto len = static_cast<std::size_t>(a.num("bytes", 262144));
  spam::am::AmParams amp;
  amp.keepalive_poll_threshold = 400;
  spam::sim::World world(2, static_cast<std::uint64_t>(a.num("seed", 1)));
  spam::sphw::SpMachine machine(world, hw_of(a));
  spam::am::AmNet net(machine, amp);
  spam::sim::Rng rng(static_cast<std::uint64_t>(a.num("seed", 1)) * 97 + 5);
  machine.fabric().set_drop_fn(
      [&](const spam::sphw::Packet&) { return rng.chance(drop); });
  std::vector<std::byte> src(len, std::byte{0x3c}), dst(len);
  bool done = false;
  spam::sim::Time t = 0;
  world.spawn(0, [&](spam::sim::NodeCtx& ctx) {
    net.ep(0).store_async(1, dst.data(), src.data(), len, 0, 0,
                          [&] { done = true; });
    net.ep(0).poll_until([&] { return done; });
    t = ctx.now();
  });
  world.spawn(1, [&](spam::sim::NodeCtx&) {
    net.ep(1).poll_until([&] { return done; });
  });
  world.run();
  const bool ok = std::memcmp(src.data(), dst.data(), len) == 0;
  std::printf("drop=%.1f%%  %zu bytes %s in %.2f ms  retransmitted chunks: "
              "%llu  probes: %llu\n",
              drop * 100, len, ok ? "intact" : "CORRUPT",
              spam::sim::to_usec(t) / 1000.0,
              static_cast<unsigned long long>(
                  net.ep(0).stats().retransmitted_chunks),
              static_cast<unsigned long long>(net.ep(0).stats().probes_sent));
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args a;
  a.cmd = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return usage();
    a.kv[argv[i] + 2] = argv[i + 1];
  }

  if (a.cmd == "rtt") {
    std::printf("%.2f us\n", spam::bench::am_rtt_us(
                                 static_cast<int>(a.num("words", 1)),
                                 hw_of(a)));
  } else if (a.cmd == "raw-rtt") {
    std::printf("%.2f us\n", spam::bench::raw_rtt_us(hw_of(a)));
  } else if (a.cmd == "mpl-rtt") {
    std::printf("%.2f us\n", spam::bench::mpl_rtt_us(hw_of(a)));
  } else if (a.cmd == "bw") {
    const auto bytes = static_cast<std::size_t>(a.num("bytes", 1 << 20));
    const std::string mode = a.get("mode", "async-store");
    double mbps = 0;
    if (mode == "sync-store") {
      mbps = spam::bench::am_bandwidth_mbps(AmBwMode::kSyncStore, bytes,
                                            hw_of(a));
    } else if (mode == "sync-get") {
      mbps = spam::bench::am_bandwidth_mbps(AmBwMode::kSyncGet, bytes,
                                            hw_of(a));
    } else if (mode == "async-get") {
      mbps = spam::bench::am_bandwidth_mbps(AmBwMode::kPipelinedAsyncGet,
                                            bytes, hw_of(a));
    } else if (mode == "mpl-block") {
      mbps = spam::bench::mpl_bandwidth_mbps(MplBwMode::kBlocking, bytes,
                                             hw_of(a));
    } else if (mode == "mpl-pipe") {
      mbps = spam::bench::mpl_bandwidth_mbps(MplBwMode::kPipelined, bytes,
                                             hw_of(a));
    } else {
      mbps = spam::bench::am_bandwidth_mbps(AmBwMode::kPipelinedAsyncStore,
                                            bytes, hw_of(a));
    }
    std::printf("%.2f MB/s at %zu bytes (%s)\n", mbps, bytes, mode.c_str());
  } else if (a.cmd == "mpi-lat") {
    std::printf("%.2f us per hop\n",
                spam::bench::mpi_hop_latency_us(
                    mpi_cfg(a), static_cast<std::size_t>(a.num("bytes", 4))));
  } else if (a.cmd == "mpi-bw") {
    std::printf("%.2f MB/s\n",
                spam::bench::mpi_bandwidth_mbps(
                    mpi_cfg(a),
                    static_cast<std::size_t>(a.num("bytes", 65536))));
  } else if (a.cmd == "sort") {
    return run_sort(a);
  } else if (a.cmd == "nas") {
    return run_nas(a);
  } else if (a.cmd == "fault") {
    return run_fault(a);
  } else if (a.cmd == "fig3") {
    return run_fig3(a);
  } else {
    return usage();
  }
  return 0;
}
