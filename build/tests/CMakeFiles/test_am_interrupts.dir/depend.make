# Empty dependencies file for test_am_interrupts.
# This may be replaced when dependencies are built.
