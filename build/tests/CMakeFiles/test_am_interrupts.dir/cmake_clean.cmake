file(REMOVE_RECURSE
  "CMakeFiles/test_am_interrupts.dir/test_am_interrupts.cpp.o"
  "CMakeFiles/test_am_interrupts.dir/test_am_interrupts.cpp.o.d"
  "test_am_interrupts"
  "test_am_interrupts.pdb"
  "test_am_interrupts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_am_interrupts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
