# Empty dependencies file for test_loggp.
# This may be replaced when dependencies are built.
