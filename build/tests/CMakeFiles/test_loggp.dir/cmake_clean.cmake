file(REMOVE_RECURSE
  "CMakeFiles/test_loggp.dir/test_loggp.cpp.o"
  "CMakeFiles/test_loggp.dir/test_loggp.cpp.o.d"
  "test_loggp"
  "test_loggp.pdb"
  "test_loggp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loggp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
