# Empty dependencies file for test_am_basic.
# This may be replaced when dependencies are built.
