file(REMOVE_RECURSE
  "CMakeFiles/test_am_basic.dir/test_am_basic.cpp.o"
  "CMakeFiles/test_am_basic.dir/test_am_basic.cpp.o.d"
  "test_am_basic"
  "test_am_basic.pdb"
  "test_am_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_am_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
