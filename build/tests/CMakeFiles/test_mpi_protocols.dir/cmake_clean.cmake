file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_protocols.dir/test_mpi_protocols.cpp.o"
  "CMakeFiles/test_mpi_protocols.dir/test_mpi_protocols.cpp.o.d"
  "test_mpi_protocols"
  "test_mpi_protocols.pdb"
  "test_mpi_protocols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
