file(REMOVE_RECURSE
  "CMakeFiles/test_sphw_edge.dir/test_sphw_edge.cpp.o"
  "CMakeFiles/test_sphw_edge.dir/test_sphw_edge.cpp.o.d"
  "test_sphw_edge"
  "test_sphw_edge.pdb"
  "test_sphw_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sphw_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
