file(REMOVE_RECURSE
  "CMakeFiles/test_am_flowcontrol.dir/test_am_flowcontrol.cpp.o"
  "CMakeFiles/test_am_flowcontrol.dir/test_am_flowcontrol.cpp.o.d"
  "test_am_flowcontrol"
  "test_am_flowcontrol.pdb"
  "test_am_flowcontrol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_am_flowcontrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
