# Empty compiler generated dependencies file for test_am_flowcontrol.
# This may be replaced when dependencies are built.
