# Empty dependencies file for test_mpi_alloc.
# This may be replaced when dependencies are built.
