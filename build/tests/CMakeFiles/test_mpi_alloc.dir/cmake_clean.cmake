file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_alloc.dir/test_mpi_alloc.cpp.o"
  "CMakeFiles/test_mpi_alloc.dir/test_mpi_alloc.cpp.o.d"
  "test_mpi_alloc"
  "test_mpi_alloc.pdb"
  "test_mpi_alloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
