file(REMOVE_RECURSE
  "CMakeFiles/test_sphw_adapter.dir/test_sphw_adapter.cpp.o"
  "CMakeFiles/test_sphw_adapter.dir/test_sphw_adapter.cpp.o.d"
  "test_sphw_adapter"
  "test_sphw_adapter.pdb"
  "test_sphw_adapter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sphw_adapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
