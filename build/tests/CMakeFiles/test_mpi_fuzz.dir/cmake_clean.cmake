file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_fuzz.dir/test_mpi_fuzz.cpp.o"
  "CMakeFiles/test_mpi_fuzz.dir/test_mpi_fuzz.cpp.o.d"
  "test_mpi_fuzz"
  "test_mpi_fuzz.pdb"
  "test_mpi_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
