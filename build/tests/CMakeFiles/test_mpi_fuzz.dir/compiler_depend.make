# Empty compiler generated dependencies file for test_mpi_fuzz.
# This may be replaced when dependencies are built.
