file(REMOVE_RECURSE
  "CMakeFiles/test_splitc_spread.dir/test_splitc_spread.cpp.o"
  "CMakeFiles/test_splitc_spread.dir/test_splitc_spread.cpp.o.d"
  "test_splitc_spread"
  "test_splitc_spread.pdb"
  "test_splitc_spread[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_splitc_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
