# Empty compiler generated dependencies file for test_splitc_spread.
# This may be replaced when dependencies are built.
