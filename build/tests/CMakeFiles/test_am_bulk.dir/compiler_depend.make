# Empty compiler generated dependencies file for test_am_bulk.
# This may be replaced when dependencies are built.
