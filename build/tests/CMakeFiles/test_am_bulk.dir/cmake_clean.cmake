file(REMOVE_RECURSE
  "CMakeFiles/test_am_bulk.dir/test_am_bulk.cpp.o"
  "CMakeFiles/test_am_bulk.dir/test_am_bulk.cpp.o.d"
  "test_am_bulk"
  "test_am_bulk.pdb"
  "test_am_bulk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_am_bulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
