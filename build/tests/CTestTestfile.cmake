# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build/tests/test_sim_fiber[1]_include.cmake")
include("/root/repo/build/tests/test_sim_world[1]_include.cmake")
include("/root/repo/build/tests/test_sphw_adapter[1]_include.cmake")
include("/root/repo/build/tests/test_sphw_edge[1]_include.cmake")
include("/root/repo/build/tests/test_am_basic[1]_include.cmake")
include("/root/repo/build/tests/test_am_bulk[1]_include.cmake")
include("/root/repo/build/tests/test_am_flowcontrol[1]_include.cmake")
include("/root/repo/build/tests/test_am_interrupts[1]_include.cmake")
include("/root/repo/build/tests/test_mpl[1]_include.cmake")
include("/root/repo/build/tests/test_loggp[1]_include.cmake")
include("/root/repo/build/tests/test_splitc[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_alloc[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_splitc_spread[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_fuzz[1]_include.cmake")
