# Empty compiler generated dependencies file for spam_mpi.
# This may be replaced when dependencies are built.
