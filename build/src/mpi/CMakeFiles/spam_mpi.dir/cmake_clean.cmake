file(REMOVE_RECURSE
  "CMakeFiles/spam_mpi.dir/am_device.cpp.o"
  "CMakeFiles/spam_mpi.dir/am_device.cpp.o.d"
  "CMakeFiles/spam_mpi.dir/buffer_alloc.cpp.o"
  "CMakeFiles/spam_mpi.dir/buffer_alloc.cpp.o.d"
  "CMakeFiles/spam_mpi.dir/collectives.cpp.o"
  "CMakeFiles/spam_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/spam_mpi.dir/match.cpp.o"
  "CMakeFiles/spam_mpi.dir/match.cpp.o.d"
  "CMakeFiles/spam_mpi.dir/mpi.cpp.o"
  "CMakeFiles/spam_mpi.dir/mpi.cpp.o.d"
  "CMakeFiles/spam_mpi.dir/types.cpp.o"
  "CMakeFiles/spam_mpi.dir/types.cpp.o.d"
  "libspam_mpi.a"
  "libspam_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
