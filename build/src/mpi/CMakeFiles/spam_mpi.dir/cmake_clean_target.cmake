file(REMOVE_RECURSE
  "libspam_mpi.a"
)
