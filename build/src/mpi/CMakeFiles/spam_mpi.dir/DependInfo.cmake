
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/am_device.cpp" "src/mpi/CMakeFiles/spam_mpi.dir/am_device.cpp.o" "gcc" "src/mpi/CMakeFiles/spam_mpi.dir/am_device.cpp.o.d"
  "/root/repo/src/mpi/buffer_alloc.cpp" "src/mpi/CMakeFiles/spam_mpi.dir/buffer_alloc.cpp.o" "gcc" "src/mpi/CMakeFiles/spam_mpi.dir/buffer_alloc.cpp.o.d"
  "/root/repo/src/mpi/collectives.cpp" "src/mpi/CMakeFiles/spam_mpi.dir/collectives.cpp.o" "gcc" "src/mpi/CMakeFiles/spam_mpi.dir/collectives.cpp.o.d"
  "/root/repo/src/mpi/match.cpp" "src/mpi/CMakeFiles/spam_mpi.dir/match.cpp.o" "gcc" "src/mpi/CMakeFiles/spam_mpi.dir/match.cpp.o.d"
  "/root/repo/src/mpi/mpi.cpp" "src/mpi/CMakeFiles/spam_mpi.dir/mpi.cpp.o" "gcc" "src/mpi/CMakeFiles/spam_mpi.dir/mpi.cpp.o.d"
  "/root/repo/src/mpi/types.cpp" "src/mpi/CMakeFiles/spam_mpi.dir/types.cpp.o" "gcc" "src/mpi/CMakeFiles/spam_mpi.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/am/CMakeFiles/spam_am.dir/DependInfo.cmake"
  "/root/repo/build/src/sphw/CMakeFiles/spam_sphw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spam_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
