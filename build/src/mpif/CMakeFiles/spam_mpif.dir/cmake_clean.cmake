file(REMOVE_RECURSE
  "CMakeFiles/spam_mpif.dir/mpif.cpp.o"
  "CMakeFiles/spam_mpif.dir/mpif.cpp.o.d"
  "libspam_mpif.a"
  "libspam_mpif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_mpif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
