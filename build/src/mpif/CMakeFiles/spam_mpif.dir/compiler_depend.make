# Empty compiler generated dependencies file for spam_mpif.
# This may be replaced when dependencies are built.
