file(REMOVE_RECURSE
  "libspam_mpif.a"
)
