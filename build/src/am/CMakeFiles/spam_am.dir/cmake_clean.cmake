file(REMOVE_RECURSE
  "CMakeFiles/spam_am.dir/endpoint.cpp.o"
  "CMakeFiles/spam_am.dir/endpoint.cpp.o.d"
  "libspam_am.a"
  "libspam_am.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_am.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
