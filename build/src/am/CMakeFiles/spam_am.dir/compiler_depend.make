# Empty compiler generated dependencies file for spam_am.
# This may be replaced when dependencies are built.
