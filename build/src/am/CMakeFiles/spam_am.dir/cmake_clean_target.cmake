file(REMOVE_RECURSE
  "libspam_am.a"
)
