file(REMOVE_RECURSE
  "libspam_mpl.a"
)
