# Empty dependencies file for spam_mpl.
# This may be replaced when dependencies are built.
