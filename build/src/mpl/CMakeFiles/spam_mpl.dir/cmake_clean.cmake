file(REMOVE_RECURSE
  "CMakeFiles/spam_mpl.dir/mpl.cpp.o"
  "CMakeFiles/spam_mpl.dir/mpl.cpp.o.d"
  "libspam_mpl.a"
  "libspam_mpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_mpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
