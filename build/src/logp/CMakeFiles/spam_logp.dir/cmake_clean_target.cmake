file(REMOVE_RECURSE
  "libspam_logp.a"
)
