# Empty dependencies file for spam_logp.
# This may be replaced when dependencies are built.
