file(REMOVE_RECURSE
  "CMakeFiles/spam_logp.dir/loggp.cpp.o"
  "CMakeFiles/spam_logp.dir/loggp.cpp.o.d"
  "libspam_logp.a"
  "libspam_logp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_logp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
