file(REMOVE_RECURSE
  "CMakeFiles/spam_apps.dir/nas.cpp.o"
  "CMakeFiles/spam_apps.dir/nas.cpp.o.d"
  "CMakeFiles/spam_apps.dir/splitc_apps.cpp.o"
  "CMakeFiles/spam_apps.dir/splitc_apps.cpp.o.d"
  "libspam_apps.a"
  "libspam_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
