file(REMOVE_RECURSE
  "libspam_apps.a"
)
