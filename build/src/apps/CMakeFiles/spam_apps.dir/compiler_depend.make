# Empty compiler generated dependencies file for spam_apps.
# This may be replaced when dependencies are built.
