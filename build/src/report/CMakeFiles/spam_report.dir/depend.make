# Empty dependencies file for spam_report.
# This may be replaced when dependencies are built.
