file(REMOVE_RECURSE
  "CMakeFiles/spam_report.dir/report.cpp.o"
  "CMakeFiles/spam_report.dir/report.cpp.o.d"
  "libspam_report.a"
  "libspam_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
