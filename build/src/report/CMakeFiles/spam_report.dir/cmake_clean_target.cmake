file(REMOVE_RECURSE
  "libspam_report.a"
)
