# Empty dependencies file for spam_sim.
# This may be replaced when dependencies are built.
