file(REMOVE_RECURSE
  "CMakeFiles/spam_sim.dir/engine.cpp.o"
  "CMakeFiles/spam_sim.dir/engine.cpp.o.d"
  "CMakeFiles/spam_sim.dir/fiber.cpp.o"
  "CMakeFiles/spam_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/spam_sim.dir/world.cpp.o"
  "CMakeFiles/spam_sim.dir/world.cpp.o.d"
  "libspam_sim.a"
  "libspam_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
