file(REMOVE_RECURSE
  "libspam_sim.a"
)
