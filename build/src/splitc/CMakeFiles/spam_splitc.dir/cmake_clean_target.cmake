file(REMOVE_RECURSE
  "libspam_splitc.a"
)
