# Empty dependencies file for spam_splitc.
# This may be replaced when dependencies are built.
