file(REMOVE_RECURSE
  "CMakeFiles/spam_splitc.dir/am_backend.cpp.o"
  "CMakeFiles/spam_splitc.dir/am_backend.cpp.o.d"
  "CMakeFiles/spam_splitc.dir/mpl_backend.cpp.o"
  "CMakeFiles/spam_splitc.dir/mpl_backend.cpp.o.d"
  "CMakeFiles/spam_splitc.dir/runtime.cpp.o"
  "CMakeFiles/spam_splitc.dir/runtime.cpp.o.d"
  "libspam_splitc.a"
  "libspam_splitc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_splitc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
