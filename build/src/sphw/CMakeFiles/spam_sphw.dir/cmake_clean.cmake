file(REMOVE_RECURSE
  "CMakeFiles/spam_sphw.dir/adapter.cpp.o"
  "CMakeFiles/spam_sphw.dir/adapter.cpp.o.d"
  "CMakeFiles/spam_sphw.dir/switch.cpp.o"
  "CMakeFiles/spam_sphw.dir/switch.cpp.o.d"
  "libspam_sphw.a"
  "libspam_sphw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_sphw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
