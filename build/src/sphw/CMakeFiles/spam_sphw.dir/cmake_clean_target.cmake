file(REMOVE_RECURSE
  "libspam_sphw.a"
)
