# Empty compiler generated dependencies file for spam_sphw.
# This may be replaced when dependencies are built.
