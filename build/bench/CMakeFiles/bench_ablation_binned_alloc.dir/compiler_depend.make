# Empty compiler generated dependencies file for bench_ablation_binned_alloc.
# This may be replaced when dependencies are built.
