file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_nas.dir/bench_table6_nas.cpp.o"
  "CMakeFiles/bench_table6_nas.dir/bench_table6_nas.cpp.o.d"
  "bench_table6_nas"
  "bench_table6_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
