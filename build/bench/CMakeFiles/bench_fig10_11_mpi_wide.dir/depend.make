# Empty dependencies file for bench_fig10_11_mpi_wide.
# This may be replaced when dependencies are built.
