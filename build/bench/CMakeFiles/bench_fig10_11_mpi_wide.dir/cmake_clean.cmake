file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_mpi_wide.dir/bench_fig10_11_mpi_wide.cpp.o"
  "CMakeFiles/bench_fig10_11_mpi_wide.dir/bench_fig10_11_mpi_wide.cpp.o.d"
  "bench_fig10_11_mpi_wide"
  "bench_fig10_11_mpi_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_mpi_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
