# Empty compiler generated dependencies file for bench_ext_exchange_wide.
# This may be replaced when dependencies are built.
