file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_exchange_wide.dir/bench_ext_exchange_wide.cpp.o"
  "CMakeFiles/bench_ext_exchange_wide.dir/bench_ext_exchange_wide.cpp.o.d"
  "bench_ext_exchange_wide"
  "bench_ext_exchange_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_exchange_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
