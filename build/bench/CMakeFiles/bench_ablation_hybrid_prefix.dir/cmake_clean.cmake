file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hybrid_prefix.dir/bench_ablation_hybrid_prefix.cpp.o"
  "CMakeFiles/bench_ablation_hybrid_prefix.dir/bench_ablation_hybrid_prefix.cpp.o.d"
  "bench_ablation_hybrid_prefix"
  "bench_ablation_hybrid_prefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hybrid_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
