# Empty dependencies file for bench_ablation_hybrid_prefix.
# This may be replaced when dependencies are built.
