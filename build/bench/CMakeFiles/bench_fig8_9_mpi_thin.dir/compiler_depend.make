# Empty compiler generated dependencies file for bench_fig8_9_mpi_thin.
# This may be replaced when dependencies are built.
