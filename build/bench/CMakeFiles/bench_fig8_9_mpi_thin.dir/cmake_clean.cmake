file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_9_mpi_thin.dir/bench_fig8_9_mpi_thin.cpp.o"
  "CMakeFiles/bench_fig8_9_mpi_thin.dir/bench_fig8_9_mpi_thin.cpp.o.d"
  "bench_fig8_9_mpi_thin"
  "bench_fig8_9_mpi_thin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_9_mpi_thin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
