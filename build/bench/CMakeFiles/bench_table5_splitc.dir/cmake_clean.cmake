file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_splitc.dir/bench_table5_splitc.cpp.o"
  "CMakeFiles/bench_table5_splitc.dir/bench_table5_splitc.cpp.o.d"
  "bench_table5_splitc"
  "bench_table5_splitc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_splitc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
