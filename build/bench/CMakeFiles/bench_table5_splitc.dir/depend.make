# Empty dependencies file for bench_table5_splitc.
# This may be replaced when dependencies are built.
