file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_alltoall.dir/bench_ext_alltoall.cpp.o"
  "CMakeFiles/bench_ext_alltoall.dir/bench_ext_alltoall.cpp.o.d"
  "bench_ext_alltoall"
  "bench_ext_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
