# Empty dependencies file for bench_ext_alltoall.
# This may be replaced when dependencies are built.
