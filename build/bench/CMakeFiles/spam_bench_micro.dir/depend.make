# Empty dependencies file for spam_bench_micro.
# This may be replaced when dependencies are built.
