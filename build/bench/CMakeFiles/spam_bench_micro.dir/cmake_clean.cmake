file(REMOVE_RECURSE
  "CMakeFiles/spam_bench_micro.dir/micro.cpp.o"
  "CMakeFiles/spam_bench_micro.dir/micro.cpp.o.d"
  "libspam_bench_micro.a"
  "libspam_bench_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_bench_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
