file(REMOVE_RECURSE
  "libspam_bench_micro.a"
)
