file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_protocols.dir/bench_fig7_protocols.cpp.o"
  "CMakeFiles/bench_fig7_protocols.dir/bench_fig7_protocols.cpp.o.d"
  "bench_fig7_protocols"
  "bench_fig7_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
