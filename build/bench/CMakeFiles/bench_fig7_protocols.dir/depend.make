# Empty dependencies file for bench_fig7_protocols.
# This may be replaced when dependencies are built.
