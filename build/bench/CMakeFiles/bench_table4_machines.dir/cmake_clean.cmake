file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_machines.dir/bench_table4_machines.cpp.o"
  "CMakeFiles/bench_table4_machines.dir/bench_table4_machines.cpp.o.d"
  "bench_table4_machines"
  "bench_table4_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
