file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_interrupts.dir/bench_ext_interrupts.cpp.o"
  "CMakeFiles/bench_ext_interrupts.dir/bench_ext_interrupts.cpp.o.d"
  "bench_ext_interrupts"
  "bench_ext_interrupts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_interrupts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
