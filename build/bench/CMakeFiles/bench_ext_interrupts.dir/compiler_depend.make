# Empty compiler generated dependencies file for bench_ext_interrupts.
# This may be replaced when dependencies are built.
