file(REMOVE_RECURSE
  "CMakeFiles/spamsim.dir/spamsim.cpp.o"
  "CMakeFiles/spamsim.dir/spamsim.cpp.o.d"
  "spamsim"
  "spamsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spamsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
