# Empty dependencies file for spamsim.
# This may be replaced when dependencies are built.
