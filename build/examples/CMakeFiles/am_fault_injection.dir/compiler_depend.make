# Empty compiler generated dependencies file for am_fault_injection.
# This may be replaced when dependencies are built.
