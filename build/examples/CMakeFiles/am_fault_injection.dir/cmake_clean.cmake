file(REMOVE_RECURSE
  "CMakeFiles/am_fault_injection.dir/am_fault_injection.cpp.o"
  "CMakeFiles/am_fault_injection.dir/am_fault_injection.cpp.o.d"
  "am_fault_injection"
  "am_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
