# Empty compiler generated dependencies file for mpi_ring.
# This may be replaced when dependencies are built.
