file(REMOVE_RECURSE
  "CMakeFiles/mpi_ring.dir/mpi_ring.cpp.o"
  "CMakeFiles/mpi_ring.dir/mpi_ring.cpp.o.d"
  "mpi_ring"
  "mpi_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
