
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/splitc_sort.cpp" "examples/CMakeFiles/splitc_sort.dir/splitc_sort.cpp.o" "gcc" "examples/CMakeFiles/splitc_sort.dir/splitc_sort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/spam_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/splitc/CMakeFiles/spam_splitc.dir/DependInfo.cmake"
  "/root/repo/build/src/logp/CMakeFiles/spam_logp.dir/DependInfo.cmake"
  "/root/repo/build/src/mpif/CMakeFiles/spam_mpif.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/spam_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/am/CMakeFiles/spam_am.dir/DependInfo.cmake"
  "/root/repo/build/src/mpl/CMakeFiles/spam_mpl.dir/DependInfo.cmake"
  "/root/repo/build/src/sphw/CMakeFiles/spam_sphw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spam_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
