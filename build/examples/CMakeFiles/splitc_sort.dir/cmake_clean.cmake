file(REMOVE_RECURSE
  "CMakeFiles/splitc_sort.dir/splitc_sort.cpp.o"
  "CMakeFiles/splitc_sort.dir/splitc_sort.cpp.o.d"
  "splitc_sort"
  "splitc_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitc_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
