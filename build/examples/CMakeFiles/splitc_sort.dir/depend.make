# Empty dependencies file for splitc_sort.
# This may be replaced when dependencies are built.
