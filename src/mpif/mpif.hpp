// MPI-F baseline: a model of IBM's from-scratch MPI for the SP.
//
// MPI-F did not sit on top of user-visible MPL calls — it shared MPL's
// tuned low-level path — so this device runs over an MplEndpoint built
// with a lighter parameter set than the public mpc_* interface.  Protocols:
// eager for messages up to 4 KB, rendez-vous (announce, clear-to-send,
// direct data) above.  The hard switch at 4 KB produces the bandwidth
// discontinuity the paper observes (5 KB messages slower than 4 KB ones),
// which MPI-AM's hybrid protocol avoids.  Collectives are vendor-tuned
// (staggered alltoall).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mpi/match.hpp"
#include "mpi/mpi.hpp"
#include "mpl/mpl.hpp"
#include "sphw/machine.hpp"

namespace spam::mpif {

struct MpiFConfig {
  /// Messages up to this size travel eagerly; larger ones rendez-vous.
  std::size_t eager_max = 4 * 1024;
  /// Per-message MPI-layer software cost on top of the transport.
  double sw_send_us = 3.0;
  double sw_recv_us = 3.0;
  /// MPI-F's tuned low-level path (cheaper than public mpc_* calls).
  mpl::MplParams transport;
  bool tuned_collectives = true;

  /// Thin-node configuration: MPI-F was tuned on wide nodes, so the thin
  /// path carries a little extra software cost.
  static MpiFConfig thin() {
    MpiFConfig c;
    c.transport.send_sw_us = 6.0;
    c.transport.recv_sw_us = 4.0;
    return c;
  }
  /// Wide-node configuration: the tuned target.
  static MpiFConfig wide() {
    MpiFConfig c;
    c.sw_send_us = 2.0;
    c.sw_recv_us = 2.0;
    c.transport.send_sw_us = 4.0;
    c.transport.recv_sw_us = 2.5;
    return c;
  }
};

class MpiF final : public mpi::Mpi {
 public:
  MpiF(sim::NodeCtx& ctx, mpl::MplEndpoint& ep, MpiFConfig cfg,
       int world_size);

  int rank() const override { return ep_.rank(); }
  int size() const override { return world_size_; }
  int isend(const void* buf, std::size_t bytes, int dst, int tag) override;
  int irecv(void* buf, std::size_t bytes, int src, int tag) override;
  void progress() override;

  struct DevStats {
    std::uint64_t eager_sends = 0;
    std::uint64_t rdv_sends = 0;
  };
  const DevStats& dev_stats() const { return dev_stats_; }

 protected:
  bool tuned_collectives() const override { return cfg_.tuned_collectives; }

 private:
  enum : std::uint32_t { kEager = 1, kRdv = 2, kCts = 3 };
  struct FEnv {
    std::int32_t tag = 0;
    std::uint32_t kind = 0;
    std::uint64_t len = 0;
    std::uint32_t op_id = 0;
    std::uint32_t recv_id = 0;
  };
  static constexpr int kSvcTag = 770001;
  static constexpr int kDataTagBase = 780000;

  struct SendOp {
    int req_id;
    int dst;
    const std::byte* src;
    std::size_t len;
  };
  struct RecvRec {
    int req_id;
    int mpl_handle;  // data receive in flight
    mpi::Status status;
  };

  void repost_service();
  void send_env(int dst, const FEnv& env, const void* payload,
                std::size_t payload_len);
  void process_service(const std::byte* buf, std::size_t len);
  void deliver_matched(const mpi::PostedRecv& r, const mpi::InMsg& m);

  mpl::MplEndpoint& ep_;
  MpiFConfig cfg_;
  int world_size_;

  int svc_handle_ = -1;
  std::vector<std::byte> svc_buf_;
  mpi::MatchEngine match_;
  std::unordered_map<std::uint32_t, SendOp> send_ops_;
  std::uint32_t next_op_id_ = 1;
  std::unordered_map<std::uint32_t, RecvRec> recv_recs_;
  std::uint32_t next_recv_id_ = 1;
  /// Unexpected eager payloads live here until matched.
  std::unordered_map<std::uint64_t, std::vector<std::byte>> stash_;
  std::uint64_t next_stash_ = 1;

  DevStats dev_stats_;
};

/// One MPI-F device per node: builds its own tuned MPL transport over the
/// machine's adapters.
class MpiFNet {
 public:
  explicit MpiFNet(sphw::SpMachine& machine,
                   MpiFConfig cfg = MpiFConfig::thin());
  MpiF& mpi(int node) { return *devices_.at(node); }
  int size() const { return static_cast<int>(devices_.size()); }

 private:
  std::unique_ptr<mpl::MplNet> mplnet_;
  std::vector<std::unique_ptr<MpiF>> devices_;
};

}  // namespace spam::mpif
