#include "mpif/mpif.hpp"

#include <cassert>
#include <cstring>

namespace spam::mpif {

MpiF::MpiF(sim::NodeCtx& ctx, mpl::MplEndpoint& ep, MpiFConfig cfg,
           int world_size)
    : Mpi(ctx), ep_(ep), cfg_(cfg), world_size_(world_size) {
  svc_buf_.resize(sizeof(FEnv) + cfg_.eager_max);
  repost_service();
}

void MpiF::repost_service() {
  svc_handle_ =
      ep_.mpc_recv(svc_buf_.data(), svc_buf_.size(), mpl::kAnySource, kSvcTag);
}

void MpiF::send_env(int dst, const FEnv& env, const void* payload,
                    std::size_t payload_len) {
  std::vector<std::byte> msg(sizeof(FEnv) + payload_len);
  std::memcpy(msg.data(), &env, sizeof(FEnv));
  if (payload_len > 0) {
    std::memcpy(msg.data() + sizeof(FEnv), payload, payload_len);
  }
  ep_.mpc_wait(ep_.mpc_send(msg.data(), msg.size(), dst, kSvcTag));
}

int MpiF::isend(const void* buf, std::size_t bytes, int dst, int tag) {
  ctx_.elapse(sim::usec(cfg_.sw_send_us));
  const int req_id = alloc_req(/*is_recv=*/false);
  if (bytes <= cfg_.eager_max) {
    FEnv env;
    env.tag = tag;
    env.kind = kEager;
    env.len = bytes;
    env.recv_id = static_cast<std::uint32_t>(rank());  // source marker
    send_env(dst, env, buf, bytes);
    ++dev_stats_.eager_sends;
    complete_req(req_id);  // payload snapshotted by the transport
    return req_id;
  }
  const std::uint32_t op_id = next_op_id_++;
  send_ops_.emplace(op_id,
                    SendOp{req_id, dst, static_cast<const std::byte*>(buf),
                           bytes});
  FEnv env;
  env.tag = tag;
  env.kind = kRdv;
  env.len = bytes;
  env.op_id = op_id;
  env.recv_id = static_cast<std::uint32_t>(rank());  // source marker
  send_env(dst, env, nullptr, 0);
  ++dev_stats_.rdv_sends;
  return req_id;
}

int MpiF::irecv(void* buf, std::size_t bytes, int src, int tag) {
  ctx_.elapse(sim::usec(cfg_.sw_recv_us));
  const int req_id = alloc_req(/*is_recv=*/true);
  mpi::PostedRecv r;
  r.req_id = req_id;
  r.src = src;
  r.tag = tag;
  r.buf = buf;
  r.cap = bytes;
  if (auto m = match_.post(r)) deliver_matched(r, *m);
  return req_id;
}

void MpiF::deliver_matched(const mpi::PostedRecv& r, const mpi::InMsg& m) {
  if (m.kind == kEager) {
    const std::size_t n = std::min(r.cap, m.len);
    if (n > 0) std::memcpy(r.buf, m.data, n);
    complete_req(r.req_id, mpi::Status{m.src, m.tag, n});
    stash_.erase(m.cookie >> 32);  // drop the stashed payload, if any
    return;
  }
  assert(m.kind == kRdv);
  // Post the data receive into the user buffer, then clear the sender to
  // send (the post-before-CTS order guarantees the data recv is waiting).
  const std::uint32_t recv_id = next_recv_id_++;
  const int data_tag = kDataTagBase + static_cast<int>(recv_id % 9973);
  const int handle = ep_.mpc_recv(r.buf, r.cap, m.src, data_tag);
  recv_recs_.emplace(recv_id, RecvRec{r.req_id, handle,
                                      mpi::Status{m.src, m.tag, m.len}});
  FEnv cts;
  cts.kind = kCts;
  cts.op_id = static_cast<std::uint32_t>(m.cookie);
  cts.recv_id = recv_id;
  send_env(m.src, cts, nullptr, 0);
}

void MpiF::process_service(const std::byte* buf, std::size_t len) {
  FEnv env;
  std::memcpy(&env, buf, sizeof(FEnv));
  // The service receive uses kAnySource, so eager/rdv envelopes carry the
  // sender's rank in the (otherwise unused) recv_id field.
  switch (env.kind) {
    case kEager: {
      const int src = static_cast<int>(env.recv_id);
      mpi::InMsg m;
      m.src = src;
      m.tag = env.tag;
      m.len = env.len;
      m.kind = kEager;
      // Stash the payload so it survives until matched.
      const std::uint64_t stash_id = next_stash_++;
      auto& slot = stash_[stash_id];
      slot.assign(buf + sizeof(FEnv), buf + len);
      m.data = slot.data();
      m.data_len = slot.size();
      m.cookie = stash_id << 32;
      if (auto r = match_.arrive(m)) deliver_matched(*r, m);
      break;
    }
    case kRdv: {
      mpi::InMsg m;
      m.src = static_cast<int>(env.recv_id);
      m.tag = env.tag;
      m.len = env.len;
      m.kind = kRdv;
      m.cookie = env.op_id;
      if (auto r = match_.arrive(m)) deliver_matched(*r, m);
      break;
    }
    case kCts: {
      auto it = send_ops_.find(env.op_id);
      assert(it != send_ops_.end());
      const SendOp op = it->second;
      send_ops_.erase(it);
      const int data_tag =
          kDataTagBase + static_cast<int>(env.recv_id % 9973);
      ep_.mpc_wait(ep_.mpc_send(op.src, op.len, op.dst, data_tag));
      complete_req(op.req_id);  // snapshotted by the transport
      break;
    }
    default:
      assert(false);
  }
}

void MpiF::progress() {
  ep_.poll();
  std::size_t bytes = 0;
  while (ep_.mpc_test(svc_handle_, &bytes)) {
    std::vector<std::byte> msg(
        svc_buf_.begin(), svc_buf_.begin() + static_cast<std::ptrdiff_t>(bytes));
    repost_service();
    process_service(msg.data(), msg.size());
  }
  // Complete any rendez-vous data receives that have landed.
  for (auto it = recv_recs_.begin(); it != recv_recs_.end();) {
    std::size_t got = 0;
    if (ep_.mpc_test(it->second.mpl_handle, &got)) {
      complete_req(it->second.req_id, it->second.status);
      it = recv_recs_.erase(it);
    } else {
      ++it;
    }
  }
}

MpiFNet::MpiFNet(sphw::SpMachine& machine, MpiFConfig cfg) {
  mplnet_ = std::make_unique<mpl::MplNet>(machine, cfg.transport);
  devices_.reserve(static_cast<std::size_t>(machine.size()));
  for (int n = 0; n < machine.size(); ++n) {
    devices_.push_back(std::make_unique<MpiF>(machine.world().node(n),
                                              mplnet_->ep(n), cfg,
                                              machine.size()));
  }
}

}  // namespace spam::mpif
