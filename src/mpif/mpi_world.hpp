// Turn-key MPI world over the simulated SP: picks the implementation
// (optimized MPI-AM, unoptimized MPI-AM, or the MPI-F baseline) and runs a
// program on every node.  Used by tests, examples, the NAS kernels and the
// figure benches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "am/net.hpp"
#include "mpi/am_device.hpp"
#include "mpif/mpif.hpp"
#include "sphw/machine.hpp"

namespace spam::mpi {

enum class MpiImpl { kAmOptimized, kAmUnoptimized, kMpiF };

struct MpiWorldConfig {
  int nodes = 4;
  MpiImpl impl = MpiImpl::kAmOptimized;
  std::uint64_t seed = 1;
  sphw::SpParams hw = sphw::SpParams::thin_node();
  am::AmParams am;
  MpiAmConfig am_cfg = MpiAmConfig::opt();
  mpif::MpiFConfig f_cfg = mpif::MpiFConfig::thin();
};

class MpiWorld {
 public:
  explicit MpiWorld(MpiWorldConfig cfg)
      : cfg_(cfg), world_(cfg.nodes, cfg.seed), machine_(world_, cfg.hw) {
    switch (cfg_.impl) {
      case MpiImpl::kAmOptimized:
        amnet_ = std::make_unique<am::AmNet>(machine_, cfg_.am);
        amdev_ = std::make_unique<MpiAmNet>(*amnet_, cfg_.am_cfg);
        break;
      case MpiImpl::kAmUnoptimized:
        amnet_ = std::make_unique<am::AmNet>(machine_, cfg_.am);
        amdev_ = std::make_unique<MpiAmNet>(*amnet_, MpiAmConfig::unopt());
        break;
      case MpiImpl::kMpiF:
        fnet_ = std::make_unique<mpif::MpiFNet>(machine_, cfg_.f_cfg);
        break;
    }
  }

  Mpi& mpi(int node) {
    if (amdev_) return amdev_->mpi(node);
    return fnet_->mpi(node);
  }
  sim::World& world() { return world_; }
  sphw::SpMachine& machine() { return machine_; }
  int size() const { return cfg_.nodes; }

  /// Spawns `program` on every node and runs to completion.
  void run(std::function<void(Mpi&)> program) {
    for (int n = 0; n < cfg_.nodes; ++n) {
      world_.spawn(n, [this, n, program](sim::NodeCtx&) {
        program(mpi(n));
      });
    }
    world_.run();
  }

 private:
  MpiWorldConfig cfg_;
  sim::World world_;
  sphw::SpMachine machine_;
  std::unique_ptr<am::AmNet> amnet_;
  std::unique_ptr<MpiAmNet> amdev_;
  std::unique_ptr<mpif::MpiFNet> fnet_;
};

}  // namespace spam::mpi
