// Cooperative fibers used to run one simulated node's program per fiber on
// top of the single-threaded event engine.
//
// Discipline: the *main* context resumes a fiber with resume(); the fiber
// runs until it calls Fiber::yield() (or returns), which switches back to
// the main context.  Fibers never resume each other directly — all
// scheduling goes through the engine, preserving determinism.
//
// On x86-64 the context switch is a hand-rolled callee-saved-register swap
// (~15 ns per switch).  glibc's swapcontext makes a sigprocmask syscall on
// every switch (~200 ns), and with two switches per elapse() it dominated
// the whole event loop.  The fast path deliberately does NOT preserve
// per-fiber signal masks or FP exception state beyond mxcsr/fpcw — the
// simulator is single-threaded and signal-free.  Other architectures (or
// -DSPAM_SIM_FORCE_UCONTEXT) keep the portable ucontext path.
#pragma once

#if !defined(__x86_64__) || defined(SPAM_SIM_FORCE_UCONTEXT)
#define SPAM_SIM_UCONTEXT_FIBER 1
#include <ucontext.h>
#endif

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace spam::sim {

class Fiber {
 public:
  enum class State { kCreated, kRunning, kSuspended, kFinished };

  /// Creates a fiber that will execute `body` on first resume().
  /// `stack_bytes` must comfortably hold the deepest call chain of the
  /// simulated program; application arrays belong on the heap.
  explicit Fiber(std::function<void()> body,
                 std::size_t stack_bytes = 512 * 1024,
                 std::string name = {});
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches from the main context into the fiber.  Must not be called
  /// from inside any fiber, and not on a finished fiber.
  void resume();

  /// Switches from the currently running fiber back to the main context.
  /// Must be called from inside a fiber.
  static void yield();

  /// The fiber currently executing, or nullptr when in the main context.
  static Fiber* current();

  State state() const { return state_; }
  bool finished() const { return state_ == State::kFinished; }
  const std::string& name() const { return name_; }

 private:
  void run_body();

  std::function<void()> body_;
  std::unique_ptr<char[]> stack_;
  std::size_t stack_bytes_;
  std::string name_;
#if defined(SPAM_SIM_UCONTEXT_FIBER)
  static void trampoline(unsigned hi, unsigned lo);
  ucontext_t ctx_{};
  ucontext_t caller_{};
#else
  friend void fiber_entry_dispatch();
  void prepare_stack();
  void* sp_ = nullptr;         // fiber's saved stack pointer when suspended
  void* caller_sp_ = nullptr;  // main context's stack pointer while running
#endif
  State state_ = State::kCreated;
};

}  // namespace spam::sim
