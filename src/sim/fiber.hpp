// Cooperative fibers (ucontext-based) used to run one simulated node's
// program per fiber on top of the single-threaded event engine.
//
// Discipline: the *main* context resumes a fiber with resume(); the fiber
// runs until it calls Fiber::yield() (or returns), which switches back to
// the main context.  Fibers never resume each other directly — all
// scheduling goes through the engine, preserving determinism.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace spam::sim {

class Fiber {
 public:
  enum class State { kCreated, kRunning, kSuspended, kFinished };

  /// Creates a fiber that will execute `body` on first resume().
  /// `stack_bytes` must comfortably hold the deepest call chain of the
  /// simulated program; application arrays belong on the heap.
  explicit Fiber(std::function<void()> body,
                 std::size_t stack_bytes = 512 * 1024,
                 std::string name = {});
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches from the main context into the fiber.  Must not be called
  /// from inside any fiber, and not on a finished fiber.
  void resume();

  /// Switches from the currently running fiber back to the main context.
  /// Must be called from inside a fiber.
  static void yield();

  /// The fiber currently executing, or nullptr when in the main context.
  static Fiber* current();

  State state() const { return state_; }
  bool finished() const { return state_ == State::kFinished; }
  const std::string& name() const { return name_; }

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  std::function<void()> body_;
  std::unique_ptr<char[]> stack_;
  std::size_t stack_bytes_;
  std::string name_;
  ucontext_t ctx_{};
  ucontext_t caller_{};
  State state_ = State::kCreated;
};

}  // namespace spam::sim
