// Cooperative fibers used to run one simulated node's program per fiber on
// top of the single-threaded event engine.
//
// Discipline: the *main* context resumes a fiber with resume(); the fiber
// runs until it calls Fiber::yield() (or returns), which switches back to
// the main context.  Fibers never resume each other directly — all
// scheduling goes through the engine, preserving determinism.
//
// On x86-64 the context switch is a hand-rolled callee-saved-register swap
// (~15 ns per switch).  glibc's swapcontext makes a sigprocmask syscall on
// every switch (~200 ns), and with two switches per elapse() it dominated
// the whole event loop.  The fast path deliberately does NOT preserve
// per-fiber signal masks or FP exception state beyond mxcsr/fpcw — the
// simulator is single-threaded and signal-free.  Other architectures (or
// -DSPAM_SIM_FORCE_UCONTEXT) keep the portable ucontext path.
#pragma once

#include <cstdint>

#if !defined(__x86_64__) || defined(SPAM_SIM_FORCE_UCONTEXT)
#define SPAM_SIM_UCONTEXT_FIBER 1
#include <ucontext.h>
#endif

// Under ThreadSanitizer the manual stack switches must be announced via the
// sanitizer fiber API, or TSan's shadow stack diverges from reality at the
// first switch (crashes and phantom races).  The annotations also give each
// fiber its own happens-before context, so the driver's thread pool can run
// whole Worlds-with-fibers concurrently under TSan.
#if defined(__SANITIZE_THREAD__)
#define SPAM_SIM_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPAM_SIM_TSAN_FIBERS 1
#endif
#endif

#if defined(SPAM_SIM_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace spam::sim {

class Fiber {
 public:
  enum class State { kCreated, kRunning, kSuspended, kFinished };

  /// Creates a fiber that will execute `body` on first resume().
  /// `stack_bytes` must comfortably hold the deepest call chain of the
  /// simulated program; application arrays belong on the heap.
  explicit Fiber(std::function<void()> body,
                 std::size_t stack_bytes = 512 * 1024,
                 std::string name = {});
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches from the main context into the fiber.  Must not be called
  /// from inside any fiber, and not on a finished fiber.
  void resume();

  /// Switches from the currently running fiber back to the main context.
  /// Must be called from inside a fiber.
  static void yield();

  /// The fiber currently executing, or nullptr when in the main context.
  static Fiber* current();

  /// Total resume() calls on this host thread since it started (each one
  /// is two context switches: in and back out).  Benches read deltas to
  /// report fiber switches per simulated message.
  static std::uint64_t resume_count();

  State state() const { return state_; }
  bool finished() const { return state_ == State::kFinished; }
  const std::string& name() const { return name_; }

 private:
  void run_body();

  std::function<void()> body_;
  std::unique_ptr<char[]> stack_;
  std::size_t stack_bytes_;
  std::string name_;
#if defined(SPAM_SIM_UCONTEXT_FIBER)
  static void trampoline(unsigned hi, unsigned lo);
  ucontext_t ctx_{};
  ucontext_t caller_{};
#else
  friend void fiber_entry_dispatch();
  void prepare_stack();
  void* sp_ = nullptr;         // fiber's saved stack pointer when suspended
  void* caller_sp_ = nullptr;  // main context's stack pointer while running
#endif
#if defined(SPAM_SIM_TSAN_FIBERS)
  // Force-inlined so the announcement executes in the *same instrumented
  // frame* as the stack switch.  As out-of-line functions their
  // __tsan_func_entry lands on one fiber's shadow call stack and the
  // matching __tsan_func_exit pops the *other* fiber's (the switch happens
  // mid-function), underflowing the shadow stack until libtsan crashes.
  __attribute__((always_inline)) inline void tsan_before_switch_in() {
    if (tsan_fiber_ == nullptr) tsan_fiber_ = __tsan_create_fiber(0);
    tsan_caller_ = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(tsan_fiber_, 0);
  }
  __attribute__((always_inline)) inline void tsan_before_switch_out() {
    __tsan_switch_to_fiber(tsan_caller_, 0);
  }
  void tsan_destroy();
  void* tsan_fiber_ = nullptr;   // __tsan_create_fiber handle, lazily made
  void* tsan_caller_ = nullptr;  // TSan fiber to return to on yield/finish
#else
  void tsan_before_switch_in() {}
  void tsan_before_switch_out() {}
  void tsan_destroy() {}
#endif
  State state_ = State::kCreated;
};

}  // namespace spam::sim
