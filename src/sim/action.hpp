// InlineAction: the engine's move-only callable with small-buffer storage.
//
// Every simulated event carries one of these.  std::function forced a heap
// allocation for any closure above ~16 bytes — and the hot closures of the
// hardware models capture a whole Packet — so the event loop paid at least
// one malloc/free per event.  InlineAction stores closures up to
// kInlineBytes directly inside the event node; larger ones fall back to the
// heap and are counted (Engine::pool_stats() exposes the counter, and the
// hot paths static_assert fits_inline so the fallback never fires there).
//
// Semantics: move-only, one-shot-friendly (invocation does not reset it),
// empty after being moved from.  Not thread-safe, like the engine itself.
// The fallback counter is thread-local so shared-nothing engines running
// concurrently on different host threads (driver::SweepRunner) neither race
// nor cross-pollute each other's zero-allocation assertions.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/hot.hpp"

namespace spam::sim {

class InlineAction {
 public:
  /// Inline storage budget.  Sized so the largest hot closure — a Packet
  /// (with its ref-counted payload handle) plus a couple of pointers —
  /// fits without touching the heap.  The issue floor is 48 bytes.
  static constexpr std::size_t kInlineBytes = 120;

  /// True if a callable of type F is stored inline (no heap allocation).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(std::decay_t<F>) <= kInlineBytes &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  InlineAction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SPAM_HOT InlineAction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
      ++heap_fallbacks_;
    }
  }

  SPAM_HOT InlineAction(InlineAction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  SPAM_HOT InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  SPAM_HOT void operator()() {
    assert(ops_ != nullptr && "invoking an empty InlineAction");
    ops_->invoke(storage_);
  }

  SPAM_HOT void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Count of closures that did not fit inline (monotonic), per host
  /// thread: an Engine lives on one thread, so this is effectively a
  /// per-engine counter as long as each engine stays on its thread.
  static std::uint64_t heap_fallbacks() noexcept { return heap_fallbacks_; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) /*noexcept*/;  // move + destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); },
  };

  static inline thread_local std::uint64_t heap_fallbacks_ = 0;

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace spam::sim
