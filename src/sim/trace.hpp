// Lightweight, optional event tracing.  Disabled by default; tests and
// debugging sessions enable it per category.  Costs one branch when off.
// Mask and sink are thread-local: enabling capture for the World running on
// one host thread neither races with nor leaks lines into Worlds running
// concurrently on other threads.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace spam::sim {

enum class TraceCat : unsigned {
  kAdapter = 1u << 0,
  kSwitch = 1u << 1,
  kFlow = 1u << 2,
  kAm = 1u << 3,
  kMpi = 1u << 4,
  kApp = 1u << 5,
};

class Trace {
 public:
  static void enable(TraceCat cat) { mask_ |= static_cast<unsigned>(cat); }
  static void disable_all() { mask_ = 0; }
  static bool on(TraceCat cat) {
    return (mask_ & static_cast<unsigned>(cat)) != 0;
  }

  /// Redirects trace lines into `sink` instead of stderr (nullptr restores
  /// stderr).  Tests use this to compare full traces across runs.
  static void capture_to(std::string* sink) { sink_ = sink; }

  /// Called before each emitted line (after the category-mask check, so
  /// disabled categories stay one branch).  The fiber layer installs a
  /// hook that settles the running node's charge debt: a trace line
  /// renders engine-ordered state, making emission an interaction point
  /// for the node-local virtual clocks.
  using PreEmitHook = void (*)();
  static void set_pre_emit_hook(PreEmitHook hook) { pre_emit_ = hook; }

  template <typename... Args>
  static void log(TraceCat cat, Time t, const char* fmt, Args... args) {
    if (!on(cat)) return;
    if (pre_emit_ != nullptr) pre_emit_();
    if (sink_ != nullptr) {
      char buf[512];
      int n = std::snprintf(buf, sizeof buf, "[%12.3f us] ", to_usec(t));
      if (n > 0 && static_cast<std::size_t>(n) < sizeof buf) {
        const int m =
            std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                          fmt, args...);
        if (m > 0) n += m;
      }
      sink_->append(buf, std::min(static_cast<std::size_t>(n), sizeof buf - 1));
      // spam-lint: capacity-ok — trace sink is observability only; tracing
      // is disabled in measurement runs
      sink_->push_back('\n');
      return;
    }
    std::fprintf(stderr, "[%12.3f us] ", to_usec(t));
    std::fprintf(stderr, fmt, args...);
    std::fputc('\n', stderr);
  }

 private:
  static inline thread_local unsigned mask_ = 0;
  static inline thread_local std::string* sink_ = nullptr;
  static inline thread_local PreEmitHook pre_emit_ = nullptr;
};

}  // namespace spam::sim
