// World: an engine plus N simulated nodes, each running its program on a
// cooperative fiber.
//
// A node's program sees virtual time through its NodeCtx: `elapse(t)` /
// `charge(t)` charge CPU time (the only way time passes for that node),
// `suspend()` / `make_resumer()` let hardware models park and wake a node,
// and `now()` reads the clock.
//
// Each node carries a *local virtual clock*: `charge()` accumulates CPU
// time into a per-node debt ledger instead of round-tripping through the
// engine, and the debt materializes as a single engine sleep only at
// interaction points — any `elapse()`, `suspend()`, resumer delivery from
// a fiber, trace emission, cross-node `now()` observation, or fiber exit.
// Debt is summed with the same uint64-ns additions in the same order the
// per-call path would have used, so virtual times are bit-identical by
// construction (DESIGN.md §8).  The engine's `localclock` knob disables
// deferral (`charge` degenerates to `elapse`) for dual-mode comparison.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace spam::sim {

class World;

/// Per-node handle given to simulated programs.
class NodeCtx {
 public:
  NodeCtx(World& world, int rank, Rng rng)
      : world_(&world), rank_(rank), rng_(rng) {}

  int rank() const { return rank_; }
  World& world() { return *world_; }
  Engine& engine();
  Rng& rng() { return rng_; }

  /// Current virtual time as seen by this node (engine clock plus any
  /// unmaterialized charge debt).  Reading another node's clock from a
  /// running fiber first settles the reader, so the observation happens at
  /// the exact instant the per-call path would have reached.
  Time now();

  /// Charges `d` ticks of CPU time to this node: the fiber sleeps until
  /// now()+d while the rest of the system keeps running.  Outstanding
  /// charge debt is folded into the sleep, so an elapse is also a
  /// settlement point.
  void elapse(Time d);

  /// Charges fractional microseconds of CPU time.
  void elapse_us(double us) { elapse(usec(us)); }

  /// Charges `d` ticks of CPU time without interacting with the engine:
  /// the time is added to this node's debt ledger and materializes as one
  /// engine sleep at the next interaction point.  Exactly equivalent to
  /// elapse(d) for code that performs no engine-visible action before the
  /// next settlement; use it for pure-compute charges on hot paths.
  void charge(Time d);

  /// Charges fractional microseconds of deferred CPU time.
  void charge_us(double us) { charge(usec(us)); }

  /// Materializes any outstanding charge debt as a single engine sleep.
  /// No-op when the ledger is empty.  Every path that yields the fiber or
  /// exposes engine-ordered state calls this first.
  void settle();

  /// Outstanding unmaterialized charge debt (diagnostics/tests).
  Time debt() const { return debt_; }

  /// Parks the fiber until some event calls the resumer returned by
  /// make_resumer().  Wakes may be spurious (two resumers racing): callers
  /// must re-check their condition in a loop.  A wake that arrives while
  /// the node is running or elapsing is latched and consumed by the next
  /// suspend(), so wake-ups are never lost.
  void suspend();

  /// Returns a callable that wakes this node out of suspend().  Safe to
  /// call from engine events or from any fiber (fiber calls are deferred
  /// through an engine event so fibers never switch to each other
  /// directly).  Does NOT interrupt elapse(): charged CPU time is
  /// indivisible.
  std::function<void()> make_resumer();

  /// Spins until `done()` returns true, charging `poll_cost` per check.
  /// Mirrors the paper's polling discipline: waiting burns CPU in poll
  /// quanta, so "timeouts" can be emulated by counting unsuccessful polls.
  /// Settles outstanding charge debt before the first check (predicates
  /// may read engine-ordered state); an idle wait then composes with the
  /// engine's elapse skip, so each empty quantum is an in-place clock bump
  /// rather than a fiber round-trip.
  template <typename Pred>
  void poll_until(Pred&& done, Time poll_cost) {
    assert(poll_cost > 0 && "zero-cost poll loop would freeze virtual time");
    settle();
    while (!done()) elapse(poll_cost);
  }

 private:
  friend class World;
  enum class SleepState { kRunning, kElapsing, kWaiting };

  World* world_;
  int rank_;
  Rng rng_;
  Fiber* fiber_ = nullptr;  // owned by World
  SleepState sleep_state_ = SleepState::kRunning;
  bool wake_pending_ = false;
  // Local virtual clock: CPU time charged but not yet materialized as an
  // engine sleep, and the number of charge() calls it folds (each one is
  // an elapse the per-call path would have performed; settlement reports
  // them to the engine's elide ledger so events_simulated() is identical
  // in both modes).
  Time debt_ = 0;
  std::uint64_t debt_charges_ = 0;
};

/// The node whose fiber is currently executing, nullptr in the main/engine
/// context.  Maintained by the three resume sites in world.cpp; read by
/// cross-node now(), fiber-originated resumer delivery, and the trace
/// pre-emit hook to settle the running node's charge debt before its state
/// becomes observable.
inline thread_local NodeCtx* tl_running_node = nullptr;

class World {
 public:
  explicit World(int num_nodes, std::uint64_t seed = 1);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return static_cast<int>(nodes_.size()); }
  Engine& engine() { return engine_; }
  NodeCtx& node(int rank) { return *nodes_.at(rank); }

  /// Program run by a node: receives its NodeCtx.
  using Program = std::function<void(NodeCtx&)>;

  /// Assigns a program to one node (fiber starts when run() is called).
  void spawn(int rank, Program program);

  /// Assigns the same program to every node.
  void spawn_all(Program program);

  /// Runs the simulation until all programs finish and events drain.
  /// Throws std::runtime_error on deadlock (fibers alive, no events) —
  /// the error lists the stuck ranks.
  void run();

  /// Like run() but gives up once the virtual clock passes `deadline`.
  /// Returns true if all programs finished.
  bool run_until(Time deadline);

 private:
  void launch_pending();
  void check_finished();

  Engine engine_;
  Rng root_rng_;
  std::vector<std::unique_ptr<NodeCtx>> nodes_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<std::pair<int, Program>> pending_;
};

inline Engine& NodeCtx::engine() { return world_->engine(); }

inline Time NodeCtx::now() {
  // Cross-node observation is an interaction point: settle the running
  // node so the engine clock has advanced to the instant the per-call
  // path would observe from.  (A non-running node's own debt is always
  // zero — every yield path settles first.)
  NodeCtx* running = tl_running_node;
  if (running != nullptr && running != this) running->settle();
  return engine().now() + debt_;
}

// Under the production local-clock regime charge() only accrues debt; the
// elapse() below is the --no-localclock diagnostic fallback, which no
// inline-handler build enables.  spam-lint: never-suspends
inline void NodeCtx::charge(Time d) {
  assert(Fiber::current() == fiber_ && "charge() must run on the node fiber");
  if (!engine().localclock()) {
    elapse(d);
    return;
  }
  debt_ += d;
  ++debt_charges_;
}

inline void NodeCtx::settle() {
  if (debt_ == 0 && debt_charges_ == 0) return;
  // The elapse below stands in for the LAST deferred charge; the rest are
  // counted as elided here.  (An elapse() that folds debt counts all n
  // deferred charges as elided because the elapse itself exists in both
  // modes — a settle's sleep does not, so it must count n events total to
  // keep events_simulated() identical to per-charge mode, where settle()
  // is a no-op.)
  const Time d = debt_;
  engine().note_elided(static_cast<std::int64_t>(debt_charges_) - 1);
  debt_ = 0;
  debt_charges_ = 0;
  elapse(d);
}

}  // namespace spam::sim
