// World: an engine plus N simulated nodes, each running its program on a
// cooperative fiber.
//
// A node's program sees virtual time through its NodeCtx: `elapse(t)`
// charges CPU time (the only way time passes for that node), `suspend()` /
// `make_resumer()` let hardware models park and wake a node, and `now()`
// reads the shared clock.  Because each node has exactly one fiber, the
// node-local clock is simply the engine clock at the instants its fiber runs.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace spam::sim {

class World;

/// Per-node handle given to simulated programs.
class NodeCtx {
 public:
  NodeCtx(World& world, int rank, Rng rng)
      : world_(&world), rank_(rank), rng_(rng) {}

  int rank() const { return rank_; }
  World& world() { return *world_; }
  Engine& engine();
  Rng& rng() { return rng_; }

  /// Current virtual time.
  Time now();

  /// Charges `d` ticks of CPU time to this node: the fiber sleeps until
  /// now()+d while the rest of the system keeps running.
  void elapse(Time d);

  /// Charges fractional microseconds of CPU time.
  void elapse_us(double us) { elapse(usec(us)); }

  /// Parks the fiber until some event calls the resumer returned by
  /// make_resumer().  Wakes may be spurious (two resumers racing): callers
  /// must re-check their condition in a loop.  A wake that arrives while
  /// the node is running or elapsing is latched and consumed by the next
  /// suspend(), so wake-ups are never lost.
  void suspend();

  /// Returns a callable that wakes this node out of suspend().  Safe to
  /// call from engine events or from any fiber (fiber calls are deferred
  /// through an engine event so fibers never switch to each other
  /// directly).  Does NOT interrupt elapse(): charged CPU time is
  /// indivisible.
  std::function<void()> make_resumer();

  /// Spins until `done()` returns true, charging `poll_cost` per check.
  /// Mirrors the paper's polling discipline: waiting burns CPU in poll
  /// quanta, so "timeouts" can be emulated by counting unsuccessful polls.
  template <typename Pred>
  void poll_until(Pred&& done, Time poll_cost) {
    assert(poll_cost > 0 && "zero-cost poll loop would freeze virtual time");
    while (!done()) elapse(poll_cost);
  }

 private:
  friend class World;
  enum class SleepState { kRunning, kElapsing, kWaiting };

  World* world_;
  int rank_;
  Rng rng_;
  Fiber* fiber_ = nullptr;  // owned by World
  SleepState sleep_state_ = SleepState::kRunning;
  bool wake_pending_ = false;
};

class World {
 public:
  explicit World(int num_nodes, std::uint64_t seed = 1);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return static_cast<int>(nodes_.size()); }
  Engine& engine() { return engine_; }
  NodeCtx& node(int rank) { return *nodes_.at(rank); }

  /// Program run by a node: receives its NodeCtx.
  using Program = std::function<void(NodeCtx&)>;

  /// Assigns a program to one node (fiber starts when run() is called).
  void spawn(int rank, Program program);

  /// Assigns the same program to every node.
  void spawn_all(Program program);

  /// Runs the simulation until all programs finish and events drain.
  /// Throws std::runtime_error on deadlock (fibers alive, no events) —
  /// the error lists the stuck ranks.
  void run();

  /// Like run() but gives up once the virtual clock passes `deadline`.
  /// Returns true if all programs finished.
  bool run_until(Time deadline);

 private:
  void launch_pending();
  void check_finished();

  Engine engine_;
  Rng root_rng_;
  std::vector<std::unique_ptr<NodeCtx>> nodes_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<std::pair<int, Program>> pending_;
};

}  // namespace spam::sim
