// Discrete-event engine: a single virtual clock and an ordered event queue.
//
// Events scheduled for the same instant fire in FIFO order of scheduling,
// which makes every run deterministic.  The engine is single-threaded by
// design; concurrency in the simulated system is expressed as interleaved
// events, never as host threads.
//
// The queue is a two-level structure ordered by the total order (t, seq):
//
//   * a near-future *calendar* of power-of-two-width buckets (an O(1)
//     insert front-end for the short-horizon events that dominate network
//     simulation), drained bucket-by-bucket into a sorted run vector, and
//   * the original pooled 4-ary min-heap of event nodes, which absorbs
//     same-bucket, far-future, and out-of-window events.
//
// Because (t, seq) is a total order, neither the heap shape nor the bucket
// routing can change the execution order: any correct queue pops the exact
// same sequence.  Nodes are recycled through a free list (steady state
// performs no heap allocation per event) and each node embeds its action in
// InlineAction small-buffer storage.  pool_stats() exposes the allocation
// counters that let benchmarks and tests assert the zero-allocation
// property.
//
// The engine also hosts the *fast-path accounting* shared by the network
// fast path (src/sphw) and the fiber layer (src/sim/world.cpp):
//
//   * try_skip_elapse(d) advances the clock across a dead interval without
//     scheduling a wake event, when provably equivalent (no pending event
//     at or before now()+d, and now()+d within the active run deadline);
//   * note_elided(n) lets higher layers record events they proved away
//     (fused deliveries, lazily settled FIFO frees), so
//     events_simulated() = events_executed() + events_elided() stays the
//     per-hop-equivalent event count whichever mode produced it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/action.hpp"
#include "sim/time.hpp"

namespace spam::sim {

class Engine {
 public:
  using Action = InlineAction;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (clamped to now()).
  void at(Time t, Action fn);

  /// Schedules `fn` to run `delay` ticks from now.
  void after(Time delay, Action fn) { at(now_ + delay, std::move(fn)); }

  /// Runs events until the queue drains or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs until the clock would pass `deadline`; events at exactly
  /// `deadline` still execute.  Returns events executed.
  std::uint64_t run_until(Time deadline);

  /// Executes the single earliest event.  Returns false if queue empty.
  bool step();

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  bool empty() const { return pending() == 0; }
  std::size_t pending() const {
    return heap_.size() + (run_.size() - run_pos_) + calendar_count_;
  }

  /// Enables/disables every proven-equivalent shortcut that hangs off the
  /// engine (elapse skip-ahead here; the network fast path reads the same
  /// flag through sphw::SpParams).  On by default; benches flip it off for
  /// the dual-mode comparison.
  void set_fastpath(bool on) { fastpath_ = on; }
  bool fastpath() const { return fastpath_; }

  /// Enables/disables the node-local virtual clocks (deferred compute
  /// charging, src/sim/world.cpp).  Independent of the network fast path
  /// so the two shortcuts can be compared in isolation; benches flip it
  /// off via --no-localclock for the dual-mode comparison.
  void set_localclock(bool on) { localclock_ = on; }
  bool localclock() const { return localclock_; }

  /// Fast path for NodeCtx::elapse: if no pending event fires at or before
  /// now()+d and now()+d does not cross the active run()/run_until()
  /// deadline, advances the clock directly and records one elided event
  /// (the wake timer that per-hop mode would have scheduled and executed).
  /// Returns false — caller must schedule + yield as usual — otherwise.
  bool try_skip_elapse(Time d);

  /// Records `n` per-hop-equivalent events proven away (or un-proven:
  /// fast-path disengagement passes a negative delta when it re-schedules
  /// the real events).  The running sum never dips below zero because a
  /// rollback only ever returns credit taken earlier.
  void note_elided(std::int64_t n) { elided_ += n; }

  /// Total events executed since construction (monotonic; host-perf metric).
  std::uint64_t events_executed() const { return executed_; }

  /// Events proven away by fast paths (fused deliveries, skipped elapse
  /// timers, lazily settled FIFO frees).
  std::uint64_t events_elided() const {
    return static_cast<std::uint64_t>(elided_);
  }

  /// Per-hop-equivalent event count: what events_executed() would read if
  /// every fast path were disabled.  This is the bench throughput
  /// numerator, so fused and unfused runs measure the same work.
  std::uint64_t events_simulated() const {
    return executed_ + static_cast<std::uint64_t>(elided_);
  }

  /// Allocation counters for the event core.  In steady state (after
  /// warmup) scheduling events must not change `nodes_allocated` or
  /// `action_heap_fallbacks`: that is the zero-allocation invariant the
  /// host-perf bench asserts.
  struct PoolStats {
    std::uint64_t nodes_allocated = 0;      // pool growth, total nodes ever
    std::uint64_t nodes_free = 0;           // currently on the free list
    std::uint64_t nodes_live = 0;           // currently queued
    std::uint64_t action_heap_fallbacks = 0;  // InlineAction heap closures
  };
  PoolStats pool_stats() const {
    return {nodes_allocated_, nodes_free_, pending(),
            InlineAction::heap_fallbacks()};
  }

 private:
  struct Node {
    Time t = 0;
    std::uint64_t seq = 0;  // tie-breaker: FIFO among same-time events
    Action fn;
    Node* next_free = nullptr;  // free-list link; doubles as bucket chain
  };

  static bool earlier(const Node* a, const Node* b) {
    return a->t < b->t || (a->t == b->t && a->seq < b->seq);
  }

  Node* acquire();
  void release(Node* n);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  Node* heap_pop();

  /// Earliest queued node (exact — drains calendar buckets as needed), or
  /// nullptr when nothing is pending.
  Node* front();
  Node* pop_min();
  std::uint64_t next_nonempty_bucket() const;
  void drain_bucket(std::uint64_t b);
  /// Cheap lower bound on the earliest pending event time (bucket start
  /// granularity for calendar entries).  Only safe for *denying* a
  /// skip-ahead; run_until uses the exact front().
  Time next_time_lower_bound() const;

  // Node storage: fixed-size blocks keep node addresses stable while the
  // pool grows; the free list threads through recycled nodes.
  static constexpr std::size_t kBlockNodes = 256;
  std::vector<std::unique_ptr<Node[]>> blocks_;
  Node* free_list_ = nullptr;
  std::uint64_t nodes_allocated_ = 0;
  std::uint64_t nodes_free_ = 0;

  std::vector<Node*> heap_;  // 4-ary min-heap ordered by (t, seq)

  // Near-future calendar: bucket b holds events with t >> kBucketShift == b
  // for absolute bucket indices in (drained_through_,
  // drained_through_ + kBuckets].  Buckets are LIFO-linked through
  // Node::next_free and re-sorted on drain; a bitmap tracks non-empty
  // slots so the next bucket is a couple of word scans away.
  static constexpr std::uint64_t kBucketShift = 10;  // 1.024 us buckets
  static constexpr std::uint64_t kBuckets = 1024;    // ~1.05 ms window
  static constexpr std::uint64_t kBucketMask = kBuckets - 1;
  static constexpr std::size_t kBitmapWords = kBuckets / 64;
  std::array<Node*, kBuckets> bucket_{};
  std::array<std::uint64_t, kBitmapWords> bucket_bits_{};
  std::uint64_t drained_through_ = 0;  // all calendar entries sit above this
  std::size_t calendar_count_ = 0;
  // Earliest non-empty bucket (valid iff calendar_count_ > 0): maintained
  // O(1) on insert, recomputed from the bitmap only on drain, so the hot
  // peek/pop path never scans.
  std::uint64_t cal_min_bucket_ = 0;

  // Drained-bucket staging: sorted ascending by (t, seq); run_pos_ is the
  // consumed prefix.  Everything here precedes everything still bucketed.
  std::vector<Node*> run_;
  std::size_t run_pos_ = 0;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::int64_t elided_ = 0;
  bool stopped_ = false;
  bool fastpath_ = true;
  bool localclock_ = true;
  // Deadline of the active run()/run_until() (0 when not running): a
  // skipped elapse must not move the clock past the point where control
  // would have returned to the caller.
  Time run_deadline_ = 0;
};

}  // namespace spam::sim
