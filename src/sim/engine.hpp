// Discrete-event engine: a single virtual clock and an ordered event queue.
//
// Events scheduled for the same instant fire in FIFO order of scheduling,
// which makes every run deterministic.  The engine is single-threaded by
// design; concurrency in the simulated system is expressed as interleaved
// events, never as host threads.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace spam::sim {

class Engine {
 public:
  using Action = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (clamped to now()).
  void at(Time t, Action fn);

  /// Schedules `fn` to run `delay` ticks from now.
  void after(Time delay, Action fn) { at(now_ + delay, std::move(fn)); }

  /// Runs events until the queue drains or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs until the clock would pass `deadline`; events at exactly
  /// `deadline` still execute.  Returns events executed.
  std::uint64_t run_until(Time deadline);

  /// Executes the single earliest event.  Returns false if queue empty.
  bool step();

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Total events executed since construction (monotonic; host-perf metric).
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  // Explicit heap (std::push_heap/std::pop_heap over a vector) instead of
  // std::priority_queue: pop can move the event out rather than copy it.
  std::vector<Event> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace spam::sim
