// Discrete-event engine: a single virtual clock and an ordered event queue.
//
// Events scheduled for the same instant fire in FIFO order of scheduling,
// which makes every run deterministic.  The engine is single-threaded by
// design; concurrency in the simulated system is expressed as interleaved
// events, never as host threads.
//
// The queue is a 4-ary min-heap of pointers to pooled event nodes.  Nodes
// are recycled through a free list (steady state performs no heap
// allocation per event) and each node embeds its action in InlineAction
// small-buffer storage.  Ordering is the total order (t, seq), so the heap
// shape can never change the execution order: any correct heap pops the
// exact same sequence.  pool_stats() exposes the allocation counters that
// let benchmarks and tests assert the zero-allocation property.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/action.hpp"
#include "sim/time.hpp"

namespace spam::sim {

class Engine {
 public:
  using Action = InlineAction;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (clamped to now()).
  void at(Time t, Action fn);

  /// Schedules `fn` to run `delay` ticks from now.
  void after(Time delay, Action fn) { at(now_ + delay, std::move(fn)); }

  /// Runs events until the queue drains or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs until the clock would pass `deadline`; events at exactly
  /// `deadline` still execute.  Returns events executed.
  std::uint64_t run_until(Time deadline);

  /// Executes the single earliest event.  Returns false if queue empty.
  bool step();

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Total events executed since construction (monotonic; host-perf metric).
  std::uint64_t events_executed() const { return executed_; }

  /// Allocation counters for the event core.  In steady state (after
  /// warmup) scheduling events must not change `nodes_allocated` or
  /// `action_heap_fallbacks`: that is the zero-allocation invariant the
  /// host-perf bench asserts.
  struct PoolStats {
    std::uint64_t nodes_allocated = 0;      // pool growth, total nodes ever
    std::uint64_t nodes_free = 0;           // currently on the free list
    std::uint64_t nodes_live = 0;           // currently queued
    std::uint64_t action_heap_fallbacks = 0;  // InlineAction heap closures
  };
  PoolStats pool_stats() const {
    return {nodes_allocated_, nodes_free_, heap_.size(),
            InlineAction::heap_fallbacks()};
  }

 private:
  struct Node {
    Time t = 0;
    std::uint64_t seq = 0;  // tie-breaker: FIFO among same-time events
    Action fn;
    Node* next_free = nullptr;
  };

  static bool earlier(const Node* a, const Node* b) {
    return a->t < b->t || (a->t == b->t && a->seq < b->seq);
  }

  Node* acquire();
  void release(Node* n);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  Node* pop_min();

  // Node storage: fixed-size blocks keep node addresses stable while the
  // pool grows; the free list threads through recycled nodes.
  static constexpr std::size_t kBlockNodes = 256;
  std::vector<std::unique_ptr<Node[]>> blocks_;
  Node* free_list_ = nullptr;
  std::uint64_t nodes_allocated_ = 0;
  std::uint64_t nodes_free_ = 0;

  std::vector<Node*> heap_;  // 4-ary min-heap ordered by (t, seq)

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace spam::sim
