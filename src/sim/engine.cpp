#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

namespace spam::sim {

void Engine::at(Time t, Action fn) {
  if (t < now_) t = now_;
  queue_.push_back(Event{t, next_seq_++, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // pop_heap moves the earliest event to the back, where it can be moved
  // out instead of copied (priority_queue::top() is const and forced a
  // copy of the event, including its heap-backed closure).
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  now_ = ev.t;
  ++executed_;
  ev.fn();
  return true;
}

std::uint64_t Engine::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::uint64_t Engine::run_until(Time deadline) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.front().t <= deadline &&
         step()) {
    ++n;
  }
  return n;
}

}  // namespace spam::sim
