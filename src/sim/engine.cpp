#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

#include "sim/hot.hpp"

namespace spam::sim {

namespace {
constexpr Time kTimeMax = std::numeric_limits<Time>::max();
}  // namespace

SPAM_HOT Engine::Node* Engine::acquire() {
  if (free_list_ == nullptr) {
    blocks_.push_back(std::make_unique<Node[]>(kBlockNodes));
    Node* block = blocks_.back().get();
    for (std::size_t i = 0; i < kBlockNodes; ++i) {
      block[i].next_free = free_list_;
      free_list_ = &block[i];
    }
    nodes_allocated_ += kBlockNodes;
    nodes_free_ += kBlockNodes;
  }
  Node* n = free_list_;
  free_list_ = n->next_free;
  --nodes_free_;
  return n;
}

SPAM_HOT void Engine::release(Node* n) {
  // The action has been moved out (or never set); the node slot is clean.
  n->next_free = free_list_;
  free_list_ = n;
  ++nodes_free_;
}

SPAM_HOT void Engine::sift_up(std::size_t i) {
  Node* n = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(n, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = n;
}

SPAM_HOT void Engine::sift_down(std::size_t i) {
  const std::size_t size = heap_.size();
  Node* n = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= size) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, size);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], n)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = n;
}

SPAM_HOT Engine::Node* Engine::heap_pop() {
  Node* top = heap_[0];
  Node* last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    sift_down(0);
  }
  return top;
}

SPAM_HOT std::uint64_t Engine::next_nonempty_bucket() const {
  // Precondition: calendar_count_ > 0, so some bit is set.  The window is
  // (drained_through_, drained_through_ + kBuckets]; scanning slots
  // circularly from drained_through_ + 1 visits candidates in increasing
  // absolute-bucket order, so the first set bit is the earliest bucket.
  const std::uint64_t start = drained_through_ + 1;
  const std::size_t start_slot = static_cast<std::size_t>(start & kBucketMask);
  const std::size_t start_word = start_slot / 64;
  const std::size_t start_bit = start_slot % 64;
  for (std::size_t i = 0; i <= kBitmapWords; ++i) {
    const std::size_t word = (start_word + i) % kBitmapWords;
    std::uint64_t bits = bucket_bits_[word];
    if (i == 0) {
      bits &= ~std::uint64_t{0} << start_bit;
    } else if (i == kBitmapWords) {
      // Wrapped back to the start word: only the bits below start_bit are
      // still unvisited (they are the far end of the window).
      bits &= start_bit == 0 ? 0 : ~(~std::uint64_t{0} << start_bit);
    }
    if (bits != 0) {
      const std::size_t slot =
          word * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      const std::uint64_t offset = (slot - start_slot) & kBucketMask;
      return start + offset;
    }
  }
  __builtin_unreachable();  // calendar_count_ > 0 guarantees a set bit
}

SPAM_HOT void Engine::drain_bucket(std::uint64_t b) {
  const std::size_t slot = static_cast<std::size_t>(b & kBucketMask);
  Node* n = bucket_[slot];
  bucket_[slot] = nullptr;
  bucket_bits_[slot / 64] &= ~(std::uint64_t{1} << (slot % 64));
  const std::size_t begin = run_.size();
  while (n != nullptr) {
    Node* next = n->next_free;
    // spam-lint: capacity-ok (run_ keeps its high-water capacity; steady
    // state never reallocates, which bench_host_perf asserts)
    run_.push_back(n);
    n = next;
  }
  calendar_count_ -= run_.size() - begin;
  // Everything already in run_ came from earlier buckets, so sorting just
  // the appended range keeps the whole vector ordered by (t, seq).
  std::sort(run_.begin() + static_cast<std::ptrdiff_t>(begin), run_.end(),
            &Engine::earlier);
  drained_through_ = b;
  if (calendar_count_ > 0) cal_min_bucket_ = next_nonempty_bucket();
}

SPAM_HOT Engine::Node* Engine::front() {
  for (;;) {
    Node* best = run_pos_ < run_.size() ? run_[run_pos_] : nullptr;
    if (!heap_.empty() && (best == nullptr || earlier(heap_[0], best))) {
      best = heap_[0];
    }
    if (calendar_count_ == 0) return best;
    const std::uint64_t b = cal_min_bucket_;
    // Every event in bucket b (and beyond) has t >= b << kBucketShift, so a
    // strictly earlier run/heap front is the exact global minimum.
    if (best != nullptr && best->t < (b << kBucketShift)) return best;
    drain_bucket(b);
  }
}

SPAM_HOT Engine::Node* Engine::pop_min() {
  Node* best = front();
  if (best == nullptr) return nullptr;
  Node* run_front = run_pos_ < run_.size() ? run_[run_pos_] : nullptr;
  if (best == run_front) {
    ++run_pos_;
    if (run_pos_ == run_.size()) {
      run_.clear();
      run_pos_ = 0;
    }
    return best;
  }
  return heap_pop();
}

SPAM_HOT Time Engine::next_time_lower_bound() const {
  Time lb = kTimeMax;
  if (run_pos_ < run_.size()) lb = run_[run_pos_]->t;
  if (!heap_.empty() && heap_[0]->t < lb) lb = heap_[0]->t;
  if (calendar_count_ > 0) {
    const Time cal = static_cast<Time>(cal_min_bucket_) << kBucketShift;
    if (cal < lb) lb = cal;
  }
  return lb;
}

SPAM_HOT void Engine::at(Time t, Action fn) {
  if (t < now_) t = now_;
  Node* n = acquire();
  n->t = t;
  n->seq = next_seq_++;
  n->fn = std::move(fn);
  if (calendar_count_ == 0) {
    // Empty calendar: rebase the window to the present so short-horizon
    // events keep landing in buckets no matter how far the clock jumped.
    const std::uint64_t now_bucket = now_ >> kBucketShift;
    if (now_bucket > drained_through_) drained_through_ = now_bucket;
  }
  const std::uint64_t b = t >> kBucketShift;
  if (b > drained_through_ && b - drained_through_ <= kBuckets) {
    const std::size_t slot = static_cast<std::size_t>(b & kBucketMask);
    n->next_free = bucket_[slot];
    bucket_[slot] = n;
    bucket_bits_[slot / 64] |= std::uint64_t{1} << (slot % 64);
    if (calendar_count_ == 0 || b < cal_min_bucket_) cal_min_bucket_ = b;
    ++calendar_count_;
    return;
  }
  // Same-bucket-as-now or beyond the window: the heap takes it.
  // spam-lint: capacity-ok (heap_ keeps its high-water capacity; steady
  // state never reallocates, which bench_host_perf asserts)
  heap_.push_back(n);
  sift_up(heap_.size() - 1);
}

SPAM_HOT bool Engine::try_skip_elapse(Time d) {
  if (!fastpath_ || stopped_) return false;
  const Time target = now_ + d;
  if (run_deadline_ == 0 || target > run_deadline_) return false;
  // The lower bound is conservative (bucket-start granularity), so it can
  // only deny a legal skip, never allow an illegal one.  An event at
  // exactly `target` must still deny: per-hop mode would run it before the
  // wake timer (its seq is smaller — it was already queued).
  if (next_time_lower_bound() <= target) return false;
  now_ = target;
  ++elided_;  // the wake event per-hop mode would have scheduled + popped
  return true;
}

SPAM_HOT bool Engine::step() {
  Node* n = pop_min();
  if (n == nullptr) return false;
  now_ = n->t;
  ++executed_;
  // Move the action out and recycle the node *before* invoking: the event
  // body usually schedules the next event, which then reuses this hot node.
  Action fn = std::move(n->fn);
  release(n);
  fn();
  return true;
}

SPAM_HOT std::uint64_t Engine::run() {
  stopped_ = false;
  run_deadline_ = kTimeMax;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  run_deadline_ = 0;
  return n;
}

SPAM_HOT std::uint64_t Engine::run_until(Time deadline) {
  stopped_ = false;
  run_deadline_ = deadline;
  std::uint64_t n = 0;
  while (!stopped_) {
    Node* f = front();  // exact peek: drains buckets up to the global min
    if (f == nullptr || f->t > deadline) break;
    step();
    ++n;
  }
  run_deadline_ = 0;
  return n;
}

}  // namespace spam::sim
