#include "sim/engine.hpp"

#include <utility>

namespace spam::sim {

void Engine::at(Time t, Action fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the handle cheaply by swapping through a local.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ev.fn();
  return true;
}

std::uint64_t Engine::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::uint64_t Engine::run_until(Time deadline) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.top().t <= deadline && step()) {
    ++n;
  }
  return n;
}

}  // namespace spam::sim
