#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "sim/hot.hpp"

namespace spam::sim {

SPAM_HOT Engine::Node* Engine::acquire() {
  if (free_list_ == nullptr) {
    blocks_.push_back(std::make_unique<Node[]>(kBlockNodes));
    Node* block = blocks_.back().get();
    for (std::size_t i = 0; i < kBlockNodes; ++i) {
      block[i].next_free = free_list_;
      free_list_ = &block[i];
    }
    nodes_allocated_ += kBlockNodes;
    nodes_free_ += kBlockNodes;
  }
  Node* n = free_list_;
  free_list_ = n->next_free;
  --nodes_free_;
  return n;
}

SPAM_HOT void Engine::release(Node* n) {
  // The action has been moved out (or never set); the node slot is clean.
  n->next_free = free_list_;
  free_list_ = n;
  ++nodes_free_;
}

SPAM_HOT void Engine::sift_up(std::size_t i) {
  Node* n = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(n, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = n;
}

SPAM_HOT void Engine::sift_down(std::size_t i) {
  const std::size_t size = heap_.size();
  Node* n = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= size) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, size);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], n)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = n;
}

SPAM_HOT Engine::Node* Engine::pop_min() {
  Node* top = heap_[0];
  Node* last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    sift_down(0);
  }
  return top;
}

SPAM_HOT void Engine::at(Time t, Action fn) {
  if (t < now_) t = now_;
  Node* n = acquire();
  n->t = t;
  n->seq = next_seq_++;
  n->fn = std::move(fn);
  // spam-lint: capacity-ok (heap_ keeps its high-water capacity; steady
  // state never reallocates, which bench_host_perf asserts)
  heap_.push_back(n);
  sift_up(heap_.size() - 1);
}

SPAM_HOT bool Engine::step() {
  if (heap_.empty()) return false;
  Node* n = pop_min();
  now_ = n->t;
  ++executed_;
  // Move the action out and recycle the node *before* invoking: the event
  // body usually schedules the next event, which then reuses this hot node.
  Action fn = std::move(n->fn);
  release(n);
  fn();
  return true;
}

SPAM_HOT std::uint64_t Engine::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

SPAM_HOT std::uint64_t Engine::run_until(Time deadline) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !heap_.empty() && heap_[0]->t <= deadline && step()) {
    ++n;
  }
  return n;
}

}  // namespace spam::sim
