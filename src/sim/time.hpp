// Virtual time for the discrete-event simulation.
//
// All simulated time is kept in integral nanoseconds so that event ordering
// is exact and runs are bit-reproducible across platforms.  Helpers convert
// to/from the microsecond units the paper reports in.
#pragma once

#include <cstdint>

namespace spam::sim {

/// Virtual simulation time in nanoseconds since the start of the run.
using Time = std::uint64_t;

/// One microsecond expressed in simulation ticks.
inline constexpr Time kUsec = 1000;
/// One millisecond expressed in simulation ticks.
inline constexpr Time kMsec = 1000 * kUsec;
/// One second expressed in simulation ticks.
inline constexpr Time kSec = 1000 * kMsec;

/// Converts a duration in (possibly fractional) microseconds to ticks,
/// rounding to the nearest nanosecond.
constexpr Time usec(double us) { return static_cast<Time>(us * 1e3 + 0.5); }

/// Converts ticks to microseconds as a double (for reporting).
constexpr double to_usec(Time t) { return static_cast<double>(t) / 1e3; }

/// Converts ticks to seconds as a double (for reporting).
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e9; }

/// Duration of transferring `bytes` at `mbytes_per_sec` (MB/s, 10^6-based),
/// rounded up so a nonzero transfer always takes at least one tick.
constexpr Time transfer_time(std::uint64_t bytes, double mbytes_per_sec) {
  if (bytes == 0 || mbytes_per_sec <= 0.0) return 0;
  const double ns = static_cast<double>(bytes) * 1e3 / mbytes_per_sec;
  const Time t = static_cast<Time>(ns + 0.999999);
  return t == 0 ? 1 : t;
}

}  // namespace spam::sim
