// SPAM_HOT: the event-core hot-path contract, as an annotation.
//
// A function marked SPAM_HOT executes per simulated event (or per packet)
// and must not allocate from the host heap in steady state.  The marker
// does two jobs:
//
//   1. It is a compiler hint (`[[gnu::hot]]`) — hot functions are
//      optimized more aggressively and laid out together.
//   2. It is machine-checked: tools/spam_lint scans the body of every
//      SPAM_HOT *definition* and rejects `new`, make_unique/make_shared,
//      the malloc family, and std::function (rule `hot-alloc`), plus
//      push_back/emplace_back that lacks a `// spam-lint: capacity-ok`
//      audit comment (rule `hot-growth`).
//
// Audited exceptions — pool *growth* paths that allocate once and recycle
// forever — live in tools/spam_lint/allowlist.txt, pinned to the exact
// source line so any edit forces a re-audit.
//
// Place SPAM_HOT on definitions, not declarations: the checker needs the
// body.  See docs/static-analysis.md for the full contract.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define SPAM_HOT [[gnu::hot]]
#else
#define SPAM_HOT
#endif
