// Deterministic, splittable random source for workloads and fault injection.
//
// xoshiro256** — small, fast, and identical across platforms, unlike the
// distribution objects in <random> whose outputs are not portable.
#pragma once

#include <cstdint>

namespace spam::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const auto x = next_u64();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Derives an independent stream (e.g. one per node) from this one.
  Rng split(std::uint64_t stream) {
    return Rng(next_u64() ^ (stream * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace spam::sim
