#include "sim/world.hpp"

#include <sstream>
#include <utility>

namespace spam::sim {

Engine& NodeCtx::engine() { return world_->engine(); }

Time NodeCtx::now() { return engine().now(); }

void NodeCtx::elapse(Time d) {
  assert(Fiber::current() == fiber_ && "elapse() must run on the node fiber");
  // Fast path: when no pending event would fire during the interval, the
  // wake timer and two fiber switches are pure overhead — advance the
  // clock in place.  Equivalent because nothing could have observed or
  // interleaved with this node while it slept.
  if (engine().try_skip_elapse(d)) return;
  sleep_state_ = SleepState::kElapsing;
  auto wake = [this] {
    // Only our own timer ends an elapse; resumers cannot shorten charged
    // CPU time (they latch wake_pending_ instead).
    assert(sleep_state_ == SleepState::kElapsing);
    sleep_state_ = SleepState::kRunning;
    fiber_->resume();
  };
  static_assert(Engine::Action::fits_inline<decltype(wake)>,
                "elapse() timer closure must not heap-allocate");
  engine().after(d, std::move(wake));
  Fiber::yield();
}

void NodeCtx::suspend() {
  assert(Fiber::current() == fiber_ && "suspend() must run on the node fiber");
  if (wake_pending_) {
    // A wake arrived while we were running/elapsing; consume it now.
    wake_pending_ = false;
    return;
  }
  sleep_state_ = SleepState::kWaiting;
  Fiber::yield();
}

std::function<void()> NodeCtx::make_resumer() {
  return [this] {
    auto deliver = [this] {
      if (fiber_ == nullptr || fiber_->finished()) return;
      if (sleep_state_ == SleepState::kWaiting) {
        sleep_state_ = SleepState::kRunning;
        fiber_->resume();
      } else {
        // Running or elapsing: latch for the next suspend().
        wake_pending_ = true;
      }
    };
    if (Fiber::current() == nullptr) {
      deliver();  // already in the main context (an engine event)
    } else {
      // Called from some fiber: defer so fibers never switch directly.
      engine().at(engine().now(), deliver);
    }
  };
}

World::World(int num_nodes, std::uint64_t seed) : root_rng_(seed) {
  nodes_.reserve(num_nodes);
  for (int r = 0; r < num_nodes; ++r) {
    nodes_.push_back(std::make_unique<NodeCtx>(*this, r, root_rng_.split(r)));
  }
}

World::~World() = default;

void World::spawn(int rank, Program program) {
  if (rank < 0 || rank >= size()) {
    throw std::out_of_range("World::spawn: bad rank");
  }
  pending_.emplace_back(rank, std::move(program));
}

void World::spawn_all(Program program) {
  for (int r = 0; r < size(); ++r) spawn(r, program);
}

void World::launch_pending() {
  for (auto& [rank, program] : pending_) {
    NodeCtx& ctx = *nodes_[rank];
    auto fiber = std::make_unique<Fiber>(
        [&ctx, prog = std::move(program)] { prog(ctx); }, 512 * 1024,
        "node" + std::to_string(rank));
    ctx.fiber_ = fiber.get();
    Fiber* f = fiber.get();
    engine_.at(engine_.now(), [f] { f->resume(); });
    fibers_.push_back(std::move(fiber));
  }
  pending_.clear();
}

void World::check_finished() {
  std::ostringstream stuck;
  int n_stuck = 0;
  for (std::size_t i = 0; i < fibers_.size(); ++i) {
    if (!fibers_[i]->finished()) {
      if (n_stuck++) stuck << ", ";
      stuck << fibers_[i]->name();
    }
  }
  if (n_stuck > 0) {
    throw std::runtime_error(
        "World::run: deadlock — event queue drained with " +
        std::to_string(n_stuck) + " program(s) still blocked: " + stuck.str());
  }
}

void World::run() {
  launch_pending();
  engine_.run();
  check_finished();
}

bool World::run_until(Time deadline) {
  launch_pending();
  engine_.run_until(deadline);
  for (const auto& f : fibers_) {
    if (!f->finished()) return false;
  }
  return true;
}

}  // namespace spam::sim
