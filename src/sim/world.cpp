#include "sim/world.hpp"

#include <sstream>
#include <utility>

#include "sim/trace.hpp"

namespace spam::sim {

namespace {

// Marks `node` as the running node for the dynamic extent of a
// fiber_->resume() call, restoring the previous value (the main context's
// nullptr) when the fiber yields back.
struct RunningNodeGuard {
  NodeCtx* prev;
  explicit RunningNodeGuard(NodeCtx* node) : prev(tl_running_node) {
    tl_running_node = node;
  }
  ~RunningNodeGuard() { tl_running_node = prev; }
  RunningNodeGuard(const RunningNodeGuard&) = delete;
  RunningNodeGuard& operator=(const RunningNodeGuard&) = delete;
};

// Trace pre-emit hook: a trace line renders engine-ordered state (the
// timestamp), so emission is an interaction point — the running node
// settles its charge debt first.  Keeps the trace stream byte-identical
// between local-clock modes.
void settle_running_node() {
  if (NodeCtx* running = tl_running_node) running->settle();
}

}  // namespace

void NodeCtx::elapse(Time d) {
  assert(Fiber::current() == fiber_ && "elapse() must run on the node fiber");
  if (debt_ != 0 || debt_charges_ != 0) {
    // Fold the charge ledger into this sleep: same uint64-ns additions in
    // the same order as per-call elapses, so the wake instant is
    // bit-identical.  Each folded charge is one elapse the per-call path
    // would have performed — credit them to the elide ledger so
    // events_simulated() matches across modes.
    d += debt_;
    engine().note_elided(static_cast<std::int64_t>(debt_charges_));
    debt_ = 0;
    debt_charges_ = 0;
  }
  // Fast path: when no pending event would fire during the interval, the
  // wake timer and two fiber switches are pure overhead — advance the
  // clock in place.  Equivalent because nothing could have observed or
  // interleaved with this node while it slept.
  if (engine().try_skip_elapse(d)) return;
  sleep_state_ = SleepState::kElapsing;
  auto wake = [this] {
    // Only our own timer ends an elapse; resumers cannot shorten charged
    // CPU time (they latch wake_pending_ instead).
    assert(sleep_state_ == SleepState::kElapsing);
    sleep_state_ = SleepState::kRunning;
    RunningNodeGuard guard(this);
    fiber_->resume();
  };
  static_assert(Engine::Action::fits_inline<decltype(wake)>,
                "elapse() timer closure must not heap-allocate");
  engine().after(d, std::move(wake));
  Fiber::yield();
}

void NodeCtx::suspend() {
  assert(Fiber::current() == fiber_ && "suspend() must run on the node fiber");
  // Settle before looking at the latch: resumer calls riding on events up
  // to this node's virtual instant must land first, exactly as they would
  // have during the per-call path's final elapse.
  settle();
  if (wake_pending_) {
    // A wake arrived while we were running/elapsing; consume it now.
    wake_pending_ = false;
    return;
  }
  sleep_state_ = SleepState::kWaiting;
  Fiber::yield();
}

std::function<void()> NodeCtx::make_resumer() {
  return [this] {
    auto deliver = [this] {
      if (fiber_ == nullptr || fiber_->finished()) return;
      if (sleep_state_ == SleepState::kWaiting) {
        sleep_state_ = SleepState::kRunning;
        RunningNodeGuard guard(this);
        fiber_->resume();
      } else {
        // Running or elapsing: latch for the next suspend().
        wake_pending_ = true;
      }
    };
    if (Fiber::current() == nullptr) {
      deliver();  // already in the main context (an engine event)
    } else {
      // Called from some fiber: defer so fibers never switch directly.
      // Settle the caller first — the deferred delivery must be stamped
      // with the caller's virtual instant, not a stale engine clock.
      if (NodeCtx* running = tl_running_node) running->settle();
      engine().at(engine().now(), deliver);
    }
  };
}

World::World(int num_nodes, std::uint64_t seed) : root_rng_(seed) {
  nodes_.reserve(num_nodes);
  for (int r = 0; r < num_nodes; ++r) {
    nodes_.push_back(std::make_unique<NodeCtx>(*this, r, root_rng_.split(r)));
  }
  // Trace emission is a charge-debt interaction point (the line renders a
  // timestamp); idempotent across Worlds — the hook only touches the
  // thread's running node.
  Trace::set_pre_emit_hook(&settle_running_node);
}

World::~World() = default;

void World::spawn(int rank, Program program) {
  if (rank < 0 || rank >= size()) {
    throw std::out_of_range("World::spawn: bad rank");
  }
  pending_.emplace_back(rank, std::move(program));
}

void World::spawn_all(Program program) {
  for (int r = 0; r < size(); ++r) spawn(r, program);
}

void World::launch_pending() {
  for (auto& [rank, program] : pending_) {
    NodeCtx& ctx = *nodes_[rank];
    auto fiber = std::make_unique<Fiber>(
        [&ctx, prog = std::move(program)] {
          prog(ctx);
          // A program that ends mid-charge still owes its CPU time: the
          // node's completion instant must match the per-call path.
          ctx.settle();
        },
        512 * 1024, "node" + std::to_string(rank));
    ctx.fiber_ = fiber.get();
    Fiber* f = fiber.get();
    engine_.at(engine_.now(), [f, &ctx] {
      RunningNodeGuard guard(&ctx);
      f->resume();
    });
    fibers_.push_back(std::move(fiber));
  }
  pending_.clear();
}

void World::check_finished() {
  std::ostringstream stuck;
  int n_stuck = 0;
  for (std::size_t i = 0; i < fibers_.size(); ++i) {
    if (!fibers_[i]->finished()) {
      if (n_stuck++) stuck << ", ";
      stuck << fibers_[i]->name();
    }
  }
  if (n_stuck > 0) {
    throw std::runtime_error(
        "World::run: deadlock — event queue drained with " +
        std::to_string(n_stuck) + " program(s) still blocked: " + stuck.str());
  }
}

void World::run() {
  launch_pending();
  engine_.run();
  check_finished();
}

bool World::run_until(Time deadline) {
  launch_pending();
  engine_.run_until(deadline);
  for (const auto& f : fibers_) {
    if (!f->finished()) return false;
  }
  return true;
}

}  // namespace spam::sim
