#include "sim/fiber.hpp"

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <utility>

#if defined(SPAM_SIM_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

namespace spam::sim {
namespace {

thread_local Fiber* g_current = nullptr;
// Per-thread so concurrent driver Worlds don't race; see resume_count().
thread_local std::uint64_t g_resumes = 0;

}  // namespace

// TSan fiber bookkeeping.  The switch announcements live in the header
// (force-inlined into the switching frames); only destruction is out of
// line — no stack switch happens around it.
#if defined(SPAM_SIM_TSAN_FIBERS)
void Fiber::tsan_destroy() {
  if (tsan_fiber_ != nullptr) {
    __tsan_destroy_fiber(tsan_fiber_);
    tsan_fiber_ = nullptr;
  }
}
#endif

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes,
             std::string name)
    : body_(std::move(body)),
      stack_(new char[stack_bytes]),
      stack_bytes_(stack_bytes),
      name_(std::move(name)) {}

Fiber::~Fiber() {
  // Destroying a suspended fiber abandons its stack.  That is deliberate:
  // teardown after a detected deadlock or a run_until() timeout must not
  // require unwinding parked programs.
  tsan_destroy();
}

Fiber* Fiber::current() { return g_current; }

std::uint64_t Fiber::resume_count() { return g_resumes; }

void Fiber::run_body() { body_(); }

#if defined(SPAM_SIM_UCONTEXT_FIBER)

// ---------------------------------------------------------------------------
// Portable path: ucontext.  One sigprocmask syscall per switch, but works
// on every POSIX architecture.
// ---------------------------------------------------------------------------

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run_body();
  // Returning from the body: mark finished and fall back to the caller
  // context captured in the last resume().
  self->state_ = State::kFinished;
  g_current = nullptr;
  self->tsan_before_switch_out();
  swapcontext(&self->ctx_, &self->caller_);
  // Unreachable: a finished fiber is never resumed.
  std::abort();
}

void Fiber::resume() {
  assert(g_current == nullptr && "resume() must be called from main context");
  assert(state_ != State::kFinished && "cannot resume a finished fiber");
  assert(state_ != State::kRunning);

  ++g_resumes;
  if (state_ == State::kCreated) {
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = &caller_;
    const auto p = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(p >> 32),
                static_cast<unsigned>(p & 0xffffffffu));
  }
  state_ = State::kRunning;
  g_current = this;
  tsan_before_switch_in();
  swapcontext(&caller_, &ctx_);
  // Back in the main context: the fiber either yielded or finished.
  if (state_ == State::kRunning) state_ = State::kSuspended;
  g_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_current;
  assert(self != nullptr && "yield() must be called from inside a fiber");
  self->state_ = State::kSuspended;
  g_current = nullptr;
  self->tsan_before_switch_out();
  swapcontext(&self->ctx_, &self->caller_);
  // Resumed again.
  self->state_ = State::kRunning;
  g_current = self;
}

#else

// ---------------------------------------------------------------------------
// Fast path: hand-rolled x86-64 SysV context switch (boost.context style).
// Saves the callee-saved registers plus mxcsr/fpcw on the suspending stack,
// swaps stack pointers, restores, returns.  No syscall, no signal-mask
// bookkeeping.  One frame below the switch there is no CFI, so debugger
// backtraces stop at the switch — an accepted cost of the ~14x speedup.
// ---------------------------------------------------------------------------

extern "C" void spam_sim_fiber_switch(void** save_sp, void* load_sp);
extern "C" void spam_sim_fiber_entry();

asm(R"(
.text
.globl spam_sim_fiber_switch
.hidden spam_sim_fiber_switch
.type spam_sim_fiber_switch,@function
.align 16
spam_sim_fiber_switch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  subq  $8, %rsp
  stmxcsr 4(%rsp)
  fnstcw  (%rsp)
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  ldmxcsr 4(%rsp)
  fldcw   (%rsp)
  addq  $8, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size spam_sim_fiber_switch,.-spam_sim_fiber_switch

.globl spam_sim_fiber_entry
.hidden spam_sim_fiber_entry
.type spam_sim_fiber_entry,@function
.align 16
spam_sim_fiber_entry:
  subq $8, %rsp
  call spam_sim_fiber_entry_cxx
  ud2
.size spam_sim_fiber_entry,.-spam_sim_fiber_entry
)");

void fiber_entry_dispatch();

// First activation of a fiber lands here (via the ret in fiber_switch).
// g_current was set by resume() just before the switch.
extern "C" void spam_sim_fiber_entry_cxx() { fiber_entry_dispatch(); }

void fiber_entry_dispatch() {
  Fiber* self = g_current;
  assert(self != nullptr);
  self->run_body();
  // Returning from the body: mark finished and switch back to the caller
  // for good.  A finished fiber is never resumed, so sp_ goes dead here.
  self->state_ = Fiber::State::kFinished;
  g_current = nullptr;
  self->tsan_before_switch_out();
  spam_sim_fiber_switch(&self->sp_, self->caller_sp_);
  std::abort();  // unreachable
}

void Fiber::prepare_stack() {
  // Lay the stack out exactly as spam_sim_fiber_switch leaves it when
  // suspending, with spam_sim_fiber_entry as the return target.  The entry
  // is reached by `ret`, landing with rsp ≡ 8 (mod 16) exactly as if it
  // had been called; its own sub-8 then 16-aligns rsp before calling into
  // C++ — SSE spills in the body segfault if this is off by 8.
  auto top = reinterpret_cast<std::uintptr_t>(stack_.get()) + stack_bytes_;
  top &= ~static_cast<std::uintptr_t>(15);
  auto* sp = reinterpret_cast<std::uint64_t*>(top);
  *--sp = 0;  // fake return slot: entry never returns
  *--sp = reinterpret_cast<std::uint64_t>(&spam_sim_fiber_entry);
  for (int i = 0; i < 6; ++i) *--sp = 0;  // rbp, rbx, r12-r15
  --sp;  // fpcw (low 2 bytes) and mxcsr (at offset 4), seeded from current
  std::uint32_t mxcsr;
  std::uint16_t fpcw;
  asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fpcw));
  auto* slot = reinterpret_cast<char*>(sp);
  *reinterpret_cast<std::uint16_t*>(slot) = fpcw;
  *reinterpret_cast<std::uint32_t*>(slot + 4) = mxcsr;
  sp_ = sp;
}

void Fiber::resume() {
  assert(g_current == nullptr && "resume() must be called from main context");
  assert(state_ != State::kFinished && "cannot resume a finished fiber");
  assert(state_ != State::kRunning);

  ++g_resumes;
  if (state_ == State::kCreated) prepare_stack();
  state_ = State::kRunning;
  g_current = this;
  tsan_before_switch_in();
  spam_sim_fiber_switch(&caller_sp_, sp_);
  // Back in the main context: the fiber either yielded or finished.
  if (state_ == State::kRunning) state_ = State::kSuspended;
  g_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_current;
  assert(self != nullptr && "yield() must be called from inside a fiber");
  self->state_ = State::kSuspended;
  g_current = nullptr;
  self->tsan_before_switch_out();
  spam_sim_fiber_switch(&self->sp_, self->caller_sp_);
  // Resumed again.
  self->state_ = State::kRunning;
  g_current = self;
}

#endif  // SPAM_SIM_UCONTEXT_FIBER

}  // namespace spam::sim
