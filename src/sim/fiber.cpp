#include "sim/fiber.hpp"

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <utility>

namespace spam::sim {
namespace {

thread_local Fiber* g_current = nullptr;

}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes,
             std::string name)
    : body_(std::move(body)),
      stack_(new char[stack_bytes]),
      stack_bytes_(stack_bytes),
      name_(std::move(name)) {}

Fiber::~Fiber() {
  // Destroying a suspended fiber abandons its stack.  That is deliberate:
  // teardown after a detected deadlock or a run_until() timeout must not
  // require unwinding parked programs.
}

Fiber* Fiber::current() { return g_current; }

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run_body();
  // Returning from the body: mark finished and fall back to the caller
  // context captured in the last resume().
  self->state_ = State::kFinished;
  g_current = nullptr;
  swapcontext(&self->ctx_, &self->caller_);
  // Unreachable: a finished fiber is never resumed.
  std::abort();
}

void Fiber::run_body() { body_(); }

void Fiber::resume() {
  assert(g_current == nullptr && "resume() must be called from main context");
  assert(state_ != State::kFinished && "cannot resume a finished fiber");
  assert(state_ != State::kRunning);

  if (state_ == State::kCreated) {
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = &caller_;
    const auto p = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(p >> 32),
                static_cast<unsigned>(p & 0xffffffffu));
  }
  state_ = State::kRunning;
  g_current = this;
  swapcontext(&caller_, &ctx_);
  // Back in the main context: the fiber either yielded or finished.
  if (state_ == State::kRunning) state_ = State::kSuspended;
  g_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_current;
  assert(self != nullptr && "yield() must be called from inside a fiber");
  self->state_ = State::kSuspended;
  g_current = nullptr;
  swapcontext(&self->ctx_, &self->caller_);
  // Resumed again.
  self->state_ = State::kRunning;
  g_current = self;
}

}  // namespace spam::sim
