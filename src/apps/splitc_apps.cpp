#include "apps/splitc_apps.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace spam::apps {

using splitc::gptr;
using splitc::Runtime;
using splitc::SplitCWorld;

namespace {

/// Gathers per-processor phase times into the paper's reporting form.
PhaseTimes collect(const std::vector<sim::Time>& totals,
                   const std::vector<sim::Time>& comms, bool valid,
                   std::uint64_t checksum) {
  PhaseTimes r;
  for (std::size_t i = 0; i < totals.size(); ++i) {
    r.total_s = std::max(r.total_s, sim::to_sec(totals[i]));
    r.comm_s = std::max(r.comm_s, sim::to_sec(comms[i]));
  }
  r.cpu_s = r.total_s - r.comm_s;
  r.valid = valid;
  r.checksum = checksum;
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// Blocked matrix multiply
// ---------------------------------------------------------------------------

PhaseTimes run_matmul(SplitCWorld& world, int nb, int bd) {
  const int p = world.size();
  const std::size_t bs = static_cast<std::size_t>(bd) * bd;
  const int nblocks = nb * nb;
  const int n = nb * bd;  // global matrix dimension
  auto owner = [p](int bid) { return bid % p; };

  // Block storage, globally visible (single address space); only the owner
  // writes a block.  A(r,c) = (r%7)+1, B(r,c) = (c%5)+1 so that
  // C(r,c) = ((r%7)+1) * ((c%5)+1) * n exactly, giving cheap verification.
  std::vector<std::vector<std::vector<double>>> mat(
      3, std::vector<std::vector<double>>(static_cast<std::size_t>(nblocks)));

  std::vector<sim::Time> totals(static_cast<std::size_t>(p), 0);
  std::vector<sim::Time> comms(static_cast<std::size_t>(p), 0);
  bool valid = true;

  world.run([&](Runtime& rt) {
    const int me = rt.my_proc();
    for (int bid = 0; bid < nblocks; ++bid) {
      if (owner(bid) != me) continue;
      const int bi = bid / nb, bj = bid % nb;
      for (int m = 0; m < 3; ++m) {
        mat[static_cast<std::size_t>(m)][static_cast<std::size_t>(bid)]
            .assign(bs, 0.0);
      }
      auto& a = mat[0][static_cast<std::size_t>(bid)];
      auto& b = mat[1][static_cast<std::size_t>(bid)];
      for (int r = 0; r < bd; ++r) {
        for (int c = 0; c < bd; ++c) {
          const int gr = bi * bd + r, gc = bj * bd + c;
          a[static_cast<std::size_t>(r) * bd + c] = (gr % 7) + 1.0;
          b[static_cast<std::size_t>(r) * bd + c] = (gc % 5) + 1.0;
        }
      }
    }
    rt.barrier();
    rt.reset_timers();
    const sim::Time t0 = rt.ctx().now();

    std::vector<double> abuf(bs), bbuf(bs);
    for (int bi = 0; bi < nb; ++bi) {
      for (int bj = 0; bj < nb; ++bj) {
        const int cb = bi * nb + bj;
        if (owner(cb) != me) continue;
        double* cblk = mat[2][static_cast<std::size_t>(cb)].data();
        for (int bk = 0; bk < nb; ++bk) {
          const int ab = bi * nb + bk;
          const int bb = bk * nb + bj;
          const double* ap;
          const double* bp;
          if (owner(ab) == me) {
            ap = mat[0][static_cast<std::size_t>(ab)].data();
          } else {
            rt.bulk_read(abuf.data(),
                         gptr<double>{owner(ab),
                                      mat[0][static_cast<std::size_t>(ab)].data()},
                         bs);
            ap = abuf.data();
          }
          if (owner(bb) == me) {
            bp = mat[1][static_cast<std::size_t>(bb)].data();
          } else {
            rt.bulk_read(bbuf.data(),
                         gptr<double>{owner(bb),
                                      mat[1][static_cast<std::size_t>(bb)].data()},
                         bs);
            bp = bbuf.data();
          }
          // Real block multiply-accumulate; charged as 2*bd^3 flops.
          for (int i = 0; i < bd; ++i) {
            for (int k = 0; k < bd; ++k) {
              const double aik = ap[static_cast<std::size_t>(i) * bd + k];
              const double* brow = bp + static_cast<std::size_t>(k) * bd;
              double* crow = cblk + static_cast<std::size_t>(i) * bd;
              for (int j = 0; j < bd; ++j) crow[j] += aik * brow[j];
            }
          }
          // spam-lint: charge-ok (one batched charge per block multiply)
          rt.charge_flops(2ull * bd * bd * bd);
        }
      }
    }
    rt.barrier();
    totals[static_cast<std::size_t>(me)] = rt.ctx().now() - t0;
    comms[static_cast<std::size_t>(me)] = rt.comm_time();
  });

  // Verify a sample of entries exactly.
  for (int bid = 0; bid < nblocks && valid; bid += 3) {
    const int bi = bid / nb, bj = bid % nb;
    const auto& cblk = mat[2][static_cast<std::size_t>(bid)];
    for (int r = 0; r < bd; r += std::max(1, bd / 4)) {
      for (int c = 0; c < bd; c += std::max(1, bd / 4)) {
        const int gr = bi * bd + r, gc = bj * bd + c;
        const double want = ((gr % 7) + 1.0) * ((gc % 5) + 1.0) * n;
        if (cblk[static_cast<std::size_t>(r) * bd + c] != want) valid = false;
      }
    }
  }
  return collect(totals, comms, valid, static_cast<std::uint64_t>(n));
}

// ---------------------------------------------------------------------------
// Sample sort
// ---------------------------------------------------------------------------

PhaseTimes run_sample_sort(SplitCWorld& world, std::size_t n_total,
                           SortVariant variant, std::uint64_t seed) {
  const int p = world.size();
  const std::size_t n_local = n_total / static_cast<std::size_t>(p);
  assert(n_local * static_cast<std::size_t>(p) == n_total);
  constexpr std::size_t kSample = 32;
  // Per-(src,dst) inbox capacity with headroom for sampling skew.
  const std::size_t cap = 3 * n_local / static_cast<std::size_t>(p) + 256;

  std::vector<std::vector<std::uint32_t>> keys(static_cast<std::size_t>(p));
  std::vector<std::vector<std::uint32_t>> inbox(static_cast<std::size_t>(p));
  std::vector<std::vector<std::uint64_t>> counts(
      static_cast<std::size_t>(p),
      std::vector<std::uint64_t>(static_cast<std::size_t>(p), 0));
  std::vector<std::uint32_t> samples(kSample * static_cast<std::size_t>(p));
  std::vector<std::uint32_t> splitters(static_cast<std::size_t>(p) - 1, 0);
  std::vector<std::vector<std::uint32_t>> sorted(static_cast<std::size_t>(p));

  std::vector<sim::Time> totals(static_cast<std::size_t>(p), 0);
  std::vector<sim::Time> comms(static_cast<std::size_t>(p), 0);
  std::uint64_t input_sum = 0;

  world.run([&](Runtime& rt) {
    const int me = rt.my_proc();
    const auto mei = static_cast<std::size_t>(me);
    sim::Rng rng(seed * 1000003 + static_cast<std::uint64_t>(me));
    keys[mei].resize(n_local);
    for (auto& k : keys[mei]) {
      k = static_cast<std::uint32_t>(rng.next_u64());
    }
    inbox[mei].assign(cap * static_cast<std::size_t>(p), 0);
    rt.barrier();
    rt.reset_timers();
    const sim::Time t0 = rt.ctx().now();

    // Phase 1: sampling.  Everyone stores its sample into processor 0.
    std::vector<std::uint32_t> my_sample(kSample);
    for (std::size_t i = 0; i < kSample; ++i) {
      my_sample[i] = keys[mei][rng.next_below(n_local)];
    }
    rt.charge_int_ops(kSample * 4);
    rt.store(gptr<std::uint32_t>{0, samples.data() + mei * kSample},
             my_sample.data(), kSample);
    rt.all_store_sync();
    if (me == 0) {
      std::sort(samples.begin(), samples.end());
      rt.charge_int_ops(samples.size() * 16);
      for (std::size_t i = 0; i + 1 < static_cast<std::size_t>(p); ++i) {
        splitters[i] = samples[(i + 1) * kSample];
      }
    }
    for (std::size_t i = 0; i + 1 < static_cast<std::size_t>(p); ++i) {
      splitters[i] =
          static_cast<std::uint32_t>(rt.bcast(me == 0 ? splitters[i] : 0, 0));
    }

    // Phase 2: key distribution.
    std::vector<std::size_t> cnt(static_cast<std::size_t>(p), 0);
    if (variant == SortVariant::kSmallMessage) {
      // One scalar put per key — the fine-grain traffic that exposes
      // per-message overhead.  The routing arithmetic stays a per-key
      // charge (the app's cost model); the node-local clock folds it into
      // the put's send overhead, so it costs a ledger add, not an engine
      // round-trip.  The 4-byte inbox writes are the real offender and
      // accumulate into one memory charge after the loop.
      std::size_t local_bytes = 0;
      for (const std::uint32_t k : keys[mei]) {
        const auto dst = static_cast<std::size_t>(
            std::upper_bound(splitters.begin(), splitters.end(), k) -
            splitters.begin());
        // spam-lint: charge-ok (per-key cost model, deferred by the local clock)
        rt.charge_int_ops(8);
        const std::size_t slot = mei * cap + cnt[dst]++;
        assert(cnt[dst] <= cap && "inbox overflow: raise cap");
        if (static_cast<int>(dst) == me) {
          inbox[dst][slot] = k;
          local_bytes += 4;
        } else {
          rt.put(gptr<std::uint32_t>{static_cast<int>(dst),
                                     &inbox[dst][slot]},
                 k);
        }
      }
      rt.charge_mem_bytes(local_bytes);
      rt.sync();
    } else {
      // Bulk variant: bucket locally, one store per destination.  The
      // per-key bucketing charge is pure compute, so with the local clock
      // the whole loop accrues debt and settles once at the first store.
      std::vector<std::vector<std::uint32_t>> bucket(
          static_cast<std::size_t>(p));
      for (const std::uint32_t k : keys[mei]) {
        const auto dst = static_cast<std::size_t>(
            std::upper_bound(splitters.begin(), splitters.end(), k) -
            splitters.begin());
        // spam-lint: charge-ok (per-key cost model, deferred by the local clock)
        rt.charge_int_ops(8);
        bucket[dst].push_back(k);
      }
      for (int dst = 0; dst < p; ++dst) {
        const auto d = static_cast<std::size_t>(dst);
        cnt[d] = bucket[d].size();
        assert(cnt[d] <= cap && "inbox overflow: raise cap");
        if (bucket[d].empty()) continue;
        if (dst == me) {
          std::memcpy(inbox[d].data() + mei * cap, bucket[d].data(),
                      bucket[d].size() * 4);
          // spam-lint: charge-ok (one batched charge per destination)
          rt.charge_mem_bytes(bucket[d].size() * 4);
        } else {
          rt.store(gptr<std::uint32_t>{dst, inbox[d].data() + mei * cap},
                   bucket[d].data(), bucket[d].size());
        }
      }
    }
    for (int dst = 0; dst < p; ++dst) {
      rt.put(gptr<std::uint64_t>{dst, &counts[static_cast<std::size_t>(dst)][mei]},
             static_cast<std::uint64_t>(cnt[static_cast<std::size_t>(dst)]));
    }
    rt.all_store_sync();

    // Phase 3: local sort of everything received.
    auto& out = sorted[mei];
    for (int src = 0; src < p; ++src) {
      const auto s = static_cast<std::size_t>(src);
      out.insert(out.end(), inbox[mei].begin() + static_cast<std::ptrdiff_t>(s * cap),
                 inbox[mei].begin() +
                     static_cast<std::ptrdiff_t>(s * cap + counts[mei][s]));
    }
    std::sort(out.begin(), out.end());
    rt.charge_int_ops(out.size() * 24);
    rt.barrier();
    totals[mei] = rt.ctx().now() - t0;
    comms[mei] = rt.comm_time();
  });

  // Verification: per-processor sorted, boundaries ordered, multiset sum
  // preserved, count preserved.
  bool valid = true;
  std::size_t total_out = 0;
  std::uint64_t out_sum = 0;
  std::uint32_t prev_max = 0;
  for (int q = 0; q < p; ++q) {
    const auto& v = sorted[static_cast<std::size_t>(q)];
    if (!std::is_sorted(v.begin(), v.end())) valid = false;
    if (!v.empty()) {
      if (q > 0 && v.front() < prev_max) valid = false;
      prev_max = v.back();
    }
    total_out += v.size();
    for (std::uint32_t k : v) out_sum += k;
  }
  for (int q = 0; q < p; ++q) {
    for (std::uint32_t k : keys[static_cast<std::size_t>(q)]) input_sum += k;
  }
  if (total_out != n_total || out_sum != input_sum) valid = false;
  return collect(totals, comms, valid, out_sum);
}

// ---------------------------------------------------------------------------
// Radix sort (LSD, 8-bit digits, exact global positions per pass)
// ---------------------------------------------------------------------------

PhaseTimes run_radix_sort(SplitCWorld& world, std::size_t n_total,
                          SortVariant variant, std::uint64_t seed) {
  constexpr int kDigitBits = 8;
  constexpr int kRadix = 1 << kDigitBits;
  constexpr int kPasses = 32 / kDigitBits;
  const int p = world.size();
  const std::size_t cap =
      (n_total + static_cast<std::size_t>(p) - 1) / static_cast<std::size_t>(p);

  auto seg_size = [&](int q) {
    const std::size_t lo = static_cast<std::size_t>(q) * cap;
    return lo >= n_total ? std::size_t{0} : std::min(cap, n_total - lo);
  };

  std::vector<std::vector<std::uint32_t>> cur(static_cast<std::size_t>(p));
  std::vector<std::vector<std::uint32_t>> next(static_cast<std::size_t>(p));
  // Histograms gathered at processor 0; start offsets pushed back out.
  std::vector<std::uint64_t> hist_all(
      static_cast<std::size_t>(kRadix) * static_cast<std::size_t>(p), 0);
  std::vector<std::vector<std::uint64_t>> start(
      static_cast<std::size_t>(p),
      std::vector<std::uint64_t>(static_cast<std::size_t>(kRadix), 0));
  // Bulk variant staging: (global index, key) pairs per (dst, src).
  struct IdxKey {
    std::uint32_t idx;
    std::uint32_t key;
  };
  std::vector<std::vector<IdxKey>> stage(static_cast<std::size_t>(p));
  std::vector<std::vector<std::uint64_t>> stage_cnt(
      static_cast<std::size_t>(p),
      std::vector<std::uint64_t>(static_cast<std::size_t>(p), 0));

  std::vector<sim::Time> totals(static_cast<std::size_t>(p), 0);
  std::vector<sim::Time> comms(static_cast<std::size_t>(p), 0);
  std::uint64_t input_sum = 0;

  world.run([&](Runtime& rt) {
    const int me = rt.my_proc();
    const auto mei = static_cast<std::size_t>(me);
    sim::Rng rng(seed * 7919 + static_cast<std::uint64_t>(me));
    cur[mei].resize(seg_size(me));
    for (auto& k : cur[mei]) k = static_cast<std::uint32_t>(rng.next_u64());
    next[mei].assign(cap, 0);
    if (variant == SortVariant::kBulk) {
      stage[mei].assign(cap * static_cast<std::size_t>(p), IdxKey{0, 0});
    }
    rt.barrier();
    rt.reset_timers();
    const sim::Time t0 = rt.ctx().now();

    for (int pass = 0; pass < kPasses; ++pass) {
      const int shift = pass * kDigitBits;
      // 1. Local histogram.
      std::vector<std::uint64_t> h(static_cast<std::size_t>(kRadix), 0);
      for (const std::uint32_t k : cur[mei]) {
        ++h[(k >> shift) & (kRadix - 1)];
      }
      // spam-lint: charge-ok (one batched charge per pass)
      rt.charge_int_ops(cur[mei].size() * 3);

      // 2. Gather histograms at 0, compute exact start offsets, push back.
      rt.store(gptr<std::uint64_t>{0, hist_all.data() + mei * kRadix},
               h.data(), static_cast<std::size_t>(kRadix));
      rt.all_store_sync();
      if (me == 0) {
        std::uint64_t run = 0;
        for (int d = 0; d < kRadix; ++d) {
          for (int q = 0; q < p; ++q) {
            start[static_cast<std::size_t>(q)][static_cast<std::size_t>(d)] =
                run;
            run += hist_all[static_cast<std::size_t>(q) * kRadix +
                            static_cast<std::size_t>(d)];
          }
        }
        // spam-lint: charge-ok (one batched charge per pass, rank 0 only)
        rt.charge_int_ops(static_cast<std::uint64_t>(kRadix) * p * 2);
        for (int q = 1; q < p; ++q) {
          rt.store(gptr<std::uint64_t>{q, start[static_cast<std::size_t>(q)].data()},
                   start[static_cast<std::size_t>(q)].data(),
                   static_cast<std::size_t>(kRadix));
        }
      }
      rt.all_store_sync();

      // 3. Route every key to its exact global position.
      std::vector<std::uint64_t> ofs = start[mei];
      if (variant == SortVariant::kSmallMessage) {
        // Per-key routing charge (the app's cost model), folded into each
        // put's send overhead by the local clock; the 4-byte local writes
        // accumulate into one memory charge after the loop.
        std::size_t local_bytes = 0;
        for (const std::uint32_t k : cur[mei]) {
          const std::uint64_t g = ofs[(k >> shift) & (kRadix - 1)]++;
          const int dst = static_cast<int>(g / cap);
          const std::size_t idx = g % cap;
          // spam-lint: charge-ok (per-key cost model, deferred by the local clock)
          rt.charge_int_ops(6);
          if (dst == me) {
            next[mei][idx] = k;
            local_bytes += 4;
          } else {
            rt.put(gptr<std::uint32_t>{dst, &next[static_cast<std::size_t>(dst)][idx]},
                   k);
          }
        }
        // spam-lint: charge-ok (one batched charge per pass)
        rt.charge_mem_bytes(local_bytes);
        rt.sync();
        rt.barrier();
      } else {
        std::vector<std::vector<IdxKey>> bucket(static_cast<std::size_t>(p));
        for (const std::uint32_t k : cur[mei]) {
          const std::uint64_t g = ofs[(k >> shift) & (kRadix - 1)]++;
          const int dst = static_cast<int>(g / cap);
          // spam-lint: charge-ok (per-key cost model, deferred by the local clock)
          rt.charge_int_ops(6);
          bucket[static_cast<std::size_t>(dst)].push_back(
              IdxKey{static_cast<std::uint32_t>(g % cap), k});
        }
        for (int dst = 0; dst < p; ++dst) {
          const auto d = static_cast<std::size_t>(dst);
          rt.put(gptr<std::uint64_t>{dst, &stage_cnt[d][mei]},
                 static_cast<std::uint64_t>(bucket[d].size()));
          if (bucket[d].empty()) continue;
          if (dst == me) {
            std::memcpy(stage[d].data() + mei * cap, bucket[d].data(),
                        bucket[d].size() * sizeof(IdxKey));
            // spam-lint: charge-ok (one batched charge per destination)
            rt.charge_mem_bytes(bucket[d].size() * sizeof(IdxKey));
          } else {
            rt.store(gptr<IdxKey>{dst, stage[d].data() + mei * cap},
                     bucket[d].data(), bucket[d].size());
          }
        }
        rt.all_store_sync();
        // Scatter staged pairs into place.
        for (int src = 0; src < p; ++src) {
          const auto s = static_cast<std::size_t>(src);
          const std::uint64_t c = stage_cnt[mei][s];
          for (std::uint64_t i = 0; i < c; ++i) {
            const IdxKey ik = stage[mei][s * cap + i];
            next[mei][ik.idx] = ik.key;
          }
          // spam-lint: charge-ok (one batched charge per source)
          rt.charge_mem_bytes(c * sizeof(IdxKey));
        }
        rt.barrier();
      }

      // 4. Swap; segment sizes are exact by construction.
      cur[mei].assign(next[mei].begin(),
                      next[mei].begin() + static_cast<std::ptrdiff_t>(seg_size(me)));
      // spam-lint: charge-ok (one batched charge per pass)
      rt.charge_mem_bytes(cur[mei].size() * 4);
      rt.barrier();
    }
    totals[mei] = rt.ctx().now() - t0;
    comms[mei] = rt.comm_time();
  });

  bool valid = true;
  std::uint64_t out_sum = 0;
  std::size_t total_out = 0;
  std::uint32_t prev = 0;
  for (int q = 0; q < p; ++q) {
    for (const std::uint32_t k : cur[static_cast<std::size_t>(q)]) {
      if (k < prev) valid = false;
      prev = k;
      out_sum += k;
      ++total_out;
    }
  }
  // Recompute the input multiset sum from the seeds.
  for (int q = 0; q < p; ++q) {
    sim::Rng rng(seed * 7919 + static_cast<std::uint64_t>(q));
    for (std::size_t i = 0; i < seg_size(q); ++i) {
      input_sum += static_cast<std::uint32_t>(rng.next_u64());
    }
  }
  if (total_out != n_total || out_sum != input_sum) valid = false;
  return collect(totals, comms, valid, out_sum);
}

}  // namespace spam::apps
