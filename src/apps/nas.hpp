// Reduced-size NAS Parallel Benchmark kernels (Table 6) with faithful
// communication skeletons:
//   FT — 3D FFT: local FFTs plus a global transpose via MPI_Alltoall (the
//        collective whose naive MPICH implementation the paper blames);
//   MG — multigrid V-cycles: nearest-neighbour halo exchanges across a
//        hierarchy of grids;
//   LU — SSOR: pipelined wavefront sweeps with many small messages;
//   BT/SP — ADI solvers on a square process grid: per-direction face
//        exchanges (BT: fewer/larger messages; SP: more/smaller).
//
// All kernels update real arrays and return a checksum, so the MPI-AM and
// MPI-F runs can be verified to compute identical results; computation is
// charged to virtual time with the Power2 cost model.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mpif/mpi_world.hpp"

namespace spam::apps {

struct NasResult {
  double time_s = 0;       // max over ranks, timed region only
  double checksum = 0;     // identical across MPI implementations
  bool finished = false;
};

/// FT: `n`^3 complex grid, slab-distributed; `iters` evolve steps.
NasResult run_ft(mpi::MpiWorld& world, int n, int iters);

/// MG: `n`^3 grid, `iters` V-cycles down to a 4^3 coarse grid.
NasResult run_mg(mpi::MpiWorld& world, int n, int iters);

/// LU: `n`x`n` plane, `iters` pipelined SSOR sweep pairs.
NasResult run_lu(mpi::MpiWorld& world, int n, int iters);

/// BT: `n`^3 grid on a square process grid, `iters` ADI iterations
/// (few, large face messages).
NasResult run_bt(mpi::MpiWorld& world, int n, int iters);

/// SP: like BT but with more, smaller messages per sweep.
NasResult run_sp(mpi::MpiWorld& world, int n, int iters);

}  // namespace spam::apps
