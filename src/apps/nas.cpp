#include "apps/nas.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <complex>
#include <vector>

namespace spam::apps {

using mpi::Dtype;
using mpi::Mpi;
using mpi::ReduceOp;

namespace {

constexpr double kUsPerFlop = 0.025;  // Power2 sustained ~40 Mflops

// Deferred: accumulates into the node's local clock; the next MPI call
// settles.  Call sites charge whole phases, never per element.
void charge_flops(Mpi& m, std::uint64_t n) {
  m.ctx().charge(sim::usec(static_cast<double>(n) * kUsPerFlop));
}

/// Iterative radix-2 FFT (real computation; caller charges flops).
void fft_inplace(std::complex<double>* a, int n) {
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (int len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * M_PI / len;
    const std::complex<double> wl(std::cos(ang), std::sin(ang));
    for (int i = 0; i < n; i += len) {
      std::complex<double> w(1.0);
      for (int k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
}

int ilog2(int n) {
  int r = 0;
  while ((1 << r) < n) ++r;
  return r;
}

struct TimeKeeper {
  explicit TimeKeeper(int p) : totals(static_cast<std::size_t>(p), 0) {}
  std::vector<sim::Time> totals;
  double max_s() const {
    sim::Time m = 0;
    for (sim::Time t : totals) m = std::max(m, t);
    return sim::to_sec(m);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// FT — 3D FFT with alltoall transpose
// ---------------------------------------------------------------------------

NasResult run_ft(mpi::MpiWorld& world, int n, int iters) {
  const int p = world.size();
  assert(n % p == 0 && (n & (n - 1)) == 0);
  const int lnz = n / p;  // planes per rank (slab along z)
  using C = std::complex<double>;
  const std::size_t local = static_cast<std::size_t>(n) * n * lnz;

  TimeKeeper tk(p);
  double checksum = 0;

  world.run([&](Mpi& mpi) {
    const int me = mpi.rank();
    std::vector<C> grid(local);
    for (std::size_t i = 0; i < local; ++i) {
      const auto g = static_cast<double>(i + local * static_cast<std::size_t>(me));
      grid[i] = C(std::sin(0.001 * g), std::cos(0.002 * g));
    }
    std::vector<C> send(local), recvb(local), row(static_cast<std::size_t>(n));
    const std::uint64_t fft_flops = 5ull * n * ilog2(n);

    mpi.barrier();
    const sim::Time t0 = mpi.ctx().now();
    double local_sum = 0;

    for (int it = 0; it < iters; ++it) {
      // FFT along x (contiguous rows).
      for (int z = 0; z < lnz; ++z) {
        for (int y = 0; y < n; ++y) {
          fft_inplace(grid.data() + (static_cast<std::size_t>(z) * n + y) * n,
                      n);
        }
      }
      // spam-lint: charge-ok (one batched charge per FFT phase)
      charge_flops(mpi, fft_flops * static_cast<std::uint64_t>(n) * lnz);
      // FFT along y (gather/scatter strided rows).
      for (int z = 0; z < lnz; ++z) {
        for (int x = 0; x < n; ++x) {
          for (int y = 0; y < n; ++y) {
            row[static_cast<std::size_t>(y)] =
                grid[(static_cast<std::size_t>(z) * n + y) * n + x];
          }
          fft_inplace(row.data(), n);
          for (int y = 0; y < n; ++y) {
            grid[(static_cast<std::size_t>(z) * n + y) * n + x] =
                row[static_cast<std::size_t>(y)];
          }
        }
      }
      // spam-lint: charge-ok (one batched charge per FFT phase)
      charge_flops(mpi, fft_flops * static_cast<std::uint64_t>(n) * lnz);

      // Global transpose z <-> x via alltoall.
      const int lx = n / p;
      const std::size_t blk = static_cast<std::size_t>(lx) * n * lnz;
      for (int d = 0; d < p; ++d) {
        std::size_t w = static_cast<std::size_t>(d) * blk;
        for (int z = 0; z < lnz; ++z) {
          for (int y = 0; y < n; ++y) {
            for (int x = d * lx; x < (d + 1) * lx; ++x) {
              send[w++] = grid[(static_cast<std::size_t>(z) * n + y) * n + x];
            }
          }
        }
      }
      // spam-lint: charge-ok (one per-iteration pack charge)
      mpi.ctx().charge(sim::usec(local * 0.004));  // pack cost
      mpi.alltoall(send.data(), recvb.data(), blk * sizeof(C));
      // Unpack: new layout (x_local, y, z_global) with z contiguous.
      for (int src = 0; src < p; ++src) {
        std::size_t r = static_cast<std::size_t>(src) * blk;
        for (int zl = 0; zl < lnz; ++zl) {
          for (int y = 0; y < n; ++y) {
            for (int xl = 0; xl < lx; ++xl) {
              const int z = src * lnz + zl;
              grid[(static_cast<std::size_t>(xl) * n + y) * n + z] =
                  recvb[r++];
            }
          }
        }
      }
      // spam-lint: charge-ok (one per-iteration unpack charge)
      mpi.ctx().charge(sim::usec(local * 0.004));  // unpack cost

      // FFT along z (now contiguous) and evolve.
      for (int xl = 0; xl < lx; ++xl) {
        for (int y = 0; y < n; ++y) {
          fft_inplace(grid.data() + (static_cast<std::size_t>(xl) * n + y) * n,
                      n);
        }
      }
      // spam-lint: charge-ok (one batched charge per FFT phase)
      charge_flops(mpi, fft_flops * static_cast<std::uint64_t>(n) * lx);
      const double phase = 0.5 + 0.25 * it;
      for (auto& c : grid) c *= C(std::cos(phase), std::sin(phase));
      // spam-lint: charge-ok (one batched charge per iteration)
      charge_flops(mpi, 6ull * local);

      // NAS-style per-iteration checksum over a sample of elements.
      double s = 0;
      for (std::size_t i = 0; i < local; i += 1021) s += std::abs(grid[i].real());
      local_sum += s;
    }
    double global = 0;
    mpi.allreduce(&local_sum, &global, 1, Dtype::kDouble, ReduceOp::kSum);
    tk.totals[static_cast<std::size_t>(me)] = mpi.ctx().now() - t0;
    if (me == 0) checksum = global;
  });

  return NasResult{tk.max_s(), checksum, true};
}

// ---------------------------------------------------------------------------
// MG — V-cycles with halo exchange at every level
// ---------------------------------------------------------------------------

NasResult run_mg(mpi::MpiWorld& world, int n, int iters) {
  const int p = world.size();
  assert(n % p == 0);
  const int lnz = n / p;  // slab planes per rank (fixed across levels)
  TimeKeeper tk(p);
  double checksum = 0;

  world.run([&](Mpi& mpi) {
    const int me = mpi.rank();
    const int up = me + 1 < p ? me + 1 : -1;
    const int down = me > 0 ? me - 1 : -1;

    // Level l grid: nl x nl x lnz (x,y coarsened; z distribution fixed).
    std::vector<int> nls;
    for (int nl = n; nl >= 4; nl >>= 1) nls.push_back(nl);
    const int levels = static_cast<int>(nls.size());
    std::vector<std::vector<double>> u(static_cast<std::size_t>(levels));
    for (int l = 0; l < levels; ++l) {
      const auto nl = static_cast<std::size_t>(nls[static_cast<std::size_t>(l)]);
      u[static_cast<std::size_t>(l)].assign(nl * nl * static_cast<std::size_t>(lnz), 0.0);
    }
    // Seed the fine grid.
    for (std::size_t i = 0; i < u[0].size(); ++i) {
      u[0][i] = std::sin(0.01 * static_cast<double>(
                             i + u[0].size() * static_cast<std::size_t>(me)));
    }

    std::vector<double> halo_lo, halo_hi, out_plane;
    auto smooth = [&](int l) {
      const int nl = nls[static_cast<std::size_t>(l)];
      auto& g = u[static_cast<std::size_t>(l)];
      const std::size_t plane = static_cast<std::size_t>(nl) * nl;
      // Halo exchange of boundary planes with slab neighbours.
      halo_lo.assign(plane, 0.0);
      halo_hi.assign(plane, 0.0);
      const int tag = 100 + l;
      if (down >= 0 && up >= 0) {
        mpi.sendrecv(g.data(), plane * 8, down, tag, halo_hi.data(), plane * 8,
                     up, tag);
        mpi.sendrecv(g.data() + (static_cast<std::size_t>(lnz) - 1) * plane,
                     plane * 8, up, tag, halo_lo.data(), plane * 8, down, tag);
      } else if (up >= 0) {
        mpi.recv(halo_hi.data(), plane * 8, up, tag);
        mpi.send(g.data() + (static_cast<std::size_t>(lnz) - 1) * plane,
                 plane * 8, up, tag);
      } else if (down >= 0) {
        mpi.send(g.data(), plane * 8, down, tag);
        mpi.recv(halo_lo.data(), plane * 8, down, tag);
      }
      // Jacobi-style relaxation (real update, 8 flops/cell charged).
      for (int z = 0; z < lnz; ++z) {
        const double* below =
            z > 0 ? g.data() + (static_cast<std::size_t>(z) - 1) * plane
                  : halo_lo.data();
        const double* above =
            z + 1 < lnz ? g.data() + (static_cast<std::size_t>(z) + 1) * plane
                        : halo_hi.data();
        double* cur = g.data() + static_cast<std::size_t>(z) * plane;
        for (int y = 1; y + 1 < nl; ++y) {
          for (int x = 1; x + 1 < nl; ++x) {
            const std::size_t i = static_cast<std::size_t>(y) * nl + x;
            cur[i] = 0.5 * cur[i] +
                     0.125 * (cur[i - 1] + cur[i + 1] + cur[i - nl] +
                              cur[i + nl]) +
                     0.125 * (below[i] + above[i]) + 1e-6;
          }
        }
      }
      charge_flops(mpi, 8ull * plane * static_cast<std::uint64_t>(lnz));
    };

    mpi.barrier();
    const sim::Time t0 = mpi.ctx().now();
    for (int it = 0; it < iters; ++it) {
      // Down-sweep: smooth then restrict (2x2 average in x,y).
      for (int l = 0; l + 1 < levels; ++l) {
        smooth(l);
        const int nf = nls[static_cast<std::size_t>(l)];
        const int nc = nls[static_cast<std::size_t>(l) + 1];
        auto& f = u[static_cast<std::size_t>(l)];
        auto& c = u[static_cast<std::size_t>(l) + 1];
        for (int z = 0; z < lnz; ++z) {
          for (int y = 0; y < nc; ++y) {
            for (int x = 0; x < nc; ++x) {
              const std::size_t fi =
                  (static_cast<std::size_t>(z) * nf + 2 * y) * nf + 2 * x;
              c[(static_cast<std::size_t>(z) * nc + y) * nc + x] =
                  0.25 * (f[fi] + f[fi + 1] + f[fi + nf] + f[fi + nf + 1]);
            }
          }
        }
        // spam-lint: charge-ok (one batched charge per level)
        charge_flops(mpi, 4ull * static_cast<std::uint64_t>(nc) * nc * lnz);
      }
      smooth(levels - 1);
      // Up-sweep: prolong (injection) then smooth.
      for (int l = levels - 2; l >= 0; --l) {
        const int nf = nls[static_cast<std::size_t>(l)];
        const int nc = nls[static_cast<std::size_t>(l) + 1];
        auto& f = u[static_cast<std::size_t>(l)];
        auto& c = u[static_cast<std::size_t>(l) + 1];
        for (int z = 0; z < lnz; ++z) {
          for (int y = 0; y < nc; ++y) {
            for (int x = 0; x < nc; ++x) {
              const double v =
                  c[(static_cast<std::size_t>(z) * nc + y) * nc + x];
              f[(static_cast<std::size_t>(z) * nf + 2 * y) * nf + 2 * x] +=
                  0.5 * v;
            }
          }
        }
        // spam-lint: charge-ok (one batched charge per level)
        charge_flops(mpi, 2ull * static_cast<std::uint64_t>(nc) * nc * lnz);
        smooth(l);
      }
    }
    double local = 0;
    for (double v : u[0]) local += v;
    double global = 0;
    mpi.allreduce(&local, &global, 1, Dtype::kDouble, ReduceOp::kSum);
    tk.totals[static_cast<std::size_t>(mpi.rank())] = mpi.ctx().now() - t0;
    if (me == 0) checksum = global;
  });

  return NasResult{tk.max_s(), checksum, true};
}

// ---------------------------------------------------------------------------
// LU — pipelined SSOR wavefront with many small messages
// ---------------------------------------------------------------------------

NasResult run_lu(mpi::MpiWorld& world, int n, int iters) {
  const int p = world.size();
  assert(n % p == 0);
  const int lrows = n / p;
  constexpr int kBlockW = 32;  // column-block width => small messages
  TimeKeeper tk(p);
  double checksum = 0;

  world.run([&](Mpi& mpi) {
    const int me = mpi.rank();
    std::vector<double> u(static_cast<std::size_t>(lrows) * n);
    for (std::size_t i = 0; i < u.size(); ++i) {
      u[i] = std::cos(0.003 * static_cast<double>(
                          i + u.size() * static_cast<std::size_t>(me)));
    }
    std::vector<double> north(static_cast<std::size_t>(kBlockW));

    mpi.barrier();
    const sim::Time t0 = mpi.ctx().now();
    for (int it = 0; it < iters; ++it) {
      // Forward wavefront (top-left to bottom-right), pipelined by column
      // blocks: receive the boundary row segment from the north neighbour,
      // relax, pass the southern boundary on.
      for (int b = 0; b < n / kBlockW; ++b) {
        const int x0 = b * kBlockW;
        if (me > 0) {
          mpi.recv(north.data(), kBlockW * 8, me - 1, 500 + b);
        } else {
          std::fill(north.begin(), north.end(), 1.0);
        }
        for (int r = 0; r < lrows; ++r) {
          const double* up_row =
              r > 0 ? u.data() + (static_cast<std::size_t>(r) - 1) * n
                    : nullptr;
          double* row = u.data() + static_cast<std::size_t>(r) * n;
          for (int x = x0; x < x0 + kBlockW; ++x) {
            const double west = x > 0 ? row[x - 1] : 1.0;
            const double nn = up_row != nullptr
                                  ? up_row[x]
                                  : north[static_cast<std::size_t>(x - x0)];
            row[x] = 0.6 * row[x] + 0.2 * west + 0.2 * nn;
          }
        }
        // spam-lint: charge-ok (one batched charge per block row)
        charge_flops(mpi, 5ull * kBlockW * static_cast<std::uint64_t>(lrows));
        if (me + 1 < p) {
          mpi.send(u.data() + (static_cast<std::size_t>(lrows) - 1) * n + x0,
                   kBlockW * 8, me + 1, 500 + b);
        }
      }
      // Backward wavefront, mirrored.
      for (int b = n / kBlockW - 1; b >= 0; --b) {
        const int x0 = b * kBlockW;
        if (me + 1 < p) {
          mpi.recv(north.data(), kBlockW * 8, me + 1, 700 + b);
        } else {
          std::fill(north.begin(), north.end(), 1.0);
        }
        for (int r = lrows - 1; r >= 0; --r) {
          const double* dn_row =
              r + 1 < lrows ? u.data() + (static_cast<std::size_t>(r) + 1) * n
                            : nullptr;
          double* row = u.data() + static_cast<std::size_t>(r) * n;
          for (int x = x0 + kBlockW - 1; x >= x0; --x) {
            const double east = x + 1 < n ? row[x + 1] : 1.0;
            const double ss = dn_row != nullptr
                                  ? dn_row[x]
                                  : north[static_cast<std::size_t>(x - x0)];
            row[x] = 0.6 * row[x] + 0.2 * east + 0.2 * ss;
          }
        }
        // spam-lint: charge-ok (one batched charge per block row)
        charge_flops(mpi, 5ull * kBlockW * static_cast<std::uint64_t>(lrows));
        if (me > 0) {
          mpi.send(u.data() + x0, kBlockW * 8, me - 1, 700 + b);
        }
      }
    }
    double local = 0;
    for (double v : u) local += v;
    double global = 0;
    mpi.allreduce(&local, &global, 1, Dtype::kDouble, ReduceOp::kSum);
    tk.totals[static_cast<std::size_t>(me)] = mpi.ctx().now() - t0;
    if (me == 0) checksum = global;
  });

  return NasResult{tk.max_s(), checksum, true};
}

// ---------------------------------------------------------------------------
// BT / SP — ADI sweeps on a square process grid
// ---------------------------------------------------------------------------

namespace {

NasResult run_adi(mpi::MpiWorld& world, int n, int iters, int msgs_per_face,
                  std::uint64_t flops_per_cell, int face_depth) {
  const int p = world.size();
  int q = 1;
  while ((q + 1) * (q + 1) <= p) ++q;
  assert(q * q == p && "ADI kernels need a square process count");
  assert(n % q == 0);
  const int tile = n / q;  // tile edge in x and y; z fully local
  TimeKeeper tk(p);
  double checksum = 0;

  world.run([&](Mpi& mpi) {
    const int me = mpi.rank();
    const int px = me % q, py = me / q;
    const int west = px > 0 ? me - 1 : -1;
    const int east = px + 1 < q ? me + 1 : -1;
    const int north = py > 0 ? me - q : -1;
    const int south = py + 1 < q ? me + q : -1;

    // Working tile: tile x tile x n cells.
    std::vector<double> u(static_cast<std::size_t>(tile) * tile * n);
    for (std::size_t i = 0; i < u.size(); ++i) {
      u[i] = std::sin(0.002 * static_cast<double>(
                          i + u.size() * static_cast<std::size_t>(me)));
    }
    // A face message carries `face_depth` boundary layers of a tile face,
    // split into msgs_per_face pieces (BT: 1 large; SP: several smaller).
    const std::size_t face =
        static_cast<std::size_t>(tile) * n * static_cast<std::size_t>(face_depth);
    const std::size_t piece = face / static_cast<std::size_t>(msgs_per_face);
    std::vector<double> fbuf(face), fin(face);
    for (std::size_t i = 0; i < face; ++i) {
      fbuf[i] = u[i % u.size()];
    }

    auto exchange = [&](int lo, int hi, int tag) {
      for (int m = 0; m < msgs_per_face; ++m) {
        const std::size_t off = static_cast<std::size_t>(m) * piece;
        if (lo >= 0 && hi >= 0) {
          mpi.sendrecv(fbuf.data() + off, piece * 8, lo, tag + m,
                       fin.data() + off, piece * 8, hi, tag + m);
          mpi.sendrecv(fbuf.data() + off, piece * 8, hi, tag + 100 + m,
                       fin.data() + off, piece * 8, lo, tag + 100 + m);
        } else if (hi >= 0) {
          mpi.recv(fin.data() + off, piece * 8, hi, tag + m);
          mpi.send(fbuf.data() + off, piece * 8, hi, tag + 100 + m);
        } else if (lo >= 0) {
          mpi.send(fbuf.data() + off, piece * 8, lo, tag + m);
          mpi.recv(fin.data() + off, piece * 8, lo, tag + 100 + m);
        }
      }
    };

    mpi.barrier();
    const sim::Time t0 = mpi.ctx().now();
    const std::uint64_t cells = u.size();
    for (int it = 0; it < iters; ++it) {
      // x-sweep: exchange with west/east, then relax.
      exchange(west, east, 1000 + 300 * it);
      for (std::size_t i = 1; i < u.size(); ++i) {
        u[i] = 0.7 * u[i] + 0.3 * u[i - 1] + 1e-7 * fin[i % face];
      }
      // spam-lint: charge-ok (one batched charge per sweep)
      charge_flops(mpi, flops_per_cell * cells / 3);
      // y-sweep: exchange with north/south.
      exchange(north, south, 2000 + 300 * it);
      const std::size_t stride = static_cast<std::size_t>(tile);
      for (std::size_t i = stride; i < u.size(); ++i) {
        u[i] = 0.7 * u[i] + 0.3 * u[i - stride] + 1e-7 * fin[i % face];
      }
      // spam-lint: charge-ok (one batched charge per sweep)
      charge_flops(mpi, flops_per_cell * cells / 3);
      // z-sweep: fully local.
      const std::size_t zstride = static_cast<std::size_t>(tile) * tile;
      for (std::size_t i = zstride; i < u.size(); ++i) {
        u[i] = 0.7 * u[i] + 0.3 * u[i - zstride];
      }
      // spam-lint: charge-ok (one batched charge per sweep)
      charge_flops(mpi, flops_per_cell * cells / 3);
      // Refresh the outgoing faces from the tile.
      for (std::size_t i = 0; i < face; ++i) fbuf[i] = u[i % u.size()];
    }
    double local = 0;
    for (double v : u) local += v;
    double global = 0;
    mpi.allreduce(&local, &global, 1, Dtype::kDouble, ReduceOp::kSum);
    tk.totals[static_cast<std::size_t>(me)] = mpi.ctx().now() - t0;
    if (me == 0) checksum = global;
  });

  return NasResult{tk.max_s(), checksum, true};
}

}  // namespace

NasResult run_bt(mpi::MpiWorld& world, int n, int iters) {
  // BT: few, large messages; heavy per-cell work (5x5 block systems).
  return run_adi(world, n, iters, /*msgs_per_face=*/1,
                 /*flops_per_cell=*/220, /*face_depth=*/5);
}

NasResult run_sp(mpi::MpiWorld& world, int n, int iters) {
  // SP: more, smaller messages; lighter per-cell work (scalar penta-
  // diagonal systems).
  return run_adi(world, n, iters, /*msgs_per_face=*/6,
                 /*flops_per_cell=*/110, /*face_depth=*/5);
}

}  // namespace spam::apps
