// The paper's Split-C application benchmarks (Table 5 / Figure 4):
//   * blocked matrix multiply (two blockings: few large blocks / many small
//     blocks);
//   * sample sort, in a small-message variant (one put per key) and a bulk
//     variant (one store per destination);
//   * radix sort, small-message and bulk variants.
//
// All kernels do the real computation (results are verified) while charging
// virtual CPU time through the Split-C cost model, and report the paper's
// instrumentation: total time, communication-phase time, computation time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "splitc/splitc_world.hpp"

namespace spam::apps {

struct PhaseTimes {
  double total_s = 0;  // max over processors
  double comm_s = 0;   // max over processors of time inside runtime calls
  double cpu_s = 0;    // total - comm
  bool valid = false;  // result verification
  std::uint64_t checksum = 0;
};

/// Blocked matrix multiply: C = A*B with nb x nb blocks of bd x bd doubles,
/// blocks distributed round-robin.  Paper runs: nb=4, bd=128 and nb=16,
/// bd=16, on 8 processors.
PhaseTimes run_matmul(splitc::SplitCWorld& world, int nb, int bd);

enum class SortVariant { kSmallMessage, kBulk };

/// Sample sort over `n_total` uniformly random 32-bit keys.
PhaseTimes run_sample_sort(splitc::SplitCWorld& world, std::size_t n_total,
                           SortVariant variant, std::uint64_t seed = 42);

/// LSD radix sort, 8-bit digits, over `n_total` random 32-bit keys.
PhaseTimes run_radix_sort(splitc::SplitCWorld& world, std::size_t n_total,
                          SortVariant variant, std::uint64_t seed = 42);

}  // namespace spam::apps
