#include "sphw/payload.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "sim/hot.hpp"

namespace spam::sphw {
namespace {

std::size_t class_index(std::size_t len) {
  std::size_t cls = 0;
  std::size_t cap = 64;  // PayloadPool::kMinClassBytes
  while (cap < len) {
    cap <<= 1;
    ++cls;
  }
  return cls;
}

[[noreturn]] void pool_oom(std::size_t bytes) {
  std::fprintf(stderr, "PayloadPool: allocation of %zu bytes failed\n", bytes);
  std::abort();
}

}  // namespace

PayloadPool& PayloadPool::instance() noexcept {
  static thread_local PayloadPool pool;
  return pool;
}

PayloadPool::~PayloadPool() {
  // Thread exit: return the free-listed buffers to the host allocator.
  // Buffers still referenced by live PayloadRefs (a contract violation —
  // refs must not outlive their thread) are deliberately leaked rather
  // than freed under someone's feet.
  for (Header*& head : free_lists_) {
    while (head != nullptr) {
      Header* next = head->next_free;
      head->~Header();
      std::free(head);
      head = next;
    }
  }
}

SPAM_HOT PayloadPool::Header* PayloadPool::header_of(std::byte* data) noexcept {
  return std::launder(reinterpret_cast<Header*>(data - kHeaderSlot));
}

SPAM_HOT PayloadRef PayloadPool::allocate(std::size_t len) {
  PayloadRef ref;
  if (len == 0) return ref;
  const std::size_t cls = class_index(len);
  if (cls >= kNumClasses) pool_oom(len);

  Header* h = free_lists_[cls];
  if (h != nullptr) {
    free_lists_[cls] = h->next_free;
    ++stats_.buffers_reused;
    --stats_.buffers_free;
  } else {
    const std::size_t cap = kMinClassBytes << cls;
    void* raw = std::malloc(kHeaderSlot + cap);
    if (raw == nullptr) pool_oom(kHeaderSlot + cap);
    h = ::new (raw) Header;
    h->size_class = static_cast<std::uint8_t>(cls);
    ++stats_.buffers_allocated;
    stats_.bytes_allocated += cap;
  }
  h->refcount = 1;
  h->next_free = nullptr;
  ref.buf_ = reinterpret_cast<std::byte*>(h) + kHeaderSlot;
  ref.off_ = 0;
  ref.len_ = static_cast<std::uint32_t>(len);
  return ref;
}

SPAM_HOT PayloadRef PayloadPool::copy_from(const void* src, std::size_t len) {
  PayloadRef ref = allocate(len);
  if (len > 0) std::memcpy(ref.buf_, src, len);
  return ref;
}

SPAM_HOT void PayloadPool::release_buffer(std::byte* data) noexcept {
  Header* h = header_of(data);
  assert(h->refcount > 0);
  if (--h->refcount == 0) {
    h->next_free = free_lists_[h->size_class];
    free_lists_[h->size_class] = h;
    ++stats_.buffers_free;
  }
}

SPAM_HOT PayloadRef::PayloadRef(const PayloadRef& other) noexcept
    : buf_(other.buf_), off_(other.off_), len_(other.len_) {
  if (buf_ != nullptr) ++PayloadPool::header_of(buf_)->refcount;
}

SPAM_HOT PayloadRef& PayloadRef::operator=(const PayloadRef& other) noexcept {
  if (this != &other) {
    if (other.buf_ != nullptr) {
      ++PayloadPool::header_of(other.buf_)->refcount;
    }
    release();
    buf_ = other.buf_;
    off_ = other.off_;
    len_ = other.len_;
  }
  return *this;
}

SPAM_HOT PayloadRef& PayloadRef::operator=(PayloadRef&& other) noexcept {
  if (this != &other) {
    release();
    buf_ = other.buf_;
    off_ = other.off_;
    len_ = other.len_;
    other.buf_ = nullptr;
    other.off_ = 0;
    other.len_ = 0;
  }
  return *this;
}

SPAM_HOT void PayloadRef::release() noexcept {
  if (buf_ != nullptr) {
    PayloadPool::instance().release_buffer(buf_);
  }
}

SPAM_HOT const std::byte* PayloadRef::data() const noexcept { return buf_ + off_; }

SPAM_HOT std::byte* PayloadRef::mutable_data() noexcept {
  assert(buf_ != nullptr);
  assert(PayloadPool::header_of(buf_)->refcount == 1 &&
         "mutable_data() requires sole ownership");
  return buf_ + off_;
}

SPAM_HOT PayloadRef PayloadRef::slice(std::size_t off, std::size_t len) const noexcept {
  assert(off + len <= len_);
  PayloadRef r;
  if (buf_ != nullptr && len > 0) {
    ++PayloadPool::header_of(buf_)->refcount;
    r.buf_ = buf_;
    r.off_ = off_ + static_cast<std::uint32_t>(off);
    r.len_ = static_cast<std::uint32_t>(len);
  }
  return r;
}

void PayloadRef::assign(const void* src, std::size_t len) {
  *this = PayloadPool::instance().copy_from(src, len);
}

void PayloadRef::assign(std::size_t len, std::byte fill) {
  *this = PayloadPool::instance().allocate(len);
  if (len > 0) std::memset(buf_, static_cast<int>(fill), len);
}

}  // namespace spam::sphw
