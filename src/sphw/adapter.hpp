// TB2 network adapter model.
//
// The host side (called from the node's fiber, charging CPU time) mirrors
// the paper's programming interface: write a packet into the next
// memory-resident send-FIFO entry, flush its cache lines, then store the
// transfer length into the packet-length array in adapter memory across the
// MicroChannel (the "doorbell", ~1 us; bulk senders batch several lengths
// into one store).  The adapter firmware (pure engine events) DMAs
// doorbelled entries across the MicroChannel, runs i860 processing, and
// serializes packets onto the switch link.  Receives flow the opposite way
// into a bounded receive FIFO; the host pops entries lazily, one
// MicroChannel access per batch.
//
// The tx/rx pipelines are modeled analytically with per-resource
// next-free-time clocks (DMA engine, i860, link); packets move strictly
// FIFO through each resource, so arrival times can be computed at submit
// time and a single delivery event scheduled.
//
// --- Network fast path ----------------------------------------------------
// When a route is provably uncontended the per-packet event chain
// (FIFO-free, depart, switch hop, arrive — 4 events) collapses to ONE fused
// delivery event at the analytically computed arrival instant:
//
//   * the destination keeps a *reservation ledger* (fused_) recording, per
//     in-flight fused packet, its switch-entry instant and the rx-clock
//     values before its speculative application, so any conflicting later
//     traffic can roll the tail of the ledger back (restore clocks LIFO,
//     reschedule real per-hop events) and fall back mid-flight;
//   * eligibility demands no fault hook, no per-hop packet in flight to
//     the destination (pending_slow_ == 0), and switch-entry monotonicity
//     against the ledger tail — exactly the conditions under which the
//     submit-time computation reproduces the per-hop arithmetic bit for
//     bit (same sim::Time ops, same order);
//   * the sender's FIFO-free event is settled lazily against now() in the
//     host_send_space()/host_send_free() queries (the only observers).
//
// Every transformation is counted through Engine::note_elided so
// events_simulated() stays the per-hop-equivalent work measure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "sim/engine.hpp"
#include "sim/world.hpp"
#include "sphw/packet.hpp"
#include "sphw/params.hpp"

namespace spam::sphw {

class SwitchFabric;

class Tb2Adapter {
 public:
  Tb2Adapter(sim::Engine& engine, SwitchFabric& fabric, int node,
             const SpParams& params, int active_nodes);

  Tb2Adapter(const Tb2Adapter&) = delete;
  Tb2Adapter& operator=(const Tb2Adapter&) = delete;

  int node() const { return node_; }
  const SpParams& params() const { return params_; }

  // --- Host send side (call from the node fiber) --------------------------

  /// True if the send FIFO has a free entry.  Settles lazily tracked
  /// FIFO-free instants against the clock first (fast-path bookkeeping).
  bool host_send_space() {
    settle_send_fifo();
    return send_fifo_used_ < params_.send_fifo_entries;
  }
  int host_send_free() {
    settle_send_fifo();
    return params_.send_fifo_entries - send_fifo_used_;
  }

  /// Fast-path polling hint: the earliest instant at which
  /// `host_send_free() >= needed` *can* become true.  FIFO-free instants
  /// are fixed when packets are submitted and nothing can advance them, so
  /// any poll sampled strictly before the returned time must read false.
  /// Returns 0 when the condition already holds or no hint is available
  /// (per-hop mode, or entries still waiting on the host itself).
  sim::Time send_free_ready_time(int needed);

  /// Writes `pkt` into the next send-FIFO entry: charges the store and
  /// cache-flush costs.  If `doorbell_npackets > 0`, follows up with
  /// host_doorbell(doorbell_npackets) — one MicroChannel access covering
  /// this packet and the doorbell_npackets-1 enqueued before it (batched
  /// senders pass the batch size on the batch-completing enqueue, 0
  /// otherwise; plain senders pass 1).  Requires free space.
  ///
  /// `lead_charge` is a caller-side CPU cost (e.g. the AM layer's per-packet
  /// bookkeeping) to charge immediately before the store.  Under the fast
  /// path it is folded into one merged elapse together with the store and
  /// (for an immediate doorbell) the MicroChannel access: nothing externally
  /// visible happens at the intermediate instants, so the merged wake is
  /// provably equivalent and the saved wakes are counted as elided.
  void host_enqueue(sim::NodeCtx& ctx, Packet pkt, int doorbell_npackets = 1,
                    sim::Time lead_charge = 0);

  /// Stores the lengths of the `npackets` most recently enqueued (and not
  /// yet doorbelled) packets with a single MicroChannel access.  `charge`
  /// is false only when host_enqueue already folded the MicroChannel cost
  /// into its merged elapse.
  void host_doorbell(sim::NodeCtx& ctx, int npackets, bool charge = true);

  // --- Host receive side ---------------------------------------------------

  /// Number of packets sitting in the host-visible receive FIFO.
  int host_rx_pending() const { return static_cast<int>(rx_queue_.size()); }
  bool host_rx_ready() const { return !rx_queue_.empty(); }

  /// Fast-path polling hint: a lower bound on the instant at which
  /// host_rx_ready() *can* become true, or 0 when it already is / no bound
  /// is provable.  Valid only when every inbound packet is fused (ledger
  /// arrivals are ordered, and any mid-flight rollback re-delivers at the
  /// bit-identical per-hop instant, never earlier); per-hop packets in
  /// flight or pending arrive events forfeit the hint.
  sim::Time host_rx_ready_time() const;

  /// Copies the front packet out of the receive FIFO (charges the copy) and
  /// performs the lazy-pop bookkeeping (one MicroChannel access per
  /// lazy_pop_batch takes, which is when FIFO entries actually free up).
  ///
  /// `tail_charge` is a caller-side CPU cost (e.g. per-message handling)
  /// charged immediately after the take.  On non-flush takes under the fast
  /// path it merges with the copy into one elapse (no externally visible
  /// state changes at the intermediate instant); flush takes keep the split
  /// so the FIFO entries free at their exact per-hop instant, where
  /// in-flight arrivals can observe them.
  Packet host_rx_take(sim::NodeCtx& ctx, sim::Time tail_charge = 0);

  /// Forces the lazy pop to flush now (frees all consumed entries).
  void host_rx_flush_pops(sim::NodeCtx& ctx);

  // --- Fabric side (engine events only) ------------------------------------

  /// Called by the switch at the instant the packet reaches this adapter.
  void deliver_from_switch(Packet pkt);

  /// Fast path: the sender finished computing its tx clocks and asks this
  /// (destination) adapter to reserve the rx pipeline for a packet entering
  /// the switch at `t_link` and leaving it at `t_hop`.  On success the
  /// packet is consumed, its rx-clock updates are applied speculatively,
  /// one fused delivery event replaces the depart/hop/arrive chain, and
  /// true is returned.  Returns false (packet untouched) when ineligible.
  bool try_engage_fused(Packet& pkt, sim::Time t_link, sim::Time t_hop);

  /// A per-hop (slow-path) packet is now in flight toward this adapter;
  /// fused engagement is barred until it lands (its rx-clock contribution
  /// is only known at its hop event).
  void note_slow_inflight() { ++pending_slow_; }
  /// The in-flight slow packet was dropped by the fault hook instead.
  void note_slow_dropped() { --pending_slow_; }

  /// A fault hook is being armed: fall every reservation whose switch-entry
  /// instant is still in the future back to per-hop (the hook must see
  /// those packets at their depart events).
  void disengage_fused_for_faults();

  /// Interrupt line: invoked (from an engine event) whenever a packet
  /// becomes host-visible while the line is armed.  Used by the AM layer's
  /// interrupt-driven reception mode; polling mode leaves it unset.
  void set_rx_notify(std::function<void()> fn) { rx_notify_ = std::move(fn); }
  void clear_rx_notify() { rx_notify_ = nullptr; }

  struct Stats {
    std::uint64_t tx_packets = 0;
    std::uint64_t rx_packets = 0;
    std::uint64_t rx_dropped_fifo_full = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t doorbells = 0;
    std::uint64_t fused_deliveries = 0;  // packets that arrived fused
    std::uint64_t fused_rollbacks = 0;   // mid-flight disengagements
  };
  const Stats& stats() const { return stats_; }

  /// Receive-FIFO capacity (entries) as configured.
  int rx_fifo_capacity() const { return rx_fifo_capacity_; }
  /// Entries currently occupied from the adapter's point of view
  /// (includes host-consumed entries not yet lazily popped).
  int rx_fifo_occupied() const { return rx_fifo_used_; }

 private:
  void submit_to_tx_pipeline(Packet pkt);
  void settle_send_fifo();
  /// The shared arrive body: FIFO-full check, enqueue, notify.  Runs at the
  /// packet's arrival instant on both the per-hop and the fused path.
  void complete_rx(Packet pkt);
  void fused_arrival(std::uint64_t serial);
  /// Rolls back every reservation ordered after `keep` entries: restores
  /// the rx clocks to the state before the first rolled-back reservation
  /// and reschedules real per-hop events in engagement order.
  void rollback_fused_suffix(std::size_t keep);
  void rollback_fused_after(sim::Time t_hop);

  sim::Engine& engine_;
  SwitchFabric& fabric_;
  const int node_;
  const SpParams params_;

  // Send side.
  int send_fifo_used_ = 0;
  std::deque<Packet> awaiting_doorbell_;
  // Lazily settled FIFO-free instants (fast path); monotonic because
  // tx_dma_free_ is.  Bounded by send_fifo_entries.
  std::deque<sim::Time> fifo_free_at_;

  // Tx pipeline next-free clocks.
  sim::Time tx_dma_free_ = 0;
  sim::Time tx_i860_free_ = 0;
  sim::Time link_free_ = 0;

  // Rx pipeline next-free clocks.
  sim::Time rx_i860_free_ = 0;
  sim::Time rx_dma_free_ = 0;

  // Fused-reservation ledger (this adapter as destination), ordered by
  // engagement == switch-exit == arrival order.  pre_* snapshot the rx
  // clocks before the reservation's speculative application so a rollback
  // can restore them LIFO.  Serials are never reused: a rolled-back
  // reservation's already-queued fused event finds a serial mismatch and
  // degenerates to a no-op.
  struct FusedReservation {
    std::uint64_t serial = 0;
    sim::Time t_link = 0;  // sender link completion (per-hop depart instant)
    sim::Time t_hop = 0;   // switch-exit instant (per-hop deliver instant)
    sim::Time pre_i860 = 0;
    sim::Time pre_dma = 0;
    sim::Time t_arrive = 0;  // fused delivery instant (host_rx_ready_time)
    Packet pkt;
  };
  std::deque<FusedReservation> fused_;
  std::uint64_t next_fused_serial_ = 0;
  // Per-hop packets in flight toward this adapter (they apply their
  // rx-clock updates only at their hop events, so fused submit-time
  // computation is barred while any are outstanding).
  int pending_slow_ = 0;
  // Per-hop arrive events scheduled but not yet fired: their arrival
  // instants are not in the fused ledger, so host_rx_ready_time() must
  // decline to predict while any are outstanding.
  int slow_arrivals_pending_ = 0;

  // Receive FIFO: capacity tracks adapter view; rx_queue_ is what the host
  // can see; pops_owed_ counts host takes not yet flushed to the adapter.
  const int rx_fifo_capacity_;
  int rx_fifo_used_ = 0;
  std::deque<Packet> rx_queue_;
  int pops_owed_ = 0;
  std::function<void()> rx_notify_;

  Stats stats_;
};

}  // namespace spam::sphw
