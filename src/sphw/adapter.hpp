// TB2 network adapter model.
//
// The host side (called from the node's fiber, charging CPU time) mirrors
// the paper's programming interface: write a packet into the next
// memory-resident send-FIFO entry, flush its cache lines, then store the
// transfer length into the packet-length array in adapter memory across the
// MicroChannel (the "doorbell", ~1 us; bulk senders batch several lengths
// into one store).  The adapter firmware (pure engine events) DMAs
// doorbelled entries across the MicroChannel, runs i860 processing, and
// serializes packets onto the switch link.  Receives flow the opposite way
// into a bounded receive FIFO; the host pops entries lazily, one
// MicroChannel access per batch.
//
// The tx/rx pipelines are modeled analytically with per-resource
// next-free-time clocks (DMA engine, i860, link); packets move strictly
// FIFO through each resource, so arrival times can be computed at submit
// time and a single delivery event scheduled.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "sim/engine.hpp"
#include "sim/world.hpp"
#include "sphw/packet.hpp"
#include "sphw/params.hpp"

namespace spam::sphw {

class SwitchFabric;

class Tb2Adapter {
 public:
  Tb2Adapter(sim::Engine& engine, SwitchFabric& fabric, int node,
             const SpParams& params, int active_nodes);

  Tb2Adapter(const Tb2Adapter&) = delete;
  Tb2Adapter& operator=(const Tb2Adapter&) = delete;

  int node() const { return node_; }
  const SpParams& params() const { return params_; }

  // --- Host send side (call from the node fiber) --------------------------

  /// True if the send FIFO has a free entry.
  bool host_send_space() const {
    return send_fifo_used_ < params_.send_fifo_entries;
  }
  int host_send_free() const {
    return params_.send_fifo_entries - send_fifo_used_;
  }

  /// Writes `pkt` into the next send-FIFO entry: charges the store and
  /// cache-flush costs.  If `ring_doorbell`, also charges one MicroChannel
  /// access and makes the packet visible to the adapter; otherwise the
  /// caller must follow up with host_doorbell().  Requires free space.
  void host_enqueue(sim::NodeCtx& ctx, Packet pkt, bool ring_doorbell = true);

  /// Stores the lengths of the `npackets` most recently enqueued (and not
  /// yet doorbelled) packets with a single MicroChannel access.
  void host_doorbell(sim::NodeCtx& ctx, int npackets);

  // --- Host receive side ---------------------------------------------------

  /// Number of packets sitting in the host-visible receive FIFO.
  int host_rx_pending() const { return static_cast<int>(rx_queue_.size()); }
  bool host_rx_ready() const { return !rx_queue_.empty(); }

  /// Copies the front packet out of the receive FIFO (charges the copy) and
  /// performs the lazy-pop bookkeeping (one MicroChannel access per
  /// lazy_pop_batch takes, which is when FIFO entries actually free up).
  Packet host_rx_take(sim::NodeCtx& ctx);

  /// Forces the lazy pop to flush now (frees all consumed entries).
  void host_rx_flush_pops(sim::NodeCtx& ctx);

  // --- Fabric side (engine events only) ------------------------------------

  /// Called by the switch at the instant the packet reaches this adapter.
  void deliver_from_switch(Packet pkt);

  /// Interrupt line: invoked (from an engine event) whenever a packet
  /// becomes host-visible while the line is armed.  Used by the AM layer's
  /// interrupt-driven reception mode; polling mode leaves it unset.
  void set_rx_notify(std::function<void()> fn) { rx_notify_ = std::move(fn); }
  void clear_rx_notify() { rx_notify_ = nullptr; }

  struct Stats {
    std::uint64_t tx_packets = 0;
    std::uint64_t rx_packets = 0;
    std::uint64_t rx_dropped_fifo_full = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t doorbells = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Receive-FIFO capacity (entries) as configured.
  int rx_fifo_capacity() const { return rx_fifo_capacity_; }
  /// Entries currently occupied from the adapter's point of view
  /// (includes host-consumed entries not yet lazily popped).
  int rx_fifo_occupied() const { return rx_fifo_used_; }

 private:
  void submit_to_tx_pipeline(Packet pkt);

  sim::Engine& engine_;
  SwitchFabric& fabric_;
  const int node_;
  const SpParams params_;

  // Send side.
  int send_fifo_used_ = 0;
  std::deque<Packet> awaiting_doorbell_;

  // Tx pipeline next-free clocks.
  sim::Time tx_dma_free_ = 0;
  sim::Time tx_i860_free_ = 0;
  sim::Time link_free_ = 0;

  // Rx pipeline next-free clocks.
  sim::Time rx_i860_free_ = 0;
  sim::Time rx_dma_free_ = 0;

  // Receive FIFO: capacity tracks adapter view; rx_queue_ is what the host
  // can see; pops_owed_ counts host takes not yet flushed to the adapter.
  const int rx_fifo_capacity_;
  int rx_fifo_used_ = 0;
  std::deque<Packet> rx_queue_;
  int pops_owed_ = 0;
  std::function<void()> rx_notify_;

  Stats stats_;
};

}  // namespace spam::sphw
