#include "sphw/adapter.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/hot.hpp"
#include "sim/trace.hpp"
#include "sphw/switch.hpp"

namespace spam::sphw {

namespace {
sim::Time ceil_us(double us) { return sim::usec(us); }
}  // namespace

Tb2Adapter::Tb2Adapter(sim::Engine& engine, SwitchFabric& fabric, int node,
                       const SpParams& params, int active_nodes)
    : engine_(engine),
      fabric_(fabric),
      node_(node),
      params_(params),
      rx_fifo_capacity_(params.recv_fifo_entries_per_node *
                        std::max(1, active_nodes)) {
  fabric_.attach(node, this);
}

SPAM_HOT void Tb2Adapter::host_enqueue(sim::NodeCtx& ctx, Packet pkt,
                              bool ring_doorbell) {
  assert(host_send_space() && "send FIFO overflow: caller must check space");
  assert(pkt.payload_bytes <=
         static_cast<std::uint32_t>(params_.packet_data_bytes));
  pkt.src = static_cast<std::int16_t>(node_);

  // Host writes the entry into the memory-resident FIFO, then flushes the
  // touched cache lines (the memory bus is not coherent).
  const std::uint32_t entry_bytes = pkt.wire_bytes(params_);
  const int lines =
      (static_cast<int>(entry_bytes) + params_.cache_line_bytes - 1) /
      params_.cache_line_bytes;
  ctx.elapse(ceil_us(entry_bytes * params_.host_write_us_per_byte +
                     lines * params_.flush_line_us));

  ++send_fifo_used_;
  // spam-lint: capacity-ok (bounded by the send-FIFO depth; the deque
  // keeps its chunks across the steady-state fill/drain cycle)
  awaiting_doorbell_.push_back(std::move(pkt));
  if (ring_doorbell) host_doorbell(ctx, 1);
}

SPAM_HOT void Tb2Adapter::host_doorbell(sim::NodeCtx& ctx, int npackets) {
  assert(npackets > 0 &&
         npackets <= static_cast<int>(awaiting_doorbell_.size()));
  // One store across the MicroChannel covers several length-array slots.
  ctx.elapse(ceil_us(params_.mc_access_us));
  ++stats_.doorbells;
  for (int i = 0; i < npackets; ++i) {
    submit_to_tx_pipeline(std::move(awaiting_doorbell_.front()));
    awaiting_doorbell_.pop_front();
  }
}

SPAM_HOT void Tb2Adapter::submit_to_tx_pipeline(Packet pkt) {
  const sim::Time now = engine_.now();
  const std::uint32_t bytes = pkt.wire_bytes(params_);

  // Stage 1: MicroChannel DMA fetch of the FIFO entry.
  const sim::Time dma_start = std::max(now, tx_dma_free_);
  tx_dma_free_ = dma_start + ceil_us(params_.dma_setup_us) +
                 sim::transfer_time(bytes, params_.mc_dma_mbps);
  // The send-FIFO entry is reusable once the adapter has fetched it.
  engine_.at(tx_dma_free_, [this] { --send_fifo_used_; });

  // Stage 2: i860 firmware processing.
  const sim::Time i860_start = std::max(tx_dma_free_, tx_i860_free_);
  tx_i860_free_ = i860_start + ceil_us(params_.i860_tx_us);

  // Stage 3: link serialization out of the MSMU.
  const sim::Time link_start = std::max(tx_i860_free_, link_free_);
  link_free_ = link_start + sim::transfer_time(bytes, params_.link_mbps);

  ++stats_.tx_packets;
  stats_.tx_bytes += bytes;

  sim::Trace::log(sim::TraceCat::kAdapter, now,
                  "node%d tx pkt dst=%d ch=%u seq=%u bytes=%u departs=%.3f",
                  node_, pkt.dst, pkt.channel, pkt.seq, bytes,
                  sim::to_usec(link_free_));

  auto depart = [this, p = std::move(pkt)]() mutable {
    fabric_.transmit(std::move(p));
  };
  static_assert(sim::InlineAction::fits_inline<decltype(depart)>,
                "hot TX closure must not heap-allocate");
  engine_.at(link_free_, std::move(depart));
}

SPAM_HOT void Tb2Adapter::deliver_from_switch(Packet pkt) {
  const sim::Time now = engine_.now();
  const std::uint32_t bytes = pkt.wire_bytes(params_);

  // Stage 1: i860 firmware pulls the packet off the MSMU.
  const sim::Time i860_start = std::max(now, rx_i860_free_);
  rx_i860_free_ = i860_start + ceil_us(params_.i860_rx_us);

  // Stage 2: DMA into the host receive FIFO.
  const sim::Time dma_start = std::max(rx_i860_free_, rx_dma_free_);
  rx_dma_free_ = dma_start + ceil_us(params_.dma_setup_us) +
                 sim::transfer_time(bytes, params_.mc_dma_mbps);

  auto arrive = [this, p = std::move(pkt)]() mutable {
    if (rx_fifo_used_ >= rx_fifo_capacity_) {
      // Input buffer overflow: the packet is lost; flow control recovers.
      ++stats_.rx_dropped_fifo_full;
      sim::Trace::log(sim::TraceCat::kAdapter, engine_.now(),
                      "node%d rx DROP (fifo full) src=%d seq=%u", node_,
                      p.src, p.seq);
      return;
    }
    ++rx_fifo_used_;
    ++stats_.rx_packets;
    stats_.rx_bytes += p.wire_bytes(params_);
    // spam-lint: capacity-ok (bounded by rx_fifo_capacity_, checked above)
    rx_queue_.push_back(std::move(p));
    if (rx_notify_) rx_notify_();
  };
  static_assert(sim::InlineAction::fits_inline<decltype(arrive)>,
                "hot RX closure must not heap-allocate");
  engine_.at(rx_dma_free_, std::move(arrive));
}

SPAM_HOT Packet Tb2Adapter::host_rx_take(sim::NodeCtx& ctx) {
  assert(!rx_queue_.empty());
  Packet pkt = std::move(rx_queue_.front());
  rx_queue_.pop_front();

  // Copy the entry out of the FIFO into user buffers.
  ctx.elapse(ceil_us(pkt.wire_bytes(params_) * params_.host_copy_us_per_byte));

  // Lazy pop: the entry is only returned to the adapter every
  // lazy_pop_batch takes, costing one MicroChannel access.
  if (++pops_owed_ >= params_.lazy_pop_batch) host_rx_flush_pops(ctx);
  return pkt;
}

SPAM_HOT void Tb2Adapter::host_rx_flush_pops(sim::NodeCtx& ctx) {
  if (pops_owed_ == 0) return;
  ctx.elapse(ceil_us(params_.mc_access_us));
  rx_fifo_used_ -= pops_owed_;
  assert(rx_fifo_used_ >= 0);
  pops_owed_ = 0;
}

}  // namespace spam::sphw
