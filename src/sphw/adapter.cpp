#include "sphw/adapter.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/hot.hpp"
#include "sim/trace.hpp"
#include "sphw/switch.hpp"

namespace spam::sphw {

namespace {
sim::Time ceil_us(double us) { return sim::usec(us); }
}  // namespace

Tb2Adapter::Tb2Adapter(sim::Engine& engine, SwitchFabric& fabric, int node,
                       const SpParams& params, int active_nodes)
    : engine_(engine),
      fabric_(fabric),
      node_(node),
      params_(params),
      rx_fifo_capacity_(params.recv_fifo_entries_per_node *
                        std::max(1, active_nodes)) {
  fabric_.attach(node, this);
}

SPAM_HOT void Tb2Adapter::settle_send_fifo() {
  // Lazy replacement for the per-entry FIFO-free event: per-hop mode's
  // event at tx_dma_free_ always runs before any same-instant observation
  // (the observer's wake was scheduled later, so it has a larger seq),
  // which is exactly the `<= now` settle below.
  const sim::Time now = engine_.now();
  while (!fifo_free_at_.empty() && fifo_free_at_.front() <= now) {
    fifo_free_at_.pop_front();
    --send_fifo_used_;
    engine_.note_elided(1);  // the FIFO-free event per-hop mode schedules
  }
}

SPAM_HOT sim::Time Tb2Adapter::send_free_ready_time(int needed) {
  settle_send_fifo();
  const int deficit = needed - (params_.send_fifo_entries - send_fifo_used_);
  if (deficit <= 0) return 0;  // already satisfied
  if (static_cast<std::size_t>(deficit) > fifo_free_at_.size()) {
    // Some needed entries have no scheduled free instant (per-hop mode, or
    // packets the host has not doorbelled): no hint.
    return 0;
  }
  return fifo_free_at_[static_cast<std::size_t>(deficit) - 1];
}

SPAM_HOT void Tb2Adapter::host_enqueue(sim::NodeCtx& ctx, Packet pkt,
                              int doorbell_npackets, sim::Time lead_charge) {
  assert(doorbell_npackets >= 0);
  assert(host_send_space() && "send FIFO overflow: caller must check space");
  assert(pkt.payload_bytes <=
         static_cast<std::uint32_t>(params_.packet_data_bytes));
  pkt.src = static_cast<std::int16_t>(node_);

  // Host writes the entry into the memory-resident FIFO, then flushes the
  // touched cache lines (the memory bus is not coherent).
  const std::uint32_t entry_bytes = pkt.wire_bytes(params_);
  const int lines =
      (static_cast<int>(entry_bytes) + params_.cache_line_bytes - 1) /
      params_.cache_line_bytes;
  const sim::Time store_cost =
      ceil_us(entry_bytes * params_.host_write_us_per_byte +
              lines * params_.flush_line_us);

  if (engine_.fastpath() && (lead_charge > 0 || doorbell_npackets > 0)) {
    // Merge the caller's lead charge, the FIFO store, and (when ringing
    // immediately) the doorbell's MicroChannel access into ONE elapse of
    // the exact summed duration.  Every externally visible effect — the
    // FIFO push is fiber-local, the submit happens at the doorbell
    // instant — lands at the same virtual time as with split charges, so
    // only the intermediate wake events disappear; count those as elided.
    sim::Time total = lead_charge + store_cost;
    std::int64_t merged = lead_charge > 0 ? 1 : 0;
    if (doorbell_npackets > 0) {
      total += ceil_us(params_.mc_access_us);
      ++merged;
    }
    ctx.elapse(total);
    engine_.note_elided(merged);
    ++send_fifo_used_;
    // spam-lint: capacity-ok (bounded by the send-FIFO depth; the deque
    // keeps its chunks across the steady-state fill/drain cycle)
    awaiting_doorbell_.push_back(std::move(pkt));
    if (doorbell_npackets > 0) {
      host_doorbell(ctx, doorbell_npackets, /*charge=*/false);
    }
    return;
  }

  if (lead_charge > 0) ctx.elapse(lead_charge);
  ctx.elapse(store_cost);
  ++send_fifo_used_;
  // spam-lint: capacity-ok (bounded by the send-FIFO depth; the deque
  // keeps its chunks across the steady-state fill/drain cycle)
  awaiting_doorbell_.push_back(std::move(pkt));
  if (doorbell_npackets > 0) host_doorbell(ctx, doorbell_npackets);
}

SPAM_HOT void Tb2Adapter::host_doorbell(sim::NodeCtx& ctx, int npackets,
                                        bool charge) {
  assert(npackets > 0 &&
         npackets <= static_cast<int>(awaiting_doorbell_.size()));
  // One store across the MicroChannel covers several length-array slots
  // (already folded into a merged host_enqueue elapse when !charge).
  if (charge) ctx.elapse(ceil_us(params_.mc_access_us));
  ++stats_.doorbells;
  for (int i = 0; i < npackets; ++i) {
    submit_to_tx_pipeline(std::move(awaiting_doorbell_.front()));
    awaiting_doorbell_.pop_front();
  }
}

SPAM_HOT void Tb2Adapter::submit_to_tx_pipeline(Packet pkt) {
  const sim::Time now = engine_.now();
  const std::uint32_t bytes = pkt.wire_bytes(params_);

  // Stage 1: MicroChannel DMA fetch of the FIFO entry.
  const sim::Time dma_start = std::max(now, tx_dma_free_);
  tx_dma_free_ = dma_start + ceil_us(params_.dma_setup_us) +
                 sim::transfer_time(bytes, params_.mc_dma_mbps);
  // The send-FIFO entry is reusable once the adapter has fetched it.
  if (engine_.fastpath()) {
    // Settled lazily in host_send_space()/host_send_free(), the only
    // observers — no event needed.
    // spam-lint: capacity-ok (bounded by the send-FIFO depth)
    fifo_free_at_.push_back(tx_dma_free_);
  } else {
    engine_.at(tx_dma_free_, [this] { --send_fifo_used_; });
  }

  // Stage 2: i860 firmware processing.
  const sim::Time i860_start = std::max(tx_dma_free_, tx_i860_free_);
  tx_i860_free_ = i860_start + ceil_us(params_.i860_tx_us);

  // Stage 3: link serialization out of the MSMU.
  const sim::Time link_start = std::max(tx_i860_free_, link_free_);
  link_free_ = link_start + sim::transfer_time(bytes, params_.link_mbps);

  ++stats_.tx_packets;
  stats_.tx_bytes += bytes;

  sim::Trace::log(sim::TraceCat::kAdapter, now,
                  "node%d tx pkt dst=%d ch=%u seq=%u bytes=%u departs=%.3f",
                  node_, pkt.dst, pkt.channel, pkt.seq, bytes,
                  sim::to_usec(link_free_));

  assert(pkt.dst >= 0 && pkt.dst < fabric_.size());
  Tb2Adapter* dst = fabric_.peer(pkt.dst);
  const sim::Time t_link = link_free_;
  if (engine_.fastpath() && !fabric_.has_drop_fn()) {
    // Same arithmetic as transmit()'s `after(usec(hop_latency_us))` at the
    // depart instant.
    const sim::Time t_hop = t_link + sim::usec(params_.hop_latency_us);
    if (dst->try_engage_fused(pkt, t_link, t_hop)) return;
  }
  dst->note_slow_inflight();
  auto depart = [this, p = std::move(pkt)]() mutable {
    fabric_.transmit(std::move(p));
  };
  static_assert(sim::InlineAction::fits_inline<decltype(depart)>,
                "hot TX closure must not heap-allocate");
  engine_.at(t_link, std::move(depart));
}

SPAM_HOT bool Tb2Adapter::try_engage_fused(Packet& pkt, sim::Time t_link,
                                           sim::Time t_hop) {
  // A per-hop packet in flight toward us applies its rx-clock updates only
  // at its hop event, so a submit-time computation would miss it.
  if (pending_slow_ > 0) return false;
  // Reservations with a later switch exit conflict: this packet's rx
  // occupancy precedes theirs, so they fall back to per-hop (their hop
  // instants are beyond t_hop, hence still ahead — reschedulable exactly).
  rollback_fused_after(t_hop);

  const std::uint32_t bytes = pkt.wire_bytes(params_);
  const sim::Time pre_i860 = rx_i860_free_;
  const sim::Time pre_dma = rx_dma_free_;
  // Bit-identical to deliver_from_switch() running at now == t_hop: same
  // sim::Time operations in the same order.
  const sim::Time i860_start = std::max(t_hop, rx_i860_free_);
  rx_i860_free_ = i860_start + ceil_us(params_.i860_rx_us);
  const sim::Time dma_start = std::max(rx_i860_free_, rx_dma_free_);
  rx_dma_free_ = dma_start + ceil_us(params_.dma_setup_us) +
                 sim::transfer_time(bytes, params_.mc_dma_mbps);

  const std::uint64_t serial = next_fused_serial_++;
  // spam-lint: capacity-ok (bounded by in-flight packets; the deque keeps
  // its chunks across the steady-state engage/complete cycle)
  fused_.push_back(FusedReservation{serial, t_link, t_hop, pre_i860, pre_dma,
                                    rx_dma_free_, std::move(pkt)});
  auto fused = [this, serial] { fused_arrival(serial); };
  static_assert(sim::InlineAction::fits_inline<decltype(fused)>,
                "hot fused closure must not heap-allocate");
  engine_.at(rx_dma_free_, std::move(fused));
  engine_.note_elided(2);  // the depart and hop events, proven away
  return true;
}

SPAM_HOT void Tb2Adapter::fused_arrival(std::uint64_t serial) {
  // Serials are never reused: a mismatch means this reservation was rolled
  // back mid-flight and its packet is travelling per-hop instead (the
  // rollback's elide ledger already paid for this no-op pop).
  if (fused_.empty() || fused_.front().serial != serial) return;
  FusedReservation r = std::move(fused_.front());
  fused_.pop_front();
  fabric_.note_fused_delivered();
  ++stats_.fused_deliveries;
  complete_rx(std::move(r.pkt));
}

SPAM_HOT void Tb2Adapter::rollback_fused_suffix(std::size_t keep) {
  if (keep >= fused_.size()) return;
  const sim::Time now = engine_.now();
  // Net LIFO clock restore: back out every rolled reservation at once.
  rx_i860_free_ = fused_[keep].pre_i860;
  rx_dma_free_ = fused_[keep].pre_dma;
  // Reschedule real events in engagement order so same-instant departs
  // keep their per-hop relative sequence.
  for (std::size_t i = keep; i < fused_.size(); ++i) {
    FusedReservation& r = fused_[i];
    ++stats_.fused_rollbacks;
    ++pending_slow_;  // from here on it is a per-hop in-flight packet
    if (r.t_link >= now) {
      // Depart instant still ahead: replay it in full, fault-hook check
      // included.  Elide ledger: depart and hop become real again (-2) and
      // the cancelled fused event will pop as a no-op (-1).
      engine_.note_elided(-3);
      auto depart = [fab = &fabric_, p = std::move(r.pkt)]() mutable {
        fab->transmit(std::move(p));
      };
      static_assert(sim::InlineAction::fits_inline<decltype(depart)>,
                    "hot rollback closure must not heap-allocate");
      engine_.at(r.t_link, std::move(depart));
    } else {
      // Already past the switch entry — per-hop would have cleared the
      // (then absent) fault hook at that instant, so the depart event
      // stays legitimately elided; count its delivery and reschedule from
      // the switch exit (-2: real hop + no-op fused pop).  t_hop is ahead:
      // rollbacks are only triggered by strictly earlier switch exits.
      fabric_.note_fused_delivered();
      engine_.note_elided(-2);
      auto hop = [this, p = std::move(r.pkt)]() mutable {
        deliver_from_switch(std::move(p));
      };
      static_assert(sim::InlineAction::fits_inline<decltype(hop)>,
                    "hot rollback closure must not heap-allocate");
      assert(r.t_hop >= now);
      engine_.at(r.t_hop, std::move(hop));
    }
  }
  fused_.resize(keep);
}

SPAM_HOT void Tb2Adapter::rollback_fused_after(sim::Time t_hop) {
  std::size_t keep = fused_.size();
  while (keep > 0 && fused_[keep - 1].t_hop > t_hop) --keep;
  rollback_fused_suffix(keep);
}

void Tb2Adapter::disengage_fused_for_faults() {
  const sim::Time now = engine_.now();
  std::size_t keep = fused_.size();
  while (keep > 0 && fused_[keep - 1].t_link >= now) --keep;
  rollback_fused_suffix(keep);
}

SPAM_HOT void Tb2Adapter::deliver_from_switch(Packet pkt) {
  // A per-hop delivery occupies the rx pipeline *now*; fused reservations
  // with a later switch exit computed their times without us and must fall
  // back before we touch the clocks.
  rollback_fused_after(engine_.now());
  --pending_slow_;
  assert(pending_slow_ >= 0);

  const sim::Time now = engine_.now();
  const std::uint32_t bytes = pkt.wire_bytes(params_);

  // Stage 1: i860 firmware pulls the packet off the MSMU.
  const sim::Time i860_start = std::max(now, rx_i860_free_);
  rx_i860_free_ = i860_start + ceil_us(params_.i860_rx_us);

  // Stage 2: DMA into the host receive FIFO.
  const sim::Time dma_start = std::max(rx_i860_free_, rx_dma_free_);
  rx_dma_free_ = dma_start + ceil_us(params_.dma_setup_us) +
                 sim::transfer_time(bytes, params_.mc_dma_mbps);

  ++slow_arrivals_pending_;
  auto arrive = [this, p = std::move(pkt)]() mutable {
    --slow_arrivals_pending_;
    complete_rx(std::move(p));
  };
  static_assert(sim::InlineAction::fits_inline<decltype(arrive)>,
                "hot RX closure must not heap-allocate");
  engine_.at(rx_dma_free_, std::move(arrive));
}

SPAM_HOT sim::Time Tb2Adapter::host_rx_ready_time() const {
  if (!engine_.fastpath() || !rx_queue_.empty()) return 0;
  // Any per-hop traffic (in flight to the switch, or between its hop and
  // arrive events) could land before the fused front: no prediction.
  if (pending_slow_ > 0 || slow_arrivals_pending_ > 0) return 0;
  if (fused_.empty()) return 0;  // nothing inbound is known at all
  // Ledger arrivals are ordered (rx_dma_free_ is monotonic), a rollback
  // re-delivers at the bit-identical per-hop instant, a conflicting
  // later per-hop delivery inherits clocks >= the front's arrival, and a
  // FIFO-full drop only keeps the queue empty longer — so nothing can
  // become host-visible before the front reservation's instant.
  return fused_.front().t_arrive;
}

SPAM_HOT void Tb2Adapter::complete_rx(Packet p) {
  if (rx_fifo_used_ >= rx_fifo_capacity_) {
    // Input buffer overflow: the packet is lost; flow control recovers.
    ++stats_.rx_dropped_fifo_full;
    sim::Trace::log(sim::TraceCat::kAdapter, engine_.now(),
                    "node%d rx DROP (fifo full) src=%d seq=%u", node_,
                    p.src, p.seq);
    return;
  }
  ++rx_fifo_used_;
  ++stats_.rx_packets;
  stats_.rx_bytes += p.wire_bytes(params_);
  // spam-lint: capacity-ok (bounded by rx_fifo_capacity_, checked above)
  rx_queue_.push_back(std::move(p));
  if (rx_notify_) rx_notify_();
}

SPAM_HOT Packet Tb2Adapter::host_rx_take(sim::NodeCtx& ctx,
                                         sim::Time tail_charge) {
  assert(!rx_queue_.empty());
  Packet pkt = std::move(rx_queue_.front());
  rx_queue_.pop_front();

  // Copy the entry out of the FIFO into user buffers.
  const sim::Time copy_cost =
      ceil_us(pkt.wire_bytes(params_) * params_.host_copy_us_per_byte);

  if (engine_.fastpath() && tail_charge > 0 &&
      pops_owed_ + 1 < params_.lazy_pop_batch) {
    // Non-flush take: between the copy and the caller's handling charge
    // nothing externally visible changes (pops_owed_ is adapter-internal),
    // so one merged elapse of the exact sum reaches the same instant with
    // one wake fewer.  Flush takes keep the split below so rx_fifo_used_
    // drops at its per-hop instant, where in-flight arrivals can see it.
    ++pops_owed_;
    ctx.elapse(copy_cost + tail_charge);
    engine_.note_elided(1);
    return pkt;
  }

  ctx.elapse(copy_cost);

  // Lazy pop: the entry is only returned to the adapter every
  // lazy_pop_batch takes, costing one MicroChannel access.
  if (++pops_owed_ >= params_.lazy_pop_batch) host_rx_flush_pops(ctx);
  if (tail_charge > 0) ctx.elapse(tail_charge);
  return pkt;
}

SPAM_HOT void Tb2Adapter::host_rx_flush_pops(sim::NodeCtx& ctx) {
  if (pops_owed_ == 0) return;
  ctx.elapse(ceil_us(params_.mc_access_us));
  rx_fifo_used_ -= pops_owed_;
  assert(rx_fifo_used_ >= 0);
  pops_owed_ = 0;
}

}  // namespace spam::sphw
