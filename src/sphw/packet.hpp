// Wire packet exchanged through the simulated TB2 adapters and SP switch.
//
// A packet corresponds to one send/receive-FIFO entry.  The protocol layers
// (SP AM, MPL) interpret the generic header fields; the hardware layer only
// looks at src/dst and the on-wire size.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sphw/params.hpp"
#include "sphw/payload.hpp"

namespace spam::sphw {

struct Packet {
  std::int16_t src = 0;
  std::int16_t dst = 0;
  /// Logical channel: protocol layers use it to separate request/reply
  /// traffic (deadlock freedom) or to mark their own traffic class.
  std::uint8_t channel = 0;
  /// Protocol-defined flag bits (e.g. NACK, chunk-final).
  std::uint8_t flags = 0;
  /// Protocol sequence number (chunk granularity for SP AM).
  std::uint32_t seq = 0;
  /// Byte offset of this packet's payload within its bulk operation.
  std::uint32_t offset = 0;
  /// Position of this packet within its chunk and the chunk's packet count
  /// (SP AM numbers packets inside a chunk; one ack covers the chunk).
  std::uint16_t chunk_idx = 0;
  std::uint16_t chunk_len = 1;
  /// Piggybacked cumulative acknowledgements, one per channel.
  std::uint32_t ack[2] = {0, 0};
  /// Protocol header words (handler index, token, addresses, small args).
  std::uint64_t h[4] = {0, 0, 0, 0};
  /// Number of payload bytes that occupy the wire (argument words and/or
  /// bulk data).  Drives all timing.
  std::uint32_t payload_bytes = 0;
  /// Actual content for bulk transfers; may be empty for control packets
  /// whose logical payload lives in h[] (still accounted by payload_bytes).
  /// A ref-counted view into a pooled buffer: copying the packet (FIFO
  /// hops, retransmit snapshots) shares the bytes instead of duplicating
  /// them.  Timing always follows payload_bytes, never this view.
  PayloadRef payload;

  std::uint32_t wire_bytes(const SpParams& p) const {
    return static_cast<std::uint32_t>(p.packet_header_bytes) + payload_bytes;
  }
};

}  // namespace spam::sphw
