// SP high-performance switch model.
//
// Egress serialization happens in the sending adapter (its link clock); the
// fabric itself contributes a fixed hardware hop latency and is the hook
// point for fault injection (packet drops) used by the flow-control tests.
// The four redundant routes of the real switch are collapsed into one
// FIFO path: SP AM relies on (and the real TB2 firmware provides) in-order
// delivery, which a single path gives us by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sphw/packet.hpp"
#include "sphw/params.hpp"

namespace spam::sphw {

class Tb2Adapter;

class SwitchFabric {
 public:
  SwitchFabric(sim::Engine& engine, const SpParams& params, int num_nodes);

  void attach(int node, Tb2Adapter* adapter);

  /// Called by a sending adapter at the instant a packet finishes leaving
  /// on its link; schedules delivery after the hop latency (unless a fault
  /// hook eats the packet).
  void transmit(Packet pkt);

  /// Fault injection: return true to drop the packet.  Used by tests and
  /// the fault-injection example; production runs leave it unset.
  using DropFn = std::function<bool(const Packet&)>;
  void set_drop_fn(DropFn fn) { drop_fn_ = std::move(fn); }

  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t dropped_injected = 0;
  };
  const Stats& stats() const { return stats_; }

  int size() const { return static_cast<int>(adapters_.size()); }

 private:
  sim::Engine& engine_;
  const SpParams params_;
  std::vector<Tb2Adapter*> adapters_;
  DropFn drop_fn_;
  Stats stats_;
};

}  // namespace spam::sphw
