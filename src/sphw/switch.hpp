// SP high-performance switch model.
//
// Egress serialization happens in the sending adapter (its link clock); the
// fabric itself contributes a fixed hardware hop latency and is the hook
// point for fault injection (packet drops) used by the flow-control tests.
// The four redundant routes of the real switch are collapsed into one
// FIFO path: SP AM relies on (and the real TB2 firmware provides) in-order
// delivery, which a single path gives us by construction.
//
// The fabric also brokers the network fast path: senders ask it whether a
// fault hook is armed (fused deliveries must never bypass the drop check)
// and reach peer adapters through it to engage fused reservations; arming
// a fault hook disengages every in-flight reservation whose switch-entry
// instant is still in the future, so the hook sees exactly the packets the
// per-hop simulation would have shown it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sphw/packet.hpp"
#include "sphw/params.hpp"

namespace spam::sphw {

class Tb2Adapter;

class SwitchFabric {
 public:
  SwitchFabric(sim::Engine& engine, const SpParams& params, int num_nodes);

  void attach(int node, Tb2Adapter* adapter);

  /// Called by a sending adapter at the instant a packet finishes leaving
  /// on its link; schedules delivery after the hop latency (unless a fault
  /// hook eats the packet).
  void transmit(Packet pkt);

  /// Fault injection: return true to drop the packet.  Used by tests and
  /// the fault-injection example; production runs leave it unset.
  /// Installing a hook disengages all in-flight fused reservations that
  /// have not yet passed their switch-entry instant.
  using DropFn = std::function<bool(const Packet&)>;
  void set_drop_fn(DropFn fn);
  bool has_drop_fn() const { return static_cast<bool>(drop_fn_); }

  /// Peer adapter lookup for the sender-side fast path.
  Tb2Adapter* peer(int node) { return adapters_[static_cast<std::size_t>(node)]; }

  /// A fused reservation completed delivery: count it exactly as transmit()
  /// would have at the (elided) depart event.
  void note_fused_delivered() { ++stats_.delivered; }

  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t dropped_injected = 0;
  };
  const Stats& stats() const { return stats_; }

  int size() const { return static_cast<int>(adapters_.size()); }

 private:
  sim::Engine& engine_;
  const SpParams params_;
  std::vector<Tb2Adapter*> adapters_;
  DropFn drop_fn_;
  Stats stats_;
};

}  // namespace spam::sphw
