// Convenience wiring: one switch fabric plus one TB2 adapter per node of a
// sim::World.  Protocol layers (SP AM, MPL) are constructed on top.
#pragma once

#include <memory>
#include <vector>

#include "sim/world.hpp"
#include "sphw/adapter.hpp"
#include "sphw/params.hpp"
#include "sphw/switch.hpp"

namespace spam::sphw {

class SpMachine {
 public:
  SpMachine(sim::World& world, const SpParams& params)
      : world_(world),
        params_(params),
        fabric_(world.engine(), params, world.size()) {
    // One switch for every engine-level shortcut (fused deliveries, elapse
    // skip-ahead, lazy FIFO frees): params.network_fastpath.
    world.engine().set_fastpath(params.network_fastpath);
    world.engine().set_localclock(params.local_clock);
    adapters_.reserve(world.size());
    for (int n = 0; n < world.size(); ++n) {
      adapters_.push_back(std::make_unique<Tb2Adapter>(
          world.engine(), fabric_, n, params, world.size()));
    }
  }

  sim::World& world() { return world_; }
  const SpParams& params() const { return params_; }
  SwitchFabric& fabric() { return fabric_; }
  Tb2Adapter& adapter(int node) { return *adapters_.at(node); }
  int size() const { return static_cast<int>(adapters_.size()); }

 private:
  sim::World& world_;
  SpParams params_;
  SwitchFabric fabric_;
  std::vector<std::unique_ptr<Tb2Adapter>> adapters_;
};

}  // namespace spam::sphw
