#include "sphw/switch.hpp"

#include <cassert>
#include <utility>

#include "sim/hot.hpp"
#include "sim/trace.hpp"
#include "sphw/adapter.hpp"

namespace spam::sphw {

SwitchFabric::SwitchFabric(sim::Engine& engine, const SpParams& params,
                           int num_nodes)
    : engine_(engine), params_(params), adapters_(num_nodes, nullptr) {}

void SwitchFabric::attach(int node, Tb2Adapter* adapter) {
  assert(node >= 0 && node < size());
  assert(adapters_[node] == nullptr);
  adapters_[node] = adapter;
}

void SwitchFabric::set_drop_fn(DropFn fn) {
  if (fn) {
    // Every engaged fused reservation assumed "no fault hook" at its
    // (elided) depart event.  Reservations whose depart instant is still
    // in the future must fall back to per-hop so the hook sees them;
    // reservations already past the switch entry stay fused — per-hop
    // would have cleared the (then absent) hook at that instant too.
    for (Tb2Adapter* a : adapters_) {
      if (a != nullptr) a->disengage_fused_for_faults();
    }
  }
  drop_fn_ = std::move(fn);
}

SPAM_HOT void SwitchFabric::transmit(Packet pkt) {
  assert(pkt.dst >= 0 && pkt.dst < size() && adapters_[pkt.dst] != nullptr);
  if (drop_fn_ && drop_fn_(pkt)) {
    ++stats_.dropped_injected;
    // The packet never reaches the destination: retire its slow-path
    // in-flight reservation so the fast path can re-engage after recovery.
    adapters_[pkt.dst]->note_slow_dropped();
    sim::Trace::log(sim::TraceCat::kSwitch, engine_.now(),
                    "switch DROP injected %d->%d ch=%u seq=%u off=%u",
                    pkt.src, pkt.dst, pkt.channel, pkt.seq, pkt.offset);
    return;
  }
  ++stats_.delivered;
  Tb2Adapter* dst = adapters_[pkt.dst];
  auto hop = [dst, p = std::move(pkt)]() mutable {
    dst->deliver_from_switch(std::move(p));
  };
  static_assert(sim::InlineAction::fits_inline<decltype(hop)>,
                "hot switch closure must not heap-allocate");
  engine_.after(sim::usec(params_.hop_latency_us), std::move(hop));
}

}  // namespace spam::sphw
