// PayloadPool / PayloadRef: ref-counted packet payload buffers.
//
// Bulk data used to travel the simulated wire as std::vector<std::byte>,
// which meant one allocation plus one full copy per hop: host buffer ->
// chunk packets -> TX FIFO -> switch -> RX FIFO -> handler, and a second
// round for every retransmit.  A PayloadRef is a 16-byte view (buffer,
// offset, length) into a pooled ref-counted buffer: the bulk bytes are
// written once when the operation is staged, and every packet, FIFO entry
// and saved retransmit chunk shares the same buffer with a refcount bump.
//
// Buffers come from per-size-class free lists (powers of two), so steady
// state traffic performs no heap allocation.  The pool is a *per-thread*
// singleton, matching the single-threaded engine: every host thread gets
// its own arena, so shared-nothing Worlds running concurrently under
// driver::SweepRunner never contend or race.  The thread-safety contract
// is that a PayloadRef must be released on the thread that allocated it —
// which holds as long as a World and everything it touches stay on one
// thread.  None of this affects virtual time: wire occupancy is driven by
// Packet::payload_bytes, never by how the host stores the bytes.
//
// Built to run with -fno-exceptions: allocation failure aborts rather
// than throws, and out-of-range slices abort in debug builds.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace spam::sphw {

class PayloadPool;

/// Shared handle to a range of bytes in a pooled payload buffer.
/// Copying bumps a refcount; the last owner returns the buffer to the
/// pool.  Cheap to copy (16 bytes), safe to capture in event closures.
class PayloadRef {
 public:
  PayloadRef() noexcept = default;
  PayloadRef(const PayloadRef& other) noexcept;
  PayloadRef(PayloadRef&& other) noexcept
      : buf_(other.buf_), off_(other.off_), len_(other.len_) {
    other.buf_ = nullptr;
    other.off_ = 0;
    other.len_ = 0;
  }
  PayloadRef& operator=(const PayloadRef& other) noexcept;
  PayloadRef& operator=(PayloadRef&& other) noexcept;
  ~PayloadRef() { release(); }

  const std::byte* data() const noexcept;
  std::size_t size() const noexcept { return len_; }
  bool empty() const noexcept { return len_ == 0; }
  std::byte operator[](std::size_t i) const noexcept {
    assert(i < len_);
    return data()[i];
  }

  /// Writable view of the bytes.  Only legal while this handle is the
  /// sole owner (refcount 1) — once a payload has been sliced or sent,
  /// its bytes are immutable by contract.
  std::byte* mutable_data() noexcept;

  /// A sub-range sharing the same buffer (refcount bump, no copy).
  PayloadRef slice(std::size_t off, std::size_t len) const noexcept;

  /// Replaces the contents with a fresh pooled buffer of `len` bytes
  /// copied from `src` (may be null when len == 0).
  void assign(const void* src, std::size_t len);

  /// Replaces the contents with `len` copies of `fill`.
  void assign(std::size_t len, std::byte fill);

  void reset() noexcept {
    release();
    buf_ = nullptr;
    off_ = 0;
    len_ = 0;
  }

 private:
  friend class PayloadPool;

  void release() noexcept;

  // Points at the buffer's data area; the control header lives
  // immediately before it at a fixed offset.
  std::byte* buf_ = nullptr;
  std::uint32_t off_ = 0;
  std::uint32_t len_ = 0;
};

/// Per-thread arena of ref-counted payload buffers, binned by power-of-two
/// size class and recycled through per-class free lists.
class PayloadPool {
 public:
  /// The calling thread's arena (constructed on first use, freed at thread
  /// exit).  PayloadRefs must not outlive or leave the thread whose pool
  /// produced them.
  static PayloadPool& instance() noexcept;

  /// A fresh buffer of `len` bytes, uninitialized.  refcount == 1.
  PayloadRef allocate(std::size_t len);

  /// A fresh buffer holding a copy of `src[0..len)`.
  PayloadRef copy_from(const void* src, std::size_t len);

  struct Stats {
    std::uint64_t buffers_allocated = 0;  // malloc-backed growth, total ever
    std::uint64_t buffers_reused = 0;     // served from a free list
    std::uint64_t buffers_free = 0;       // currently on free lists
    std::uint64_t bytes_allocated = 0;    // data bytes ever malloc'd
  };
  Stats stats() const noexcept { return stats_; }

 private:
  PayloadPool() = default;
  ~PayloadPool();

  friend class PayloadRef;

  struct Header {
    std::uint32_t refcount = 0;
    std::uint8_t size_class = 0;
    Header* next_free = nullptr;
  };

  // The header occupies one max_align_t-rounded slot in front of the data
  // area, so the data keeps malloc's natural alignment.
  static constexpr std::size_t kHeaderSlot =
      (sizeof(Header) + alignof(std::max_align_t) - 1) &
      ~(alignof(std::max_align_t) - 1);

  static Header* header_of(std::byte* data) noexcept;
  void release_buffer(std::byte* data) noexcept;

  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr std::size_t kNumClasses = 26;  // 64 B .. 2 GiB

  Header* free_lists_[kNumClasses] = {};
  Stats stats_;
};

}  // namespace spam::sphw
