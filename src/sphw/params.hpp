// Calibration parameters for the simulated SP communication hardware.
//
// Every constant that the paper measures or implies is a named parameter
// here, so benches can sweep them (ablations) and EXPERIMENTS.md can record
// the calibrated values.  Defaults are tuned to reproduce the paper's
// microbenchmark numbers on "thin" model-390 nodes; wide_node() derives the
// model-590 variant.
#pragma once

namespace spam::sphw {

struct SpParams {
  // --- Host CPU / cache / MicroChannel -----------------------------------
  /// Cost of flushing one data-cache line to memory (the RS/6000 memory bus
  /// is not coherent, so every FIFO entry write must be flushed).
  double flush_line_us = 0.35;
  int cache_line_bytes = 64;
  /// Host store bandwidth when building a packet in the memory-resident
  /// send FIFO (per byte).
  double host_write_us_per_byte = 0.010;
  /// Host copy bandwidth when draining the receive FIFO (per byte).
  double host_copy_us_per_byte = 0.012;
  /// One programmed-I/O access across the MicroChannel (length-array store,
  /// receive-FIFO pop).  The paper: "each access costs around 1us".
  double mc_access_us = 1.0;

  // --- TB2 adapter --------------------------------------------------------
  /// MicroChannel DMA streaming rate (peak 80 MB/s per the paper).
  double mc_dma_mbps = 80.0;
  /// Fixed DMA engine setup per packet.
  double dma_setup_us = 2.8;
  /// i860 firmware processing per transmitted packet.
  double i860_tx_us = 5.0;
  /// i860 firmware processing per received packet.
  double i860_rx_us = 5.0;

  // --- Switch -------------------------------------------------------------
  /// Per-port link bandwidth ("close to 40 MB/s").
  double link_mbps = 40.0;
  /// Switch hardware latency per traversal.
  double hop_latency_us = 0.5;

  // --- FIFO geometry ------------------------------------------------------
  int send_fifo_entries = 128;
  /// The receive FIFO holds this many entries *per active node*.
  int recv_fifo_entries_per_node = 64;
  /// Payload capacity of one packet/FIFO entry; 224 data + 32 header = 256.
  int packet_data_bytes = 224;
  int packet_header_bytes = 32;
  /// Receive-FIFO entries are popped lazily, one MicroChannel access per
  /// this many packets, to amortize the ~1us bus access.
  int lazy_pop_batch = 8;

  // --- Simulator fast path ------------------------------------------------
  /// Contention-aware event fusion: provably uncontended sends schedule one
  /// fused delivery event instead of the per-hop chain, and idle elapses
  /// skip the wake timer.  Arrival times are bit-identical by construction
  /// (same sim::Time arithmetic, same order of additions); flip off to run
  /// the reference per-hop simulation (bench --no-fastpath does this).
  bool network_fastpath = true;

  /// Node-local virtual clocks: NodeCtx::charge() defers compute charges
  /// into a per-node debt ledger, settled as one engine sleep at the next
  /// interaction point (communication, suspend, trace, cross-node now()).
  /// Virtual times are bit-identical by construction; flip off to force
  /// every charge through the engine (bench --no-localclock does this).
  /// Independent of network_fastpath so the shortcuts compare in
  /// isolation.
  bool local_clock = true;

  /// Default thin-node (model 390) calibration.
  static SpParams thin_node() { return SpParams{}; }

  /// Wide-node (model 590) calibration: 256-byte cache lines and a wider
  /// memory system make host-side copies and flushes cheaper.
  static SpParams wide_node() {
    SpParams p;
    p.cache_line_bytes = 256;
    p.flush_line_us = 0.45;          // fewer, slightly dearer line flushes
    p.host_write_us_per_byte = 0.007;
    p.host_copy_us_per_byte = 0.008;
    return p;
  }
};

}  // namespace spam::sphw
