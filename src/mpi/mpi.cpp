#include "mpi/mpi.hpp"

#include <cassert>
#include <cstring>
#include <vector>

namespace spam::mpi {

bool Mpi::test(int req, Status* st) {
  Req* r = find_req(req);
  assert(r != nullptr && "unknown or already-retired request");
  if (!r->complete) return false;
  if (st != nullptr) *st = r->status;
  reqs_.erase(req);
  return true;
}

void Mpi::wait(int req, Status* st) {
  while (!test(req, st)) progress();
}

void Mpi::waitall(std::vector<int>& reqs) {
  for (int r : reqs) wait(r);
  reqs.clear();
}

void Mpi::send_strided(const void* buf, std::size_t count,
                       std::size_t block_bytes, std::size_t stride_bytes,
                       int dst, int tag) {
  assert(stride_bytes >= block_bytes);
  std::vector<std::byte> packed(count * block_bytes);
  const auto* in = static_cast<const std::byte*>(buf);
  for (std::size_t i = 0; i < count; ++i) {
    std::memcpy(packed.data() + i * block_bytes, in + i * stride_bytes,
                block_bytes);
  }
  // Pack cost: one streaming pass over the data.
  ctx_.elapse(sim::usec(static_cast<double>(packed.size()) * 0.004));
  send(packed.data(), packed.size(), dst, tag);
}

void Mpi::recv_strided(void* buf, std::size_t count, std::size_t block_bytes,
                       std::size_t stride_bytes, int src, int tag,
                       Status* st) {
  assert(stride_bytes >= block_bytes);
  std::vector<std::byte> packed(count * block_bytes);
  recv(packed.data(), packed.size(), src, tag, st);
  auto* out = static_cast<std::byte*>(buf);
  for (std::size_t i = 0; i < count; ++i) {
    std::memcpy(out + i * stride_bytes, packed.data() + i * block_bytes,
                block_bytes);
  }
  ctx_.elapse(sim::usec(static_cast<double>(packed.size()) * 0.004));
}

void Mpi::sendrecv(const void* sbuf, std::size_t sbytes, int dst, int stag,
                   void* rbuf, std::size_t rbytes, int src, int rtag,
                   Status* st) {
  const int r = irecv(rbuf, rbytes, src, rtag);
  const int s = isend(sbuf, sbytes, dst, stag);
  wait(s);
  wait(r, st);
}

}  // namespace spam::mpi
