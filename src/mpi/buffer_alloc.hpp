// Sender-side allocator for the per-peer eager buffer that MPI-over-AM
// maintains at each receiver (paper section 4.1/4.2).
//
// The sender owns a 16 KB region inside the receiver's memory and
// allocates space for eager messages entirely locally — no communication.
// The paper's profiling found first-fit allocation to be a major small-
// message cost, so the optimized configuration adds a binned fast path
// (8 x 1 KB bins) and falls back to first-fit only for medium messages.
// Frees arrive from the receiver (as reply/request messages) and return
// space with coalescing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <vector>

namespace spam::mpi {

class BufferAllocator {
 public:
  /// `region_bytes` is the first-fit area; when `binned`, the 8 x 1 KB bin
  /// area sits in front of it (the receiver-side region is sized
  /// total_bytes()), so enabling bins never shrinks what medium messages
  /// can use.
  BufferAllocator(std::size_t region_bytes, bool binned,
                  std::size_t bin_bytes = 1024, int nbins = 8);

  /// Allocates `len` bytes; returns the region offset or kFail.
  static constexpr std::size_t kFail = static_cast<std::size_t>(-1);
  std::size_t alloc(std::size_t len);

  /// Returns previously allocated space (offset, len as passed to alloc's
  /// caller — bin frees are recognized by offset).
  void free(std::size_t offset, std::size_t len);

  /// Total addressable bytes (bin area + first-fit area).
  std::size_t total_bytes() const { return region_; }
  std::size_t bytes_in_use() const { return in_use_; }
  bool binned() const { return binned_; }
  /// Largest allocation that can ever succeed via first-fit (the bins are
  /// reserved for small messages).
  std::size_t fit_capacity() const { return region_ - bin_area_; }

  struct Stats {
    std::uint64_t bin_allocs = 0;
    std::uint64_t fit_allocs = 0;
    std::uint64_t failures = 0;
    std::uint64_t fit_search_steps = 0;  // first-fit walk length (cost proxy)
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Hole {
    std::size_t off;
    std::size_t len;
  };

  std::size_t alloc_fit(std::size_t len);
  void free_fit(std::size_t offset, std::size_t len);

  std::size_t region_;
  bool binned_;
  std::size_t bin_bytes_;
  int nbins_;
  std::size_t bin_area_;           // bins occupy [0, bin_area_)
  std::vector<bool> bin_used_;
  std::list<Hole> holes_;          // sorted by offset, covers [bin_area_, region_)
  std::size_t in_use_ = 0;
  Stats stats_;
};

}  // namespace spam::mpi
