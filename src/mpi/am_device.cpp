#include "mpi/am_device.hpp"

#include <cassert>
#include <cstring>

namespace spam::mpi {

namespace {
std::uint64_t u64_of(am::Word lo, am::Word hi) {
  return static_cast<std::uint64_t>(lo) |
         (static_cast<std::uint64_t>(hi) << 32);
}
}  // namespace

MpiAm::MpiAm(sim::NodeCtx& ctx, am::Endpoint& ep, MpiAmConfig cfg)
    : Mpi(ctx), ep_(ep), cfg_(cfg), world_size_(ctx.world().size()) {
  peer_region_base_.assign(static_cast<std::size_t>(world_size_), nullptr);
  alloc_.resize(static_cast<std::size_t>(world_size_));
  for (auto& a : alloc_) {
    a = std::make_unique<BufferAllocator>(cfg_.peer_buffer_bytes,
                                          cfg_.binned_allocator);
  }
  // The hosted region must cover everything a sender can address (bins are
  // in front of the first-fit area).
  regions_.resize(static_cast<std::size_t>(world_size_));
  for (auto& r : regions_) r.resize(alloc_[0]->total_bytes());
  pending_sends_.resize(static_cast<std::size_t>(world_size_));
  pending_frees_.resize(static_cast<std::size_t>(world_size_));
  free_age_.assign(static_cast<std::size_t>(world_size_), 0);
  freed_owed_.assign(static_cast<std::size_t>(world_size_), 0);
  install_handlers();
}

void MpiAm::set_peer_region_base(int peer, std::byte* base) {
  peer_region_base_[static_cast<std::size_t>(peer)] = base;
}

void MpiAm::install_handlers() {
  // Registration order must be identical on every node.
  auto apply_frees = [this](am::Token t, const am::Word* a, int n) {
    for (int i = 0; i + 1 < n; i += 2) {
      if (a[i + 1] == 0) continue;  // empty slot
      alloc_[static_cast<std::size_t>(t.src)]->free(a[i], a[i + 1]);
    }
  };
  h_free_req_ = ep_.register_handler(
      [apply_frees](am::Endpoint&, am::Token t, const am::Word* a, int n) {
        apply_frees(t, a, n);
      });
  h_free_reply_ = ep_.register_handler(
      [apply_frees](am::Endpoint&, am::Token t, const am::Word* a, int n) {
        apply_frees(t, a, n);
      });

  h_rdv_done_ = ep_.register_bulk_handler(
      [this](am::Endpoint&, am::Token, void*, std::size_t, am::Word arg) {
        auto it = recv_recs_.find(arg);
        assert(it != recv_recs_.end());
        complete_req(it->second.req_id, it->second.status);
        recv_recs_.erase(it);
      });

  h_rdv_addr_req_ = ep_.register_handler(
      [this](am::Endpoint&, am::Token, const am::Word* a, int) {
        ready_stores_.push_back(
            ReadyStore{a[0], u64_of(a[1], a[2]), a[3]});
      });
  h_rdv_addr_reply_ = ep_.register_handler(
      [this](am::Endpoint&, am::Token, const am::Word* a, int) {
        ready_stores_.push_back(
            ReadyStore{a[0], u64_of(a[1], a[2]), a[3]});
      });

  h_eager_ = ep_.register_bulk_handler([this](am::Endpoint&, am::Token t,
                                              void* addr, std::size_t,
                                              am::Word) {
    WireEnv env;
    std::memcpy(&env, addr, kEnvBytes);
    if (env.kind == kKindHybridPrefix) {
      // Prefix of a rendez-vous in flight: it is never matched itself (the
      // announcement was), only consumed.
      handle_prefix_block(t.src, env,
                          static_cast<const std::byte*>(addr) + kEnvBytes);
      return;
    }
    InMsg m;
    m.src = t.src;
    m.tag = env.tag;
    m.len = env.total_len;
    m.kind = env.kind;
    m.cookie = env.op_id;
    m.data = static_cast<const std::byte*>(addr) + kEnvBytes;
    m.data_len = env.payload_len;
    ++handler_depth_;
    if (auto r = match_.arrive(m)) {
      am::Token tok = t;
      deliver_matched(*r, m, &tok);
    }
    --handler_depth_;
  });

  h_rdv_req_ = ep_.register_handler([this](am::Endpoint&, am::Token t,
                                           const am::Word* a, int) {
    InMsg m;
    m.src = t.src;
    m.tag = static_cast<int>(static_cast<std::int32_t>(a[0]));
    m.len = u64_of(a[1], a[2] & 0xffffu);
    m.kind = kKindRdv;
    m.cookie = a[3];
    m.data_len = a[2] >> 16;  // announced hybrid-prefix length
    ++handler_depth_;
    if (auto r = match_.arrive(m)) {
      am::Token tok = t;
      deliver_matched(*r, m, &tok);
    }
    --handler_depth_;
  });
}

// ---------------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------------

std::size_t MpiAm::charged_alloc(BufferAllocator& alloc, std::size_t need) {
  // Allocation burns CPU proportional to the first-fit walk; bin hits pay
  // one step (the paper's section 4.2 rationale for the binned allocator).
  const std::uint64_t steps0 = alloc.stats().fit_search_steps;
  const std::uint64_t bins0 = alloc.stats().bin_allocs;
  const std::size_t off = alloc.alloc(need);
  const std::uint64_t walked = alloc.stats().fit_search_steps - steps0;
  const std::uint64_t binned = alloc.stats().bin_allocs - bins0;
  ctx_.charge(sim::usec(cfg_.alloc_step_us *
                        static_cast<double>(walked + binned)));
  return off;
}

bool MpiAm::try_eager(int req_id, int dst, int tag, const std::byte* data,
                      std::size_t len) {
  BufferAllocator& alloc = *alloc_[static_cast<std::size_t>(dst)];
  const std::size_t need = kEnvBytes + len;
  const std::size_t off = charged_alloc(alloc, need);
  if (off == BufferAllocator::kFail) return false;

  std::vector<std::byte> block(need);
  WireEnv env;
  env.tag = tag;
  env.kind = kKindEager;
  env.total_len = len;
  env.op_id = 0;
  env.payload_len = static_cast<std::uint32_t>(len);
  std::memcpy(block.data(), &env, kEnvBytes);
  if (len > 0) std::memcpy(block.data() + kEnvBytes, data, len);

  // Blocking am_store, as in the paper: returns once the block is fully
  // handed to the adapter, so MPI_Send never leaves data stranded in a
  // progress queue.
  ep_.store(dst, peer_region_base_[static_cast<std::size_t>(dst)] + off,
            block.data(), need, h_eager_, 0);
  ++dev_stats_.eager_sends;
  // The block was snapshotted: the MPI send buffer is reusable now.
  complete_req(req_id);
  return true;
}

void MpiAm::start_rendezvous(int req_id, int dst, int tag,
                             const std::byte* src, std::size_t len) {
  const std::uint32_t op_id = next_op_id_++;
  SendOp op;
  op.req_id = req_id;
  op.dst = dst;
  op.src = src;
  op.len = len;

  // Hybrid (paper 4.2): reserve prefix space *first*, then announce with
  // the prefix length, then stream the prefix while the rendez-vous reply
  // is in flight.  If no space is available, degrade to pure rendez-vous.
  std::size_t prefix = 0;
  std::size_t prefix_off = BufferAllocator::kFail;
  if (cfg_.hybrid) {
    BufferAllocator& alloc = *alloc_[static_cast<std::size_t>(dst)];
    // Keep at least one byte for the rendez-vous leg so completion always
    // rides on the remainder store.
    prefix = std::min(cfg_.hybrid_prefix, len - 1);
    if (prefix > 0) {
      prefix_off = charged_alloc(alloc, kEnvBytes + prefix);
      if (prefix_off == BufferAllocator::kFail) prefix = 0;
    }
  }

  // Register the op before anything hits the wire: the address reply can
  // race back during the blocking prefix store below.
  op.prefix_sent = prefix;
  send_ops_.emplace(op_id, op);

  // Announcement: tag, length (48 bits), prefix length (16 bits), op id.
  assert(len < (1ull << 48));
  assert(prefix < (1ull << 16));
  ep_.request_4(
      dst, h_rdv_req_, static_cast<am::Word>(tag),
      static_cast<am::Word>(len),
      static_cast<am::Word>((static_cast<std::uint64_t>(len) >> 32) |
                            (static_cast<std::uint64_t>(prefix) << 16)),
      op_id);
  if (prefix > 0) {
    std::vector<std::byte> block(kEnvBytes + prefix);
    WireEnv env;
    env.tag = tag;
    env.kind = kKindHybridPrefix;
    env.total_len = len;
    env.op_id = op_id;
    env.payload_len = static_cast<std::uint32_t>(prefix);
    std::memcpy(block.data(), &env, kEnvBytes);
    std::memcpy(block.data() + kEnvBytes, src, prefix);
    ep_.store(dst,
              peer_region_base_[static_cast<std::size_t>(dst)] + prefix_off,
              block.data(), block.size(), h_eager_, 0);
    ++dev_stats_.hybrid_sends;
  } else {
    ++dev_stats_.rdv_sends;
  }
}

int MpiAm::isend(const void* buf, std::size_t bytes, int dst, int tag) {
  // Software send overhead is pure CPU: defer it; the endpoint call below
  // settles at its first adapter interaction.
  ctx_.charge(sim::usec(cfg_.sw_send_us));
  const int req_id = alloc_req(/*is_recv=*/false);
  const auto* data = static_cast<const std::byte*>(buf);
  auto& pending = pending_sends_[static_cast<std::size_t>(dst)];

  // Non-overtaking: once one send to this peer is queued, every later send
  // to the same peer queues behind it.
  if (!pending.empty()) {
    PendingSend ps;
    ps.req_id = req_id;
    ps.dst = dst;
    ps.tag = tag;
    ps.data.assign(data, data + bytes);
    pending.push_back(std::move(ps));
    // Completed only when actually transmitted: MPI_Send must not return
    // leaving messages stranded in a local queue nobody will drive.
    return req_id;
  }

  // Eager only if the block could *ever* fit the first-fit area (bins are
  // for small messages); otherwise this message must rendez-vous even if
  // nominally under the switch point.
  const bool can_fit =
      kEnvBytes + bytes <=
      alloc_[static_cast<std::size_t>(dst)]->fit_capacity();
  if (bytes <= cfg_.eager_max && can_fit) {
    if (!try_eager(req_id, dst, tag, data, bytes)) {
      ++dev_stats_.sends_blocked_on_buffer;
      PendingSend ps;
      ps.req_id = req_id;
      ps.dst = dst;
      ps.tag = tag;
      ps.data.assign(data, data + bytes);
      pending.push_back(std::move(ps));
    }
    return req_id;
  }
  start_rendezvous(req_id, dst, tag, data, bytes);
  return req_id;
}

void MpiAm::retry_pending_sends() {
  for (int dst = 0; dst < world_size_; ++dst) {
    auto& q = pending_sends_[static_cast<std::size_t>(dst)];
    while (!q.empty()) {
      PendingSend& ps = q.front();
      const bool fits_ever =
          kEnvBytes + ps.data.size() <=
          alloc_[static_cast<std::size_t>(dst)]->fit_capacity();
      if (ps.data.size() <= cfg_.eager_max && fits_ever) {
        // The request was already completed at snapshot time; use a
        // throwaway id for the eager bookkeeping.
        BufferAllocator& alloc = *alloc_[static_cast<std::size_t>(dst)];
        const std::size_t need = kEnvBytes + ps.data.size();
        const std::size_t off = charged_alloc(alloc, need);
        if (off == BufferAllocator::kFail) break;  // still no space
        std::vector<std::byte> block(need);
        WireEnv env;
        env.tag = ps.tag;
        env.kind = kKindEager;
        env.total_len = ps.data.size();
        env.op_id = 0;
        env.payload_len = static_cast<std::uint32_t>(ps.data.size());
        std::memcpy(block.data(), &env, kEnvBytes);
        if (!ps.data.empty()) {
          std::memcpy(block.data() + kEnvBytes, ps.data.data(),
                      ps.data.size());
        }
        ep_.store(dst, peer_region_base_[static_cast<std::size_t>(dst)] + off,
                  block.data(), need, h_eager_, 0);
        ++dev_stats_.eager_sends;
        complete_req(ps.req_id);
        q.pop_front();
      } else {
        // Large queued send: hand it to the rendez-vous machinery with
        // owned storage (the original user buffer is long gone).
        const std::uint32_t op_id = next_op_id_++;
        SendOp op;
        op.req_id = ps.req_id;  // completes when the data store is issued
        op.dst = dst;
        op.owned = std::move(ps.data);
        op.src = op.owned.data();
        op.len = op.owned.size();
        const int tag = ps.tag;
        const std::size_t len = op.len;
        q.pop_front();
        send_ops_.emplace(op_id, std::move(op));
        ep_.request_4(
            dst, h_rdv_req_, static_cast<am::Word>(tag),
            static_cast<am::Word>(len),
            static_cast<am::Word>(static_cast<std::uint64_t>(len) >> 32),
            op_id);
        ++dev_stats_.rdv_sends;
      }
    }
  }
}

void MpiAm::drain_ready_stores() {
  while (!ready_stores_.empty()) {
    const ReadyStore rs = ready_stores_.front();
    ready_stores_.pop_front();
    auto it = send_ops_.find(rs.op_id);
    assert(it != send_ops_.end());
    SendOp op = std::move(it->second);
    send_ops_.erase(it);
    const std::byte* src = op.owned.empty() ? op.src : op.owned.data();
    const std::size_t remaining = op.len - op.prefix_sent;
    // Blocking store: "the store is performed by the blocked MPI_Send or
    // by any MPI communication function that explicitly polls" (paper 4.1).
    ep_.store(op.dst, reinterpret_cast<void*>(rs.addr), src + op.prefix_sent,
              remaining, h_rdv_done_, rs.recv_id);
    // Data snapshotted: the user buffer is now reusable.
    complete_req(op.req_id);
  }
}

// ---------------------------------------------------------------------------
// Receive side
// ---------------------------------------------------------------------------

int MpiAm::irecv(void* buf, std::size_t bytes, int src, int tag) {
  ctx_.charge(sim::usec(cfg_.sw_recv_us));
  const int req_id = alloc_req(/*is_recv=*/true);
  PostedRecv r;
  r.req_id = req_id;
  r.src = src;
  r.tag = tag;
  r.buf = buf;
  r.cap = bytes;
  if (auto m = match_.post(r)) {
    deliver_matched(r, *m, nullptr);
  }
  return req_id;
}

void MpiAm::queue_free(int src, std::size_t offset, std::size_t alloc_len,
                       am::Token* reply_token) {
  if (!cfg_.batch_frees) {
    // Unoptimized: one free message per buffer, immediately.  Inside the
    // store handler the reply slot carries it for free; otherwise it is a
    // fresh request.
    ++dev_stats_.free_msgs;
    if (reply_token != nullptr) {
      ep_.reply_2(*reply_token, h_free_reply_,
                  static_cast<am::Word>(offset),
                  static_cast<am::Word>(alloc_len));
    } else {
      ep_.request_2(src, h_free_req_, static_cast<am::Word>(offset),
                    static_cast<am::Word>(alloc_len));
    }
    return;
  }
  pending_frees_[static_cast<std::size_t>(src)].push_back(
      PendingFree{static_cast<std::uint32_t>(offset),
                  static_cast<std::uint32_t>(alloc_len)});
  freed_owed_[static_cast<std::size_t>(src)] += alloc_len;
  if (handler_depth_ == 0) {
    flush_frees(src, /*force=*/false);
  }
}

void MpiAm::flush_frees(int src, bool force) {
  auto& q = pending_frees_[static_cast<std::size_t>(src)];
  while (q.size() >= 2) {
    const PendingFree a = q[0], b = q[1];
    q.erase(q.begin(), q.begin() + 2);
    freed_owed_[static_cast<std::size_t>(src)] -= a.len + b.len;
    ep_.request_4(src, h_free_req_, a.offset, a.len, b.offset, b.len);
    ++dev_stats_.free_msgs;
  }
  if (force && !q.empty()) {
    const PendingFree a = q[0];
    q.clear();
    freed_owed_[static_cast<std::size_t>(src)] -= a.len;
    ep_.request_2(src, h_free_req_, a.offset, a.len);
    ++dev_stats_.free_msgs;
  }
  free_age_[static_cast<std::size_t>(src)] = 0;
}

void MpiAm::consume_prefix(int src, std::byte* dst, const std::byte* data,
                           std::uint32_t len) {
  if (len > 0) {
    ctx_.charge(sim::usec(static_cast<double>(len) * cfg_.copy_us_per_byte));
    std::memcpy(dst, data, len);
  }
  const std::size_t offset =
      static_cast<std::size_t>(data - kEnvBytes - region_base_for(src));
  queue_free(src, offset, kEnvBytes + len, /*reply_token=*/nullptr);
}

void MpiAm::handle_prefix_block(int src, const WireEnv& env,
                                const std::byte* payload) {
  const std::uint64_t k = prefix_key(src, env.op_id);
  auto it = pending_prefix_.find(k);
  if (it != pending_prefix_.end()) {
    consume_prefix(src, it->second, payload, env.payload_len);
    pending_prefix_.erase(it);
    return;
  }
  // Receive not posted yet: keep a reference; the data stays parked in the
  // eager region until the announcement matches.
  prefix_stash_.emplace(k, PrefixRef{payload, env.payload_len});
}

void MpiAm::deliver_matched(const PostedRecv& r, const InMsg& m,
                            am::Token* reply_token) {
  switch (m.kind) {
    case kKindEager: {
      const std::size_t n = std::min(r.cap, m.len);
      if (n > 0) {
        ctx_.charge(sim::usec(static_cast<double>(n) * cfg_.copy_us_per_byte));
        std::memcpy(r.buf, m.data, n);
      }
      complete_req(r.req_id, Status{m.src, m.tag, n});
      const std::size_t offset = static_cast<std::size_t>(
          static_cast<const std::byte*>(m.data) - kEnvBytes -
          region_base_for(m.src));
      queue_free(m.src, offset, kEnvBytes + m.data_len, reply_token);
      break;
    }
    case kKindRdv: {
      // m.data_len carries the announced hybrid-prefix length (0 = pure
      // rendez-vous).  The remainder store goes past the prefix.
      const std::size_t prefix = m.data_len;
      const std::uint32_t recv_id = next_recv_id_++;
      recv_recs_.emplace(
          recv_id, RecvRec{r.req_id, Status{m.src, m.tag, m.len}});
      auto* ubuf = static_cast<std::byte*>(r.buf);
      if (prefix > 0) {
        const std::uint64_t k = prefix_key(m.src, m.cookie);
        auto it = prefix_stash_.find(k);
        if (it != prefix_stash_.end()) {
          // The prefix landed before the receive was posted: consume it.
          consume_prefix(m.src, ubuf, it->second.data, it->second.len);
          prefix_stash_.erase(it);
        } else {
          pending_prefix_.emplace(k, ubuf);
        }
      }
      const auto addr = reinterpret_cast<std::uint64_t>(ubuf + prefix);
      const auto op = static_cast<am::Word>(m.cookie);
      if (reply_token != nullptr) {
        ep_.reply_4(*reply_token, h_rdv_addr_reply_, op,
                    static_cast<am::Word>(addr),
                    static_cast<am::Word>(addr >> 32), recv_id);
      } else {
        ep_.request_4(m.src, h_rdv_addr_req_, op,
                      static_cast<am::Word>(addr),
                      static_cast<am::Word>(addr >> 32), recv_id);
      }
      break;
    }
    default:
      assert(false && "unknown protocol kind");
  }
}

void MpiAm::progress() {
  ep_.poll();
  drain_ready_stores();
  retry_pending_sends();
  if (cfg_.batch_frees) {
    // Pressure-based flushing: when a quarter of the peer's region is
    // owed, return it immediately (large eager messages stall otherwise);
    // small change rides along lazily, batched, off the critical path.
    const std::size_t pressure = cfg_.peer_buffer_bytes / 4;
    for (int src = 0; src < world_size_; ++src) {
      auto& q = pending_frees_[static_cast<std::size_t>(src)];
      if (q.empty()) continue;
      const bool urgent = freed_owed_[static_cast<std::size_t>(src)] >= pressure;
      if (urgent || ++free_age_[static_cast<std::size_t>(src)] >= 3) {
        flush_frees(src, /*force=*/true);
      }
    }
  }
}

// ---------------------------------------------------------------------------

MpiAmNet::MpiAmNet(am::AmNet& amnet, MpiAmConfig cfg) {
  devices_.reserve(static_cast<std::size_t>(amnet.size()));
  for (int n = 0; n < amnet.size(); ++n) {
    devices_.push_back(std::make_unique<MpiAm>(
        amnet.machine().world().node(n), amnet.ep(n), cfg));
  }
  for (int i = 0; i < amnet.size(); ++i) {
    for (int j = 0; j < amnet.size(); ++j) {
      // Device i owns a region inside j for messages i -> j.
      devices_[static_cast<std::size_t>(i)]->set_peer_region_base(
          j, devices_[static_cast<std::size_t>(j)]->region_base_for(i));
    }
  }
}

}  // namespace spam::mpi
