// Abstract MPI interface: point-to-point virtuals provided by a device
// (MPI-over-AM, or the MPI-F baseline) plus MPICH-style collectives
// implemented over point-to-point in collectives.cpp.
//
// The generic collectives deliberately reproduce MPICH's shapes, including
// the naive MPI_Alltoall whose synchronized hot spot the paper blames for
// the FT benchmark gap; devices with tuned_collectives() get a staggered
// alltoall like IBM's MPI-F.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mpi/types.hpp"
#include "sim/world.hpp"

namespace spam::mpi {

class Mpi {
 public:
  explicit Mpi(sim::NodeCtx& ctx) : ctx_(ctx) {}
  virtual ~Mpi() = default;

  Mpi(const Mpi&) = delete;
  Mpi& operator=(const Mpi&) = delete;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  // --- Point-to-point (device-provided) ------------------------------------

  /// Nonblocking send; completes when the user buffer is reusable.
  virtual int isend(const void* buf, std::size_t bytes, int dst, int tag) = 0;
  /// Nonblocking receive.
  virtual int irecv(void* buf, std::size_t bytes, int src, int tag) = 0;
  /// Drives the device: services handlers, pending protocol steps.
  virtual void progress() = 0;

  // --- Blocking wrappers and completion (shared) ---------------------------

  void send(const void* buf, std::size_t bytes, int dst, int tag) {
    wait(isend(buf, bytes, dst, tag));
  }
  void recv(void* buf, std::size_t bytes, int src, int tag,
            Status* st = nullptr) {
    wait(irecv(buf, bytes, src, tag), st);
  }
  void sendrecv(const void* sbuf, std::size_t sbytes, int dst, int stag,
                void* rbuf, std::size_t rbytes, int src, int rtag,
                Status* st = nullptr);

  /// Tests a request; if complete, retires it and fills `st`.
  bool test(int req, Status* st = nullptr);
  /// Blocks (driving progress) until the request completes; retires it.
  void wait(int req, Status* st = nullptr);
  void waitall(std::vector<int>& reqs);

  /// Virtual time in seconds (MPI_Wtime).
  double wtime() { return sim::to_sec(ctx_.now()); }
  sim::NodeCtx& ctx() { return ctx_; }

  // --- Collectives (shared, built on point-to-point) ------------------------

  void barrier();
  void bcast(void* buf, std::size_t bytes, int root);
  void gather(const void* sbuf, std::size_t bytes, void* rbuf, int root);
  void scatter(const void* sbuf, std::size_t bytes, void* rbuf, int root);
  void reduce(const void* sbuf, void* rbuf, std::size_t count, Dtype t,
              ReduceOp op, int root);
  void allreduce(const void* sbuf, void* rbuf, std::size_t count, Dtype t,
                 ReduceOp op);
  /// Sends `bytes` to every rank (block i of sbuf to rank i).
  void alltoall(const void* sbuf, void* rbuf, std::size_t bytes);
  void allgather(const void* sbuf, std::size_t bytes, void* rbuf);

  // --- Noncontiguous (vector-type) transfers -------------------------------
  // MPICH's generic layers pack noncontiguous data and ship it through the
  // contiguous point-to-point path — exactly what the paper relies on
  // ("relies on the higher-level MPICH routines for ... non-contiguous
  // sends").  `count` blocks of `block_bytes`, each `stride_bytes` apart.

  void send_strided(const void* buf, std::size_t count,
                    std::size_t block_bytes, std::size_t stride_bytes,
                    int dst, int tag);
  void recv_strided(void* buf, std::size_t count, std::size_t block_bytes,
                    std::size_t stride_bytes, int src, int tag,
                    Status* st = nullptr);

  struct CollStats {
    std::uint64_t barriers = 0;
    std::uint64_t bcasts = 0;
    std::uint64_t reduces = 0;
    std::uint64_t alltoalls = 0;
  };
  const CollStats& coll_stats() const { return coll_stats_; }

 protected:
  /// Devices with vendor-tuned collectives (MPI-F) stagger the alltoall.
  virtual bool tuned_collectives() const { return false; }

  // Request table shared by devices.
  struct Req {
    bool complete = false;
    bool is_recv = false;
    Status status;
  };
  int alloc_req(bool is_recv) {
    const int id = next_req_++;
    reqs_.emplace(id, Req{false, is_recv, {}});
    return id;
  }
  void complete_req(int id, Status st = {}) {
    auto it = reqs_.find(id);
    if (it == reqs_.end()) return;
    it->second.complete = true;
    it->second.status = st;
  }
  Req* find_req(int id) {
    auto it = reqs_.find(id);
    return it == reqs_.end() ? nullptr : &it->second;
  }

  /// Tag space reserved for collectives; user tags must stay below this.
  static constexpr int kCollTagBase = 1 << 20;
  int next_coll_tag() {
    // Cycle within a window so long runs do not exhaust the tag space.
    coll_seq_ = (coll_seq_ + 1) & 0xffff;
    return kCollTagBase + coll_seq_;
  }

  sim::NodeCtx& ctx_;
  std::unordered_map<int, Req> reqs_;
  int next_req_ = 1;
  int coll_seq_ = 0;
  CollStats coll_stats_;
};

}  // namespace spam::mpi
