#include "mpi/buffer_alloc.hpp"

#include <cassert>

namespace spam::mpi {

BufferAllocator::BufferAllocator(std::size_t region_bytes, bool binned,
                                 std::size_t bin_bytes, int nbins)
    : binned_(binned),
      bin_bytes_(bin_bytes),
      nbins_(binned ? nbins : 0),
      bin_area_(binned ? bin_bytes * static_cast<std::size_t>(nbins) : 0) {
  region_ = region_bytes + bin_area_;
  bin_used_.assign(static_cast<std::size_t>(nbins_), false);
  holes_.push_back({bin_area_, region_bytes});
}

std::size_t BufferAllocator::alloc(std::size_t len) {
  if (binned_ && len <= bin_bytes_) {
    for (int i = 0; i < nbins_; ++i) {
      if (!bin_used_[static_cast<std::size_t>(i)]) {
        bin_used_[static_cast<std::size_t>(i)] = true;
        ++stats_.bin_allocs;
        in_use_ += bin_bytes_;
        return static_cast<std::size_t>(i) * bin_bytes_;
      }
    }
    // All bins busy: fall through to first-fit.
  }
  return alloc_fit(len);
}

std::size_t BufferAllocator::alloc_fit(std::size_t len) {
  for (auto it = holes_.begin(); it != holes_.end(); ++it) {
    ++stats_.fit_search_steps;
    if (it->len >= len) {
      const std::size_t off = it->off;
      it->off += len;
      it->len -= len;
      if (it->len == 0) holes_.erase(it);
      ++stats_.fit_allocs;
      in_use_ += len;
      return off;
    }
  }
  ++stats_.failures;
  return kFail;
}

void BufferAllocator::free(std::size_t offset, std::size_t len) {
  if (binned_ && offset < bin_area_) {
    const std::size_t bin = offset / bin_bytes_;
    assert(offset % bin_bytes_ == 0);
    assert(bin_used_[bin]);
    bin_used_[bin] = false;
    in_use_ -= bin_bytes_;
    return;
  }
  free_fit(offset, len);
}

void BufferAllocator::free_fit(std::size_t offset, std::size_t len) {
  assert(len > 0);
  in_use_ -= len;
  // Insert sorted by offset, coalescing with neighbours.
  auto it = holes_.begin();
  while (it != holes_.end() && it->off < offset) ++it;
  // Coalesce with predecessor.
  if (it != holes_.begin()) {
    auto prev = std::prev(it);
    assert(prev->off + prev->len <= offset && "double free / overlap");
    if (prev->off + prev->len == offset) {
      prev->len += len;
      // Maybe also merges with successor.
      if (it != holes_.end() && prev->off + prev->len == it->off) {
        prev->len += it->len;
        holes_.erase(it);
      }
      return;
    }
  }
  // Coalesce with successor.
  if (it != holes_.end()) {
    assert(offset + len <= it->off && "double free / overlap");
    if (offset + len == it->off) {
      it->off = offset;
      it->len += len;
      return;
    }
  }
  holes_.insert(it, {offset, len});
}

}  // namespace spam::mpi
