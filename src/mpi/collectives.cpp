// MPICH-style collectives over point-to-point.
//
// Shapes match the freely available MPICH the paper layered over SP AM:
// dissemination barrier, binomial broadcast/reduce, reduce+bcast allreduce,
// linear gather/scatter, ring allgather, and — crucially for the paper's
// FT analysis — a naive alltoall in which every rank walks destinations in
// the same order, hammering one receiver at a time.  Devices that report
// tuned_collectives() (MPI-F) use the staggered alltoall instead.
#include <cstring>
#include <vector>

#include "mpi/mpi.hpp"

namespace spam::mpi {

void Mpi::barrier() {
  ++coll_stats_.barriers;
  const int p = size();
  if (p == 1) return;
  const int me = rank();
  const int tag = next_coll_tag();
  char dummy = 0;
  for (int dist = 1; dist < p; dist <<= 1) {
    const int to = (me + dist) % p;
    const int from = (me - dist + p) % p;
    char in = 0;
    sendrecv(&dummy, 1, to, tag, &in, 1, from, tag);
  }
}

void Mpi::bcast(void* buf, std::size_t bytes, int root) {
  ++coll_stats_.bcasts;
  const int p = size();
  if (p == 1) return;
  const int me = rank();
  const int rel = (me - root + p) % p;
  const int tag = next_coll_tag();

  // Binomial tree on relative ranks: receive from parent, forward to
  // children in decreasing subtree order.
  if (rel != 0) {
    int mask = 1;
    while (!(rel & mask)) mask <<= 1;
    const int parent = ((rel & ~mask) + root) % p;
    recv(buf, bytes, parent, tag);
    // Children of `rel` are rel | m for m > mask's position.
    for (int m = mask >> 1; m > 0; m >>= 1) {
      const int child_rel = rel | m;
      if (child_rel < p && child_rel != rel) {
        send(buf, bytes, (child_rel + root) % p, tag);
      }
    }
  } else {
    int top = 1;
    while (top < p) top <<= 1;
    for (int m = top >> 1; m > 0; m >>= 1) {
      if (m < p) send(buf, bytes, (m + root) % p, tag);
    }
  }
}

void Mpi::gather(const void* sbuf, std::size_t bytes, void* rbuf, int root) {
  const int p = size();
  const int me = rank();
  const int tag = next_coll_tag();
  if (me == root) {
    auto* out = static_cast<std::byte*>(rbuf);
    std::memcpy(out + static_cast<std::size_t>(me) * bytes, sbuf, bytes);
    std::vector<int> reqs;
    for (int i = 0; i < p; ++i) {
      if (i == root) continue;
      reqs.push_back(
          irecv(out + static_cast<std::size_t>(i) * bytes, bytes, i, tag));
    }
    waitall(reqs);
  } else {
    send(sbuf, bytes, root, tag);
  }
}

void Mpi::scatter(const void* sbuf, std::size_t bytes, void* rbuf, int root) {
  const int p = size();
  const int me = rank();
  const int tag = next_coll_tag();
  if (me == root) {
    const auto* in = static_cast<const std::byte*>(sbuf);
    std::memcpy(rbuf, in + static_cast<std::size_t>(me) * bytes, bytes);
    for (int i = 0; i < p; ++i) {
      if (i == root) continue;
      send(in + static_cast<std::size_t>(i) * bytes, bytes, i, tag);
    }
  } else {
    recv(rbuf, bytes, root, tag);
  }
}

void Mpi::reduce(const void* sbuf, void* rbuf, std::size_t count, Dtype t,
                 ReduceOp op, int root) {
  ++coll_stats_.reduces;
  const int p = size();
  const std::size_t bytes = count * dtype_size(t);
  const int me = rank();
  const int rel = (me - root + p) % p;
  const int tag = next_coll_tag();

  std::vector<std::byte> acc(bytes);
  std::memcpy(acc.data(), sbuf, bytes);
  std::vector<std::byte> incoming(bytes);

  // Binomial combine toward relative rank 0 (deterministic order).
  for (int mask = 1; mask < p; mask <<= 1) {
    if (rel & mask) {
      const int parent = ((rel & ~mask) + root) % p;
      send(acc.data(), bytes, parent, tag);
      break;
    }
    const int child_rel = rel | mask;
    if (child_rel < p) {
      recv(incoming.data(), bytes, (child_rel + root) % p, tag);
      reduce_apply(acc.data(), incoming.data(), count, t, op);
    }
  }
  if (me == root && rbuf != nullptr) std::memcpy(rbuf, acc.data(), bytes);
}

void Mpi::allreduce(const void* sbuf, void* rbuf, std::size_t count, Dtype t,
                    ReduceOp op) {
  // MPICH's classic composition: reduce to rank 0, then broadcast.
  reduce(sbuf, rbuf, count, t, op, 0);
  bcast(rbuf, count * dtype_size(t), 0);
}

void Mpi::alltoall(const void* sbuf, void* rbuf, std::size_t bytes) {
  ++coll_stats_.alltoalls;
  const int p = size();
  const int me = rank();
  const int tag = next_coll_tag();
  const auto* in = static_cast<const std::byte*>(sbuf);
  auto* out = static_cast<std::byte*>(rbuf);

  std::memcpy(out + static_cast<std::size_t>(me) * bytes,
              in + static_cast<std::size_t>(me) * bytes, bytes);

  std::vector<int> reqs;
  for (int i = 0; i < p; ++i) {
    if (i == me) continue;
    reqs.push_back(
        irecv(out + static_cast<std::size_t>(i) * bytes, bytes, i, tag));
  }
  if (tuned_collectives()) {
    // Vendor-style staggering: rank r starts with destination r+1, so no
    // single receiver is hit by everyone at once.
    for (int k = 1; k < p; ++k) {
      const int dst = (me + k) % p;
      send(in + static_cast<std::size_t>(dst) * bytes, bytes, dst, tag);
    }
  } else {
    // MPICH generic: every rank walks destinations 0,1,2,... in the same
    // order — the synchronized hot spot the paper observed in FT.
    for (int dst = 0; dst < p; ++dst) {
      if (dst == me) continue;
      send(in + static_cast<std::size_t>(dst) * bytes, bytes, dst, tag);
    }
  }
  waitall(reqs);
}

void Mpi::allgather(const void* sbuf, std::size_t bytes, void* rbuf) {
  const int p = size();
  const int me = rank();
  const int tag = next_coll_tag();
  auto* out = static_cast<std::byte*>(rbuf);
  std::memcpy(out + static_cast<std::size_t>(me) * bytes, sbuf, bytes);
  // Ring: pass blocks around p-1 times.
  const int right = (me + 1) % p;
  const int left = (me - 1 + p) % p;
  int have = me;
  for (int step = 0; step < p - 1; ++step) {
    const int incoming = (have - 1 + p) % p;
    sendrecv(out + static_cast<std::size_t>(have) * bytes, bytes, right, tag,
             out + static_cast<std::size_t>(incoming) * bytes, bytes, left,
             tag);
    have = incoming;
  }
}

}  // namespace spam::mpi
