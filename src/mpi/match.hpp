// MPI message matching: posted-receive queue and unexpected-message queue
// with MPI's (source, tag) wildcard rules and per-source FIFO ordering.
// Shared by the MPI-over-AM device and the MPI-F baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>

#include "mpi/types.hpp"

namespace spam::mpi {

/// A receive posted by the application, waiting for a matching message.
struct PostedRecv {
  int req_id = 0;
  int src = kAnySource;
  int tag = kAnyTag;
  void* buf = nullptr;
  std::size_t cap = 0;
};

/// An arrived (or announced) message not yet matched.  `cookie` and `data`
/// are device-defined: for eager arrivals `data` points at the payload in
/// the device's buffer; for rendez-vous announcements it is null and
/// `cookie` identifies the sender-side operation.
struct InMsg {
  int src = -1;
  int tag = 0;
  std::size_t len = 0;
  std::uint32_t kind = 0;       // device-defined protocol kind
  std::uint64_t cookie = 0;     // device-defined correlation id
  const void* data = nullptr;   // payload location, if already here
  std::size_t data_len = 0;     // bytes available at `data`
};

class MatchEngine {
 public:
  /// Posts a receive.  If an unexpected message matches, it is removed and
  /// returned; otherwise the receive queues.
  std::optional<InMsg> post(const PostedRecv& r);

  /// Delivers an arrival.  If a posted receive matches, it is removed and
  /// returned; otherwise the message joins the unexpected queue.
  std::optional<PostedRecv> arrive(const InMsg& m);

  std::size_t posted_count() const { return posted_.size(); }
  std::size_t unexpected_count() const { return unexpected_.size(); }

 private:
  static bool matches(const PostedRecv& r, const InMsg& m) {
    return (r.src == kAnySource || r.src == m.src) &&
           (r.tag == kAnyTag || r.tag == m.tag);
  }

  std::deque<PostedRecv> posted_;
  std::deque<InMsg> unexpected_;
};

}  // namespace spam::mpi
