#include "mpi/types.hpp"

#include <algorithm>

namespace spam::mpi {

namespace {

template <typename T>
void apply_typed(T* acc, const T* in, std::size_t n, ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < n; ++i) acc[i] = acc[i] + in[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::max(acc[i], in[i]);
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::min(acc[i], in[i]);
      break;
  }
}

}  // namespace

void reduce_apply(void* acc, const void* in, std::size_t count, Dtype t,
                  ReduceOp op) {
  switch (t) {
    case Dtype::kByte:
      apply_typed(static_cast<std::uint8_t*>(acc),
                  static_cast<const std::uint8_t*>(in), count, op);
      break;
    case Dtype::kInt32:
      apply_typed(static_cast<std::int32_t*>(acc),
                  static_cast<const std::int32_t*>(in), count, op);
      break;
    case Dtype::kInt64:
      apply_typed(static_cast<std::int64_t*>(acc),
                  static_cast<const std::int64_t*>(in), count, op);
      break;
    case Dtype::kDouble:
      apply_typed(static_cast<double*>(acc), static_cast<const double*>(in),
                  count, op);
      break;
  }
}

}  // namespace spam::mpi
