#include "mpi/match.hpp"

namespace spam::mpi {

std::optional<InMsg> MatchEngine::post(const PostedRecv& r) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(r, *it)) {
      InMsg m = *it;
      unexpected_.erase(it);
      return m;
    }
  }
  posted_.push_back(r);
  return std::nullopt;
}

std::optional<PostedRecv> MatchEngine::arrive(const InMsg& m) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches(*it, m)) {
      PostedRecv r = *it;
      posted_.erase(it);
      return r;
    }
  }
  unexpected_.push_back(m);
  return std::nullopt;
}

}  // namespace spam::mpi
