// Shared MPI types for the mini-MPICH (over SP AM) and MPI-F (baseline)
// implementations.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spam::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Minimal datatype support: enough for the NAS kernels and benches.
enum class Dtype { kByte, kInt32, kInt64, kDouble };

constexpr std::size_t dtype_size(Dtype t) {
  switch (t) {
    case Dtype::kByte: return 1;
    case Dtype::kInt32: return 4;
    case Dtype::kInt64: return 8;
    case Dtype::kDouble: return 8;
  }
  return 1;
}

enum class ReduceOp { kSum, kMax, kMin };

struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// Applies `op` elementwise: acc[i] = acc[i] op in[i].
void reduce_apply(void* acc, const void* in, std::size_t count, Dtype t,
                  ReduceOp op);

}  // namespace spam::mpi
