// MPI point-to-point device over SP Active Messages (paper section 4).
//
// Three wire protocols:
//  * buffered (eager): the sender owns a 16 KB region inside the receiver
//    and allocates space for [envelope][payload] blocks locally — the
//    am_store's handler matches the envelope and, once the message is
//    copied into the user's receive buffer, space is returned to the
//    sender with a free message (an am_reply when the receive was already
//    posted, an am_request otherwise);
//  * rendez-vous: an am_request announces (tag, len, op); the receiver
//    answers with the user buffer address once a matching receive exists;
//    the sender then stores straight into the user buffer.  Per the paper,
//    the address-arrival handler may NOT issue the store itself — it queues
//    the transfer, and progress() performs it;
//  * hybrid: for large messages the first 4 KB travel eagerly as a prefix
//    (doubling as the rendez-vous announcement) while the rest waits for
//    the address, removing MPI-F's bandwidth discontinuity at the protocol
//    switch.  If no buffer space is available it degrades to rendez-vous.
//
// The unoptimized configuration reproduces the paper's first cut:
// first-fit-only allocation, one free message per buffer, no hybrid, a
// 16 KB protocol switch, and a heavier software path.  The optimized one
// adds the binned allocator, batched frees, the hybrid protocol, and an
// 8 KB switch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "am/net.hpp"
#include "mpi/buffer_alloc.hpp"
#include "mpi/match.hpp"
#include "mpi/mpi.hpp"

namespace spam::mpi {

struct MpiAmConfig {
  bool optimized = true;
  std::size_t peer_buffer_bytes = 16 * 1024;
  /// Messages up to this size use the buffered protocol.
  std::size_t eager_max = 8 * 1024;
  bool hybrid = true;
  std::size_t hybrid_prefix = 4 * 1024;
  bool binned_allocator = true;
  bool batch_frees = true;
  int free_batch = 2;  // frees carried per free message (request_4 fits 2)
  /// Per-message MPI software costs (header build, queue walks).
  double sw_send_us = 1.0;
  double sw_recv_us = 1.0;
  /// Cache-resident copy between the eager buffer and the user buffer.
  double copy_us_per_byte = 0.008;
  /// CPU cost per first-fit search step (the cost the paper found "major"
  /// for small messages; the binned fast path pays one step).
  double alloc_step_us = 0.2;

  static MpiAmConfig opt() { return MpiAmConfig{}; }
  static MpiAmConfig unopt() {
    MpiAmConfig c;
    c.optimized = false;
    c.eager_max = 16 * 1024 - 64;  // switch at ~16 KB, within the region
    c.hybrid = false;
    c.binned_allocator = false;
    c.batch_frees = false;
    c.sw_send_us = 3.0;
    c.sw_recv_us = 3.0;
    return c;
  }
};

class MpiAm final : public Mpi {
 public:
  MpiAm(sim::NodeCtx& ctx, am::Endpoint& ep, MpiAmConfig cfg);

  int rank() const override { return ep_.rank(); }
  int size() const override { return world_size_; }
  int isend(const void* buf, std::size_t bytes, int dst, int tag) override;
  int irecv(void* buf, std::size_t bytes, int src, int tag) override;
  void progress() override;

  /// Wires the sender-side view of peer regions; called by MpiAmNet after
  /// all devices exist.
  void set_peer_region_base(int peer, std::byte* base);
  std::byte* region_base_for(int src) {
    return regions_[static_cast<std::size_t>(src)].data();
  }

  struct DevStats {
    std::uint64_t eager_sends = 0;
    std::uint64_t rdv_sends = 0;
    std::uint64_t hybrid_sends = 0;
    std::uint64_t free_msgs = 0;
    std::uint64_t sends_blocked_on_buffer = 0;
  };
  const DevStats& dev_stats() const { return dev_stats_; }
  am::Endpoint& endpoint() { return ep_; }
  const MpiAmConfig& config() const { return cfg_; }

 private:
  // Protocol kinds in envelopes / InMsg.kind.
  static constexpr std::uint32_t kKindEager = 1;
  static constexpr std::uint32_t kKindHybridPrefix = 2;
  static constexpr std::uint32_t kKindRdv = 3;

  struct WireEnv {
    std::int32_t tag = 0;
    std::uint32_t kind = 0;
    std::uint64_t total_len = 0;
    std::uint32_t op_id = 0;
    std::uint32_t payload_len = 0;  // bytes present in this block
  };
  static constexpr std::size_t kEnvBytes = sizeof(WireEnv);

  /// Sender-side record of a rendez-vous / hybrid operation.
  struct SendOp {
    int req_id = 0;
    int dst = -1;
    const std::byte* src = nullptr;
    std::size_t len = 0;
    std::size_t prefix_sent = 0;
    std::vector<std::byte> owned;  // snapshot for drained pending sends
  };

  /// A queued send that could not allocate eager space yet.
  struct PendingSend {
    int req_id;
    int dst;
    int tag;
    std::vector<std::byte> data;  // snapshot: MPI send buffer is reusable
  };

  /// Receiver-side record awaiting rendez-vous data.
  struct RecvRec {
    int req_id = 0;
    Status status;
  };

  /// A transfer whose destination address arrived; progress() executes it.
  struct ReadyStore {
    std::uint32_t op_id;
    std::uint64_t addr;
    std::uint32_t recv_id;
  };

  static std::uint64_t prefix_key(int src, std::uint64_t op_id) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           (op_id & 0xffffffffu);
  }
  void install_handlers();
  /// alloc() with the search cost charged to virtual time.
  std::size_t charged_alloc(BufferAllocator& alloc, std::size_t need);
  void consume_prefix(int src, std::byte* dst, const std::byte* data,
                      std::uint32_t len);
  void handle_prefix_block(int src, const WireEnv& env,
                           const std::byte* payload);
  bool try_eager(int req_id, int dst, int tag, const std::byte* data,
                 std::size_t len);
  void start_rendezvous(int req_id, int dst, int tag, const std::byte* src,
                        std::size_t len);
  void queue_free(int src, std::size_t offset, std::size_t alloc_len,
                  am::Token* reply_token);
  void flush_frees(int src, bool force);
  void deliver_matched(const PostedRecv& r, const InMsg& m,
                       am::Token* reply_token);
  void drain_ready_stores();
  void retry_pending_sends();

  am::Endpoint& ep_;
  MpiAmConfig cfg_;
  int world_size_;

  // Receiver side: one eager region per source.
  std::vector<std::vector<std::byte>> regions_;
  MatchEngine match_;
  std::unordered_map<std::uint32_t, RecvRec> recv_recs_;
  std::uint32_t next_recv_id_ = 1;
  // Hybrid-prefix bookkeeping: destinations waiting for a prefix block,
  // and prefix blocks that landed before their announcement matched.
  std::unordered_map<std::uint64_t, std::byte*> pending_prefix_;
  struct PrefixRef {
    const std::byte* data;
    std::uint32_t len;
  };
  std::unordered_map<std::uint64_t, PrefixRef> prefix_stash_;

  // Sender side.
  std::vector<std::byte*> peer_region_base_;
  std::vector<std::unique_ptr<BufferAllocator>> alloc_;
  std::unordered_map<std::uint32_t, SendOp> send_ops_;
  std::uint32_t next_op_id_ = 1;
  std::vector<std::deque<PendingSend>> pending_sends_;
  std::deque<ReadyStore> ready_stores_;

  // Receiver-side pending frees, per source, plus an age counter.
  struct PendingFree {
    std::uint32_t offset;
    std::uint32_t len;
  };
  std::vector<std::vector<PendingFree>> pending_frees_;
  std::vector<int> free_age_;
  /// Bytes of the per-source region we have consumed but not yet returned.
  std::vector<std::size_t> freed_owed_;
  /// Nonzero while executing inside an AM handler (restricts what the
  /// receive path may send: replies only, no fresh requests).
  int handler_depth_ = 0;

  // AM handler indices (identical on every node by construction order).
  int h_free_req_ = 0;
  int h_free_reply_ = 0;
  int h_eager_ = 0;       // bulk handler: eager/hybrid-prefix block landed
  int h_rdv_req_ = 0;     // request: rendez-vous announcement
  int h_rdv_addr_req_ = 0;    // request: receive-buffer address
  int h_rdv_addr_reply_ = 0;  // reply: receive-buffer address
  int h_rdv_done_ = 0;    // bulk handler: rendez-vous data landed

  DevStats dev_stats_;
};

/// One MpiAm device per node over a shared AmNet.
class MpiAmNet {
 public:
  MpiAmNet(am::AmNet& amnet, MpiAmConfig cfg = MpiAmConfig::opt());
  MpiAm& mpi(int node) { return *devices_.at(node); }
  int size() const { return static_cast<int>(devices_.size()); }

 private:
  std::vector<std::unique_ptr<MpiAm>> devices_;
};

}  // namespace spam::mpi
