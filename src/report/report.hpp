// Reporting helpers shared by the benchmark binaries: fixed-width tables,
// paper-vs-measured comparison rows, and bandwidth-curve analysis
// (asymptotic rate r-infinity and half-power point n-1/2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace spam::report {

/// Fixed-width console table.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}
  void set_header(std::vector<std::string> cols) { header_ = std::move(cols); }
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }
  void print(std::FILE* out = stdout) const;

  /// Renders exactly what print() writes, as a string.  The parallel-sweep
  /// determinism tests compare these byte-for-byte across --jobs settings.
  std::string render() const;

  const std::string& title() const { return title_; }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Accumulates "paper vs measured" rows and prints a comparison table.
class PaperComparison {
 public:
  explicit PaperComparison(std::string title) : table_(std::move(title)) {
    table_.set_header({"metric", "paper", "measured", "note"});
  }
  void add(const std::string& metric, const std::string& paper,
           const std::string& measured, const std::string& note = "") {
    table_.add_row({metric, paper, measured, note});
  }
  void print(std::FILE* out = stdout) const { table_.print(out); }

  const Table& table() const { return table_; }

 private:
  Table table_;
};

/// One point of a bandwidth curve.
struct BwPoint {
  std::size_t bytes;
  double mbps;
};

/// Asymptotic bandwidth: the mean of the top points (robust against noise
/// at the tail of the sweep).
double r_infinity(const std::vector<BwPoint>& curve);

/// Half-power point: the (log-interpolated) message size at which the curve
/// first reaches half of r-infinity.
double n_half(const std::vector<BwPoint>& curve);

std::string fmt(double v, int precision = 1);
std::string fmt_us(double us);
std::string fmt_mbps(double mbps);
std::string fmt_bytes(double bytes);

}  // namespace spam::report
