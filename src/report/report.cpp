#include "report/report.hpp"

#include <algorithm>
#include <cmath>

namespace spam::report {

std::string Table::render() const {
  // Column widths.
  std::vector<std::size_t> w;
  auto grow = [&](const std::vector<std::string>& row) {
    if (w.size() < row.size()) w.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      w[i] = std::max(w[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::string out = "\n== " + title_ + " ==\n";
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out += "| ";
      out += cell;
      out.append(w[i] - cell.size(), ' ');
    }
    out += " |\n";
  };
  if (!header_.empty()) {
    append_row(header_);
    std::size_t total = 1;
    for (std::size_t cw : w) total += cw + 3;
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) append_row(r);
  return out;
}

void Table::print(std::FILE* out) const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), out);
}

double r_infinity(const std::vector<BwPoint>& curve) {
  if (curve.empty()) return 0;
  std::vector<double> rates;
  rates.reserve(curve.size());
  for (const auto& pt : curve) rates.push_back(pt.mbps);
  std::sort(rates.begin(), rates.end());
  const std::size_t k = std::max<std::size_t>(1, rates.size() / 5);
  double sum = 0;
  for (std::size_t i = rates.size() - k; i < rates.size(); ++i) {
    sum += rates[i];
  }
  return sum / static_cast<double>(k);
}

double n_half(const std::vector<BwPoint>& curve) {
  const double target = r_infinity(curve) / 2.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (curve[i].mbps >= target) {
      if (i == 0) return static_cast<double>(curve[0].bytes);
      // Log-linear interpolation between the bracketing points.
      const double x0 = std::log2(static_cast<double>(curve[i - 1].bytes));
      const double x1 = std::log2(static_cast<double>(curve[i].bytes));
      const double y0 = curve[i - 1].mbps;
      const double y1 = curve[i].mbps;
      const double t = (target - y0) / (y1 - y0);
      return std::exp2(x0 + t * (x1 - x0));
    }
  }
  return static_cast<double>(curve.empty() ? 0 : curve.back().bytes);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_us(double us) { return fmt(us, 1) + " us"; }
std::string fmt_mbps(double mbps) { return fmt(mbps, 1) + " MB/s"; }
std::string fmt_bytes(double bytes) { return fmt(bytes, 0) + " B"; }

}  // namespace spam::report
