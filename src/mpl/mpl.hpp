// MPL baseline: a model of IBM's message-passing library (mpc_send /
// mpc_recv / mpc_bsend / mpc_brecv) over the same simulated TB2 adapter.
//
// What matters for the paper's comparison is MPL's externally measured
// profile: ~88 us one-word round-trip, ~34.6 MB/s asymptotic bandwidth,
// and a much larger half-power point than SP AM.  The model reproduces the
// software path that produces that profile: a heavyweight per-message send
// path, receiver-side matching with a staging-buffer copy, and per-packet
// costs on the same FIFO/doorbell hardware.  Reliability is credit-based:
// the sender never has more packets outstanding per destination than the
// receive FIFO can hold, so nothing is ever dropped (the real TB2 firmware
// guaranteed delivery to MPL).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/world.hpp"
#include "sphw/adapter.hpp"
#include "sphw/machine.hpp"

namespace spam::mpl {

struct MplParams {
  /// Per-message sender software path (allocation, header build, queueing).
  double send_sw_us = 12.0;
  /// Per-message receiver software path (matching, bookkeeping).
  double recv_sw_us = 9.3;
  /// Per-packet sender cost beyond the FIFO write/doorbell.
  double per_packet_us = 2.2;
  /// Staging copy at the receiver (packets land in a system buffer first).
  /// Staging buffers stay cache-resident, so this runs faster than the
  /// FIFO drain; MPL pays for its copies in fixed per-message costs, not in
  /// asymptotic bandwidth (its r-infinity matches SP AM's).
  double sysbuf_copy_us_per_byte = 0.004;
  /// Final copy from the system buffer into the user's receive buffer.
  double user_copy_us_per_byte = 0.004;
  /// Cost of one progress poll.
  double poll_us = 1.5;
  /// Credit window per destination, in packets (fits the receive FIFO).
  int credit_window = 64;
  /// Receiver returns credits after consuming this many packets.
  int credit_return_every = 16;
};

/// Wildcard markers for mpc_brecv/mpc_recv.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

class MplEndpoint {
 public:
  MplEndpoint(sim::NodeCtx& ctx, sphw::Tb2Adapter& adapter, MplParams params);

  MplEndpoint(const MplEndpoint&) = delete;
  MplEndpoint& operator=(const MplEndpoint&) = delete;

  int rank() const { return adapter_.node(); }

  /// Nonblocking send: queues the message, returns a handle for mpc_wait.
  int mpc_send(const void* buf, std::size_t len, int dst, int tag);

  /// Nonblocking receive: posts a receive, returns a handle for mpc_wait.
  int mpc_recv(void* buf, std::size_t maxlen, int src = kAnySource,
               int tag = kAnyTag);

  /// Blocks until the handle completes (send fully handed to the adapter,
  /// or receive matched and copied).  Returns the received byte count for
  /// receives (0 for sends).
  std::size_t mpc_wait(int handle);

  /// Non-blocking completion check; on success removes the handle and
  /// stores the received byte count (0 for sends).  Does not poll.
  bool mpc_test(int handle, std::size_t* bytes = nullptr);

  /// Blocking send/receive conveniences (the forms the paper benchmarks).
  void mpc_bsend(const void* buf, std::size_t len, int dst, int tag) {
    mpc_wait(mpc_send(buf, len, dst, tag));
  }
  std::size_t mpc_brecv(void* buf, std::size_t maxlen, int src = kAnySource,
                        int tag = kAnyTag) {
    return mpc_wait(mpc_recv(buf, maxlen, src, tag));
  }

  /// Progress engine: drains the receive FIFO, assembles messages, matches
  /// them, returns credits, and pushes pending sends as credits allow.
  void poll();

  struct Stats {
    std::uint64_t msgs_sent = 0;
    std::uint64_t msgs_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t credit_returns = 0;
    std::uint64_t unexpected_msgs = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct SendOp {
    int handle;
    std::uint32_t msg_id;
    int dst;
    int tag;
    sphw::PayloadRef data;  // pooled snapshot of the user buffer
    std::size_t sent = 0;
    bool first_packet_pending = true;
    bool done = false;  // fully handed to the adapter
  };
  struct RecvOp {
    int handle;
    int src;  // kAnySource ok
    int tag;  // kAnyTag ok
    std::byte* buf;
    std::size_t maxlen;
    bool done = false;
    std::size_t got = 0;
  };
  /// A message being assembled, or assembled and not yet matched.
  struct InMsg {
    int src;
    int tag;
    std::uint32_t msg_id;
    std::vector<std::byte> sysbuf;
    std::size_t received = 0;
    bool complete = false;
  };
  static std::uint64_t msg_key(int src, std::uint32_t msg_id) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           msg_id;
  }
  struct PeerCredit {
    int in_flight = 0;       // packets we sent minus credits returned
    int consumed_unacked = 0;  // packets we consumed, credits not yet sent
  };

  void progress_sends();
  void handle_packet(sphw::Packet pkt);
  void try_match();
  bool matches(const RecvOp& r, const InMsg& m) const {
    return (r.src == kAnySource || r.src == m.src) &&
           (r.tag == kAnyTag || r.tag == m.tag);
  }
  void deliver(RecvOp& r, InMsg& m);
  void return_credits(int src);

  sim::NodeCtx& ctx_;
  sphw::Tb2Adapter& adapter_;
  MplParams params_;

  int next_handle_ = 1;
  std::uint32_t next_msg_id_ = 1;

  std::deque<SendOp> send_q_;
  std::vector<std::shared_ptr<RecvOp>> posted_;
  /// Messages still receiving packets, keyed by (src, msg_id).
  std::unordered_map<std::uint64_t, InMsg> assembling_;
  /// Complete messages awaiting a matching receive, in arrival order.
  std::list<InMsg> unmatched_;
  std::vector<PeerCredit> credits_;
  std::vector<bool> dst_seen_;  // progress_sends scratch (avoids churn)
  // Completed handles (send handles and recv handles with byte counts).
  std::vector<std::pair<int, std::size_t>> completed_;

  Stats stats_;
};

/// One MPL endpoint per node of a machine.
class MplNet {
 public:
  explicit MplNet(sphw::SpMachine& machine, MplParams params = {})
      : params_(params) {
    endpoints_.resize(static_cast<std::size_t>(machine.size()));
    for (int n = 0; n < machine.size(); ++n) {
      endpoints_[n] = std::make_unique<MplEndpoint>(
          machine.world().node(n), machine.adapter(n), params_);
    }
  }
  MplEndpoint& ep(int node) { return *endpoints_.at(node); }
  int size() const { return static_cast<int>(endpoints_.size()); }

 private:
  MplParams params_;
  std::vector<std::unique_ptr<MplEndpoint>> endpoints_;
};

}  // namespace spam::mpl
