#include "mpl/mpl.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "sphw/payload.hpp"

namespace spam::mpl {

namespace {
constexpr std::uint8_t kChanMpl = 2;
constexpr std::uint8_t kFlagControl = 0x01;
constexpr std::uint8_t kFlagMsgLast = 0x02;
}  // namespace

MplEndpoint::MplEndpoint(sim::NodeCtx& ctx, sphw::Tb2Adapter& adapter,
                         MplParams params)
    : ctx_(ctx), adapter_(adapter), params_(params) {
  credits_.resize(static_cast<std::size_t>(ctx.world().size()));
}

int MplEndpoint::mpc_send(const void* buf, std::size_t len, int dst,
                          int tag) {
  // Flush charge debt: progress_sends() samples adapter FIFO space, which
  // is exact only at this node's virtual instant.
  ctx_.settle();
  const int handle = next_handle_++;
  SendOp op;
  op.handle = handle;
  op.msg_id = next_msg_id_++;
  op.dst = dst;
  op.tag = tag;
  op.data = sphw::PayloadPool::instance().copy_from(buf, len);
  // spam-lint: capacity-ok — per-message op queue, bounded by the app's
  // posting rate; steady-state capacity sticks after the first ramp
  send_q_.push_back(std::move(op));
  ++stats_.msgs_sent;
  stats_.bytes_sent += len;
  progress_sends();
  return handle;
}

int MplEndpoint::mpc_recv(void* buf, std::size_t maxlen, int src, int tag) {
  const int handle = next_handle_++;
  // spam-lint: allow(hot-alloc) — one allocation per *posted receive*
  // (control path), not per packet; shared with the completion record
  auto op = std::make_shared<RecvOp>();
  op->handle = handle;
  op->src = src;
  op->tag = tag;
  op->buf = static_cast<std::byte*>(buf);
  op->maxlen = maxlen;
  // spam-lint: capacity-ok — bounded by receives outstanding
  posted_.push_back(op);
  try_match();
  return handle;
}

bool MplEndpoint::mpc_test(int handle, std::size_t* bytes) {
  for (std::size_t i = 0; i < completed_.size(); ++i) {
    if (completed_[i].first == handle) {
      if (bytes != nullptr) *bytes = completed_[i].second;
      completed_.erase(completed_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

std::size_t MplEndpoint::mpc_wait(int handle) {
  std::size_t bytes = 0;
  while (!mpc_test(handle, &bytes)) poll();
  return bytes;
}

void MplEndpoint::progress_sends() {
  if (send_q_.empty()) return;
  const int data_bytes = adapter_.params().packet_data_bytes;
  // Head-of-line per destination: the first queued op toward each dst may
  // make progress; later ops to the same dst wait (MPL delivers in order).
  dst_seen_.assign(credits_.size(), false);
  auto& dst_seen = dst_seen_;
  for (SendOp& op : send_q_) {
    if (op.done) continue;
    const auto d = static_cast<std::size_t>(op.dst);
    if (dst_seen[d]) continue;
    dst_seen[d] = true;

    PeerCredit& cr = credits_[d];
    if (op.first_packet_pending) {
      // spam-lint: charge-ok — once per message (guarded by
      // first_packet_pending), not per loop iteration
      ctx_.elapse(sim::usec(params_.send_sw_us));
      op.first_packet_pending = false;
    }
    int batched = 0;
    while (!op.done && cr.in_flight < params_.credit_window &&
           adapter_.host_send_space()) {
      const std::size_t remaining = op.data.size() - op.sent;
      const std::size_t nbytes =
          std::min(static_cast<std::size_t>(data_bytes), remaining);
      sphw::Packet pkt;
      pkt.dst = static_cast<std::int16_t>(op.dst);
      pkt.channel = kChanMpl;
      pkt.h[0] = static_cast<std::uint64_t>(op.tag);
      pkt.h[1] = op.msg_id;
      pkt.h[2] = op.data.size();
      pkt.offset = static_cast<std::uint32_t>(op.sent);
      pkt.payload_bytes = static_cast<std::uint32_t>(nbytes);
      if (nbytes > 0) {
        // Share the staged message bytes; no per-packet copy.
        pkt.payload = op.data.slice(op.sent, nbytes);
      }
      op.sent += nbytes;
      const bool last = (op.sent == op.data.size());
      if (last) pkt.flags |= kFlagMsgLast;
      // spam-lint: charge-ok — per-packet wire cost IS the MPL model;
      // doorbells are already batched 16 deep below
      ctx_.elapse(sim::usec(params_.per_packet_us));
      adapter_.host_enqueue(ctx_, std::move(pkt), /*ring_doorbell=*/false);
      ++cr.in_flight;
      ++batched;
      if (last) {
        op.done = true;
        // spam-lint: capacity-ok — one record per op, drained by mpc_test
        completed_.emplace_back(op.handle, 0);
      }
      if (batched == 16) {
        adapter_.host_doorbell(ctx_, batched);
        batched = 0;
      }
    }
    if (batched > 0) adapter_.host_doorbell(ctx_, batched);
  }
  while (!send_q_.empty() && send_q_.front().done) send_q_.pop_front();
}

void MplEndpoint::return_credits(int src) {
  PeerCredit& cr = credits_[static_cast<std::size_t>(src)];
  if (cr.consumed_unacked < params_.credit_return_every) return;
  sphw::Packet pkt;
  pkt.dst = static_cast<std::int16_t>(src);
  pkt.channel = kChanMpl;
  pkt.flags = kFlagControl;
  pkt.h[0] = static_cast<std::uint64_t>(cr.consumed_unacked);
  pkt.payload_bytes = 0;
  cr.consumed_unacked = 0;
  ctx_.poll_until([&] { return adapter_.host_send_space(); }, sim::usec(0.5));
  adapter_.host_enqueue(ctx_, std::move(pkt), /*ring_doorbell=*/true);
  ++stats_.credit_returns;
}

void MplEndpoint::handle_packet(sphw::Packet pkt) {
  if (pkt.flags & kFlagControl) {
    // Credit return from a receiver.
    PeerCredit& cr = credits_[static_cast<std::size_t>(pkt.src)];
    cr.in_flight -= static_cast<int>(pkt.h[0]);
    assert(cr.in_flight >= 0);
    return;
  }

  // Data packet: stage into the assembly buffer for (src, msg_id).
  const auto msg_id = static_cast<std::uint32_t>(pkt.h[1]);
  const std::uint64_t key = msg_key(pkt.src, msg_id);
  auto [it, inserted] = assembling_.try_emplace(key);
  InMsg* msg = &it->second;
  if (inserted) {
    msg->src = pkt.src;
    msg->tag = static_cast<int>(pkt.h[0]);
    msg->msg_id = msg_id;
    msg->sysbuf.resize(static_cast<std::size_t>(pkt.h[2]));
  }
  if (pkt.payload_bytes > 0) {
    ctx_.elapse(sim::usec(pkt.payload_bytes * params_.sysbuf_copy_us_per_byte));
    std::memcpy(msg->sysbuf.data() + pkt.offset, pkt.payload.data(),
                pkt.payload.size());
    msg->received += pkt.payload_bytes;
  }
  if (pkt.flags & kFlagMsgLast) {
    assert(msg->received == msg->sysbuf.size());
    msg->complete = true;
    ++stats_.msgs_received;
    // spam-lint: capacity-ok — bounded by unmatched complete messages;
    // drained by try_match on every post
    unmatched_.push_back(std::move(*msg));
    assembling_.erase(it);
  }

  PeerCredit& cr = credits_[static_cast<std::size_t>(pkt.src)];
  ++cr.consumed_unacked;
  return_credits(pkt.src);
}

void MplEndpoint::deliver(RecvOp& r, InMsg& m) {
  ctx_.elapse(sim::usec(params_.recv_sw_us));
  const std::size_t n = std::min(r.maxlen, m.sysbuf.size());
  if (n > 0) {
    ctx_.elapse(sim::usec(static_cast<double>(n) * params_.user_copy_us_per_byte));
    std::memcpy(r.buf, m.sysbuf.data(), n);
  }
  r.done = true;
  r.got = n;
  // spam-lint: capacity-ok — one record per op, drained by mpc_test
  completed_.emplace_back(r.handle, n);
}

void MplEndpoint::try_match() {
  // Arrival order over complete messages, post order over receives: the
  // MPL matching rule.  The common case (a service loop with one wildcard
  // receive posted) matches the front element in O(1); with nothing posted
  // the whole call is O(1), which matters when thousands of service
  // messages queue up between reposts.
  if (posted_.empty() || unmatched_.empty()) return;
  bool matched = true;
  while (matched) {
    matched = false;
    for (auto it = unmatched_.begin(); it != unmatched_.end(); ++it) {
      for (std::size_t i = 0; i < posted_.size(); ++i) {
        if (matches(*posted_[i], *it)) {
          deliver(*posted_[i], *it);
          posted_.erase(posted_.begin() + static_cast<std::ptrdiff_t>(i));
          unmatched_.erase(it);
          matched = true;
          break;
        }
      }
      if (matched) break;
    }
  }
}

void MplEndpoint::poll() {
  ctx_.elapse(sim::usec(params_.poll_us));
  while (adapter_.host_rx_ready()) {
    sphw::Packet pkt = adapter_.host_rx_take(ctx_);
    handle_packet(std::move(pkt));
  }
  try_match();
  progress_sends();
}

}  // namespace spam::mpl
