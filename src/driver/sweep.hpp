// SweepRunner: deterministic parallel execution of independent simulation
// points, plus the memoization cache the measurement layer hangs off.
//
// A *sweep* is a vector of closures, each of which constructs and runs its
// own shared-nothing sim::World (or reads the ResultCache).  SweepRunner
// executes them across N host threads and writes each result into the slot
// indexed by its job id, so aggregated output is byte-identical to serial
// execution regardless of completion order.  Each point is itself a
// deterministic simulation (same seed => same virtual numbers), so the
// *values* cannot depend on the thread that computed them — the runner
// only has to keep the aggregation order fixed, which slot-indexed results
// do by construction.
//
// Thread-safety contract (see docs/simulator.md): a job owns everything it
// touches.  One World per thread at a time, engine/payload/trace state is
// thread-local, and nothing simulated crosses threads.  Jobs communicate
// only through their return slots.
//
// Exceptions: all jobs run to completion even if some throw; afterwards
// the exception of the *lowest-indexed* failed job is rethrown.  Serial
// execution (jobs == 1) throws at the first failure, which is the same
// observable exception, since all lower-indexed jobs had succeeded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "driver/annotations.hpp"
#include "driver/pool.hpp"

namespace spam::driver {

class SweepRunner {
 public:
  /// `jobs` <= 0 selects hardware_concurrency.  jobs == 1 runs everything
  /// inline on the calling thread (no pool is created).
  explicit SweepRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  /// Runs fn(0) .. fn(n-1) across the pool; returns when all completed.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs every closure; results land in slot [i] for closure [i].
  template <typename R>
  std::vector<R> run(const std::vector<std::function<R()>>& points) {
    std::vector<R> out(points.size());
    run_indexed(points.size(),
                [&](std::size_t i) { out[i] = points[i](); });
    return out;
  }

  /// Void overload: useful for cache-warming sweeps.
  void run(const std::vector<std::function<void()>>& points) {
    run_indexed(points.size(), [&](std::size_t i) { points[i](); });
  }

 private:
  int jobs_;
};

/// FNV-1a over explicitly mixed fields.  Used to key ResultCache entries
/// on (bench id, params struct, size/mode) without hashing padding bytes.
class Hasher {
 public:
  explicit Hasher(const char* bench_id) { mix(bench_id); }

  Hasher& mix_bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001b3ull;
    }
    return *this;
  }

  /// Scalars only; every integer is widened to 64 bits first so the key
  /// does not depend on the caller's choice of int width.
  template <typename T>
  Hasher& mix(T v) {
    static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                  "mix() takes scalars; use mix_bytes for aggregates");
    if constexpr (std::is_floating_point_v<T>) {
      const double d = static_cast<double>(v);
      return mix_bytes(&d, sizeof d);
    } else {
      const auto u = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(v));
      return mix_bytes(&u, sizeof u);
    }
  }

  Hasher& mix(const char* s) {
    while (*s != '\0') mix_bytes(s++, 1);
    return mix_bytes("\0", 1);  // terminator: "ab","c" != "a","bc"
  }

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

/// Process-wide, thread-safe memoization of scalar measurement points.
/// Within one invocation a (bench id, params, size/mode) point is computed
/// once; every later request — the google-benchmark pass, the report
/// table, another curve sharing the point — is a lookup.  Values are
/// deterministic simulation outputs, so which thread computes a point
/// first cannot change what is stored.
class ResultCache {
 public:
  static ResultCache& instance();

  /// Returns the cached value for `key`, computing it with `compute` on a
  /// miss.  The lock is dropped during compute, so concurrent misses on
  /// *different* keys proceed in parallel; concurrent misses on the same
  /// key may compute twice and the first store wins (identical values).
  double memoize(std::uint64_t key, const std::function<double()>& compute)
      SPAM_EXCLUDES(mu_);

  bool lookup(std::uint64_t key, double* out) const SPAM_EXCLUDES(mu_);

  /// Forgets everything (bench_sweep_perf uses this to time cold sweeps).
  void clear() SPAM_EXCLUDES(mu_);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const SPAM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::unordered_map<std::uint64_t, double> map_ SPAM_GUARDED_BY(mu_);
  Stats stats_ SPAM_GUARDED_BY(mu_);
};

}  // namespace spam::driver
