#include "driver/pool.hpp"

#include <utility>

namespace spam::driver {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(idle_mu_);
    while (queued_ != 0 || inflight_ != 0) done_cv_.wait(idle_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(Job job) {
  unsigned target;
  {
    MutexLock lk(idle_mu_);
    target = static_cast<unsigned>(next_worker_++ % workers_.size());
    ++queued_;
  }
  {
    Worker& w = *workers_[target];
    MutexLock lk(w.mu);
    w.jobs.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr err;
  {
    MutexLock lk(idle_mu_);
    while (queued_ != 0 || inflight_ != 0) done_cv_.wait(idle_mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

std::uint64_t ThreadPool::jobs_executed() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) {
    MutexLock lk(w->mu);
    n += w->executed;
  }
  return n;
}

unsigned ThreadPool::workers_used() const {
  unsigned n = 0;
  for (const auto& w : workers_) {
    MutexLock lk(w->mu);
    if (w->executed > 0) ++n;
  }
  return n;
}

bool ThreadPool::try_pop(unsigned w, bool steal, Job* out) {
  Worker& worker = *workers_[w];
  MutexLock lk(worker.mu);
  if (worker.jobs.empty()) return false;
  if (steal) {  // oldest job: most likely to be long and far from any cache
    *out = std::move(worker.jobs.front());
    worker.jobs.pop_front();
  } else {  // own deque: freshest job, LIFO for locality
    *out = std::move(worker.jobs.back());
    worker.jobs.pop_back();
  }
  return true;
}

void ThreadPool::worker_loop(unsigned me) {
  const unsigned n = static_cast<unsigned>(workers_.size());
  for (;;) {
    Job job;
    bool got = try_pop(me, /*steal=*/false, &job);
    for (unsigned k = 1; !got && k < n; ++k) {
      got = try_pop((me + k) % n, /*steal=*/true, &job);
    }
    if (!got) {
      MutexLock lk(idle_mu_);
      // queued_ may have raced ahead of the deques we just inspected;
      // re-loop whenever anything is claimed queued.
      if (queued_ > 0) continue;
      if (stopping_) return;
      while (!stopping_ && queued_ == 0) work_cv_.wait(idle_mu_);
      continue;
    }

    {
      MutexLock lk(idle_mu_);
      --queued_;
      ++inflight_;
    }
    try {
      job();
    } catch (...) {
      MutexLock lk(idle_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      Worker& w = *workers_[me];
      MutexLock lk(w.mu);
      ++w.executed;
    }
    bool idle;
    {
      MutexLock lk(idle_mu_);
      --inflight_;
      idle = queued_ == 0 && inflight_ == 0;
    }
    if (idle) done_cv_.notify_all();
  }
}

}  // namespace spam::driver
