// ThreadPool: a work-stealing pool of host threads for running independent
// simulations side by side.
//
// The simulator itself stays strictly single-threaded — one World, one
// engine, one host thread.  What *is* parallel about the paper's results is
// the sweep around the simulations: every table/figure is dozens of
// shared-nothing point measurements.  This pool runs those points across
// host cores.
//
// Design: one deque per worker.  A worker services its own deque LIFO (the
// freshest job's Worlds and pools are hot in cache) and steals FIFO from
// the other workers when it runs dry, so long jobs submitted early migrate
// to idle threads instead of serializing behind their home worker.  Deques
// are mutex-guarded rather than lock-free: sweep jobs are whole-simulation
// coarse (micro- to milliseconds), so queue overhead is noise and the
// simple locking is trivially clean under ThreadSanitizer.
//
// Every mutex-protected member carries a Clang thread-safety annotation
// (driver/annotations.hpp); the `thread-safety` preset builds this file
// with -Werror=thread-safety so a lock-discipline slip is a compile error,
// not a review comment.
//
// Exceptions: a job that throws does not kill the worker.  The first
// escaped exception (in completion order) is captured and rethrown from
// wait_idle() — SweepRunner layers deterministic *by-index* selection on
// top of this; use it when rethrow order matters.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "driver/annotations.hpp"

namespace spam::driver {

class ThreadPool {
 public:
  using Job = std::function<void()>;

  /// Starts `threads` workers (0 means hardware_concurrency, min 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Waits for every submitted job to finish, then joins the workers.
  /// Unlike wait_idle(), a pending captured exception is swallowed here
  /// (destructors must not throw) — call wait_idle() first if you care.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a job.  Round-robins across worker deques; callable from any
  /// thread, including from inside a running job.
  void submit(Job job) SPAM_EXCLUDES(idle_mu_);

  /// Blocks until all submitted jobs have finished.  If any job threw, the
  /// first captured exception is rethrown (and cleared).
  void wait_idle() SPAM_EXCLUDES(idle_mu_);

  /// Jobs executed since construction (for tests and perf counters).
  std::uint64_t jobs_executed() const;

  /// How many distinct workers have executed at least one job (tests use
  /// this to observe stealing; racy reads are fine for that purpose).
  unsigned workers_used() const;

 private:
  struct Worker {
    Mutex mu;
    std::deque<Job> jobs SPAM_GUARDED_BY(mu);
    std::uint64_t executed SPAM_GUARDED_BY(mu) = 0;
  };

  void worker_loop(unsigned me) SPAM_EXCLUDES(idle_mu_);
  bool try_pop(unsigned w, bool steal, Job* out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Idle/wake machinery: queued_ counts jobs sitting in deques, inflight_
  // counts jobs currently executing.  Both are guarded by idle_mu_ so the
  // "all done" condition is race-free.
  mutable Mutex idle_mu_;
  std::condition_variable_any work_cv_;  // workers wait here for jobs
  std::condition_variable_any done_cv_;  // wait_idle() waits here
  std::size_t queued_ SPAM_GUARDED_BY(idle_mu_) = 0;
  std::size_t inflight_ SPAM_GUARDED_BY(idle_mu_) = 0;
  std::size_t next_worker_ SPAM_GUARDED_BY(idle_mu_) = 0;  // round-robin
  bool stopping_ SPAM_GUARDED_BY(idle_mu_) = false;
  std::exception_ptr first_error_ SPAM_GUARDED_BY(idle_mu_);
};

}  // namespace spam::driver
