// Clang -Wthread-safety capability annotations for the driver layer.
//
// The driver is the only part of the repo that runs real host threads, so
// it is the only part where "which lock protects this member" is a
// question worth making the compiler answer.  Under Clang these macros
// expand to the thread-safety attributes and the `thread-safety` CMake
// preset builds src/driver with -Werror=thread-safety: an unguarded read
// of a SPAM_GUARDED_BY member is a build break, not a review comment.
// Under GCC (which has no such analysis) they expand to nothing and the
// code is unchanged.
//
// libstdc++'s std::mutex carries no capability attributes, so the
// analysis cannot see through it.  Mutex below is the standard wrapper
// from the Clang thread-safety docs: an annotated std::mutex, plus the
// scoped MutexLock guard.  Condition variables use
// std::condition_variable_any waiting on Mutex directly; the analysis
// does not model the wait's unlock/relock (same blind spot as
// std::condition_variable with unique_lock), which is safe — the lock is
// held at entry and exit of wait().
//
// Policy (docs/static-analysis.md): every mutable member of a type
// touched by more than one thread is either SPAM_GUARDED_BY a Mutex,
// atomic, or documented thread-confined (the per-thread event-core state:
// InlineAction::heap_fallbacks_, PayloadPool::instance(), Trace's
// mask/sink are all thread_local by construction and audited under the
// lint's fiber-tls rule instead).
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define SPAM_TS_ATTR(x) __attribute__((x))
#else
#define SPAM_TS_ATTR(x)  // no-op outside Clang
#endif

#define SPAM_CAPABILITY(x) SPAM_TS_ATTR(capability(x))
#define SPAM_SCOPED_CAPABILITY SPAM_TS_ATTR(scoped_lockable)
#define SPAM_GUARDED_BY(x) SPAM_TS_ATTR(guarded_by(x))
#define SPAM_PT_GUARDED_BY(x) SPAM_TS_ATTR(pt_guarded_by(x))
#define SPAM_REQUIRES(...) SPAM_TS_ATTR(requires_capability(__VA_ARGS__))
#define SPAM_EXCLUDES(...) SPAM_TS_ATTR(locks_excluded(__VA_ARGS__))
#define SPAM_ACQUIRE(...) SPAM_TS_ATTR(acquire_capability(__VA_ARGS__))
#define SPAM_RELEASE(...) SPAM_TS_ATTR(release_capability(__VA_ARGS__))
#define SPAM_TRY_ACQUIRE(...) SPAM_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define SPAM_NO_THREAD_SAFETY_ANALYSIS SPAM_TS_ATTR(no_thread_safety_analysis)

namespace spam::driver {

/// std::mutex with capability annotations the analysis can track.
class SPAM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SPAM_ACQUIRE() { mu_.lock(); }
  void unlock() SPAM_RELEASE() { mu_.unlock(); }
  bool try_lock() SPAM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock for Mutex (std::lock_guard cannot carry the annotations).
class SPAM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SPAM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SPAM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace spam::driver
