#include "driver/sweep.hpp"

#include <limits>
#include <thread>

namespace spam::driver {

SweepRunner::SweepRunner(int jobs) {
  if (jobs <= 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    jobs = hc == 0 ? 1 : static_cast<int>(hc);
  }
  jobs_ = jobs;
}

void SweepRunner::run_indexed(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // The pool is per-run: sweeps are coarse enough that thread start-up is
  // noise, and tearing the workers down keeps every thread-local arena
  // (payload pool, counters) bounded by the sweep that created it.
  ThreadPool pool(static_cast<unsigned>(jobs_));

  Mutex err_mu;
  std::size_t err_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr err;

  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&, i] {
      try {
        fn(i);
      } catch (...) {
        MutexLock lk(err_mu);
        if (i < err_index) {  // deterministic: lowest index wins
          err_index = i;
          err = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (err) std::rethrow_exception(err);
}

ResultCache& ResultCache::instance() {
  static ResultCache cache;
  return cache;
}

double ResultCache::memoize(std::uint64_t key,
                            const std::function<double()>& compute) {
  {
    MutexLock lk(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
  }
  const double v = compute();
  MutexLock lk(mu_);
  return map_.emplace(key, v).first->second;  // first store wins
}

bool ResultCache::lookup(std::uint64_t key, double* out) const {
  MutexLock lk(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  *out = it->second;
  return true;
}

void ResultCache::clear() {
  MutexLock lk(mu_);
  map_.clear();
  stats_ = Stats{};
}

ResultCache::Stats ResultCache::stats() const {
  MutexLock lk(mu_);
  return stats_;
}

}  // namespace spam::driver
