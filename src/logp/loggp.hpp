// LogGP-style machine model for the paper's comparison machines (Table 4):
// TMC CM-5, Meiko CS-2, and the U-Net/ATM Sparc cluster.
//
// Each endpoint sends typed messages with the classic parameters: sender
// overhead o_s (charged to the sending fiber), one-way latency L, a
// per-message gap g and per-byte gap G (bandwidth) serializing the sender's
// network port, and receiver overhead o_r.  Receiver overhead accrues as a
// debt that the receiving fiber pays at its next poll, so deposits never
// require the target to be actively polling (keeps the model deadlock-free;
// see DESIGN.md).
//
// Delivery is reliable and in order per sender — these machines' networks
// were lossless from the messaging layer's point of view.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/world.hpp"

namespace spam::logp {

struct LogGpParams {
  std::string name = "generic";
  /// Per-message sender overhead (us).
  double o_send_us = 3.0;
  /// Per-message receiver overhead (us), paid lazily at the next poll.
  double o_recv_us = 3.0;
  /// One-way network latency (us).
  double latency_us = 3.0;
  /// Minimum inter-message gap at one port (us).
  double gap_us = 1.0;
  /// Per-byte gap, i.e. 1/bandwidth (us per byte).
  double gap_per_byte_us = 0.1;
  /// Relative computation slowdown vs. the SP Power2 node (1.0 = SP).
  double cpu_scale = 1.0;
  /// Cost of one poll call (us).
  double poll_us = 0.5;

  // Presets from paper Table 4.  "Msg Overhead" there is the total software
  // overhead per message; we split it evenly between sender and receiver,
  // and back out L from round-trip = 2*(o_s + L + o_r).

  /// TMC CM-5: 33 MHz Sparc-2 nodes, overhead 3 us, round-trip 12 us,
  /// 10 MB/s per-node bandwidth.
  /// CM-5 per-message gap g ~ 4 us (the NI injection rate dominates
  /// fine-grain throughput even though overhead is low).
  static LogGpParams cm5() {
    return {"CM-5", 1.3, 1.3, 0.7, 4.0, 0.1, 5.0, 0.4};
  }
  /// Meiko CS-2: 40 MHz SuperSparc nodes, overhead 11 us, round-trip 25 us,
  /// 39 MB/s.
  static LogGpParams meiko_cs2() {
    return {"CS-2", 5.5, 5.5, 1.5, 2.5, 1.0 / 39.0, 3.0, 0.4};
  }
  /// U-Net/ATM cluster: 50/60 MHz Sparc-20s over ATM, overhead 3 us,
  /// round-trip 66 us, 14 MB/s.
  static LogGpParams unet_atm() {
    return {"U-Net/ATM", 1.5, 1.5, 27.5, 6.0, 1.0 / 14.0, 2.5, 0.4};
  }
};

/// A message as seen by the receiver's dispatcher.
struct LogGpMsg {
  int src = -1;
  std::uint32_t kind = 0;   // application-defined dispatch code
  std::uint64_t h[4] = {0, 0, 0, 0};
  std::vector<std::byte> data;
};

class LogGpMachine;

class LogGpEndpoint {
 public:
  using Handler = std::function<void(const LogGpMsg&)>;

  LogGpEndpoint(sim::NodeCtx& ctx, LogGpMachine& machine, int rank);

  int rank() const { return rank_; }
  const LogGpParams& params() const;

  /// Sends a message: charges o_s to the caller, serializes on this port's
  /// gap clocks, delivers (and runs the peer's dispatcher) after L.
  void send(int dst, LogGpMsg msg);

  /// Installs the dispatcher invoked for each arriving message.  Arriving
  /// messages are queued and dispatched during the *receiver's* poll().
  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Drains queued arrivals, paying the accumulated receiver overhead.
  void poll();

  // --- Remote-memory operations ------------------------------------------
  // Serviced at event level on the target (its CPU cost accrues as debt),
  // so they complete even while the target computes — the LogGP analogue
  // of the DMA/coprocessor service on these machines.  Completion (ack or
  // data landed) decrements outstanding().

  void put_bytes(int dst, void* dst_addr, const void* src, std::size_t len);
  void get_bytes(int dst, const void* src_addr, void* dst_addr,
                 std::size_t len);
  int outstanding() const { return outstanding_; }

  /// Charges computation time scaled by the machine's cpu factor.
  void compute_us(double us);

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t bytes_sent = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class LogGpMachine;
  void enqueue_arrival(LogGpMsg msg) { arrivals_.push_back(std::move(msg)); }
  void add_debt(double us) { recv_debt_us_ += us; }
  /// Reserves this port for a message of `bytes`, starting no earlier than
  /// `earliest`; returns the transmission-complete time.  Event-safe.
  sim::Time reserve_port(sim::Time earliest, std::size_t bytes);

  sim::NodeCtx& ctx_;
  LogGpMachine& machine_;
  int rank_;
  Handler handler_;
  std::deque<LogGpMsg> arrivals_;
  double recv_debt_us_ = 0.0;
  sim::Time port_free_ = 0;
  int outstanding_ = 0;
  Stats stats_;
};

class LogGpMachine {
 public:
  LogGpMachine(sim::World& world, LogGpParams params)
      : world_(world), params_(params) {
    endpoints_.reserve(world.size());
    for (int n = 0; n < world.size(); ++n) {
      endpoints_.push_back(
          std::make_unique<LogGpEndpoint>(world.node(n), *this, n));
    }
  }

  LogGpEndpoint& ep(int node) { return *endpoints_.at(node); }
  int size() const { return static_cast<int>(endpoints_.size()); }
  const LogGpParams& params() const { return params_; }
  sim::World& world() { return world_; }

 private:
  friend class LogGpEndpoint;
  sim::World& world_;
  LogGpParams params_;
  std::vector<std::unique_ptr<LogGpEndpoint>> endpoints_;
};

}  // namespace spam::logp
