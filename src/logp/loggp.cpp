#include "logp/loggp.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace spam::logp {

LogGpEndpoint::LogGpEndpoint(sim::NodeCtx& ctx, LogGpMachine& machine,
                             int rank)
    : ctx_(ctx), machine_(machine), rank_(rank) {}

const LogGpParams& LogGpEndpoint::params() const { return machine_.params(); }

sim::Time LogGpEndpoint::reserve_port(sim::Time earliest, std::size_t bytes) {
  // LogGP semantics: this message is on the wire after its serialization
  // time (bytes * G); the per-message gap g only gates when the port can
  // accept the *next* message — it is not added to this message's latency.
  const LogGpParams& p = machine_.params();
  const sim::Time start = std::max(earliest, port_free_);
  const sim::Time ser = std::max<sim::Time>(
      1, sim::usec(p.gap_per_byte_us * static_cast<double>(bytes)));
  port_free_ = start + std::max(sim::usec(p.gap_us), ser);
  return start + ser;
}

void LogGpEndpoint::send(int dst, LogGpMsg msg) {
  const LogGpParams& p = machine_.params();
  msg.src = rank_;
  ctx_.elapse(sim::usec(p.o_send_us));
  ++stats_.sent;
  stats_.bytes_sent += msg.data.size();

  const sim::Time tx_done =
      reserve_port(ctx_.now(), msg.data.size() + 16 /*header*/);
  LogGpEndpoint& peer = machine_.ep(dst);
  // The message is visible o_r after wire arrival: receiver overhead sits
  // on the latency path, and its CPU cost accrues as debt.
  ctx_.engine().at(tx_done + sim::usec(p.latency_us + p.o_recv_us),
                   [&peer, m = std::move(msg), o = p.o_recv_us]() mutable {
                     peer.add_debt(o);
                     ++peer.stats_.received;
                     peer.enqueue_arrival(std::move(m));
                   });
}

void LogGpEndpoint::poll() {
  const LogGpParams& p = machine_.params();
  // recv_debt_us_ and arrivals_ are mutated by delivery events: settle so
  // every event up to this node's virtual instant has landed before we
  // read them, exactly as the per-call path would have seen.
  ctx_.settle();
  ctx_.elapse(sim::usec(p.poll_us + recv_debt_us_));
  recv_debt_us_ = 0.0;
  while (!arrivals_.empty()) {
    LogGpMsg m = std::move(arrivals_.front());
    arrivals_.pop_front();
    if (handler_) handler_(m);
  }
}

void LogGpEndpoint::compute_us(double us) {
  // Pure compute: defer into the node's charge ledger.
  ctx_.charge(sim::usec(us * machine_.params().cpu_scale));
}

void LogGpEndpoint::put_bytes(int dst, void* dst_addr, const void* src,
                              std::size_t len) {
  const LogGpParams& p = machine_.params();
  ctx_.elapse(sim::usec(p.o_send_us));
  ++stats_.sent;
  stats_.bytes_sent += len;
  ++outstanding_;

  // Snapshot the source so the caller may reuse it immediately.
  auto data = std::make_shared<std::vector<std::byte>>(len);
  if (len > 0) std::memcpy(data->data(), src, len);

  const sim::Time tx_done = reserve_port(ctx_.now(), len + 16);
  LogGpEndpoint& peer = machine_.ep(dst);
  sim::Engine& eng = ctx_.engine();
  eng.at(tx_done + sim::usec(p.latency_us + p.o_recv_us),
         [this, &peer, dst_addr, data, &eng, L = p.latency_us,
          o = p.o_recv_us] {
    if (!data->empty()) std::memcpy(dst_addr, data->data(), data->size());
    peer.add_debt(o);
    ++peer.stats_.received;
    // Ack rides back through the peer's port (header-sized); handling it
    // costs the initiator a receive overhead, paid at its next poll.
    const sim::Time ack_done = peer.reserve_port(eng.now(), 16);
    eng.at(ack_done + sim::usec(L + o), [this, o] {
      assert(outstanding_ > 0);
      --outstanding_;
      add_debt(o);
    });
  });
}

void LogGpEndpoint::get_bytes(int dst, const void* src_addr, void* dst_addr,
                              std::size_t len) {
  const LogGpParams& p = machine_.params();
  ctx_.elapse(sim::usec(p.o_send_us));
  ++stats_.sent;
  ++outstanding_;

  LogGpEndpoint& peer = machine_.ep(dst);
  sim::Engine& eng = ctx_.engine();
  const sim::Time tx_done = reserve_port(ctx_.now(), 16);
  eng.at(tx_done + sim::usec(p.latency_us + p.o_recv_us),
         [this, &peer, src_addr, dst_addr, len, &eng, L = p.latency_us,
          o = p.o_recv_us] {
           peer.add_debt(o);
           ++peer.stats_.received;
           // Data reply serializes on the peer's outgoing port.
           auto data = std::make_shared<std::vector<std::byte>>(len);
           if (len > 0) std::memcpy(data->data(), src_addr, len);
           const sim::Time reply_done = peer.reserve_port(eng.now(), len + 16);
           eng.at(reply_done + sim::usec(L + o), [this, dst_addr, data, o] {
             if (!data->empty()) {
               std::memcpy(dst_addr, data->data(), data->size());
             }
             assert(outstanding_ > 0);
             --outstanding_;
             add_debt(o);
           });
         });
}

}  // namespace spam::logp
