// Split-C over MPL — the baseline port the paper compares against.
//
// Every remote-memory operation becomes an MPL message to a service loop on
// the target (plus a reply/ack message back), which is exactly why the
// paper finds fine-grained Split-C over MPL slow: each word-sized put pays
// two full MPL message overheads.  Bulk operations ship header+payload in
// one message, split into bounded pieces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mpl/mpl.hpp"
#include "splitc/transport.hpp"

namespace spam::splitc {

class MplBackend final : public Transport {
 public:
  explicit MplBackend(mpl::MplEndpoint& ep, int world_size);

  int rank() const override { return ep_.rank(); }
  int size() const override { return world_size_; }
  void put_small(int dst, void* dst_addr, std::uint64_t bits,
                 int len) override;
  void get_small(int dst, const void* src_addr, void* local_addr,
                 int len) override;
  void bulk_put(int dst, void* dst_addr, const void* src,
                std::size_t len) override;
  void bulk_get(int dst, const void* src_addr, void* dst_addr,
                std::size_t len) override;
  int outstanding() const override { return outstanding_; }
  void poll() override;

  /// Largest payload carried by one service message; bigger bulk ops are
  /// split into pieces of this size.
  static constexpr std::size_t kMaxPiece = 64 * 1024;

 private:
  enum class Op : std::uint32_t {
    kPutSmall,
    kGetSmall,
    kGetSmallReply,
    kBulkPut,
    kBulkGet,
    kBulkGetReply,
    kAck,
  };
  struct Header {
    Op op;
    std::uint32_t len;        // scalar length or payload bytes
    std::uint32_t origin;     // sender rank (for replies/acks)
    std::uint32_t pad = 0;
    std::uint64_t addr;       // target address of the operation
    std::uint64_t reply_addr; // local address for get replies
    std::uint64_t bits;       // scalar payload
  };
  static constexpr int kSvcTag = 990001;

  void send_svc(int dst, const Header& h, const void* payload,
                std::size_t payload_len);
  void repost_service();
  void process(const std::byte* buf, std::size_t len);

  mpl::MplEndpoint& ep_;
  int world_size_;
  int outstanding_ = 0;
  int svc_handle_ = -1;
  std::vector<std::byte> svc_buf_;
  std::vector<std::byte> scratch_;
};

}  // namespace spam::splitc
