// Split-C over a LogGP machine model — used to run the paper's Split-C
// benchmarks "on" the CM-5, Meiko CS-2, and U-Net/ATM cluster of Table 4.
#pragma once

#include <cstddef>
#include <cstdint>

#include "logp/loggp.hpp"
#include "splitc/transport.hpp"

namespace spam::splitc {

class LogGpBackend final : public Transport {
 public:
  LogGpBackend(logp::LogGpEndpoint& ep, int world_size)
      : ep_(ep), world_size_(world_size) {}

  int rank() const override { return ep_.rank(); }
  int size() const override { return world_size_; }

  void put_small(int dst, void* dst_addr, std::uint64_t bits,
                 int len) override {
    ep_.put_bytes(dst, dst_addr, &bits, static_cast<std::size_t>(len));
  }
  void get_small(int dst, const void* src_addr, void* local_addr,
                 int len) override {
    ep_.get_bytes(dst, src_addr, local_addr, static_cast<std::size_t>(len));
  }
  void bulk_put(int dst, void* dst_addr, const void* src,
                std::size_t len) override {
    ep_.put_bytes(dst, dst_addr, src, len);
  }
  void bulk_get(int dst, const void* src_addr, void* dst_addr,
                std::size_t len) override {
    ep_.get_bytes(dst, src_addr, dst_addr, len);
  }
  int outstanding() const override { return ep_.outstanding(); }
  void poll() override { ep_.poll(); }
  double cpu_scale() const override { return ep_.params().cpu_scale; }

  logp::LogGpEndpoint& endpoint() { return ep_; }

 private:
  logp::LogGpEndpoint& ep_;
  int world_size_;
};

}  // namespace spam::splitc
