// Split-C over SP Active Messages — the paper's Split-C port.
//
// Scalar puts/gets map to am_request_4 / am_reply_4 (addresses and values
// packed into the four 32-bit argument words); bulk operations map to
// am_store_async / am_get.  All backends must be constructed in the same
// order on every node so handler indices agree across endpoints.
#pragma once

#include <cstddef>
#include <cstdint>

#include "am/endpoint.hpp"
#include "splitc/transport.hpp"

namespace spam::splitc {

class AmBackend final : public Transport {
 public:
  explicit AmBackend(am::Endpoint& ep);

  int rank() const override { return ep_.rank(); }
  int size() const override;
  void put_small(int dst, void* dst_addr, std::uint64_t bits,
                 int len) override;
  void get_small(int dst, const void* src_addr, void* local_addr,
                 int len) override;
  void bulk_put(int dst, void* dst_addr, const void* src,
                std::size_t len) override;
  void bulk_get(int dst, const void* src_addr, void* dst_addr,
                std::size_t len) override;
  int outstanding() const override { return outstanding_; }
  void poll() override { ep_.poll(); }

  am::Endpoint& endpoint() { return ep_; }

 private:
  am::Endpoint& ep_;
  int outstanding_ = 0;
  int h_put_ = 0;       // request: scalar put (len in arg packing)
  int h_put_ack_ = 0;   // reply: put acknowledged
  int h_get_ = 0;       // request: scalar get
  int h_get_reply_ = 0; // reply: scalar get data
};

}  // namespace spam::splitc
