// Split-C runtime: a split-phase global-address-space programming layer,
// as ported over SP AM (and MPL, and the LogGP machines) in the paper.
//
// Programs use global pointers (gptr<T> = {proc, addr}), split-phase put /
// get with sync(), one-way store with all_store_sync(), bulk transfers,
// barriers, and reductions.  Computation is *executed for real* but charged
// to virtual time through the CpuCost model, scaled per machine, so the
// paper's cpu/net phase split is measurable.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <type_traits>
#include <vector>

#include "sim/world.hpp"
#include "splitc/transport.hpp"

namespace spam::splitc {

/// Global pointer: a (processor, local address) pair.
template <typename T>
struct gptr {
  int proc = -1;
  T* addr = nullptr;

  gptr() = default;
  gptr(int p, T* a) : proc(p), addr(a) {}

  gptr operator+(std::ptrdiff_t n) const { return {proc, addr + n}; }
  bool operator==(const gptr&) const = default;
};

/// Per-operation computation costs on the reference SP node; multiplied by
/// the backend's cpu_scale() for the slower comparison machines.
struct CpuCost {
  double us_per_flop = 0.025;     // ~40 sustained Mflops on Power2
  double us_per_int_op = 0.010;
  double us_per_byte = 0.005;     // streaming memory traffic
};

class SplitCNet;

class Runtime {
 public:
  Runtime(sim::NodeCtx& ctx, Transport& transport, SplitCNet& net,
          CpuCost cost = {});

  int my_proc() const { return transport_.rank(); }
  int procs() const { return transport_.size(); }
  sim::NodeCtx& ctx() { return ctx_; }
  Transport& transport() { return transport_; }

  // --- Split-phase operations (complete at the next sync()) ---------------

  template <typename T>
  void put(gptr<T> dst, T value) {
    static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
    CommScope cs(*this);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(T));
    transport_.put_small(dst.proc, dst.addr, bits, sizeof(T));
  }

  template <typename T>
  void get(gptr<T> src, T* local) {
    static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
    CommScope cs(*this);
    transport_.get_small(src.proc, src.addr, local, sizeof(T));
  }

  /// Blocking global read (Split-C's implicit dereference of a gptr).
  template <typename T>
  T read(gptr<T> src) {
    T v{};
    get(src, &v);
    sync();
    return v;
  }

  /// Blocking global write.
  template <typename T>
  void write(gptr<T> dst, T value) {
    put(dst, value);
    sync();
  }

  template <typename T>
  void bulk_put(gptr<T> dst, const T* src, std::size_t count) {
    CommScope cs(*this);
    transport_.bulk_put(dst.proc, dst.addr, src, count * sizeof(T));
  }

  template <typename T>
  void bulk_get(T* local, gptr<T> src, std::size_t count) {
    CommScope cs(*this);
    transport_.bulk_get(src.proc, src.addr, local, count * sizeof(T));
  }

  /// Blocking bulk read/write conveniences.
  template <typename T>
  void bulk_read(T* local, gptr<T> src, std::size_t count) {
    bulk_get(local, src, count);
    sync();
  }
  template <typename T>
  void bulk_write(gptr<T> dst, const T* src, std::size_t count) {
    bulk_put(dst, src, count);
    sync();
  }

  /// One-way store (Split-C ":-"): same mechanics as bulk_put; globally
  /// synchronized with all_store_sync().
  template <typename T>
  void store(gptr<T> dst, const T* src, std::size_t count) {
    bulk_put(dst, src, count);
  }

  /// Waits for all locally issued split-phase operations.
  void sync();

  /// Global barrier (dissemination algorithm over scalar puts).
  void barrier();

  /// sync() + barrier(): all stores everywhere have completed.
  void all_store_sync() {
    sync();
    barrier();
  }

  // --- Collective helpers ---------------------------------------------------

  /// All-reduce of one u64 (sum); every node returns the total.
  std::uint64_t all_reduce_add(std::uint64_t local);
  /// All-reduce of one double (sum).
  double all_reduce_add(double local);
  /// All-reduce max of one u64.
  std::uint64_t all_reduce_max(std::uint64_t local);
  /// Broadcast one u64 from root.
  std::uint64_t bcast(std::uint64_t value, int root);

  // --- Pointer exchange -----------------------------------------------------

  /// Collectively shares this node's base pointer under `key`; after the
  /// internal barrier every node can fetch any peer's pointer.  Keys must
  /// be used in the same order on all nodes.
  void share_ptr(int key, void* ptr);
  void* peer_ptr(int key, int proc) const;

  template <typename T>
  gptr<T> peer_gptr(int key, int proc) const {
    return {proc, static_cast<T*>(peer_ptr(key, proc))};
  }

  // --- Computation charging -------------------------------------------------

  void charge_flops(std::uint64_t n) {
    charge_us(static_cast<double>(n) * cost_.us_per_flop);
  }
  void charge_int_ops(std::uint64_t n) {
    charge_us(static_cast<double>(n) * cost_.us_per_int_op);
  }
  void charge_mem_bytes(std::uint64_t n) {
    charge_us(static_cast<double>(n) * cost_.us_per_byte);
  }
  void charge_us(double us) {
    // Deferred: accumulates into the node's local clock and settles at
    // the next communication call (see NodeCtx::charge).
    ctx_.charge(sim::usec(us * transport_.cpu_scale()));
  }

  // --- Phase-time accounting (paper Figure 4 instrumentation) --------------

  /// Virtual time spent inside runtime communication calls since reset.
  sim::Time comm_time() const { return comm_ns_; }
  void reset_timers() { comm_ns_ = 0; }

  /// Remote-writable reduction slots (used by peers' collectives).
  std::uint64_t* redux_val_slot(int i) {
    return &redux_vals_[static_cast<std::size_t>(i)];
  }
  std::uint64_t* redux_gen_slot(int i) {
    return &redux_gens_[static_cast<std::size_t>(i)];
  }

 private:
  friend class SplitCNet;

  /// RAII bracket accumulating communication time (outermost scope only).
  class CommScope {
   public:
    explicit CommScope(Runtime& rt) : rt_(rt), outer_(rt.comm_depth_++ == 0) {
      if (outer_) t0_ = rt_.ctx_.now();
    }
    ~CommScope() {
      --rt_.comm_depth_;
      if (outer_) rt_.comm_ns_ += rt_.ctx_.now() - t0_;
    }

   private:
    Runtime& rt_;
    bool outer_;
    sim::Time t0_ = 0;
  };

  sim::NodeCtx& ctx_;
  Transport& transport_;
  SplitCNet& net_;
  CpuCost cost_;

  // Barrier state (written remotely by peers).
  std::vector<std::uint64_t> barrier_flags_;
  std::uint64_t barrier_gen_ = 0;

  // Reduction scratch (written remotely by peers).
  std::vector<std::uint64_t> redux_vals_;
  std::vector<std::uint64_t> redux_gens_;
  std::uint64_t redux_gen_ = 0;

  int comm_depth_ = 0;
  sim::Time comm_ns_ = 0;
};

/// Collective owner of one Runtime per node, plus the shared directories
/// the runtimes use for barriers/reductions/pointer exchange.
class SplitCNet {
 public:
  /// `transports[i]` is node i's backend; all must agree on size().
  SplitCNet(sim::World& world, std::vector<Transport*> transports,
            CpuCost cost = {});

  Runtime& rt(int node) { return *runtimes_.at(node); }
  int size() const { return static_cast<int>(runtimes_.size()); }

 private:
  friend class Runtime;
  std::vector<std::unique_ptr<Runtime>> runtimes_;
  std::map<int, std::vector<void*>> ptr_directory_;
};

}  // namespace spam::splitc
