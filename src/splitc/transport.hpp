// Backend abstraction for the Split-C runtime.
//
// Split-C's split-phase model needs only counted remote-memory operations:
// issue any number of puts/gets, then sync() until outstanding() drains.
// Three backends implement this: SP AM (the paper's port), MPL (the
// baseline port the paper compares against), and LogGP endpoints modelling
// the CM-5 / CS-2 / U-Net machines of Table 4.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spam::splitc {

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Split-phase scalar put: writes the low `len` bytes (1..8) of `bits`
  /// to `dst_addr` on node `dst`.  Completion counted in outstanding().
  virtual void put_small(int dst, void* dst_addr, std::uint64_t bits,
                         int len) = 0;

  /// Split-phase scalar get: fetches `len` bytes (1..8) from `src_addr` on
  /// `dst` into local `local_addr`.
  virtual void get_small(int dst, const void* src_addr, void* local_addr,
                         int len) = 0;

  /// Split-phase bulk transfers.
  virtual void bulk_put(int dst, void* dst_addr, const void* src,
                        std::size_t len) = 0;
  virtual void bulk_get(int dst, const void* src_addr, void* dst_addr,
                        std::size_t len) = 0;

  /// Operations issued and not yet completed.
  virtual int outstanding() const = 0;

  /// Makes communication progress (services incoming ops, acks, ...).
  virtual void poll() = 0;

  /// Relative computation slowdown of this machine vs. the SP (1.0 = SP).
  virtual double cpu_scale() const { return 1.0; }
};

}  // namespace spam::splitc
