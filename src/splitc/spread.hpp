// Split-C "spread" arrays: a block-distributed 1-D array with global
// indexing, the idiom the paper's Split-C benchmarks are written in
// (all_spread allocations).  Each processor owns one contiguous block;
// construction is collective and exchanges base pointers through the
// runtime's directory.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

#include "splitc/runtime.hpp"

namespace spam::splitc {

template <typename T>
class Spread {
 public:
  /// Collective: every processor calls this with the same `key` and
  /// `total`.  Storage is block-distributed: processor p owns global
  /// indices [p*block, min((p+1)*block, total)).
  Spread(Runtime& rt, int key, std::size_t total)
      : rt_(rt),
        total_(total),
        block_((total + static_cast<std::size_t>(rt.procs()) - 1) /
               static_cast<std::size_t>(rt.procs())) {
    local_.assign(local_size(), T{});
    rt_.share_ptr(key, local_.data());
    key_ = key;
  }

  std::size_t size() const { return total_; }
  std::size_t block() const { return block_; }

  /// Owner of global index i.
  int owner(std::size_t i) const {
    assert(i < total_);
    return static_cast<int>(i / block_);
  }

  /// Global pointer to element i (valid on any processor).
  gptr<T> at(std::size_t i) const {
    const int p = owner(i);
    T* base = static_cast<T*>(rt_.peer_ptr(key_, p));
    return {p, base + (i - static_cast<std::size_t>(p) * block_)};
  }

  /// This processor's slice.
  T* local() { return local_.data(); }
  const T* local() const { return local_.data(); }
  std::size_t local_begin() const {
    return static_cast<std::size_t>(rt_.my_proc()) * block_;
  }
  std::size_t local_size() const {
    const std::size_t lo = local_begin();
    return lo >= total_ ? 0 : std::min(block_, total_ - lo);
  }

  /// Blocking global element access.
  T read(std::size_t i) { return rt_.read(at(i)); }
  void write(std::size_t i, T v) { rt_.write(at(i), v); }

  /// Split-phase element access (completes at rt.sync()).
  void put(std::size_t i, T v) { rt_.put(at(i), v); }
  void get(std::size_t i, T* out) { rt_.get(at(i), out); }

  /// Bulk read of [i, i+count) into `out`; may span owners.
  void bulk_read(T* out, std::size_t i, std::size_t count) {
    while (count > 0) {
      const int p = owner(i);
      const std::size_t in_block =
          std::min(count, (static_cast<std::size_t>(p) + 1) * block_ - i);
      rt_.bulk_read(out, at(i), in_block);
      out += in_block;
      i += in_block;
      count -= in_block;
    }
  }

  /// Bulk write of [i, i+count) from `src`; may span owners.
  void bulk_write(std::size_t i, const T* src, std::size_t count) {
    while (count > 0) {
      const int p = owner(i);
      const std::size_t in_block =
          std::min(count, (static_cast<std::size_t>(p) + 1) * block_ - i);
      rt_.bulk_write(at(i), src, in_block);
      src += in_block;
      i += in_block;
      count -= in_block;
    }
  }

 private:
  Runtime& rt_;
  std::size_t total_;
  std::size_t block_;
  int key_ = 0;
  std::vector<T> local_;
};

}  // namespace spam::splitc
