// Turn-key Split-C world: builds the chosen machine (SP + AM, SP + MPL, or
// a LogGP machine), the per-node transports, and the Split-C runtimes, and
// runs a program on every node.  Used by tests, examples, and the Table 5 /
// Figure 4 benches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "am/net.hpp"
#include "logp/loggp.hpp"
#include "mpl/mpl.hpp"
#include "splitc/am_backend.hpp"
#include "splitc/loggp_backend.hpp"
#include "splitc/mpl_backend.hpp"
#include "splitc/runtime.hpp"
#include "sphw/machine.hpp"

namespace spam::splitc {

enum class Backend { kSpAm, kSpMpl, kLogGp };

struct SplitCConfig {
  int nodes = 8;
  Backend backend = Backend::kSpAm;
  std::uint64_t seed = 1;
  sphw::SpParams hw = sphw::SpParams::thin_node();
  am::AmParams am;
  mpl::MplParams mpl;
  logp::LogGpParams loggp;  // used when backend == kLogGp
  CpuCost cost;
};

class SplitCWorld {
 public:
  explicit SplitCWorld(SplitCConfig cfg)
      : cfg_(cfg), world_(cfg.nodes, cfg.seed) {
    switch (cfg_.backend) {
      case Backend::kSpAm:
        sp_ = std::make_unique<sphw::SpMachine>(world_, cfg_.hw);
        am_ = std::make_unique<am::AmNet>(*sp_, cfg_.am);
        for (int n = 0; n < cfg_.nodes; ++n) {
          backends_.push_back(std::make_unique<AmBackend>(am_->ep(n)));
        }
        break;
      case Backend::kSpMpl:
        sp_ = std::make_unique<sphw::SpMachine>(world_, cfg_.hw);
        mpl_ = std::make_unique<mpl::MplNet>(*sp_, cfg_.mpl);
        for (int n = 0; n < cfg_.nodes; ++n) {
          backends_.push_back(
              std::make_unique<MplBackend>(mpl_->ep(n), cfg_.nodes));
        }
        break;
      case Backend::kLogGp:
        // No SpMachine wires the engine knobs on this path; the LogGP
        // model still shares the fiber layer, so the local-clock knob
        // comes from hw like everywhere else.
        world_.engine().set_localclock(cfg_.hw.local_clock);
        logp_ = std::make_unique<logp::LogGpMachine>(world_, cfg_.loggp);
        for (int n = 0; n < cfg_.nodes; ++n) {
          backends_.push_back(
              std::make_unique<LogGpBackend>(logp_->ep(n), cfg_.nodes));
        }
        break;
    }
    std::vector<Transport*> raw;
    raw.reserve(backends_.size());
    for (auto& b : backends_) raw.push_back(b.get());
    net_ = std::make_unique<SplitCNet>(world_, raw, cfg_.cost);
  }

  sim::World& world() { return world_; }
  Runtime& rt(int node) { return net_->rt(node); }
  int size() const { return cfg_.nodes; }
  const SplitCConfig& config() const { return cfg_; }
  sphw::SpMachine* sp_machine() { return sp_.get(); }

  /// Spawns `program` on every node and runs the world to completion.
  void run(std::function<void(Runtime&)> program) {
    for (int n = 0; n < cfg_.nodes; ++n) {
      world_.spawn(n, [this, n, program](sim::NodeCtx&) {
        program(net_->rt(n));
      });
    }
    world_.run();
  }

 private:
  SplitCConfig cfg_;
  sim::World world_;
  std::unique_ptr<sphw::SpMachine> sp_;
  std::unique_ptr<am::AmNet> am_;
  std::unique_ptr<mpl::MplNet> mpl_;
  std::unique_ptr<logp::LogGpMachine> logp_;
  std::vector<std::unique_ptr<Transport>> backends_;
  std::unique_ptr<SplitCNet> net_;
};

}  // namespace spam::splitc
