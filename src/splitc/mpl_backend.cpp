#include "splitc/mpl_backend.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace spam::splitc {

MplBackend::MplBackend(mpl::MplEndpoint& ep, int world_size)
    : ep_(ep), world_size_(world_size) {
  svc_buf_.resize(sizeof(Header) + kMaxPiece);
  repost_service();
}

void MplBackend::repost_service() {
  svc_handle_ =
      ep_.mpc_recv(svc_buf_.data(), svc_buf_.size(), mpl::kAnySource, kSvcTag);
}

void MplBackend::send_svc(int dst, const Header& h, const void* payload,
                          std::size_t payload_len) {
  std::vector<std::byte> msg(sizeof(Header) + payload_len);
  Header stamped = h;
  stamped.origin = static_cast<std::uint32_t>(rank());
  std::memcpy(msg.data(), &stamped, sizeof(Header));
  if (payload_len > 0) {
    std::memcpy(msg.data() + sizeof(Header), payload, payload_len);
  }
  // mpc_wait polls, so service processing continues while the send drains;
  // the data is snapshotted in `msg`, making the op split-phase for the
  // caller even though the MPL send itself is synchronous.
  ep_.mpc_wait(ep_.mpc_send(msg.data(), msg.size(), dst, kSvcTag));
}

void MplBackend::put_small(int dst, void* dst_addr, std::uint64_t bits,
                           int len) {
  ++outstanding_;
  Header h{Op::kPutSmall, static_cast<std::uint32_t>(len), 0, 0,
           reinterpret_cast<std::uint64_t>(dst_addr), 0, bits};
  send_svc(dst, h, nullptr, 0);
}

void MplBackend::get_small(int dst, const void* src_addr, void* local_addr,
                           int len) {
  ++outstanding_;
  Header h{Op::kGetSmall, static_cast<std::uint32_t>(len), 0, 0,
           reinterpret_cast<std::uint64_t>(src_addr),
           reinterpret_cast<std::uint64_t>(local_addr), 0};
  send_svc(dst, h, nullptr, 0);
}

void MplBackend::bulk_put(int dst, void* dst_addr, const void* src,
                          std::size_t len) {
  const auto* p = static_cast<const std::byte*>(src);
  auto* d = static_cast<std::byte*>(dst_addr);
  std::size_t off = 0;
  do {
    const std::size_t piece = std::min(kMaxPiece, len - off);
    ++outstanding_;
    Header h{Op::kBulkPut, static_cast<std::uint32_t>(piece), 0, 0,
             reinterpret_cast<std::uint64_t>(d + off), 0, 0};
    send_svc(dst, h, p + off, piece);
    off += piece;
  } while (off < len);
}

void MplBackend::bulk_get(int dst, const void* src_addr, void* dst_addr,
                          std::size_t len) {
  const auto* s = static_cast<const std::byte*>(src_addr);
  auto* d = static_cast<std::byte*>(dst_addr);
  std::size_t off = 0;
  do {
    const std::size_t piece = std::min(kMaxPiece, len - off);
    ++outstanding_;
    Header h{Op::kBulkGet, static_cast<std::uint32_t>(piece), 0, 0,
             reinterpret_cast<std::uint64_t>(s + off),
             reinterpret_cast<std::uint64_t>(d + off), 0};
    send_svc(dst, h, nullptr, 0);
    off += piece;
  } while (off < len);
}

void MplBackend::process(const std::byte* buf, std::size_t len) {
  assert(len >= sizeof(Header));
  (void)len;
  Header h;
  std::memcpy(&h, buf, sizeof(Header));
  const std::byte* payload = buf + sizeof(Header);
  const int origin = static_cast<int>(h.origin);

  switch (h.op) {
    case Op::kPutSmall: {
      std::memcpy(reinterpret_cast<void*>(h.addr), &h.bits, h.len);
      Header ack{Op::kAck, 0, 0, 0, 0, 0, 0};
      send_svc(origin, ack, nullptr, 0);
      break;
    }
    case Op::kGetSmall: {
      std::uint64_t bits = 0;
      std::memcpy(&bits, reinterpret_cast<const void*>(h.addr), h.len);
      Header rep{Op::kGetSmallReply, h.len, 0, 0, h.reply_addr, 0, bits};
      send_svc(origin, rep, nullptr, 0);
      break;
    }
    case Op::kGetSmallReply: {
      std::memcpy(reinterpret_cast<void*>(h.addr), &h.bits, h.len);
      --outstanding_;
      break;
    }
    case Op::kBulkPut: {
      assert(len == sizeof(Header) + h.len);
      std::memcpy(reinterpret_cast<void*>(h.addr), payload, h.len);
      Header ack{Op::kAck, 0, 0, 0, 0, 0, 0};
      send_svc(origin, ack, nullptr, 0);
      break;
    }
    case Op::kBulkGet: {
      Header rep{Op::kBulkGetReply, h.len, 0, 0, h.reply_addr, 0, 0};
      send_svc(origin, rep, reinterpret_cast<const void*>(h.addr), h.len);
      break;
    }
    case Op::kBulkGetReply: {
      assert(len == sizeof(Header) + h.len);
      std::memcpy(reinterpret_cast<void*>(h.addr), payload, h.len);
      --outstanding_;
      break;
    }
    case Op::kAck:
      --outstanding_;
      break;
  }
}

void MplBackend::poll() {
  ep_.poll();
  std::size_t bytes = 0;
  while (ep_.mpc_test(svc_handle_, &bytes)) {
    // Copy out and repost before processing: processing may itself block in
    // sends and service further messages re-entrantly.
    std::vector<std::byte> msg(svc_buf_.begin(),
                               svc_buf_.begin() + static_cast<std::ptrdiff_t>(bytes));
    repost_service();
    process(msg.data(), msg.size());
  }
}

}  // namespace spam::splitc
