#include "splitc/am_backend.hpp"

#include <cassert>
#include <cstring>

namespace spam::splitc {

namespace {

// Linux user-space heap addresses fit in 47 bits, so the transfer length
// (1..8) travels in the pointer's top byte — the four 32-bit AM argument
// words then exactly fit an address plus a value.
constexpr int kLenShift = 56;

std::uint64_t pack_addr_len(const void* p, int len) {
  const auto a = reinterpret_cast<std::uint64_t>(p);
  assert((a >> kLenShift) == 0 && "address does not fit the packing scheme");
  assert(len >= 1 && len <= 8);
  return a | (static_cast<std::uint64_t>(len) << kLenShift);
}

void* unpack_addr(std::uint64_t v) {
  return reinterpret_cast<void*>(v & ((1ull << kLenShift) - 1));
}

int unpack_len(std::uint64_t v) { return static_cast<int>(v >> kLenShift); }

std::uint64_t words_to_u64(am::Word lo, am::Word hi) {
  return static_cast<std::uint64_t>(lo) |
         (static_cast<std::uint64_t>(hi) << 32);
}

void write_scalar(void* addr, std::uint64_t bits, int len) {
  std::memcpy(addr, &bits, static_cast<std::size_t>(len));
}

std::uint64_t read_scalar(const void* addr, int len) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, addr, static_cast<std::size_t>(len));
  return bits;
}

}  // namespace

AmBackend::AmBackend(am::Endpoint& ep) : ep_(ep) {
  h_put_ack_ = ep_.register_handler(
      [this](am::Endpoint&, am::Token, const am::Word*, int) {
        --outstanding_;
      });
  h_put_ = ep_.register_handler([this](am::Endpoint& e, am::Token t,
                                       const am::Word* a, int) {
    const std::uint64_t packed = words_to_u64(a[0], a[1]);
    const std::uint64_t bits = words_to_u64(a[2], a[3]);
    write_scalar(unpack_addr(packed), bits, unpack_len(packed));
    e.reply_1(t, h_put_ack_, 0);
  });
  h_get_reply_ = ep_.register_handler(
      [this](am::Endpoint&, am::Token, const am::Word* a, int) {
        const std::uint64_t bits = words_to_u64(a[0], a[1]);
        const std::uint64_t packed = words_to_u64(a[2], a[3]);
        write_scalar(unpack_addr(packed), bits, unpack_len(packed));
        --outstanding_;
      });
  h_get_ = ep_.register_handler([this](am::Endpoint& e, am::Token t,
                                       const am::Word* a, int) {
    const std::uint64_t src_packed = words_to_u64(a[0], a[1]);
    const std::uint64_t local_packed = words_to_u64(a[2], a[3]);
    const std::uint64_t bits =
        read_scalar(unpack_addr(src_packed), unpack_len(src_packed));
    e.reply_4(t, h_get_reply_, static_cast<am::Word>(bits),
              static_cast<am::Word>(bits >> 32),
              static_cast<am::Word>(local_packed),
              static_cast<am::Word>(local_packed >> 32));
  });
}

int AmBackend::size() const {
  return const_cast<am::Endpoint&>(ep_).ctx().world().size();
}

void AmBackend::put_small(int dst, void* dst_addr, std::uint64_t bits,
                          int len) {
  ++outstanding_;
  const std::uint64_t packed = pack_addr_len(dst_addr, len);
  ep_.request_4(dst, h_put_, static_cast<am::Word>(packed),
                static_cast<am::Word>(packed >> 32),
                static_cast<am::Word>(bits),
                static_cast<am::Word>(bits >> 32));
}

void AmBackend::get_small(int dst, const void* src_addr, void* local_addr,
                          int len) {
  ++outstanding_;
  const std::uint64_t src_packed = pack_addr_len(src_addr, len);
  const std::uint64_t local_packed = pack_addr_len(local_addr, len);
  ep_.request_4(dst, h_get_, static_cast<am::Word>(src_packed),
                static_cast<am::Word>(src_packed >> 32),
                static_cast<am::Word>(local_packed),
                static_cast<am::Word>(local_packed >> 32));
}

void AmBackend::bulk_put(int dst, void* dst_addr, const void* src,
                         std::size_t len) {
  ++outstanding_;
  ep_.store_async(dst, dst_addr, src, len, 0, 0, [this] { --outstanding_; });
}

void AmBackend::bulk_get(int dst, const void* src_addr, void* dst_addr,
                         std::size_t len) {
  ++outstanding_;
  ep_.get(dst, src_addr, dst_addr, len, 0, 0, [this] { --outstanding_; });
}

}  // namespace spam::splitc
