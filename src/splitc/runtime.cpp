#include "splitc/runtime.hpp"

#include <bit>

namespace spam::splitc {

namespace {

int ceil_log2(int n) {
  int r = 0;
  while ((1 << r) < n) ++r;
  return r;
}

}  // namespace

Runtime::Runtime(sim::NodeCtx& ctx, Transport& transport, SplitCNet& net,
                 CpuCost cost)
    : ctx_(ctx), transport_(transport), net_(net), cost_(cost) {
  const int rounds = std::max(1, ceil_log2(transport.size()));
  barrier_flags_.assign(static_cast<std::size_t>(rounds), 0);
  redux_vals_.assign(static_cast<std::size_t>(transport.size()) + 1, 0);
  redux_gens_.assign(static_cast<std::size_t>(transport.size()) + 1, 0);
}

void Runtime::sync() {
  CommScope cs(*this);
  // Interaction point: outstanding() and the flags below may be advanced
  // by engine events (LogGP backend), so materialize charge debt before
  // the first read.
  ctx_.settle();
  while (transport_.outstanding() > 0) transport_.poll();
}

void Runtime::barrier() {
  const int p = procs();
  if (p == 1) return;
  CommScope cs(*this);
  ctx_.settle();
  const std::uint64_t gen = ++barrier_gen_;
  const int rounds = ceil_log2(p);
  const int me = my_proc();
  for (int r = 0; r < rounds; ++r) {
    const int to = (me + (1 << r)) % p;
    Runtime& peer = *net_.runtimes_[static_cast<std::size_t>(to)];
    transport_.put_small(to, &peer.barrier_flags_[static_cast<std::size_t>(r)],
                         gen, 8);
    while (barrier_flags_[static_cast<std::size_t>(r)] < gen) {
      transport_.poll();
    }
  }
}

std::uint64_t Runtime::bcast(std::uint64_t value, int root) {
  const int p = procs();
  if (p == 1) return value;
  CommScope cs(*this);
  ctx_.settle();
  const std::uint64_t gen = ++redux_gen_;
  const auto slot = static_cast<std::size_t>(p);  // result slot
  if (my_proc() == root) {
    for (int i = 0; i < p; ++i) {
      if (i == root) {
        redux_vals_[slot] = value;
        redux_gens_[slot] = gen;
        continue;
      }
      Runtime& peer = *net_.runtimes_[static_cast<std::size_t>(i)];
      transport_.put_small(i, &peer.redux_vals_[slot], value, 8);
      transport_.put_small(i, &peer.redux_gens_[slot], gen, 8);
    }
  }
  while (redux_gens_[slot] < gen) transport_.poll();
  const std::uint64_t result = redux_vals_[slot];
  // The closing barrier keeps a fast peer's *next* collective from
  // overwriting the slots before everyone has read this round's result.
  barrier();
  return result;
}

namespace {
template <typename Combine>
std::uint64_t reduce_impl(Runtime& rt, SplitCNet& net, Transport& transport,
                          std::vector<std::uint64_t>& vals,
                          std::vector<std::uint64_t>& gens,
                          std::uint64_t& gen_counter, std::uint64_t bits,
                          Combine combine) {
  const int p = transport.size();
  if (p == 1) return bits;
  rt.ctx().settle();
  const std::uint64_t gen = ++gen_counter;
  const int me = transport.rank();
  constexpr int kRoot = 0;

  if (me == kRoot) {
    vals[0] = bits;
    gens[0] = gen;
    // Wait for every contribution, combine in rank order (deterministic),
    // then push the result to everyone.
    for (int i = 1; i < p; ++i) {
      while (gens[static_cast<std::size_t>(i)] < gen) transport.poll();
    }
    std::uint64_t acc = vals[0];
    for (int i = 1; i < p; ++i) {
      acc = combine(acc, vals[static_cast<std::size_t>(i)]);
    }
    return rt.bcast(acc, kRoot);
  }
  // Contributor: deposit value then generation marker (ordered delivery on
  // all backends makes the marker a valid ready flag).
  Runtime& root_rt = net.rt(kRoot);
  transport.put_small(kRoot, root_rt.redux_val_slot(me), bits, 8);
  transport.put_small(kRoot, root_rt.redux_gen_slot(me), gen, 8);
  return rt.bcast(0, kRoot);
}
}  // namespace

std::uint64_t Runtime::all_reduce_add(std::uint64_t local) {
  CommScope cs(*this);
  return reduce_impl(
      *this, net_, transport_, redux_vals_, redux_gens_, redux_gen_, local,
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

double Runtime::all_reduce_add(double local) {
  CommScope cs(*this);
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(local);
  const std::uint64_t r = reduce_impl(
      *this, net_, transport_, redux_vals_, redux_gens_, redux_gen_, bits,
      [](std::uint64_t a, std::uint64_t b) {
        return std::bit_cast<std::uint64_t>(std::bit_cast<double>(a) +
                                            std::bit_cast<double>(b));
      });
  return std::bit_cast<double>(r);
}

std::uint64_t Runtime::all_reduce_max(std::uint64_t local) {
  CommScope cs(*this);
  return reduce_impl(
      *this, net_, transport_, redux_vals_, redux_gens_, redux_gen_, local,
      [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; });
}

void Runtime::share_ptr(int key, void* ptr) {
  auto& dir = net_.ptr_directory_[key];
  if (dir.empty()) dir.assign(static_cast<std::size_t>(procs()), nullptr);
  dir[static_cast<std::size_t>(my_proc())] = ptr;
  barrier();
}

void* Runtime::peer_ptr(int key, int proc) const {
  const auto it = net_.ptr_directory_.find(key);
  assert(it != net_.ptr_directory_.end());
  return it->second.at(static_cast<std::size_t>(proc));
}

SplitCNet::SplitCNet(sim::World& world, std::vector<Transport*> transports,
                     CpuCost cost) {
  runtimes_.reserve(transports.size());
  for (std::size_t i = 0; i < transports.size(); ++i) {
    runtimes_.push_back(std::make_unique<Runtime>(
        world.node(static_cast<int>(i)), *transports[i], *this, cost));
  }
}

}  // namespace spam::splitc
