// SP Active Messages endpoint — the paper's primary contribution.
//
// Implements the Generic Active Messages 1.1 interface (am_request_1..4,
// am_reply_1..4, am_store, am_store_async, am_get, am_poll) directly over
// the simulated TB2 adapter, with the paper's flow-control design:
//
//  * reliable, ordered delivery on a lossless-but-droppable fabric;
//  * per-peer, per-channel (request/reply) sliding windows counted in
//    packets (72 request / 76 reply);
//  * bulk data split into 8064-byte chunks of 36 packets; all packets of a
//    chunk share one sequence number, are ordered by chunk index, and the
//    chunk is acknowledged as a unit, so the window slides chunk-wise and
//    chunk N departs only after the ack for chunk N-2 arrived;
//  * acks piggyback on any reverse traffic; explicit acks fire when a
//    quarter of the window is unacknowledged; wrong sequence numbers cause
//    a NACK and go-back-N retransmission from saved copies;
//  * a keep-alive probe (triggered by counting unsuccessful polls — there
//    are no timers) forces a NACK from the peer to recover lost tails.
//
// All public methods must be called from the owning node's fiber; handlers
// run inside am_poll() on that same fiber.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "am/params.hpp"
#include "sim/world.hpp"
#include "sphw/adapter.hpp"

namespace spam::am {

using Word = std::uint32_t;

/// Identifies a received request so the handler can reply to its origin.
struct Token {
  int src = -1;
};

class Endpoint {
 public:
  /// Handler for small requests/replies: receives the origin token and up
  /// to four 32-bit words.
  using MsgHandler = std::function<void(Endpoint&, Token, const Word* args, int nargs)>;
  /// Handler invoked after a bulk transfer lands: (base address, length,
  /// one word of out-of-band argument).
  using BulkHandler = std::function<void(Endpoint&, Token, void* addr, std::size_t len, Word arg)>;
  /// Sender-side completion for am_store_async / am_get.
  using CompletionFn = std::function<void()>;

  Endpoint(sim::NodeCtx& ctx, sphw::Tb2Adapter& adapter, AmParams params);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  int rank() const { return adapter_.node(); }
  const AmParams& params() const { return params_; }

  // --- Handler registration (index 0 is the reserved no-op handler) -------
  int register_handler(MsgHandler fn);
  int register_bulk_handler(BulkHandler fn);

  // --- GAM 1.1 interface ----------------------------------------------------
  /// am_request_M: sends an M-word request; polls the network once after
  /// the send (per the paper, every am_request checks the network).
  void request(int dst, int handler, const Word* args, int nargs);
  void request_1(int dst, int h, Word a0) { Word a[] = {a0}; request(dst, h, a, 1); }
  void request_2(int dst, int h, Word a0, Word a1) { Word a[] = {a0, a1}; request(dst, h, a, 2); }
  void request_3(int dst, int h, Word a0, Word a1, Word a2) { Word a[] = {a0, a1, a2}; request(dst, h, a, 3); }
  void request_4(int dst, int h, Word a0, Word a1, Word a2, Word a3) { Word a[] = {a0, a1, a2, a3}; request(dst, h, a, 4); }

  /// am_reply_M: sends an M-word reply to a request's origin; does not poll.
  void reply(Token token, int handler, const Word* args, int nargs);
  void reply_1(Token t, int h, Word a0) { Word a[] = {a0}; reply(t, h, a, 1); }
  void reply_2(Token t, int h, Word a0, Word a1) { Word a[] = {a0, a1}; reply(t, h, a, 2); }
  void reply_3(Token t, int h, Word a0, Word a1, Word a2) { Word a[] = {a0, a1, a2}; reply(t, h, a, 3); }
  void reply_4(Token t, int h, Word a0, Word a1, Word a2, Word a3) { Word a[] = {a0, a1, a2, a3}; reply(t, h, a, 4); }

  /// am_store: copies `len` bytes from local `src` to `dst_addr` on node
  /// `dst`, invoking bulk handler `handler(dst_addr, len, arg)` there after
  /// the transfer completes.  Blocks until the data is acknowledged.
  void store(int dst, void* dst_addr, const void* src, std::size_t len,
             int handler = 0, Word arg = 0);

  /// am_store_async: like store but returns once the operation is queued;
  /// packets drain during subsequent polls as the window opens, and
  /// `complete` runs on this node when the whole transfer is acknowledged.
  void store_async(int dst, void* dst_addr, const void* src, std::size_t len,
                   int handler = 0, Word arg = 0, CompletionFn complete = {});

  /// am_get: fetches `len` bytes from `src_addr` on node `dst` into local
  /// `dst_addr`; the local bulk handler `handler(dst_addr, len, arg)` runs
  /// when the data has fully arrived.  Non-blocking; use get_blocking for
  /// the synchronous benchmark flavor.
  void get(int dst, const void* src_addr, void* dst_addr, std::size_t len,
           int handler = 0, Word arg = 0, CompletionFn complete = {});

  /// Convenience: get + poll until the data has arrived.
  void get_blocking(int dst, const void* src_addr, void* dst_addr,
                    std::size_t len);

  /// am_poll: drains the receive FIFO (dispatching handlers), processes
  /// acks/nacks, advances pending bulk operations and retransmissions, and
  /// fires the keep-alive when warranted.
  void poll();

  /// Polls until `done()`; the standard blocking idiom.
  ///
  /// Contract: `done` must change only as a consequence of this endpoint's
  /// own polling work (handlers, acks, bulk completions) — true for every
  /// AM-level completion flag.  Under the network fast path the loop then
  /// merges runs of provably empty polls into one wait of identical total
  /// virtual time (see merge_empty_polls), so per-poll wake events
  /// disappear while every observable instant stays bit-identical.
  template <typename Pred>
  void poll_until(Pred&& done) {
    while (!done()) {
      merge_empty_polls();
      poll();
    }
  }

  /// Charges `us` of application computation.  In polling mode (default)
  /// the network is not serviced until the computation ends — the paper's
  /// operating point.  With AmParams::interrupt_driven, packet arrival
  /// interrupts the computation: each interrupt costs interrupt_latency_us
  /// and dispatches handlers immediately, extending the total elapsed time
  /// but bounding message response time.
  void compute(double us);

  /// Number of locally queued bulk operations not yet fully acknowledged.
  int outstanding_bulk_ops() const { return outstanding_ops_; }

  /// Introspection for tests: unacknowledged packets toward `dst` on
  /// `channel` (0 = request, 1 = reply).
  int packets_in_flight(int dst, int channel) const {
    return peers_[static_cast<std::size_t>(dst)].tx[channel].packets_in_flight;
  }

  struct Stats {
    std::uint64_t requests_sent = 0;
    std::uint64_t replies_sent = 0;
    std::uint64_t msgs_delivered = 0;
    std::uint64_t bulk_bytes_sent = 0;
    std::uint64_t chunks_sent = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t nacks_sent = 0;
    std::uint64_t probes_sent = 0;
    std::uint64_t retransmitted_chunks = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t out_of_seq_dropped = 0;
  };
  const Stats& stats() const { return stats_; }

  sim::NodeCtx& ctx() { return ctx_; }
  sphw::Tb2Adapter& adapter() { return adapter_; }

 private:
  static constexpr std::uint8_t kChanRequest = 0;
  static constexpr std::uint8_t kChanReply = 1;

  // Packet flag bits.
  static constexpr std::uint8_t kFlagControl = 0x01;
  static constexpr std::uint8_t kFlagOpLast = 0x02;
  static constexpr std::uint8_t kFlagSmall = 0x04;
  static constexpr std::uint8_t kFlagGetRequest = 0x08;

  // Control subtypes (in h[0] of control packets).
  static constexpr std::uint64_t kCtlAck = 1;
  static constexpr std::uint64_t kCtlNack = 2;
  static constexpr std::uint64_t kCtlProbe = 3;

  /// One queued bulk operation (store, or the data-return leg of a get).
  struct BulkOp {
    std::uint64_t id = 0;             // unique per endpoint, for blocking waits
    int dst = -1;
    std::uint8_t channel = kChanRequest;
    sphw::PayloadRef data;            // snapshot of the source region (pooled)
    std::uint64_t remote_base = 0;    // destination address on `dst`
    std::size_t sent = 0;             // bytes enqueued so far
    int handler = 0;                  // remote bulk handler
    Word arg = 0;
    std::uint32_t cookie = 0;         // get-return correlation id (0 = store)
    std::uint32_t last_chunk_seq = 0; // filled as chunks are assigned
    bool packets_emitted = false;     // true once any packet went out
    bool fully_enqueued = false;
    CompletionFn complete;            // local completion (may be empty)
  };

  /// Per-peer, per-channel sender state.
  struct TxChan {
    std::uint32_t next_seq = 0;   // next chunk sequence number to assign
    std::uint32_t acked_seq = 0;  // peer acknowledged all chunks < this
    int packets_in_flight = 0;
    struct SavedChunk {
      std::uint32_t seq;
      std::vector<sphw::Packet> packets;
    };
    std::deque<SavedChunk> retrans;      // unacked chunks, oldest first
    std::deque<BulkOp> ops;              // queued bulk operations
    struct PendingCompletion {
      std::uint32_t last_seq_plus1;      // fires when acked_seq reaches this
      CompletionFn fn;
    };
    std::deque<PendingCompletion> completions;
  };

  /// Per-peer, per-channel receiver state.
  struct RxChan {
    std::uint32_t expect_seq = 0;     // next chunk expected
    std::uint16_t expect_idx = 0;     // next packet index within that chunk
    int unacked_packets = 0;          // complete chunks not yet acked
    std::uint32_t last_nacked_seq = 0;
    bool nack_outstanding = false;
  };

  struct Peer {
    TxChan tx[2];
    RxChan rx[2];
  };

  Peer& peer(int node) { return peers_[static_cast<std::size_t>(node)]; }
  int window_for(std::uint8_t channel) const {
    return channel == kChanRequest ? params_.request_window_packets
                                   : params_.reply_window_packets;
  }
  std::size_t chunk_bytes() const {
    return static_cast<std::size_t>(params_.chunk_packets) *
           static_cast<std::size_t>(adapter_.params().packet_data_bytes);
  }

  // Send paths.
  void send_small(int dst, std::uint8_t channel, int handler, const Word* args,
                  int nargs, bool is_request);
  /// `doorbell_npackets`: see Tb2Adapter::host_enqueue (0 = caller
  /// doorbells later; N = this enqueue completes a batch of N).
  void enqueue_sequenced_packet(sphw::Packet pkt, TxChan& tx, bool save,
                                int doorbell_npackets);
  void send_control(int dst, std::uint8_t channel, std::uint64_t subtype);
  void stamp_acks(int dst, sphw::Packet& pkt);
  void wait_for_window(int dst, std::uint8_t channel, int packets_needed);
  void wait_for_fifo_space(int needed);

  // Fast path: when the adapter can bound the next packet's arrival and
  // bulk progress is provably frozen, advances the clock across the poll
  // quanta that would sample an empty FIFO (replicating the keep-alive
  // empty-poll accounting), merging their wake events into one.
  void merge_empty_polls();
  /// True while progress_bulk() cannot do anything at any instant before
  /// the next packet arrives: every queued chunk is blocked by the
  /// flow-control window, which only moves on packet receipt.
  bool bulk_progress_frozen() const;
  /// Packet count of `op`'s next chunk — the try_send_next_chunk gate.
  int planned_chunk_packets(const BulkOp& op, int window) const;
  bool have_unacked_retrans() const;

  // Bulk progress: pushes chunks of queued ops while windows/FIFO allow.
  void progress_bulk();
  bool try_send_next_chunk(int dst, std::uint8_t channel, TxChan& tx);

  // Receive paths.
  void serve_get(const sphw::Packet& pkt);
  void handle_packet(sphw::Packet pkt);
  void handle_control(const sphw::Packet& pkt);
  void handle_data(sphw::Packet pkt);
  void deliver_small(const sphw::Packet& pkt);
  void deliver_bulk_packet(const sphw::Packet& pkt);
  void process_ack(int src, std::uint8_t channel, std::uint32_t cum_ack);
  void maybe_explicit_ack(int src, std::uint8_t channel);
  void send_nack(int src, std::uint8_t channel);
  void retransmit_from(int dst, std::uint8_t channel, std::uint32_t from_seq);
  void fire_completions(int dst, TxChan& tx);

  sim::NodeCtx& ctx_;
  sphw::Tb2Adapter& adapter_;
  AmParams params_;

  std::vector<MsgHandler> msg_handlers_;
  std::vector<BulkHandler> bulk_handlers_;
  std::vector<Peer> peers_;

  int outstanding_ops_ = 0;
  int empty_poll_streak_ = 0;
  bool in_poll_ = false;
  std::uint32_t next_get_cookie_ = 1;
  std::uint64_t next_op_id_ = 1;
  std::unordered_map<std::uint32_t, CompletionFn> get_completions_;
  Stats stats_;
};

}  // namespace spam::am
