// Protocol constants and software-cost calibration for SP Active Messages.
#pragma once

#include <cstdint>

namespace spam::am {

struct AmParams {
  // --- Flow control (paper section 2.2) -----------------------------------
  /// Sliding-window size in packets for the request channel.  Must be at
  /// least two chunks so the chunk pipeline never stalls (paper: 72).
  int request_window_packets = 72;
  /// Reply-channel window; slightly larger to absorb start-up requests
  /// turning into replies (paper: 76).
  int reply_window_packets = 76;
  /// Packets per chunk: 36 * 224 data bytes = 8064 bytes per chunk.
  int chunk_packets = 36;
  /// Explicit acknowledgement once this fraction of the window is
  /// unacknowledged at the receiver (paper: one quarter).
  int explicit_ack_divisor = 4;
  /// Consecutive unsuccessful polls with unacked traffic outstanding before
  /// the keep-alive probe fires (timeouts are emulated by counting polls).
  int keepalive_poll_threshold = 2000;

  // --- Interrupt-driven reception (paper 1.1: "available but not used") --
  /// When true, Endpoint::compute() services arrivals via interrupts
  /// instead of leaving them for the next poll.
  bool interrupt_driven = false;
  /// Cost of taking one receive interrupt (AIX context switch + dispatch).
  double interrupt_latency_us = 55.0;

  // --- Host software costs (calibrated against paper Table 2) -------------
  /// CPU cost of polling an empty network (paper: 1.3 us).
  double poll_empty_us = 1.3;
  /// Fixed per-received-message handling on top of the FIFO copy
  /// (copy + this ≈ paper's 1.8 us per message).
  double per_msg_handling_us = 1.35;
  /// Fixed software cost of am_request_* beyond FIFO writes/doorbell.
  double request_cpu_us = 3.9;
  /// Fixed software cost of am_reply_* beyond FIFO writes/doorbell.
  double reply_cpu_us = 1.5;
  /// Marshalling cost per argument word beyond the first (paper Table 2
  /// shows ~0.15-0.2 us per extra word).
  double per_word_us = 0.15;
  /// Flow-control bookkeeping per transmitted packet (sequence numbers,
  /// retransmission save, window accounting).
  double bookkeeping_us = 0.8;
  /// Software cost of initiating a bulk operation (argument checks, op
  /// record setup).
  double bulk_setup_us = 4.0;
  /// During bulk sends the packet-length array is written once per this
  /// many packets ("writing the lengths of several packets at a time"),
  /// letting the adapter start transmitting while the host still writes.
  int doorbell_batch_packets = 4;
  /// Software cost of processing one control packet (ack/nack/probe).
  double control_cpu_us = 0.6;
};

}  // namespace spam::am
