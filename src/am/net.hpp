// AmNet: one SP AM endpoint per node of an SpMachine, constructed lazily so
// each endpoint binds to its node's context.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "am/endpoint.hpp"
#include "am/params.hpp"
#include "sphw/machine.hpp"

namespace spam::am {

class AmNet {
 public:
  explicit AmNet(sphw::SpMachine& machine, AmParams params = {})
      : machine_(machine), params_(params) {
    endpoints_.resize(static_cast<std::size_t>(machine.size()));
    for (int n = 0; n < machine.size(); ++n) {
      endpoints_[n] = std::make_unique<Endpoint>(
          machine.world().node(n), machine.adapter(n), params_);
    }
  }

  Endpoint& ep(int node) { return *endpoints_.at(node); }
  int size() const { return static_cast<int>(endpoints_.size()); }
  const AmParams& params() const { return params_; }
  sphw::SpMachine& machine() { return machine_; }

 private:
  sphw::SpMachine& machine_;
  AmParams params_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace spam::am
