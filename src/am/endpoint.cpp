#include "am/endpoint.hpp"

#include "sim/hot.hpp"
#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

#include "sim/trace.hpp"
#include "sphw/payload.hpp"

namespace spam::am {

namespace {

/// Packs two 32-bit words into one header word.
std::uint64_t pack2(Word lo, Word hi) {
  return static_cast<std::uint64_t>(lo) |
         (static_cast<std::uint64_t>(hi) << 32);
}

}  // namespace

Endpoint::Endpoint(sim::NodeCtx& ctx, sphw::Tb2Adapter& adapter,
                   AmParams params)
    : ctx_(ctx), adapter_(adapter), params_(params) {
  peers_.resize(static_cast<std::size_t>(ctx.world().size()));
  // Index 0: reserved no-op handlers.
  msg_handlers_.emplace_back([](Endpoint&, Token, const Word*, int) {});
  bulk_handlers_.emplace_back([](Endpoint&, Token, void*, std::size_t, Word) {});
}

int Endpoint::register_handler(MsgHandler fn) {
  msg_handlers_.push_back(std::move(fn));
  return static_cast<int>(msg_handlers_.size() - 1);
}

int Endpoint::register_bulk_handler(BulkHandler fn) {
  bulk_handlers_.push_back(std::move(fn));
  return static_cast<int>(bulk_handlers_.size() - 1);
}

// --------------------------------------------------------------------------
// Small messages
// --------------------------------------------------------------------------

SPAM_HOT void Endpoint::stamp_acks(int dst, sphw::Packet& pkt) {
  Peer& p = peer(dst);
  pkt.ack[kChanRequest] = p.rx[kChanRequest].expect_seq;
  pkt.ack[kChanReply] = p.rx[kChanReply].expect_seq;
  // Anything we piggyback counts as acknowledged.
  p.rx[kChanRequest].unacked_packets = 0;
  p.rx[kChanReply].unacked_packets = 0;
}

void Endpoint::wait_for_window(int dst, std::uint8_t channel,
                               int packets_needed) {
  TxChan& tx = peer(dst).tx[channel];
  const int window = window_for(channel);
  // The window only opens on packet receipt, so the empty-poll merge is
  // exact here: nothing this loop waits for can happen mid-merge.
  while (tx.packets_in_flight + packets_needed > window) {
    merge_empty_polls();
    poll();
  }
}

SPAM_HOT void Endpoint::merge_empty_polls() {
  if (!ctx_.engine().fastpath()) return;
  // Flush charge debt before sampling the adapter: the rx-ready state and
  // ready-time hints below are exact only at the node's virtual instant.
  ctx_.settle();
  if (adapter_.host_rx_ready()) return;
  const sim::Time ready = adapter_.host_rx_ready_time();
  if (ready == 0) return;
  const sim::Time quantum = sim::usec(params_.poll_empty_us);
  const sim::Time now = ctx_.now();
  if (ready <= now + quantum) return;  // the very next poll may see it
  if (!bulk_progress_frozen()) return;
  // Polls at now + i*quantum for i = 1..k sample strictly before `ready`,
  // so each would charge its quantum, drain nothing, and leave bulk
  // progress untouched: one elapse of k quanta reaches the same instant
  // and the k-1 intermediate wakes are elided.
  sim::Time k = (ready - now - 1) / quantum;
  bool count_streak = false;
  if (!in_poll_ && have_unacked_retrans()) {
    // Keep-alive probes fire at exact poll instants: stop the merge one
    // short of the streak threshold so a due probe runs in a real poll.
    const int to_probe = params_.keepalive_poll_threshold - empty_poll_streak_;
    if (to_probe <= 1) return;
    if (k > static_cast<sim::Time>(to_probe - 1)) {
      k = static_cast<sim::Time>(to_probe - 1);
    }
    count_streak = true;
  }
  ctx_.elapse(k * quantum);
  ctx_.engine().note_elided(static_cast<std::int64_t>(k) - 1);
  // Each merged poll was a top-level empty poll: replicate the keep-alive
  // bookkeeping (nested polls leave the streak alone, as poll() does).
  if (count_streak) empty_poll_streak_ += static_cast<int>(k);
}

bool Endpoint::bulk_progress_frozen() const {
  for (std::size_t n = 0; n < peers_.size(); ++n) {
    for (std::uint8_t ch : {kChanRequest, kChanReply}) {
      const TxChan& tx = peers_[n].tx[ch];
      if (tx.ops.empty()) continue;
      const int window = window_for(ch);
      // Window-blocked chunks stay blocked until a packet arrives; the
      // send-FIFO gate can open with time alone, so a chunk blocked only
      // by FIFO space defeats the merge.
      if (tx.packets_in_flight + planned_chunk_packets(tx.ops.front(), window) <=
          window) {
        return false;
      }
    }
  }
  return true;
}

bool Endpoint::have_unacked_retrans() const {
  for (const Peer& p : peers_) {
    for (const TxChan& tx : p.tx) {
      if (!tx.retrans.empty()) return true;
    }
  }
  return false;
}

void Endpoint::wait_for_fifo_space(int needed) {
  // The adapter drains the send FIFO autonomously (DMA), so plain waiting
  // is enough and safe to use even while nested inside poll().
  //
  // Fast path: FIFO-free instants are fixed at submit time, so every poll
  // sample strictly before the adapter's ready hint must read false — fuse
  // those definitely-false quanta into one elapse of identical total
  // virtual time (k quanta) and count the merged wake timers as elided.
  const sim::Time quantum = sim::usec(0.5);
  for (;;) {
    if (adapter_.host_send_free() >= needed) return;
    const sim::Time ready = adapter_.send_free_ready_time(needed);
    const sim::Time now = ctx_.now();
    if (ready > now + quantum) {
      const sim::Time k = (ready - now - 1) / quantum;
      // spam-lint: charge-ok — k polls elided into one batched sleep
      ctx_.elapse(k * quantum);
      ctx_.engine().note_elided(static_cast<std::int64_t>(k) - 1);
    }
    // spam-lint: charge-ok — one quantum per residual probe; the batch
    // above already collapsed the predictable part of the wait
    ctx_.elapse(quantum);
  }
}

SPAM_HOT void Endpoint::enqueue_sequenced_packet(sphw::Packet pkt, TxChan& tx,
                                        bool save, int doorbell_npackets) {
  // The ack stamping and retransmit save below touch only this fiber's
  // state and do not read the clock, so running them before the
  // bookkeeping charge (instead of after) is unobservable; that lets the
  // fast path hand the charge to host_enqueue as a merged lead_charge.
  const sim::Time bookkeeping = sim::usec(params_.bookkeeping_us);
  stamp_acks(pkt.dst, pkt);
  if (save) {
    if (pkt.chunk_idx == 0) {
      // spam-lint: capacity-ok (retransmit ring is bounded by the
      // flow-control window; entries recycle in steady state)
      tx.retrans.push_back({pkt.seq, {}});
    }
    assert(!tx.retrans.empty() && tx.retrans.back().seq == pkt.seq);
    // spam-lint: capacity-ok (packet copy shares the pooled payload via
    // PayloadRef; the vector is bounded by the chunk length)
    tx.retrans.back().packets.push_back(pkt);
  }
  ++tx.packets_in_flight;
  if (ctx_.engine().fastpath() && adapter_.host_send_free() >= 1) {
    // FIFO space already available: free instants only move toward us, so
    // the wait below would return without elapsing, and the bookkeeping
    // charge can ride host_enqueue's merged elapse.
    adapter_.host_enqueue(ctx_, std::move(pkt), doorbell_npackets,
                          bookkeeping);
    return;
  }
  ctx_.elapse(bookkeeping);
  wait_for_fifo_space(1);
  adapter_.host_enqueue(ctx_, std::move(pkt), doorbell_npackets);
}

SPAM_HOT void Endpoint::send_small(int dst, std::uint8_t channel, int handler,
                          const Word* args, int nargs, bool is_request) {
  assert(nargs >= 0 && nargs <= 4);
  TxChan& tx = peer(dst).tx[channel];

  // Preserve per-channel ordering: small messages may not overtake queued
  // bulk operations headed to the same peer.  Ops drain only as packet
  // receipts open the window, so the empty-poll merge is exact.
  while (!tx.ops.empty()) {
    merge_empty_polls();
    poll();
  }

  ctx_.elapse(sim::usec((is_request ? params_.request_cpu_us
                                    : params_.reply_cpu_us) +
                        params_.per_word_us * std::max(0, nargs - 1)));
  wait_for_window(dst, channel, 1);

  sphw::Packet pkt;
  pkt.dst = static_cast<std::int16_t>(dst);
  pkt.channel = channel;
  pkt.flags = kFlagSmall | kFlagOpLast;
  pkt.seq = tx.next_seq++;
  pkt.chunk_idx = 0;
  pkt.chunk_len = 1;
  pkt.h[0] = static_cast<std::uint64_t>(handler);
  pkt.h[1] = pack2(nargs > 0 ? args[0] : 0, nargs > 1 ? args[1] : 0);
  pkt.h[2] = pack2(nargs > 2 ? args[2] : 0, nargs > 3 ? args[3] : 0);
  pkt.h[3] = static_cast<std::uint64_t>(nargs);
  pkt.payload_bytes = static_cast<std::uint32_t>(4 * nargs);

  enqueue_sequenced_packet(std::move(pkt), tx, /*save=*/true,
                           /*doorbell_npackets=*/1);
}

void Endpoint::request(int dst, int handler, const Word* args, int nargs) {
  send_small(dst, kChanRequest, handler, args, nargs, /*is_request=*/true);
  ++stats_.requests_sent;
  poll();  // every am_request checks the network
}

void Endpoint::reply(Token token, int handler, const Word* args, int nargs) {
  assert(token.src >= 0);
  send_small(token.src, kChanReply, handler, args, nargs,
             /*is_request=*/false);
  ++stats_.replies_sent;
}

// --------------------------------------------------------------------------
// Control packets
// --------------------------------------------------------------------------

void Endpoint::send_control(int dst, std::uint8_t channel,
                            std::uint64_t subtype) {
  ctx_.elapse(sim::usec(params_.control_cpu_us));
  sphw::Packet pkt;
  pkt.dst = static_cast<std::int16_t>(dst);
  pkt.channel = channel;
  pkt.flags = kFlagControl;
  pkt.h[0] = subtype;
  pkt.h[1] = peer(dst).rx[channel].expect_seq;  // NACK: resume point
  pkt.payload_bytes = 0;
  stamp_acks(dst, pkt);
  wait_for_fifo_space(1);
  adapter_.host_enqueue(ctx_, std::move(pkt), /*doorbell_npackets=*/1);
}

void Endpoint::maybe_explicit_ack(int src, std::uint8_t channel) {
  RxChan& rx = peer(src).rx[channel];
  const int threshold =
      std::max(1, window_for(channel) / params_.explicit_ack_divisor);
  if (rx.unacked_packets >= threshold) {
    send_control(src, channel, kCtlAck);
    ++stats_.acks_sent;
  }
}

void Endpoint::send_nack(int src, std::uint8_t channel) {
  RxChan& rx = peer(src).rx[channel];
  if (rx.nack_outstanding && rx.last_nacked_seq == rx.expect_seq) return;
  rx.nack_outstanding = true;
  rx.last_nacked_seq = rx.expect_seq;
  send_control(src, channel, kCtlNack);
  ++stats_.nacks_sent;
}

// --------------------------------------------------------------------------
// Bulk operations
// --------------------------------------------------------------------------

void Endpoint::store_async(int dst, void* dst_addr, const void* src,
                           std::size_t len, int handler, Word arg,
                           CompletionFn complete) {
  ctx_.elapse(sim::usec(params_.bulk_setup_us));
  BulkOp op;
  op.id = next_op_id_++;
  op.dst = dst;
  op.channel = kChanRequest;
  op.data = sphw::PayloadPool::instance().copy_from(src, len);
  op.remote_base = reinterpret_cast<std::uint64_t>(dst_addr);
  op.handler = handler;
  op.arg = arg;
  op.complete = std::move(complete);
  ++outstanding_ops_;
  peer(dst).tx[kChanRequest].ops.push_back(std::move(op));
  progress_bulk();
}

void Endpoint::store(int dst, void* dst_addr, const void* src,
                     std::size_t len, int handler, Word arg) {
  // Blocking semantics per GAM: returns once the source region is reusable,
  // i.e. all packets have been placed in the send FIFO.  The window makes a
  // back-to-back sequence of stores wait for the previous transfer's acks.
  ctx_.elapse(sim::usec(params_.bulk_setup_us));
  BulkOp op;
  op.id = next_op_id_++;
  const std::uint64_t my_id = op.id;
  op.dst = dst;
  op.channel = kChanRequest;
  op.data = sphw::PayloadPool::instance().copy_from(src, len);
  op.remote_base = reinterpret_cast<std::uint64_t>(dst_addr);
  op.handler = handler;
  op.arg = arg;
  op.complete = {};
  ++outstanding_ops_;
  TxChan& tx = peer(dst).tx[kChanRequest];
  tx.ops.push_back(std::move(op));
  // Drive our op to full enqueue: it leaves the queue exactly then.
  while (true) {
    progress_bulk();
    bool still_queued = false;
    for (const BulkOp& o : tx.ops) {
      if (o.id == my_id) {
        still_queued = true;
        break;
      }
    }
    if (!still_queued) break;
    poll();
  }
}

void Endpoint::get(int dst, const void* src_addr, void* dst_addr,
                   std::size_t len, int handler, Word arg,
                   CompletionFn complete) {
  ctx_.elapse(sim::usec(params_.bulk_setup_us));
  const std::uint32_t cookie = next_get_cookie_++;
  if (complete) get_completions_.emplace(cookie, std::move(complete));

  TxChan& tx = peer(dst).tx[kChanRequest];
  while (!tx.ops.empty()) poll();
  wait_for_window(dst, kChanRequest, 1);

  sphw::Packet pkt;
  pkt.dst = static_cast<std::int16_t>(dst);
  pkt.channel = kChanRequest;
  pkt.flags = kFlagSmall | kFlagOpLast | kFlagGetRequest;
  pkt.seq = tx.next_seq++;
  pkt.chunk_idx = 0;
  pkt.chunk_len = 1;
  pkt.offset = cookie;
  pkt.h[0] = pack2(static_cast<Word>(handler), arg);
  pkt.h[1] = reinterpret_cast<std::uint64_t>(src_addr);
  pkt.h[2] = reinterpret_cast<std::uint64_t>(dst_addr);
  pkt.h[3] = static_cast<std::uint64_t>(len);
  pkt.payload_bytes = 16;  // two addresses and a length on the wire

  enqueue_sequenced_packet(std::move(pkt), tx, /*save=*/true,
                           /*doorbell_npackets=*/1);
  poll();  // gets are requests: check the network after sending
}

void Endpoint::get_blocking(int dst, const void* src_addr, void* dst_addr,
                            std::size_t len) {
  bool done = false;
  get(dst, src_addr, dst_addr, len, 0, 0, [&done] { done = true; });
  poll_until([&] { return done; });
}

void Endpoint::progress_bulk() {
  // Round-robin over peers/channels that have queued operations, pushing
  // whole chunks while the window and FIFO allow.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t n = 0; n < peers_.size(); ++n) {
      for (std::uint8_t ch : {kChanRequest, kChanReply}) {
        TxChan& tx = peers_[n].tx[ch];
        if (tx.ops.empty()) continue;
        if (try_send_next_chunk(static_cast<int>(n), ch, tx)) {
          progressed = true;
        }
      }
    }
  }
}

int Endpoint::planned_chunk_packets(const BulkOp& op, int window) const {
  const int data_bytes = adapter_.params().packet_data_bytes;
  const std::size_t max_chunk =
      static_cast<std::size_t>(std::min(params_.chunk_packets, window)) *
      static_cast<std::size_t>(data_bytes);
  const std::size_t remaining = op.data.size() - op.sent;
  const std::size_t chunk = std::min(remaining, max_chunk);
  const int npackets = static_cast<int>((chunk + data_bytes - 1) / data_bytes);
  return npackets == 0 ? 1 : npackets;  // zero-length op: one empty packet
}

bool Endpoint::try_send_next_chunk(int dst, std::uint8_t channel,
                                   TxChan& tx) {
  BulkOp& op = tx.ops.front();
  const int data_bytes = adapter_.params().packet_data_bytes;
  const int window = window_for(channel);
  const std::size_t max_chunk =
      static_cast<std::size_t>(std::min(params_.chunk_packets, window)) *
      static_cast<std::size_t>(data_bytes);

  const std::size_t remaining = op.data.size() - op.sent;
  const std::size_t chunk = std::min(remaining, max_chunk);
  const int npackets = planned_chunk_packets(op, window);

  if (tx.packets_in_flight + npackets > window) return false;
  if (adapter_.host_send_free() < npackets) return false;

  const std::uint32_t seq = tx.next_seq++;
  const bool op_ends = (op.sent + chunk == op.data.size());
  const int batch = std::max(1, params_.doorbell_batch_packets);
  int undoorbelled = 0;

  for (int i = 0; i < npackets; ++i) {
    const std::size_t off = op.sent + static_cast<std::size_t>(i) * data_bytes;
    const std::size_t nbytes =
        std::min(static_cast<std::size_t>(data_bytes), op.data.size() - off);
    sphw::Packet pkt;
    pkt.dst = static_cast<std::int16_t>(dst);
    pkt.channel = channel;
    pkt.seq = seq;
    pkt.chunk_idx = static_cast<std::uint16_t>(i);
    pkt.chunk_len = static_cast<std::uint16_t>(npackets);
    pkt.offset = static_cast<std::uint32_t>(off);
    pkt.flags = 0;
    if (op_ends && i == npackets - 1) pkt.flags |= kFlagOpLast;
    pkt.h[0] = pack2(static_cast<Word>(op.handler), op.arg);
    pkt.h[1] = op.remote_base;
    pkt.h[2] = op.data.size();
    pkt.h[3] = op.cookie;
    pkt.payload_bytes = static_cast<std::uint32_t>(nbytes);
    // No copy: the packet's view shares the operation's pooled buffer.
    pkt.payload = op.data.slice(off, nbytes);
    // Batch the doorbell: one length-array store covers several packets,
    // so the adapter starts fetching while the host keeps writing.  The
    // batch-completing enqueue rings it, letting the fast path fold the
    // MicroChannel access into its merged elapse.
    ++undoorbelled;
    int doorbell_n = 0;
    if (undoorbelled == batch || i == npackets - 1) {
      doorbell_n = undoorbelled;
      undoorbelled = 0;
    }
    enqueue_sequenced_packet(std::move(pkt), tx, /*save=*/true, doorbell_n);
  }
  assert(undoorbelled == 0);
  ++stats_.chunks_sent;
  stats_.bulk_bytes_sent += chunk;

  op.sent += chunk;
  op.packets_emitted = true;
  if (op_ends) {
    // spam-lint: capacity-ok — drained by poll() each pass; bounded by ops
    // in flight, steady-state capacity sticks after the first ramp
    tx.completions.push_back({seq + 1, std::move(op.complete)});
    tx.ops.pop_front();
  }
  return true;
}

SPAM_HOT void Endpoint::fire_completions(int /*dst*/, TxChan& tx) {
  while (!tx.completions.empty() &&
         tx.completions.front().last_seq_plus1 <= tx.acked_seq) {
    auto fn = std::move(tx.completions.front().fn);
    tx.completions.pop_front();
    --outstanding_ops_;
    if (fn) fn();
  }
}

// --------------------------------------------------------------------------
// Receive path
// --------------------------------------------------------------------------

SPAM_HOT void Endpoint::process_ack(int src, std::uint8_t channel,
                           std::uint32_t cum_ack) {
  TxChan& tx = peer(src).tx[channel];
  if (cum_ack <= tx.acked_seq) return;
  while (!tx.retrans.empty() && tx.retrans.front().seq < cum_ack) {
    tx.packets_in_flight -=
        static_cast<int>(tx.retrans.front().packets.size());
    tx.retrans.pop_front();
  }
  assert(tx.packets_in_flight >= 0);
  tx.acked_seq = cum_ack;
  fire_completions(src, tx);
}

void Endpoint::retransmit_from(int dst, std::uint8_t channel,
                               std::uint32_t from_seq) {
  TxChan& tx = peer(dst).tx[channel];
  for (auto& saved : tx.retrans) {
    if (saved.seq < from_seq) continue;
    ++stats_.retransmitted_chunks;
    int in_batch = 0;
    for (const sphw::Packet& orig : saved.packets) {
      sphw::Packet copy = orig;
      stamp_acks(dst, copy);
      // spam-lint: charge-ok — per-packet bookkeeping IS the retransmit
      // cost model, and this is the rare recovery path
      ctx_.elapse(sim::usec(params_.bookkeeping_us));
      wait_for_fifo_space(1);
      adapter_.host_enqueue(ctx_, std::move(copy), /*ring_doorbell=*/false);
      ++in_batch;
    }
    if (in_batch > 0) adapter_.host_doorbell(ctx_, in_batch);
  }
}

void Endpoint::serve_get(const sphw::Packet& pkt) {
  // Internal service handler: stream the requested region back on the
  // reply channel; the final packet triggers the initiator's bulk handler
  // and completion cookie.
  BulkOp op;
  op.id = next_op_id_++;
  op.dst = pkt.src;
  op.channel = kChanReply;
  const auto* src = reinterpret_cast<const std::byte*>(pkt.h[1]);
  const auto len = static_cast<std::size_t>(pkt.h[3]);
  op.data = sphw::PayloadPool::instance().copy_from(src, len);
  op.remote_base = pkt.h[2];
  op.handler = static_cast<int>(pkt.h[0] & 0xffffffffu);
  op.arg = static_cast<Word>(pkt.h[0] >> 32);
  op.cookie = pkt.offset;
  ++outstanding_ops_;
  // spam-lint: capacity-ok — deque bounded by the outstanding-op window;
  // block allocation amortizes out after the first ramp
  peer(pkt.src).tx[kChanReply].ops.push_back(std::move(op));
}

SPAM_HOT void Endpoint::deliver_small(const sphw::Packet& pkt) {
  if (pkt.flags & kFlagGetRequest) {
    serve_get(pkt);
    return;
  }
  const auto h = static_cast<std::size_t>(pkt.h[0]);
  assert(h < msg_handlers_.size());
  Word args[4] = {
      static_cast<Word>(pkt.h[1] & 0xffffffffu),
      static_cast<Word>(pkt.h[1] >> 32),
      static_cast<Word>(pkt.h[2] & 0xffffffffu),
      static_cast<Word>(pkt.h[2] >> 32),
  };
  const int nargs = static_cast<int>(pkt.h[3]);
  ++stats_.msgs_delivered;
  msg_handlers_[h](*this, Token{pkt.src}, args, nargs);
}

SPAM_HOT void Endpoint::deliver_bulk_packet(const sphw::Packet& pkt) {
  auto* base = reinterpret_cast<std::byte*>(pkt.h[1]);
  if (pkt.payload_bytes > 0) {
    std::memcpy(base + pkt.offset, pkt.payload.data(), pkt.payload.size());
  }
  if (pkt.flags & kFlagOpLast) {
    const auto h = static_cast<std::size_t>(pkt.h[0] & 0xffffffffu);
    const auto arg = static_cast<Word>(pkt.h[0] >> 32);
    const auto len = static_cast<std::size_t>(pkt.h[2]);
    assert(h < bulk_handlers_.size());
    ++stats_.msgs_delivered;
    bulk_handlers_[h](*this, Token{pkt.src}, base, len, arg);
    const auto cookie = static_cast<std::uint32_t>(pkt.h[3]);
    if (cookie != 0) {
      auto it = get_completions_.find(cookie);
      if (it != get_completions_.end()) {
        auto fn = std::move(it->second);
        get_completions_.erase(it);
        fn();
      }
    }
  }
}

SPAM_HOT void Endpoint::handle_control(const sphw::Packet& pkt) {
  ctx_.elapse(sim::usec(params_.control_cpu_us));
  process_ack(pkt.src, kChanRequest, pkt.ack[kChanRequest]);
  process_ack(pkt.src, kChanReply, pkt.ack[kChanReply]);
  switch (pkt.h[0]) {
    case kCtlAck:
      break;  // piggybacked ack processing above did the work
    case kCtlNack: {
      const auto resume = static_cast<std::uint32_t>(pkt.h[1]);
      process_ack(pkt.src, pkt.channel, resume);
      sim::Trace::log(sim::TraceCat::kFlow, ctx_.now(),
                      "node%d NACK from %d ch=%u resume=%u", rank(), pkt.src,
                      pkt.channel, resume);
      retransmit_from(pkt.src, pkt.channel, resume);
      break;
    }
    case kCtlProbe: {
      // Keep-alive: force a NACK back at our current expectation.
      RxChan& rx = peer(pkt.src).rx[pkt.channel];
      rx.nack_outstanding = false;  // always answer a probe
      send_nack(pkt.src, pkt.channel);
      break;
    }
    default:
      assert(false && "unknown control subtype");
  }
}

SPAM_HOT void Endpoint::handle_data(sphw::Packet pkt) {
  RxChan& rx = peer(pkt.src).rx[pkt.channel];

  if (pkt.seq < rx.expect_seq) {
    // Duplicate from a go-back-N retransmission; re-ack at chunk ends so
    // the sender resynchronizes.
    ++stats_.duplicates_dropped;
    if (pkt.chunk_idx == pkt.chunk_len - 1) {
      send_control(pkt.src, pkt.channel, kCtlAck);
      ++stats_.acks_sent;
    }
    return;
  }
  if (pkt.seq > rx.expect_seq || pkt.chunk_idx != rx.expect_idx) {
    // Lost packet (whole chunk or mid-chunk): drop and NACK once.
    ++stats_.out_of_seq_dropped;
    rx.expect_idx = 0;  // go-back-N restarts the chunk from its first packet
    send_nack(pkt.src, pkt.channel);
    return;
  }

  // In sequence: accept.
  rx.nack_outstanding = false;
  const bool chunk_done = (pkt.chunk_idx == pkt.chunk_len - 1);
  const std::uint16_t chunk_len = pkt.chunk_len;
  rx.expect_idx = chunk_done ? 0 : static_cast<std::uint16_t>(pkt.chunk_idx + 1);
  if (chunk_done) {
    ++rx.expect_seq;
    rx.unacked_packets += chunk_len;
  }

  if (pkt.flags & kFlagSmall) {
    deliver_small(pkt);
  } else {
    deliver_bulk_packet(pkt);
  }

  if (chunk_done) {
    if (!(pkt.flags & kFlagSmall)) {
      // Bulk chunks are acknowledged as a unit, immediately — the sender's
      // chunk pipeline (chunk N waits for the ack of chunk N-2) depends on
      // a prompt per-chunk ack.
      RxChan& rx2 = peer(pkt.src).rx[pkt.channel];
      if (rx2.unacked_packets > 0) {
        send_control(pkt.src, pkt.channel, kCtlAck);
        ++stats_.acks_sent;
      }
    } else {
      // Small messages rely on piggybacking plus the quarter-window rule.
      maybe_explicit_ack(pkt.src, pkt.channel);
    }
  }
}

SPAM_HOT void Endpoint::handle_packet(sphw::Packet pkt) {
  if (pkt.flags & kFlagControl) {
    handle_control(pkt);
    return;
  }
  // Piggybacked acks on data packets.
  process_ack(pkt.src, kChanRequest, pkt.ack[kChanRequest]);
  process_ack(pkt.src, kChanReply, pkt.ack[kChanReply]);
  handle_data(std::move(pkt));
}

void Endpoint::compute(double us) {
  if (!params_.interrupt_driven) {
    // Polling mode: pure computation, so it defers into the node's charge
    // ledger and settles at the next poll/send.
    ctx_.charge(sim::usec(us));
    return;
  }
  // Interrupt-driven: sleep in chunks, woken early by the adapter's
  // interrupt line; each service pass costs the interrupt latency.
  // Flush charge debt first: the rx-ready read and the engine-relative
  // work deadline below must anchor at this node's virtual instant.
  ctx_.settle();
  adapter_.set_rx_notify(ctx_.make_resumer());
  sim::Time work = sim::usec(us);
  while (work > 0) {
    if (adapter_.host_rx_ready()) {
      ctx_.elapse(sim::usec(params_.interrupt_latency_us));
      poll();
      continue;
    }
    const sim::Time t0 = ctx_.now();
    // Wake at the earlier of work-done or packet arrival.  The deadline
    // event may fire after an interrupt already woke us; suspend() callers
    // tolerate such spurious wakes by re-checking state.
    auto resumer = ctx_.make_resumer();
    static_assert(sim::InlineAction::fits_inline<decltype(resumer)>,
                  "compute() resumer must not heap-allocate");
    ctx_.engine().after(work, std::move(resumer));
    ctx_.suspend();
    const sim::Time advanced = ctx_.now() - t0;
    work -= std::min(advanced, work);
  }
  adapter_.clear_rx_notify();
}

SPAM_HOT void Endpoint::poll() {
  ctx_.elapse(sim::usec(params_.poll_empty_us));
  bool received = false;
  while (adapter_.host_rx_ready()) {
    // The per-message handling charge rides the take's copy elapse when the
    // adapter can prove the merge exact (non-flush takes under fastpath).
    sphw::Packet pkt =
        adapter_.host_rx_take(ctx_, sim::usec(params_.per_msg_handling_us));
    handle_packet(std::move(pkt));
    // Handlers may charge deferred CPU time; settle so the next rx-ready
    // read sees every arrival up to this node's virtual instant.
    ctx_.settle();
    received = true;
  }
  progress_bulk();

  if (in_poll_) return;  // keep-alive bookkeeping only at top level
  in_poll_ = true;
  if (received) {
    empty_poll_streak_ = 0;
  } else {
    if (have_unacked_retrans() &&
        ++empty_poll_streak_ >= params_.keepalive_poll_threshold) {
      empty_poll_streak_ = 0;
      for (std::size_t n = 0; n < peers_.size(); ++n) {
        for (std::uint8_t ch : {kChanRequest, kChanReply}) {
          if (!peers_[n].tx[ch].retrans.empty()) {
            send_control(static_cast<int>(n), ch, kCtlProbe);
            ++stats_.probes_sent;
          }
        }
      }
    }
  }
  in_poll_ = false;
}

}  // namespace spam::am
