// Ablation: the flow-control design choices of SP AM (section 2.2).
// Sweeps chunk size, window size, doorbell batching, and the lazy-pop
// batch, reporting their effect on bulk bandwidth and one-word round-trip.
#include <benchmark/benchmark.h>

#include "harness.hpp"
#include "micro.hpp"

namespace {

double bw_with(spam::am::AmParams amp,
               spam::sphw::SpParams hw = spam::sphw::SpParams::thin_node()) {
  return spam::bench::am_bandwidth_mbps(
      spam::bench::AmBwMode::kPipelinedAsyncStore, 1 << 20, hw, amp);
}

void BM_ChunkSize(benchmark::State& state) {
  spam::am::AmParams amp;
  amp.chunk_packets = static_cast<int>(state.range(0));
  // Keep the window at two chunks, as the protocol requires.
  amp.request_window_packets = 2 * amp.chunk_packets;
  amp.reply_window_packets = 2 * amp.chunk_packets + 4;
  double bw = 0;
  for (auto _ : state) {
    bw = bw_with(amp);
    state.SetIterationTime(1e-3);
  }
  state.counters["MBps"] = bw;
}
BENCHMARK(BM_ChunkSize)->Arg(4)->Arg(9)->Arg(18)->Arg(36)->Arg(72)
    ->UseManualTime()->Iterations(1);

void BM_WindowSize(benchmark::State& state) {
  spam::am::AmParams amp;
  amp.request_window_packets = static_cast<int>(state.range(0));
  amp.reply_window_packets = static_cast<int>(state.range(0)) + 4;
  double bw = 0;
  for (auto _ : state) {
    bw = bw_with(amp);
    state.SetIterationTime(1e-3);
  }
  state.counters["MBps"] = bw;
}
BENCHMARK(BM_WindowSize)->Arg(36)->Arg(72)->Arg(108)->Arg(144)
    ->UseManualTime()->Iterations(1);

void BM_DoorbellBatch(benchmark::State& state) {
  spam::am::AmParams amp;
  amp.doorbell_batch_packets = static_cast<int>(state.range(0));
  double bw = 0;
  for (auto _ : state) {
    bw = bw_with(amp);
    state.SetIterationTime(1e-3);
  }
  state.counters["MBps"] = bw;
}
BENCHMARK(BM_DoorbellBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(36)
    ->UseManualTime()->Iterations(1);

void BM_LazyPopBatch(benchmark::State& state) {
  spam::sphw::SpParams hw = spam::sphw::SpParams::thin_node();
  hw.lazy_pop_batch = static_cast<int>(state.range(0));
  double bw = 0;
  for (auto _ : state) {
    bw = bw_with({}, hw);
    state.SetIterationTime(1e-3);
  }
  state.counters["MBps"] = bw;
}
BENCHMARK(BM_LazyPopBatch)->Arg(1)->Arg(4)->Arg(8)->Arg(32)
    ->UseManualTime()->Iterations(1);

void BM_RttVsWindow(benchmark::State& state) {
  spam::am::AmParams amp;
  amp.request_window_packets = static_cast<int>(state.range(0));
  amp.reply_window_packets = static_cast<int>(state.range(0)) + 4;
  double us = 0;
  for (auto _ : state) {
    us = spam::bench::am_rtt_us(1, spam::sphw::SpParams::thin_node(), amp);
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}
BENCHMARK(BM_RttVsWindow)->Arg(8)->Arg(72)->Arg(144)
    ->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  {  // Warm every knob setting across --jobs threads.
    std::vector<std::function<void()>> points;
    for (int c : {4, 9, 18, 36, 72}) {
      points.push_back([c] {
        spam::am::AmParams amp;
        amp.chunk_packets = c;
        amp.request_window_packets = 2 * c;
        amp.reply_window_packets = 2 * c + 4;
        bw_with(amp);
      });
    }
    for (int w : {36, 72, 108, 144}) {
      points.push_back([w] {
        spam::am::AmParams amp;
        amp.request_window_packets = w;
        amp.reply_window_packets = w + 4;
        bw_with(amp);
      });
    }
    for (int d : {1, 2, 4, 8, 36}) {
      points.push_back([d] {
        spam::am::AmParams amp;
        amp.doorbell_batch_packets = d;
        bw_with(amp);
      });
    }
    for (int l : {1, 4, 8, 32}) {
      points.push_back([l] {
        spam::sphw::SpParams hw = spam::sphw::SpParams::thin_node();
        hw.lazy_pop_batch = l;
        bw_with({}, hw);
      });
    }
    for (int w : {8, 72, 144}) {
      points.push_back([w] {
        spam::am::AmParams amp;
        amp.request_window_packets = w;
        amp.reply_window_packets = w + 4;
        spam::bench::am_rtt_us(1, spam::sphw::SpParams::thin_node(), amp);
      });
    }
    spam::bench::prewarm(points);
  }
  benchmark::RunSpecifiedBenchmarks();

  spam::report::Table tab("Flow-control ablations (1 MB async store)");
  tab.set_header({"knob", "setting", "bandwidth (MB/s)"});
  for (int c : {4, 9, 18, 36, 72}) {
    spam::am::AmParams amp;
    amp.chunk_packets = c;
    amp.request_window_packets = 2 * c;
    amp.reply_window_packets = 2 * c + 4;
    tab.add_row({"chunk packets (window = 2 chunks)", std::to_string(c),
                 spam::report::fmt(bw_with(amp))});
  }
  for (int w : {36, 72, 144}) {
    spam::am::AmParams amp;
    amp.request_window_packets = w;
    amp.reply_window_packets = w + 4;
    tab.add_row({"window packets (chunk = 36)", std::to_string(w),
                 spam::report::fmt(bw_with(amp))});
  }
  for (int d : {1, 4, 36}) {
    spam::am::AmParams amp;
    amp.doorbell_batch_packets = d;
    tab.add_row({"doorbell batch", std::to_string(d),
                 spam::report::fmt(bw_with(amp))});
  }
  for (int l : {1, 8, 32}) {
    spam::sphw::SpParams hw = spam::sphw::SpParams::thin_node();
    hw.lazy_pop_batch = l;
    tab.add_row({"lazy-pop batch", std::to_string(l),
                 spam::report::fmt(bw_with({}, hw))});
  }
  spam::bench::emit(tab);
  std::printf(
      "\nDesign-choice reading: a one-chunk window stalls the pipeline "
      "(chunk N needs the\nack of chunk N-2); per-packet doorbells and "
      "per-packet pops burn a ~1 us\nMicroChannel access each, which is why "
      "the paper batches both.\n");
  return spam::bench::harness_finish();
}
