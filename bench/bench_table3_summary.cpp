// Reproduces paper Table 3 (performance summary of SP AM vs IBM MPL) and
// the section 2.3 latency numbers: one-word round-trips (AM 51.0 us, raw
// 46.5 us, MPL 88 us), asymptotic bandwidths, and half-power points.
#include <benchmark/benchmark.h>

#include "harness.hpp"
#include "micro.hpp"

namespace {

using spam::bench::AmBwMode;
using spam::bench::MplBwMode;
using spam::report::BwPoint;

std::vector<BwPoint> sweep_am(AmBwMode mode) {
  std::vector<BwPoint> curve;
  for (std::size_t s : spam::bench::figure3_sizes()) {
    curve.push_back({s, spam::bench::am_bandwidth_mbps(mode, s)});
  }
  return curve;
}

std::vector<BwPoint> sweep_mpl(MplBwMode mode) {
  std::vector<BwPoint> curve;
  for (std::size_t s : spam::bench::figure3_sizes()) {
    curve.push_back({s, spam::bench::mpl_bandwidth_mbps(mode, s)});
  }
  return curve;
}

void BM_AmRoundTrip(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = spam::bench::am_rtt_us(static_cast<int>(state.range(0)));
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}
BENCHMARK(BM_AmRoundTrip)->DenseRange(1, 4)->UseManualTime()->Iterations(1);

void BM_RawRoundTrip(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = spam::bench::raw_rtt_us();
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}
BENCHMARK(BM_RawRoundTrip)->UseManualTime()->Iterations(1);

void BM_MplRoundTrip(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = spam::bench::mpl_rtt_us();
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}
BENCHMARK(BM_MplRoundTrip)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  // All round-trips plus the six Figure-3 curves the n-1/2 analysis sweeps.
  std::vector<std::function<void()>> points;
  for (int n = 1; n <= 4; ++n) {
    points.push_back([n] { spam::bench::am_rtt_us(n); });
  }
  points.push_back([] { spam::bench::raw_rtt_us(); });
  points.push_back([] { spam::bench::mpl_rtt_us(); });
  for (auto& p : spam::bench::fig3_points(spam::bench::figure3_sizes())) {
    points.push_back(std::move(p));
  }
  spam::bench::prewarm(points);

  benchmark::RunSpecifiedBenchmarks();

  using spam::report::fmt_bytes;
  using spam::report::fmt_mbps;
  using spam::report::fmt_us;

  const double am1 = spam::bench::am_rtt_us(1);
  const double am4 = spam::bench::am_rtt_us(4);
  const double raw = spam::bench::raw_rtt_us();
  const double mpl = spam::bench::mpl_rtt_us();

  const auto async_store = sweep_am(AmBwMode::kPipelinedAsyncStore);
  const auto async_get = sweep_am(AmBwMode::kPipelinedAsyncGet);
  const auto sync_store = sweep_am(AmBwMode::kSyncStore);
  const auto sync_get = sweep_am(AmBwMode::kSyncGet);
  const auto mpl_pipe = sweep_mpl(MplBwMode::kPipelined);
  const auto mpl_block = sweep_mpl(MplBwMode::kBlocking);

  spam::report::PaperComparison cmp(
      "Table 3 — performance summary of SP AM and IBM MPL (thin nodes)");
  cmp.add("AM one-word round-trip", fmt_us(51.0), fmt_us(am1));
  cmp.add("AM per-extra-word growth", "~0.2 us/word",
          spam::report::fmt((am4 - am1) / 3.0, 2) + " us/word");
  cmp.add("raw round-trip (no flow control)", fmt_us(46.5), fmt_us(raw));
  cmp.add("AM overhead over raw", fmt_us(4.5), fmt_us(am1 - raw),
          "cache flushes + flow-control bookkeeping");
  cmp.add("MPL one-word round-trip", fmt_us(88.0), fmt_us(mpl));
  cmp.add("AM r-inf (pipelined store)", fmt_mbps(34.3),
          fmt_mbps(spam::report::r_infinity(async_store)));
  cmp.add("MPL r-inf (pipelined send)", fmt_mbps(34.6),
          fmt_mbps(spam::report::r_infinity(mpl_pipe)));
  cmp.add("AM n1/2 async store", "~260 B (scan-garbled)",
          fmt_bytes(spam::report::n_half(async_store)));
  cmp.add("AM n1/2 async get", "slightly higher",
          fmt_bytes(spam::report::n_half(async_get)));
  cmp.add("AM n1/2 sync store", "~800 B",
          fmt_bytes(spam::report::n_half(sync_store)));
  cmp.add("AM n1/2 sync get", "~3000 B",
          fmt_bytes(spam::report::n_half(sync_get)));
  cmp.add("MPL n1/2 pipelined", ">= 4x AM's (scan-garbled)",
          fmt_bytes(spam::report::n_half(mpl_pipe)));
  cmp.add("MPL n1/2 blocking", "> 3000 B",
          fmt_bytes(spam::report::n_half(mpl_block)));
  spam::bench::emit(cmp);
  return spam::bench::harness_finish();
}
