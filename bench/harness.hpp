// Shared argv / parallel-sweep / JSON plumbing for the bench binaries.
//
// Every bench main follows the same shape:
//
//   int main(int argc, char** argv) {
//     spam::bench::harness_init(&argc, argv);   // strips --jobs/--quick/--out
//     benchmark::Initialize(&argc, argv);
//     ... register benchmarks ...
//     spam::bench::prewarm(points);             // parallel, fills ResultCache
//     benchmark::RunSpecifiedBenchmarks();      // serial pass, hits the cache
//     ... build report tables, emit(t) each ...
//     return spam::bench::harness_finish();
//   }
//
// prewarm() runs the measurement closures across --jobs host threads via
// driver::SweepRunner; each closure constructs and runs its own
// shared-nothing sim::World and stores its scalar into the process-wide
// driver::ResultCache.  The serial google-benchmark pass and the table
// builders then read cached values, so the emitted bytes are identical for
// any --jobs setting — parallelism only moves the compute, never the
// aggregation order.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "report/report.hpp"

namespace spam::bench {

struct HarnessOptions {
  /// Host threads for prewarm sweeps.  <= 0 selects hardware_concurrency.
  int jobs = 0;
  /// Benches may trim their sweeps when set (smoke runs).
  bool quick = false;
  /// When non-empty, harness_finish() writes emitted tables here as JSON.
  std::string out;
};

HarnessOptions& options();

/// Strips the harness flags (--jobs N|--jobs=N, --quick, --out P|--out=P)
/// from argv so the remainder can go to benchmark::Initialize untouched.
void harness_init(int* argc, char** argv);

/// Runs every closure across options().jobs threads (SweepRunner); returns
/// when all have completed.  Closures must be independent (one World per
/// thread — see docs/simulator.md).
void prewarm(const std::vector<std::function<void()>>& points);

/// Prints the table to stdout and records it for harness_finish()'s JSON.
void emit(const report::Table& t);
void emit(const report::PaperComparison& c);

/// Writes collected tables to options().out (no-op when --out was absent).
/// Returns 0, so mains can `return harness_finish();`.
int harness_finish();

// --- Figure 3 shared sweep --------------------------------------------------
// Used by bench_fig3_bandwidth, tools/spamsim, bench_sweep_perf, and the
// serial-vs-parallel determinism test, so all four agree on the bytes.

/// One closure per (curve, size) point; running them fills the ResultCache.
std::vector<std::function<void()>> fig3_points(
    const std::vector<std::size_t>& sizes);

/// The rendered Figure 3 table for `sizes` (reads cached points when warm).
report::Table fig3_table(const std::vector<std::size_t>& sizes);

}  // namespace spam::bench
