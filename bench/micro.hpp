// Shared measurement routines for the table/figure benches: the paper's
// microbenchmark definitions (section 2.3-2.5) expressed against the
// simulated SP, plus MPI ring latency / point-to-point bandwidth used by
// Figures 7-11.
#pragma once

#include <cstddef>
#include <vector>

#include "am/net.hpp"
#include "mpif/mpi_world.hpp"
#include "mpl/mpl.hpp"
#include "report/report.hpp"
#include "splitc/splitc_world.hpp"

namespace spam::bench {

// --- SP AM microbenchmarks -------------------------------------------------

/// One-word (or N-word) am_request/am_reply ping-pong round-trip, thin
/// nodes unless overridden (paper section 2.3: 51.0 us for one word).
double am_rtt_us(int words, sphw::SpParams hw = sphw::SpParams::thin_node(),
                 am::AmParams amp = {});

/// Raw adapter-level ping-pong without flow control (paper: 46.5 us).
double raw_rtt_us(sphw::SpParams hw = sphw::SpParams::thin_node());

/// Cost of a successful am_request_N / am_reply_N call (paper Table 2).
double am_request_cost_us(int words,
                          sphw::SpParams hw = sphw::SpParams::thin_node());
double am_reply_cost_us(int words,
                        sphw::SpParams hw = sphw::SpParams::thin_node());
/// Poll costs (paper: 1.3 us empty, +1.8 us per received message).
double am_poll_empty_us(sphw::SpParams hw = sphw::SpParams::thin_node());
double am_poll_per_msg_us(sphw::SpParams hw = sphw::SpParams::thin_node());

enum class AmBwMode {
  kSyncStore,            // blocking am_store per transfer
  kSyncGet,              // blocking am_get per transfer
  kPipelinedAsyncStore,  // 1 MB streamed as size-n am_store_async
  kPipelinedAsyncGet,    // 1 MB streamed as size-n am_get
};

/// One-way bandwidth for transfers of `bytes` (paper section 2.4).
double am_bandwidth_mbps(AmBwMode mode, std::size_t bytes,
                         sphw::SpParams hw = sphw::SpParams::thin_node(),
                         am::AmParams amp = {});

// --- MPL microbenchmarks ---------------------------------------------------

/// mpc_bsend/mpc_brecv one-word ping-pong (paper: 88 us).
double mpl_rtt_us(sphw::SpParams hw = sphw::SpParams::thin_node(),
                  mpl::MplParams mp = {});

enum class MplBwMode {
  kBlocking,   // mpc_bsend followed by a 0-byte echo
  kPipelined,  // streamed mpc_send
};
double mpl_bandwidth_mbps(MplBwMode mode, std::size_t bytes,
                          sphw::SpParams hw = sphw::SpParams::thin_node(),
                          mpl::MplParams mp = {});

/// Sweep sizes used by Figure 3 (16 B .. 1 MB, log-spaced).
std::vector<std::size_t> figure3_sizes();

// --- MPI measurements (Figures 7-11) ----------------------------------------

/// Per-hop latency around a 4-node ring (paper's Figure 8/10 methodology).
double mpi_hop_latency_us(const mpi::MpiWorldConfig& cfg, std::size_t bytes);

/// One-way point-to-point bandwidth between two nodes.
double mpi_bandwidth_mbps(const mpi::MpiWorldConfig& cfg, std::size_t bytes);

/// Raw am_store reference curve used in the MPI figures.
double am_store_hop_latency_us(std::size_t bytes, sphw::SpParams hw);
double am_store_bandwidth_mbps(std::size_t bytes, sphw::SpParams hw);

}  // namespace spam::bench
