// Reproduces paper Figures 8 and 9: MPI point-to-point per-hop latency
// (4-node ring) and bandwidth on thin SP nodes, four curves each:
// raw am_store, unoptimized MPI-AM, optimized MPI-AM, and MPI-F.
#include <benchmark/benchmark.h>

#include "micro.hpp"

namespace {

using spam::mpi::MpiImpl;
using spam::mpi::MpiWorldConfig;

MpiWorldConfig cfg_of(MpiImpl impl, spam::sphw::SpParams hw) {
  MpiWorldConfig cfg;
  cfg.impl = impl;
  cfg.hw = hw;
  cfg.nodes = 4;
  if (impl == MpiImpl::kMpiF) {
    cfg.f_cfg = spam::mpif::MpiFConfig::thin();
  }
  return cfg;
}

std::vector<std::size_t> latency_sizes() {
  return {4, 16, 64, 256, 1024, 4096, 8192, 16384, 32768};
}
std::vector<std::size_t> bandwidth_sizes() {
  std::vector<std::size_t> v;
  for (std::size_t s = 64; s <= (1u << 18); s *= 4) v.push_back(s);
  v.push_back(1u << 19);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  const auto hw = spam::sphw::SpParams::thin_node();

  spam::report::Table lat(
      "Figure 8 — MPI per-hop latency on thin nodes (us)");
  lat.set_header({"bytes", "am_store", "unopt MPI-AM", "opt MPI-AM",
                  "MPI-F"});
  for (std::size_t s : latency_sizes()) {
    lat.add_row(
        {std::to_string(s),
         spam::report::fmt(spam::bench::am_store_hop_latency_us(s, hw)),
         spam::report::fmt(spam::bench::mpi_hop_latency_us(
             cfg_of(MpiImpl::kAmUnoptimized, hw), s)),
         spam::report::fmt(spam::bench::mpi_hop_latency_us(
             cfg_of(MpiImpl::kAmOptimized, hw), s)),
         spam::report::fmt(spam::bench::mpi_hop_latency_us(
             cfg_of(MpiImpl::kMpiF, hw), s))});
  }
  lat.print();

  spam::report::Table bw(
      "Figure 9 — MPI point-to-point bandwidth on thin nodes (MB/s)");
  bw.set_header({"bytes", "am_store", "unopt MPI-AM", "opt MPI-AM", "MPI-F"});
  for (std::size_t s : bandwidth_sizes()) {
    bw.add_row(
        {std::to_string(s),
         spam::report::fmt(spam::bench::am_store_bandwidth_mbps(s, hw)),
         spam::report::fmt(spam::bench::mpi_bandwidth_mbps(
             cfg_of(MpiImpl::kAmUnoptimized, hw), s)),
         spam::report::fmt(spam::bench::mpi_bandwidth_mbps(
             cfg_of(MpiImpl::kAmOptimized, hw), s)),
         spam::report::fmt(spam::bench::mpi_bandwidth_mbps(
             cfg_of(MpiImpl::kMpiF, hw), s))});
  }
  bw.print();

  std::printf(
      "\nShape checks (paper, thin nodes): optimized MPI-AM achieves lower "
      "small-message\nlatency than MPI-F and beats it by 10-30%% at 8-20 KB; "
      "MPI-F dips after its 4 KB\nprotocol switch; all ride below the raw "
      "am_store curve.\n");
  return 0;
}
