// Reproduces paper Figures 8 and 9: MPI point-to-point per-hop latency
// (4-node ring) and bandwidth on thin SP nodes, four curves each:
// raw am_store, unoptimized MPI-AM, optimized MPI-AM, and MPI-F.
#include <benchmark/benchmark.h>

#include "harness.hpp"
#include "micro.hpp"

namespace {

using spam::mpi::MpiImpl;
using spam::mpi::MpiWorldConfig;

MpiWorldConfig cfg_of(MpiImpl impl, spam::sphw::SpParams hw) {
  MpiWorldConfig cfg;
  cfg.impl = impl;
  cfg.hw = hw;
  cfg.nodes = 4;
  if (impl == MpiImpl::kMpiF) {
    cfg.f_cfg = spam::mpif::MpiFConfig::thin();
  }
  return cfg;
}

std::vector<std::size_t> latency_sizes() {
  return {4, 16, 64, 256, 1024, 4096, 8192, 16384, 32768};
}
std::vector<std::size_t> bandwidth_sizes() {
  std::vector<std::size_t> v;
  for (std::size_t s = 64; s <= (1u << 18); s *= 4) v.push_back(s);
  v.push_back(1u << 19);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  const auto hw = spam::sphw::SpParams::thin_node();

  {  // Warm every (curve, size) point across --jobs threads.
    std::vector<std::function<void()>> points;
    for (std::size_t s : latency_sizes()) {
      points.push_back([s, hw] { spam::bench::am_store_hop_latency_us(s, hw); });
      for (auto impl : {MpiImpl::kAmUnoptimized, MpiImpl::kAmOptimized,
                        MpiImpl::kMpiF}) {
        points.push_back([impl, hw, s] {
          spam::bench::mpi_hop_latency_us(cfg_of(impl, hw), s);
        });
      }
    }
    for (std::size_t s : bandwidth_sizes()) {
      points.push_back([s, hw] { spam::bench::am_store_bandwidth_mbps(s, hw); });
      for (auto impl : {MpiImpl::kAmUnoptimized, MpiImpl::kAmOptimized,
                        MpiImpl::kMpiF}) {
        points.push_back([impl, hw, s] {
          spam::bench::mpi_bandwidth_mbps(cfg_of(impl, hw), s);
        });
      }
    }
    spam::bench::prewarm(points);
  }
  benchmark::RunSpecifiedBenchmarks();

  spam::report::Table lat(
      "Figure 8 — MPI per-hop latency on thin nodes (us)");
  lat.set_header({"bytes", "am_store", "unopt MPI-AM", "opt MPI-AM",
                  "MPI-F"});
  for (std::size_t s : latency_sizes()) {
    lat.add_row(
        {std::to_string(s),
         spam::report::fmt(spam::bench::am_store_hop_latency_us(s, hw)),
         spam::report::fmt(spam::bench::mpi_hop_latency_us(
             cfg_of(MpiImpl::kAmUnoptimized, hw), s)),
         spam::report::fmt(spam::bench::mpi_hop_latency_us(
             cfg_of(MpiImpl::kAmOptimized, hw), s)),
         spam::report::fmt(spam::bench::mpi_hop_latency_us(
             cfg_of(MpiImpl::kMpiF, hw), s))});
  }
  spam::bench::emit(lat);

  spam::report::Table bw(
      "Figure 9 — MPI point-to-point bandwidth on thin nodes (MB/s)");
  bw.set_header({"bytes", "am_store", "unopt MPI-AM", "opt MPI-AM", "MPI-F"});
  for (std::size_t s : bandwidth_sizes()) {
    bw.add_row(
        {std::to_string(s),
         spam::report::fmt(spam::bench::am_store_bandwidth_mbps(s, hw)),
         spam::report::fmt(spam::bench::mpi_bandwidth_mbps(
             cfg_of(MpiImpl::kAmUnoptimized, hw), s)),
         spam::report::fmt(spam::bench::mpi_bandwidth_mbps(
             cfg_of(MpiImpl::kAmOptimized, hw), s)),
         spam::report::fmt(spam::bench::mpi_bandwidth_mbps(
             cfg_of(MpiImpl::kMpiF, hw), s))});
  }
  spam::bench::emit(bw);

  std::printf(
      "\nShape checks (paper, thin nodes): optimized MPI-AM achieves lower "
      "small-message\nlatency than MPI-F and beats it by 10-30%% at 8-20 KB; "
      "MPI-F dips after its 4 KB\nprotocol switch; all ride below the raw "
      "am_store curve.\n");
  return spam::bench::harness_finish();
}
