// Host-side performance of the event core itself: how many simulated
// events per host wall-clock second the engine sustains, and how many
// megabytes of simulated bulk traffic the software stack pushes per host
// second.  Unlike the table/figure benches (which report *virtual* time,
// reproducing the paper), this bench reports *host* time: it is the
// regression guard for the zero-allocation event core.
//
// Two workloads, both taken from the paper's microbenchmark set:
//   pingpong — 1-word am_request/am_reply round-trips (section 2.3);
//   bulk     — a 1 MB am_store_async stream in 64 KB messages (section 2.4).
//
// Each workload also records its virtual-time result (RTT, bandwidth):
// those must stay bit-identical across event-core changes — the
// optimization may only move host time, never virtual time.
//
// With the network fast path (the default), uncontended packets collapse
// their per-hop event chains into fused deliveries and provably dead poll
// wakes are merged away; Engine::events_simulated() still counts the
// per-hop-equivalent work, so `events_per_sec` (simulated events / wall
// second) measures the same workload in both modes.  `events_per_message`
// and `fused_fraction` expose how much of the event chain the fast path
// removed; `--no-fastpath` forces the reference per-hop mode so the
// fused/unfused comparison is one command each.
//
// Usage: bench_host_perf [--quick] [--no-fastpath] [--out <path>]
// Writes a JSON report (default: BENCH_host_perf.json in the cwd) and
// prints it to stdout.  Exit code is 0 even when slower than baseline:
// judging the numbers is the driver's job, producing them is ours.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "am/net.hpp"
#include "harness.hpp"
#include "sim/world.hpp"
#include "sphw/machine.hpp"
#include "sphw/payload.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct WorkloadResult {
  std::uint64_t events = 0;     // engine events executed in the measured phase
  std::uint64_t simulated = 0;  // per-hop-equivalent events (executed+elided)
  std::uint64_t messages = 0;   // AM-level messages in the measured phase
  std::uint64_t fused = 0;      // packets delivered by a fused event
  std::uint64_t delivered = 0;  // packets delivered in total
  double wall_s = 0.0;          // host seconds for the measured phase
  double virt_metric = 0.0;     // RTT in us (pingpong) or MB/s (bulk)
  // Steady-state allocation deltas across the measured phase; all three
  // must be zero or the event core has lost its zero-allocation property.
  std::uint64_t new_event_nodes = 0;      // Engine pool growth
  std::uint64_t new_heap_actions = 0;     // InlineAction heap fallbacks
  std::uint64_t new_payload_buffers = 0;  // PayloadPool growth
  // Throughput counts simulated (per-hop-equivalent) events so fused and
  // unfused runs are measured against the same denominator of work.
  double events_per_sec() const { return wall_s > 0 ? simulated / wall_s : 0; }
  double events_per_message() const {
    return messages > 0 ? static_cast<double>(simulated) / messages : 0;
  }
  double fused_fraction() const {
    return delivered > 0 ? static_cast<double>(fused) / delivered : 0;
  }
};

/// Snapshot of every allocation counter the hot path can touch.
struct AllocCounters {
  std::uint64_t event_nodes;
  std::uint64_t heap_actions;
  std::uint64_t payload_buffers;
  static AllocCounters sample(spam::sim::Engine& engine) {
    const auto pool = engine.pool_stats();
    const auto payload = spam::sphw::PayloadPool::instance().stats();
    return {pool.nodes_allocated, pool.action_heap_fallbacks,
            payload.buffers_allocated};
  }
};

bool g_fastpath = true;  // --no-fastpath forces the per-hop reference mode

spam::sphw::SpParams bench_params() {
  spam::sphw::SpParams p = spam::sphw::SpParams::thin_node();
  p.network_fastpath = g_fastpath;
  return p;
}

struct Fixture {
  spam::sim::World world;
  spam::sphw::SpMachine machine;
  spam::am::AmNet net;
  Fixture() : world(2), machine(world, bench_params()), net(machine) {}
};

/// Fused-delivery counters across both adapters of the fixture.
struct FusedSnap {
  std::uint64_t fused;
  std::uint64_t delivered;
  static FusedSnap sample(Fixture& f) {
    const auto& a0 = f.net.ep(0).adapter().stats();
    const auto& a1 = f.net.ep(1).adapter().stats();
    return {a0.fused_deliveries + a1.fused_deliveries,
            a0.rx_packets + a1.rx_packets};
  }
};

// 1-word AM ping-pong: `iters` measured round-trips after `warm` warmups.
WorkloadResult run_pingpong(int warm, int iters) {
  Fixture f;
  spam::am::Endpoint& e0 = f.net.ep(0);
  spam::am::Endpoint& e1 = f.net.ep(1);
  int pongs = 0;
  const int h_pong = e0.register_handler(
      [&](spam::am::Endpoint&, spam::am::Token, const spam::am::Word*, int) {
        ++pongs;
      });
  const int h_ping = e1.register_handler(
      [&, h_pong](spam::am::Endpoint& ep, spam::am::Token t,
                  const spam::am::Word* a, int) { ep.reply_1(t, h_pong, a[0]); });

  WorkloadResult r;
  f.world.spawn(0, [&](spam::sim::NodeCtx& ctx) {
    for (int i = 0; i < warm; ++i) {
      const int want = pongs + 1;
      e0.request_1(1, h_ping, 1);
      e0.poll_until([&] { return pongs >= want; });
    }
    const auto wall0 = Clock::now();
    const std::uint64_t ev0 = ctx.engine().events_executed();
    const std::uint64_t sim0 = ctx.engine().events_simulated();
    const FusedSnap f0 = FusedSnap::sample(f);
    const spam::sim::Time tv0 = ctx.now();
    const AllocCounters a0 = AllocCounters::sample(ctx.engine());
    for (int i = 0; i < iters; ++i) {
      const int want = pongs + 1;
      e0.request_1(1, h_ping, 1);
      e0.poll_until([&] { return pongs >= want; });
    }
    r.wall_s = secs_since(wall0);
    r.events = ctx.engine().events_executed() - ev0;
    r.simulated = ctx.engine().events_simulated() - sim0;
    r.messages = 2 * static_cast<std::uint64_t>(iters);  // request + reply
    const FusedSnap f1 = FusedSnap::sample(f);
    r.fused = f1.fused - f0.fused;
    r.delivered = f1.delivered - f0.delivered;
    r.virt_metric = spam::sim::to_usec(ctx.now() - tv0) / iters;
    const AllocCounters a1 = AllocCounters::sample(ctx.engine());
    r.new_event_nodes = a1.event_nodes - a0.event_nodes;
    r.new_heap_actions = a1.heap_actions - a0.heap_actions;
    r.new_payload_buffers = a1.payload_buffers - a0.payload_buffers;
  });
  f.world.spawn(1, [&](spam::sim::NodeCtx&) {
    e1.poll_until([&] { return pongs >= warm + iters; });
  });
  f.world.run();
  return r;
}

// Streams `reps` repetitions of 1 MB as pipelined 64 KB am_store_async
// operations; the virtual metric is the paper's Figure 3 bandwidth point.
WorkloadResult run_bulk(int warm, int reps) {
  constexpr std::size_t kMsg = 64 * 1024;
  constexpr std::size_t kStream = 1 << 20;
  constexpr std::size_t kMsgsPerRep = kStream / kMsg;
  Fixture f;
  spam::am::Endpoint& e0 = f.net.ep(0);
  spam::am::Endpoint& e1 = f.net.ep(1);
  std::vector<std::byte> src(kMsg, std::byte{0x5a});
  std::vector<std::byte> dst(kStream);
  bool done = false;

  WorkloadResult r;
  f.world.spawn(0, [&](spam::sim::NodeCtx& ctx) {
    std::size_t completions = 0;
    auto stream_once = [&] {
      const std::size_t want = completions + kMsgsPerRep;
      for (std::size_t i = 0; i < kMsgsPerRep; ++i) {
        e0.store_async(1, dst.data() + i * kMsg, src.data(), kMsg, 0, 0,
                       [&] { ++completions; });
      }
      e0.poll_until([&] { return completions >= want; });
    };
    for (int i = 0; i < warm; ++i) stream_once();
    const auto wall0 = Clock::now();
    const std::uint64_t ev0 = ctx.engine().events_executed();
    const std::uint64_t sim0 = ctx.engine().events_simulated();
    const FusedSnap f0 = FusedSnap::sample(f);
    const spam::sim::Time tv0 = ctx.now();
    const AllocCounters a0 = AllocCounters::sample(ctx.engine());
    for (int i = 0; i < reps; ++i) stream_once();
    r.wall_s = secs_since(wall0);
    r.events = ctx.engine().events_executed() - ev0;
    r.simulated = ctx.engine().events_simulated() - sim0;
    r.messages = static_cast<std::uint64_t>(kMsgsPerRep) * reps;
    const FusedSnap f1 = FusedSnap::sample(f);
    r.fused = f1.fused - f0.fused;
    r.delivered = f1.delivered - f0.delivered;
    const double virt_s = spam::sim::to_sec(ctx.now() - tv0);
    r.virt_metric = static_cast<double>(kStream) * reps / virt_s / 1e6;
    const AllocCounters a1 = AllocCounters::sample(ctx.engine());
    r.new_event_nodes = a1.event_nodes - a0.event_nodes;
    r.new_heap_actions = a1.heap_actions - a0.heap_actions;
    r.new_payload_buffers = a1.payload_buffers - a0.payload_buffers;
    done = true;
  });
  f.world.spawn(1, [&](spam::sim::NodeCtx&) {
    e1.poll_until([&] { return done; });
  });
  f.world.run();
  return r;
}

// Pre-change baseline, measured on the seed event core (std::function
// actions, priority_queue of by-value events, std::vector packet payloads)
// at commit 7c4f06b, Release, one core.  Update when re-baselining.
constexpr double kBaselinePingpongEps = 1894000.0;  // events/sec
constexpr double kBaselineBulkMbps = 39.4;          // host MB/s
// PR 3 per-hop event core (quick bulk, before the network fast path):
// the tentpole target is >= 2x this in simulated events per second.
constexpr double kPr3BulkEps = 7254038.0;

}  // namespace

int main(int argc, char** argv) {
  // Shared flag parsing (--quick/--out/--jobs); the workloads themselves
  // stay serial on purpose — they measure host wall-clock, and concurrent
  // runs would contend for cores and corrupt the numbers.
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--no-fastpath") == 0) {
      g_fastpath = false;
      for (int j = i; j < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  spam::bench::harness_init(&argc, argv);
  if (argc > 1) {
    std::fprintf(stderr, "usage: %s [--quick] [--no-fastpath] [--out <path>]\n",
                 argv[0]);
    return 2;
  }
  const bool quick = spam::bench::options().quick;
  const std::string out = spam::bench::options().out.empty()
                              ? "BENCH_host_perf.json"
                              : spam::bench::options().out;

  const int pp_iters = quick ? 2000 : 20000;
  const WorkloadResult pp = run_pingpong(quick ? 50 : 200, pp_iters);
  const int bulk_reps = quick ? 4 : 32;
  const WorkloadResult bulk = run_bulk(quick ? 1 : 4, bulk_reps);
  const double bulk_host_mbps =
      bulk.wall_s > 0 ? (1 << 20) * static_cast<double>(bulk_reps) /
                            bulk.wall_s / 1e6
                      : 0;

  std::string json = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"fastpath\": %s,\n", g_fastpath ? "true" : "false");
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"pingpong\": {\"iters\": %d, \"events\": %llu, "
                "\"events_simulated\": %llu, \"messages\": %llu, "
                "\"events_per_message\": %.2f, \"fused_fraction\": %.4f, "
                "\"wall_s\": %.6f, \"events_per_sec\": %.0f, "
                "\"virtual_rtt_us\": %.4f},\n",
                pp_iters, static_cast<unsigned long long>(pp.events),
                static_cast<unsigned long long>(pp.simulated),
                static_cast<unsigned long long>(pp.messages),
                pp.events_per_message(), pp.fused_fraction(), pp.wall_s,
                pp.events_per_sec(), pp.virt_metric);
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"bulk\": {\"stream_mb\": %d, \"events\": %llu, "
                "\"events_simulated\": %llu, \"messages\": %llu, "
                "\"events_per_message\": %.2f, \"fused_fraction\": %.4f, "
                "\"wall_s\": %.6f, \"events_per_sec\": %.0f, "
                "\"host_mb_per_s\": %.1f, \"virtual_bw_mbps\": %.4f},\n",
                bulk_reps, static_cast<unsigned long long>(bulk.events),
                static_cast<unsigned long long>(bulk.simulated),
                static_cast<unsigned long long>(bulk.messages),
                bulk.events_per_message(), bulk.fused_fraction(), bulk.wall_s,
                bulk.events_per_sec(), bulk_host_mbps, bulk.virt_metric);
  json += buf;
  const std::uint64_t total_allocs =
      pp.new_event_nodes + pp.new_heap_actions + pp.new_payload_buffers +
      bulk.new_event_nodes + bulk.new_heap_actions + bulk.new_payload_buffers;
  std::snprintf(
      buf, sizeof buf,
      "  \"steady_state_allocs\": {\"pingpong\": {\"event_nodes\": %llu, "
      "\"heap_actions\": %llu, \"payload_buffers\": %llu}, "
      "\"bulk\": {\"event_nodes\": %llu, \"heap_actions\": %llu, "
      "\"payload_buffers\": %llu}, \"zero\": %s},\n",
      static_cast<unsigned long long>(pp.new_event_nodes),
      static_cast<unsigned long long>(pp.new_heap_actions),
      static_cast<unsigned long long>(pp.new_payload_buffers),
      static_cast<unsigned long long>(bulk.new_event_nodes),
      static_cast<unsigned long long>(bulk.new_heap_actions),
      static_cast<unsigned long long>(bulk.new_payload_buffers),
      total_allocs == 0 ? "true" : "false");
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"baseline\": {\"pingpong_events_per_sec\": %.0f, "
                "\"bulk_host_mb_per_s\": %.1f, "
                "\"pr3_bulk_events_per_sec\": %.0f},\n",
                kBaselinePingpongEps, kBaselineBulkMbps, kPr3BulkEps);
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"speedup\": {\"pingpong\": %.3f, \"bulk\": %.3f, "
                "\"bulk_vs_pr3\": %.3f},\n",
                kBaselinePingpongEps > 0 ? pp.events_per_sec() / kBaselinePingpongEps
                                         : 0.0,
                kBaselineBulkMbps > 0 ? bulk_host_mbps / kBaselineBulkMbps : 0.0,
                bulk.events_per_sec() / kPr3BulkEps);
  json += buf;
  std::snprintf(buf, sizeof buf, "  \"quick\": %s\n}\n",
                quick ? "true" : "false");
  json += buf;

  std::fputs(json.c_str(), stdout);
  if (std::FILE* fp = std::fopen(out.c_str(), "w")) {
    std::fputs(json.c_str(), fp);
    std::fclose(fp);
  } else {
    std::fprintf(stderr, "bench_host_perf: cannot write %s\n", out.c_str());
    return 1;
  }
  return 0;
}
