// Parallel-sweep regression guard: times the Figure-3 bandwidth sweep run
// serially (--jobs 1) and across all host cores, checks the two rendered
// tables are byte-identical, and records wall-clock and speedup.  Unlike
// the table/figure benches this reports *host* time; it is the regression
// guard for the driver::SweepRunner/ResultCache path.
//
// Usage: bench_sweep_perf [--quick] [--jobs N] [--out <path>]
// Writes a JSON report (default: BENCH_sweep_perf.json in the cwd) and
// prints it to stdout.  Exit code is non-zero only if the serial and
// parallel sweeps disagree — speedup is recorded, not judged (a 1-core
// host cannot speed up, and honestly says so in "host_cores").
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "driver/sweep.hpp"
#include "harness.hpp"
#include "micro.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One cold sweep at `jobs` threads: clear the cache, compute every point,
/// render the table.  Returns (render, wall seconds).
std::pair<std::string, double> timed_sweep(
    int jobs, const std::vector<std::size_t>& sizes) {
  spam::driver::ResultCache::instance().clear();
  const auto t0 = Clock::now();
  spam::driver::SweepRunner(jobs).run(spam::bench::fig3_points(sizes));
  const double wall = secs_since(t0);
  return {spam::bench::fig3_table(sizes).render(), wall};
}

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  if (argc > 1) {
    std::fprintf(stderr, "usage: %s [--quick] [--jobs N] [--out <path>]\n",
                 argv[0]);
    return 2;
  }
  const bool quick = spam::bench::options().quick;
  const std::string out = spam::bench::options().out.empty()
                              ? "BENCH_sweep_perf.json"
                              : spam::bench::options().out;

  std::vector<std::size_t> sizes = spam::bench::figure3_sizes();
  if (quick) sizes = {16, 512, 8192, 65536, 1u << 20};

  const unsigned hc = std::thread::hardware_concurrency();
  const unsigned host_cores = hc == 0 ? 1 : hc;
  // At least two threads even on a 1-core host, so the identity check
  // always exercises the pooled path (speedup then honestly reads ~1x).
  const int jobs = spam::bench::options().jobs > 0
                       ? spam::bench::options().jobs
                       : static_cast<int>(host_cores < 2 ? 2 : host_cores);

  const auto [serial_render, serial_s] = timed_sweep(1, sizes);
  const auto [parallel_render, parallel_s] = timed_sweep(jobs, sizes);
  const bool identical = serial_render == parallel_render;
  const double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
  // On a 1-core host the two-thread run can only time-slice, so "speedup"
  // is informational (thread-pool overhead), not a parallelism regression.
  const bool gated_by_cores = host_cores == 1;

  std::fwrite(parallel_render.data(), 1, parallel_render.size(), stdout);

  std::string json = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"host_cores\": %u,\n  \"jobs\": %d,\n"
                "  \"points\": %zu,\n  \"serial_s\": %.6f,\n"
                "  \"parallel_s\": %.6f,\n  \"speedup\": %.3f,\n"
                "  \"gated_by_cores\": %s,\n"
                "  \"identical_output\": %s,\n  \"quick\": %s\n}\n",
                host_cores, jobs, sizes.size() * 6, serial_s, parallel_s,
                speedup, gated_by_cores ? "true" : "false",
                identical ? "true" : "false", quick ? "true" : "false");
  json += buf;

  std::fputs(json.c_str(), stdout);
  if (std::FILE* fp = std::fopen(out.c_str(), "w")) {
    std::fputs(json.c_str(), fp);
    std::fclose(fp);
  } else {
    std::fprintf(stderr, "bench_sweep_perf: cannot write %s\n", out.c_str());
    return 1;
  }
  if (!identical) {
    std::fprintf(stderr,
                 "bench_sweep_perf: serial and parallel sweeps disagree\n");
    return 1;
  }
  return 0;
}
