// Reproduces paper Table 5 (absolute Split-C benchmark times, 8 processors)
// and Figure 4 (times split into cpu and network phases, normalized to the
// SP AM column): blocked matrix multiply in two blockings, sample sort and
// radix sort in small-message and bulk variants, across five machines:
// SP AM, SP MPL, CM-5, Meiko CS-2, U-Net/ATM.
//
// Sort sizes are scaled to 64K keys (the scan of the paper garbles its key
// counts); shapes, not absolute seconds, are the reproduction target.
#include <benchmark/benchmark.h>

#include <functional>

#include "apps/splitc_apps.hpp"
#include "driver/sweep.hpp"
#include "harness.hpp"
#include "micro.hpp"

namespace {

using spam::apps::PhaseTimes;
using spam::apps::SortVariant;
using spam::splitc::Backend;
using spam::splitc::SplitCConfig;
using spam::splitc::SplitCWorld;

constexpr int kProcs = 8;
constexpr std::size_t kKeys = 64 * 1024;

struct MachineCfg {
  std::string name;
  SplitCConfig cfg;
};

std::vector<MachineCfg> machines() {
  std::vector<MachineCfg> v;
  SplitCConfig am;
  am.nodes = kProcs;
  am.backend = Backend::kSpAm;
  v.push_back({"SP AM", am});
  SplitCConfig mpl = am;
  mpl.backend = Backend::kSpMpl;
  v.push_back({"SP MPL", mpl});
  for (auto lp : {spam::logp::LogGpParams::cm5(),
                  spam::logp::LogGpParams::meiko_cs2(),
                  spam::logp::LogGpParams::unet_atm()}) {
    SplitCConfig c = am;
    c.backend = Backend::kLogGp;
    c.loggp = lp;
    v.push_back({lp.name, c});
  }
  return v;
}

struct BenchDef {
  const char* name;
  std::function<PhaseTimes(SplitCWorld&)> run;
};

std::vector<BenchDef> bench_defs() {
  return {
      {"mm 4x4 blocks of 128x128",
       [](SplitCWorld& w) { return spam::apps::run_matmul(w, 4, 128); }},
      {"mm 16x16 blocks of 16x16",
       [](SplitCWorld& w) { return spam::apps::run_matmul(w, 16, 16); }},
      {"smpsort small-msg 64K",
       [](SplitCWorld& w) {
         return spam::apps::run_sample_sort(w, kKeys,
                                            SortVariant::kSmallMessage);
       }},
      {"smpsort bulk 64K",
       [](SplitCWorld& w) {
         return spam::apps::run_sample_sort(w, kKeys, SortVariant::kBulk);
       }},
      {"rdxsort small-msg 64K",
       [](SplitCWorld& w) {
         return spam::apps::run_radix_sort(w, kKeys,
                                           SortVariant::kSmallMessage);
       }},
      {"rdxsort bulk 64K",
       [](SplitCWorld& w) {
         return spam::apps::run_radix_sort(w, kKeys, SortVariant::kBulk);
       }},
  };
}

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  const auto mach = machines();
  const auto defs = bench_defs();
  // results[bench][machine], filled by the parallel sweep below; the
  // registered benchmarks then only report the stored values.
  std::vector<std::vector<PhaseTimes>> results(
      defs.size(), std::vector<PhaseTimes>(mach.size()));

  spam::driver::SweepRunner(spam::bench::options().jobs)
      .run_indexed(defs.size() * mach.size(), [&](std::size_t i) {
        const std::size_t b = i / mach.size();
        const std::size_t m = i % mach.size();
        SplitCWorld w(mach[m].cfg);
        results[b][m] = defs[b].run(w);
      });

  for (std::size_t b = 0; b < defs.size(); ++b) {
    for (std::size_t m = 0; m < mach.size(); ++m) {
      benchmark::RegisterBenchmark(
          (std::string("Table5/") + defs[b].name + "/" + mach[m].name).c_str(),
          [&, b, m](benchmark::State& state) {
            for (auto _ : state) {
              state.SetIterationTime(results[b][m].total_s);
            }
            state.counters["total_s"] = results[b][m].total_s;
            state.counters["cpu_s"] = results[b][m].cpu_s;
            state.counters["net_s"] = results[b][m].comm_s;
            state.counters["valid"] = results[b][m].valid ? 1 : 0;
          })
          ->UseManualTime()
          ->Iterations(1);
    }
  }
  benchmark::RunSpecifiedBenchmarks();

  spam::report::Table tab(
      "Table 5 — Split-C benchmark times on 8 processors (seconds)");
  {
    std::vector<std::string> hdr{"benchmark"};
    for (const auto& m : mach) hdr.push_back(m.name);
    tab.set_header(hdr);
  }
  for (std::size_t b = 0; b < defs.size(); ++b) {
    std::vector<std::string> row{defs[b].name};
    for (std::size_t m = 0; m < mach.size(); ++m) {
      row.push_back(spam::report::fmt(results[b][m].total_s, 3) +
                    (results[b][m].valid ? "" : " (INVALID)"));
    }
    tab.add_row(row);
  }
  spam::bench::emit(tab);

  spam::report::Table fig(
      "Figure 4 — cpu / net split, normalized to the SP AM total");
  {
    std::vector<std::string> hdr{"benchmark"};
    for (const auto& m : mach) hdr.push_back(m.name);
    fig.set_header(hdr);
  }
  for (std::size_t b = 0; b < defs.size(); ++b) {
    std::vector<std::string> row{defs[b].name};
    const double base = results[b][0].total_s;
    for (std::size_t m = 0; m < mach.size(); ++m) {
      row.push_back("cpu " + spam::report::fmt(results[b][m].cpu_s / base, 2) +
                    " net " +
                    spam::report::fmt(results[b][m].comm_s / base, 2));
    }
    fig.add_row(row);
  }
  spam::bench::emit(fig);

  std::printf(
      "\nShape checks (paper): MPL >> AM on small-message sorts; MPL ~= AM "
      "on bulk runs;\nSP cpu phases shortest of all machines; SP AM net "
      "phase competitive with CM-5/CS-2\ndespite higher latency.\n");
  return spam::bench::harness_finish();
}
