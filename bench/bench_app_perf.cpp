// Host-side performance of the application hot path: how fast the
// simulator runs the paper's Table 5 Split-C apps and Table 6 NAS kernels,
// and what the node-local virtual clocks buy on that path.  Unlike the
// table/figure benches (which report *virtual* time, reproducing the
// paper), this bench reports *host* time: it is the regression guard for
// the local-clock fast path.
//
// Each workload runs three times per mode (two warmup repetitions plus a
// measured one, all in the same world, so pools are warm and the measured
// rep is allocation-free) in two modes:
//   reference — localclock off: every charge() is a full elapse();
//   deferred  — localclock on: charges accumulate into the per-node debt
//               ledger and settle at interaction points.
// Virtual results (paper times, checksums) must be bit-identical across
// the two modes — the optimization may only move host time, never virtual
// time — and the JSON reports the comparison alongside the speedup.
// `events_per_sec` counts simulated (per-charge-equivalent) events so both
// modes are measured against the same denominator of work;
// `switches_per_message` exposes how many fiber round-trips each AM-level
// packet costs after debt folding.
//
// Usage: bench_app_perf [--quick] [--no-localclock] [--out <path>]
// --no-localclock measures only the reference mode (for profiling the
// per-call path); no speedup is reported.  Writes a JSON report (default:
// BENCH_app_perf.json in the cwd) and prints it to stdout.  Exit code is 0
// even when slower than baseline: judging the numbers is the driver's job,
// producing them is ours.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "apps/nas.hpp"
#include "apps/splitc_apps.hpp"
#include "harness.hpp"
#include "mpif/mpi_world.hpp"
#include "sim/fiber.hpp"
#include "sphw/payload.hpp"
#include "splitc/splitc_world.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Snapshot of every allocation counter the hot path can touch.
struct AllocCounters {
  std::uint64_t event_nodes;
  std::uint64_t heap_actions;
  std::uint64_t payload_buffers;
  static AllocCounters sample(spam::sim::Engine& engine) {
    const auto pool = engine.pool_stats();
    const auto payload = spam::sphw::PayloadPool::instance().stats();
    return {pool.nodes_allocated, pool.action_heap_fallbacks,
            payload.buffers_allocated};
  }
};

/// One workload in one mode: the measured (second) repetition.
struct ModeResult {
  double wall_s = 0.0;
  double virt_s = 0.0;          // the paper-facing virtual result
  std::uint64_t checksum = 0;   // app-level verification value
  bool valid = false;
  std::uint64_t events = 0;     // engine events executed
  std::uint64_t simulated = 0;  // per-charge-equivalent events
  std::uint64_t switches = 0;   // fiber resumes
  std::uint64_t messages = 0;   // AM-level packets (adapter tx)
  std::uint64_t new_allocs = 0; // pool growth across the measured rep
  double events_per_sec() const { return wall_s > 0 ? simulated / wall_s : 0; }
  double switches_per_message() const {
    return messages > 0 ? static_cast<double>(switches) / messages : 0;
  }
};

struct WorkloadResult {
  std::string name;
  ModeResult ref;       // localclock off
  ModeResult fast;      // localclock on (empty when --no-localclock)
  bool virt_identical = false;
};

bool g_localclock = true;  // --no-localclock measures only the reference

// A mode runner: executes the workload once in a prepared world and
// returns (virtual seconds, checksum, valid).
struct VirtResult {
  double virt_s;
  std::uint64_t checksum;
  bool valid;
};

/// Runs `rep` twice in the world behind (engine, tx_packets), measuring
/// the second repetition: warm pools, steady-state fibers.
template <typename Rep, typename TxPackets>
ModeResult measure(spam::sim::Engine& engine, TxPackets&& tx_packets,
                   Rep&& rep) {
  // Two warmup repetitions: the second rep's event pattern differs
  // slightly from the first (virtual time no longer starts at zero), so
  // one warmup can leave the event pool a node short of its steady state.
  rep();
  rep();
  ModeResult r;
  const auto wall0 = Clock::now();
  const std::uint64_t ev0 = engine.events_executed();
  const std::uint64_t sim0 = engine.events_simulated();
  const std::uint64_t sw0 = spam::sim::Fiber::resume_count();
  const std::uint64_t tx0 = tx_packets();
  const AllocCounters a0 = AllocCounters::sample(engine);
  const VirtResult v = rep();
  r.wall_s = secs_since(wall0);
  r.virt_s = v.virt_s;
  r.checksum = v.checksum;
  r.valid = v.valid;
  r.events = engine.events_executed() - ev0;
  r.simulated = engine.events_simulated() - sim0;
  r.switches = spam::sim::Fiber::resume_count() - sw0;
  r.messages = tx_packets() - tx0;
  const AllocCounters a1 = AllocCounters::sample(engine);
  r.new_allocs = (a1.event_nodes - a0.event_nodes) +
                 (a1.heap_actions - a0.heap_actions) +
                 (a1.payload_buffers - a0.payload_buffers);
  return r;
}

// --- Table 5: Split-C apps on the SP AM machine, 8 processors ---------------

ModeResult run_splitc_mode(
    bool local_clock,
    const std::function<VirtResult(spam::splitc::SplitCWorld&)>& app) {
  spam::splitc::SplitCConfig cfg;
  cfg.nodes = 8;
  cfg.backend = spam::splitc::Backend::kSpAm;
  cfg.hw.local_clock = local_clock;
  spam::splitc::SplitCWorld w(cfg);
  auto tx = [&w] {
    std::uint64_t n = 0;
    for (int i = 0; i < w.size(); ++i) {
      n += w.sp_machine()->adapter(i).stats().tx_packets;
    }
    return n;
  };
  return measure(w.world().engine(), tx, [&] { return app(w); });
}

// --- Table 6: NAS kernels on MPI-AM (optimized), 4 nodes --------------------

ModeResult run_nas_mode(
    bool local_clock,
    const std::function<VirtResult(spam::mpi::MpiWorld&)>& app) {
  spam::mpi::MpiWorldConfig cfg;
  cfg.nodes = 4;
  cfg.impl = spam::mpi::MpiImpl::kAmOptimized;
  cfg.hw.local_clock = local_clock;
  spam::mpi::MpiWorld w(cfg);
  auto tx = [&w] {
    std::uint64_t n = 0;
    for (int i = 0; i < w.size(); ++i) {
      n += w.machine().adapter(i).stats().tx_packets;
    }
    return n;
  };
  return measure(w.world().engine(), tx, [&] { return app(w); });
}

template <typename RunMode>
WorkloadResult run_workload(const std::string& name, RunMode&& run_mode) {
  WorkloadResult r;
  r.name = name;
  r.ref = run_mode(false);
  if (g_localclock) {
    r.fast = run_mode(true);
    r.virt_identical = r.ref.virt_s == r.fast.virt_s &&
                       r.ref.checksum == r.fast.checksum &&
                       r.ref.valid && r.fast.valid;
  }
  return r;
}

VirtResult from_phases(const spam::apps::PhaseTimes& pt) {
  return {pt.total_s, pt.checksum, pt.valid};
}

VirtResult from_nas(const spam::apps::NasResult& nr) {
  // Fold the floating checksum's bits in so "identical" means bit-identical.
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof nr.checksum);
  std::memcpy(&bits, &nr.checksum, sizeof bits);
  return {nr.time_s, bits, nr.finished};
}

// Reference-mode suite wall seconds measured at the introduction of the
// local clock (quick mode, one core, RelWithDebInfo): the per-call charge
// path this PR's deferral replaces.  Update when re-baselining.
constexpr double kBaselineQuickSuiteWallS = 0.130;

}  // namespace

int main(int argc, char** argv) {
  // The workloads stay serial on purpose — they measure host wall-clock,
  // and concurrent runs would contend for cores and corrupt the numbers.
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--no-localclock") == 0) {
      g_localclock = false;
      for (int j = i; j < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  spam::bench::harness_init(&argc, argv);
  if (argc > 1) {
    std::fprintf(stderr,
                 "usage: %s [--quick] [--no-localclock] [--out <path>]\n",
                 argv[0]);
    return 2;
  }
  const bool quick = spam::bench::options().quick;
  const std::string out = spam::bench::options().out.empty()
                              ? "BENCH_app_perf.json"
                              : spam::bench::options().out;

  using spam::apps::SortVariant;
  const std::size_t keys = quick ? 8 * 1024 : 64 * 1024;
  const int mm_bd = quick ? 32 : 64;
  const int nas_n = quick ? 16 : 32;
  const int lu_n = quick ? 64 : 128;

  std::vector<WorkloadResult> results;
  results.push_back(run_workload("mm", [&](bool lc) {
    return run_splitc_mode(lc, [&](spam::splitc::SplitCWorld& w) {
      return from_phases(spam::apps::run_matmul(w, 4, mm_bd));
    });
  }));
  results.push_back(run_workload("smpsort_small", [&](bool lc) {
    return run_splitc_mode(lc, [&](spam::splitc::SplitCWorld& w) {
      return from_phases(
          spam::apps::run_sample_sort(w, keys, SortVariant::kSmallMessage));
    });
  }));
  results.push_back(run_workload("smpsort_bulk", [&](bool lc) {
    return run_splitc_mode(lc, [&](spam::splitc::SplitCWorld& w) {
      return from_phases(
          spam::apps::run_sample_sort(w, keys, SortVariant::kBulk));
    });
  }));
  results.push_back(run_workload("rdxsort_small", [&](bool lc) {
    return run_splitc_mode(lc, [&](spam::splitc::SplitCWorld& w) {
      return from_phases(
          spam::apps::run_radix_sort(w, keys, SortVariant::kSmallMessage));
    });
  }));
  results.push_back(run_workload("rdxsort_bulk", [&](bool lc) {
    return run_splitc_mode(lc, [&](spam::splitc::SplitCWorld& w) {
      return from_phases(
          spam::apps::run_radix_sort(w, keys, SortVariant::kBulk));
    });
  }));
  results.push_back(run_workload("nas_ft", [&](bool lc) {
    return run_nas_mode(lc, [&](spam::mpi::MpiWorld& w) {
      return from_nas(spam::apps::run_ft(w, nas_n, 1));
    });
  }));
  results.push_back(run_workload("nas_mg", [&](bool lc) {
    return run_nas_mode(lc, [&](spam::mpi::MpiWorld& w) {
      return from_nas(spam::apps::run_mg(w, nas_n, 1));
    });
  }));
  results.push_back(run_workload("nas_lu", [&](bool lc) {
    return run_nas_mode(lc, [&](spam::mpi::MpiWorld& w) {
      return from_nas(spam::apps::run_lu(w, lu_n, 1));
    });
  }));
  results.push_back(run_workload("nas_bt", [&](bool lc) {
    return run_nas_mode(lc, [&](spam::mpi::MpiWorld& w) {
      return from_nas(spam::apps::run_bt(w, nas_n, 1));
    });
  }));
  results.push_back(run_workload("nas_sp", [&](bool lc) {
    return run_nas_mode(lc, [&](spam::mpi::MpiWorld& w) {
      return from_nas(spam::apps::run_sp(w, nas_n, 1));
    });
  }));

  double ref_wall = 0, fast_wall = 0;
  std::uint64_t total_allocs = 0;
  bool all_identical = true, all_valid = true;
  for (const WorkloadResult& r : results) {
    ref_wall += r.ref.wall_s;
    fast_wall += r.fast.wall_s;
    total_allocs += r.ref.new_allocs + r.fast.new_allocs;
    all_valid = all_valid && r.ref.valid;
    if (g_localclock) all_identical = all_identical && r.virt_identical;
  }

  std::string json = "{\n";
  char buf[640];
  std::snprintf(buf, sizeof buf, "  \"localclock\": %s,\n",
                g_localclock ? "true" : "false");
  json += buf;
  json += "  \"workloads\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    auto mode_json = [&buf](const char* key, const ModeResult& m) {
      std::snprintf(
          buf, sizeof buf,
          "\"%s\": {\"wall_s\": %.6f, \"virt_s\": %.9f, \"valid\": %s, "
          "\"events\": %llu, \"events_simulated\": %llu, "
          "\"events_per_sec\": %.0f, \"switches\": %llu, \"messages\": %llu, "
          "\"switches_per_message\": %.3f, \"new_allocs\": %llu}",
          key, m.wall_s, m.virt_s, m.valid ? "true" : "false",
          static_cast<unsigned long long>(m.events),
          static_cast<unsigned long long>(m.simulated), m.events_per_sec(),
          static_cast<unsigned long long>(m.switches),
          static_cast<unsigned long long>(m.messages),
          m.switches_per_message(),
          static_cast<unsigned long long>(m.new_allocs));
      return std::string(buf);
    };
    json += "    \"" + r.name + "\": {";
    json += mode_json("reference", r.ref);
    if (g_localclock) {
      json += ", ";
      json += mode_json("deferred", r.fast);
      std::snprintf(buf, sizeof buf,
                    ", \"speedup\": %.3f, \"virt_identical\": %s",
                    r.fast.wall_s > 0 ? r.ref.wall_s / r.fast.wall_s : 0.0,
                    r.virt_identical ? "true" : "false");
      json += buf;
    }
    json += i + 1 < results.size() ? "},\n" : "}\n";
  }
  json += "  },\n";
  std::snprintf(
      buf, sizeof buf,
      "  \"suite\": {\"reference_wall_s\": %.6f, \"deferred_wall_s\": %.6f, "
      "\"speedup\": %.3f, \"virt_identical\": %s, \"all_valid\": %s},\n",
      ref_wall, fast_wall,
      g_localclock && fast_wall > 0 ? ref_wall / fast_wall : 0.0,
      all_identical ? "true" : "false", all_valid ? "true" : "false");
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"steady_state_allocs\": {\"total\": %llu, \"zero\": %s},\n",
                static_cast<unsigned long long>(total_allocs),
                total_allocs == 0 ? "true" : "false");
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"baseline\": {\"quick_suite_wall_s\": %.3f},\n",
                kBaselineQuickSuiteWallS);
  json += buf;
  std::snprintf(buf, sizeof buf, "  \"quick\": %s\n}\n",
                quick ? "true" : "false");
  json += buf;

  std::fputs(json.c_str(), stdout);
  if (std::FILE* fp = std::fopen(out.c_str(), "w")) {
    std::fputs(json.c_str(), fp);
    std::fclose(fp);
  } else {
    std::fprintf(stderr, "bench_app_perf: cannot write %s\n", out.c_str());
    return 1;
  }
  return 0;
}
