// Extension: direct evidence for the paper's FT explanation — MPICH's
// generic MPI_Alltoall walks destinations in the same order on every rank
// (all senders hammer rank 0, then rank 1, ...), while a vendor-style
// staggered schedule spreads the load.  Measures both on 16 nodes across
// block sizes, on the same MPI-AM device.
#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "harness.hpp"
#include "micro.hpp"

namespace {

using spam::mpi::MpiAmConfig;
using spam::mpi::MpiImpl;
using spam::mpi::MpiWorldConfig;

/// A one-off Mpi subclass flag is overkill: the devices already pick the
/// schedule via tuned_collectives(); MPI-AM uses the naive one and MPI-F
/// the staggered one.  To isolate the *schedule* (same transport), we run
/// the staggered schedule by hand over MPI-AM.
double alltoall_us(bool staggered, std::size_t block, int nodes) {
  MpiWorldConfig cfg;
  cfg.impl = MpiImpl::kAmOptimized;
  cfg.nodes = nodes;
  spam::mpi::MpiWorld w(cfg);
  std::vector<std::byte> sbuf(block * static_cast<std::size_t>(nodes),
                              std::byte{1});
  std::vector<std::byte> rbuf(block * static_cast<std::size_t>(nodes),
                              std::byte{0});
  spam::sim::Time elapsed = 0;

  w.run([&](spam::mpi::Mpi& mpi) {
    const int p = mpi.size();
    const int me = mpi.rank();
    mpi.barrier();
    const spam::sim::Time t0 = mpi.ctx().now();
    std::vector<int> reqs;
    for (int i = 0; i < p; ++i) {
      if (i == me) continue;
      reqs.push_back(mpi.irecv(rbuf.data() + static_cast<std::size_t>(i) * block,
                               block, i, 77));
    }
    if (staggered) {
      for (int k = 1; k < p; ++k) {
        const int dst = (me + k) % p;
        mpi.send(sbuf.data() + static_cast<std::size_t>(dst) * block, block,
                 dst, 77);
      }
    } else {
      for (int dst = 0; dst < p; ++dst) {
        if (dst == me) continue;
        mpi.send(sbuf.data() + static_cast<std::size_t>(dst) * block, block,
                 dst, 77);
      }
    }
    mpi.waitall(reqs);
    mpi.barrier();
    if (me == 0) elapsed = mpi.ctx().now() - t0;
  });
  return spam::sim::to_usec(elapsed);
}

const std::size_t kBlocks[] = {256, 1024, 4096, 16384};

// g_us[staggered][block index], filled by the parallel sweep in main().
std::array<std::array<double, 4>, 2> g_us{};

void BM_Alltoall(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = g_us[state.range(0)][state.range(1)];
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}
BENCHMARK(BM_Alltoall)
    ->ArgsProduct({{0, 1}, {0, 1, 2, 3}})
    ->UseManualTime()
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  {  // 2 schedules x 4 block sizes across --jobs threads.
    std::vector<std::function<void()>> points;
    for (int st = 0; st < 2; ++st) {
      for (int b = 0; b < 4; ++b) {
        points.push_back([st, b] {
          g_us[st][b] = alltoall_us(st != 0, kBlocks[b], 16);
        });
      }
    }
    spam::bench::prewarm(points);
  }
  benchmark::RunSpecifiedBenchmarks();

  spam::report::Table tab(
      "Extension — alltoall schedule, 16 nodes, same MPI-AM transport");
  tab.set_header({"block bytes", "MPICH naive (us)", "staggered (us)",
                  "naive / staggered"});
  for (int b = 0; b < 4; ++b) {
    const double naive = g_us[0][b];
    const double stag = g_us[1][b];
    tab.add_row({std::to_string(kBlocks[b]), spam::report::fmt(naive),
                 spam::report::fmt(stag), spam::report::fmt(naive / stag, 2)});
  }
  spam::bench::emit(tab);
  std::printf(
      "\nReading: the synchronized destination order creates the receiver "
      "hot spot the\npaper blames for FT's MPICH gap ('all processors try "
      "to send to the same\nprocessor at the same time, rather than "
      "spreading out the communication').\n");
  return spam::bench::harness_finish();
}
