// Extension: interrupt-driven reception vs polling (the paper notes the
// mode exists but analyzes polling only).  Quantifies the trade the paper's
// choice implies: polling gives minimum latency when the receiver is
// attentive; interrupts bound response time during long computations at a
// per-message premium.
#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "harness.hpp"
#include "micro.hpp"

namespace {

using spam::am::AmParams;

/// Round-trip when the responder sits in poll_until (attentive).
double attentive_rtt_us(bool interrupts) {
  AmParams amp;
  amp.interrupt_driven = interrupts;
  return spam::bench::am_rtt_us(1, spam::sphw::SpParams::thin_node(), amp);
}

/// Mean response time when the responder is busy computing in 5 ms slices.
double busy_response_us(bool interrupts) {
  AmParams amp;
  amp.interrupt_driven = interrupts;
  spam::sim::World world(2);
  spam::sphw::SpMachine machine(world, spam::sphw::SpParams::thin_node());
  spam::am::AmNet net(machine, amp);
  spam::am::Endpoint& e0 = net.ep(0);
  spam::am::Endpoint& e1 = net.ep(1);

  int pongs = 0;
  const int h_pong = e0.register_handler(
      [&](spam::am::Endpoint&, spam::am::Token, const spam::am::Word*, int) {
        ++pongs;
      });
  const int h_ping = e1.register_handler(
      [&](spam::am::Endpoint& ep, spam::am::Token t, const spam::am::Word* a,
          int) { ep.reply_1(t, h_pong, a[0]); });

  constexpr int kMsgs = 8;
  spam::sim::Time total = 0;
  bool stop = false;
  world.spawn(0, [&](spam::sim::NodeCtx& ctx) {
    const spam::sim::Time t0 = ctx.now();
    for (int i = 0; i < kMsgs; ++i) {
      const int want = pongs + 1;
      e0.request_1(1, h_ping, static_cast<spam::am::Word>(i));
      e0.poll_until([&] { return pongs >= want; });
    }
    total = ctx.now() - t0;
    stop = true;
  });
  world.spawn(1, [&](spam::sim::NodeCtx&) {
    // The responder "computes" the whole time; only interrupts (or the
    // compute slice boundaries, where it polls once) service requests.
    while (!stop) {
      e1.compute(5000.0);
      e1.poll();
    }
  });
  world.run();
  return spam::sim::to_usec(total) / kMsgs;
}

void BM_AttentiveRtt(benchmark::State& state) {
  const bool irq = state.range(0) != 0;
  double us = 0;
  for (auto _ : state) {
    us = attentive_rtt_us(irq);
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}
BENCHMARK(BM_AttentiveRtt)->Arg(0)->Arg(1)->UseManualTime()->Iterations(1);

// g_busy[irq], filled by the parallel sweep in main(); attentive_rtt_us
// goes through the ResultCache.
std::array<double, 2> g_busy{};

void BM_BusyResponse(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = g_busy[state.range(0)];
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}
BENCHMARK(BM_BusyResponse)->Arg(0)->Arg(1)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  spam::bench::prewarm({[] { attentive_rtt_us(false); },
                        [] { attentive_rtt_us(true); },
                        [] { g_busy[0] = busy_response_us(false); },
                        [] { g_busy[1] = busy_response_us(true); }});
  benchmark::RunSpecifiedBenchmarks();

  spam::report::Table tab(
      "Extension — polling vs interrupt-driven reception");
  tab.set_header({"scenario", "polling", "interrupt-driven"});
  tab.add_row({"round-trip, attentive responder (us)",
               spam::report::fmt(attentive_rtt_us(false)),
               spam::report::fmt(attentive_rtt_us(true))});
  tab.add_row({"round-trip, responder computing 5 ms slices (us)",
               spam::report::fmt(g_busy[0]), spam::report::fmt(g_busy[1])});
  spam::bench::emit(tab);
  std::printf(
      "\nReading: with an attentive responder polling wins (no interrupt "
      "cost on the\ncritical path); when the responder computes, polling "
      "defers responses to slice\nboundaries while interrupts bound them "
      "near RTT + interrupt latency — the trade\nthe paper sidesteps by "
      "polling everywhere.\n");
  return spam::bench::harness_finish();
}
