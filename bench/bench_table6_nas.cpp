// Reproduces paper Table 6: NAS benchmark run-times on 16 thin SP nodes,
// MPI-F vs MPICH-over-AM.  Problem sizes are reduced from class A (the
// simulation runs every byte of communication); the reproduction target is
// the *ratio* between the two MPI implementations per kernel and the FT
// gap caused by MPICH's naive alltoall.
#include <benchmark/benchmark.h>

#include <functional>

#include "apps/nas.hpp"
#include "driver/sweep.hpp"
#include "harness.hpp"
#include "micro.hpp"

namespace {

using spam::apps::NasResult;
using spam::mpi::MpiImpl;
using spam::mpi::MpiWorldConfig;

constexpr int kNodes = 16;

MpiWorldConfig cfg_of(MpiImpl impl) {
  MpiWorldConfig cfg;
  cfg.impl = impl;
  cfg.nodes = kNodes;
  if (impl == MpiImpl::kMpiF) cfg.f_cfg = spam::mpif::MpiFConfig::thin();
  return cfg;
}

struct Kernel {
  const char* name;
  double paper_mpif_s;
  double paper_mpiam_s;
  std::function<NasResult(spam::mpi::MpiWorld&)> run;
};

std::vector<Kernel> kernels() {
  return {
      {"BT", 39.0, 39.16,
       [](spam::mpi::MpiWorld& w) { return spam::apps::run_bt(w, 48, 4); }},
      {"FT", 31.87, 35.49,
       [](spam::mpi::MpiWorld& w) { return spam::apps::run_ft(w, 64, 4); }},
      {"LU", 16.6, 20.9,
       [](spam::mpi::MpiWorld& w) { return spam::apps::run_lu(w, 256, 4); }},
      {"MG", 7.9, 8.19,
       [](spam::mpi::MpiWorld& w) { return spam::apps::run_mg(w, 64, 4); }},
      {"SP", 40.37, 49.08,
       [](spam::mpi::MpiWorld& w) { return spam::apps::run_sp(w, 48, 4); }},
  };
}

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  const auto ks = kernels();
  // (kernel x impl) results, filled by the parallel sweep; the registered
  // benchmarks then only report the stored values.
  std::vector<NasResult> am_res(ks.size()), f_res(ks.size());

  spam::driver::SweepRunner(spam::bench::options().jobs)
      .run_indexed(ks.size() * 2, [&](std::size_t j) {
        const std::size_t i = j / 2;
        if (j % 2 == 0) {
          spam::mpi::MpiWorld w(cfg_of(MpiImpl::kMpiF));
          f_res[i] = ks[i].run(w);
        } else {
          spam::mpi::MpiWorld w(cfg_of(MpiImpl::kAmOptimized));
          am_res[i] = ks[i].run(w);
        }
      });

  for (std::size_t i = 0; i < ks.size(); ++i) {
    benchmark::RegisterBenchmark(
        (std::string("Table6/") + ks[i].name + "/MPI-F").c_str(),
        [&, i](benchmark::State& state) {
          for (auto _ : state) state.SetIterationTime(f_res[i].time_s);
          state.counters["sim_s"] = f_res[i].time_s;
        })
        ->UseManualTime()
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        (std::string("Table6/") + ks[i].name + "/MPI-AM").c_str(),
        [&, i](benchmark::State& state) {
          for (auto _ : state) state.SetIterationTime(am_res[i].time_s);
          state.counters["sim_s"] = am_res[i].time_s;
        })
        ->UseManualTime()
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();

  spam::report::Table tab(
      "Table 6 — NAS kernels on 16 thin nodes (reduced size)");
  tab.set_header({"kernel", "paper MPI-F (s)", "paper MPI-AM (s)",
                  "paper ratio", "measured MPI-F (s)", "measured MPI-AM (s)",
                  "measured ratio", "checksums match"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    tab.add_row({ks[i].name, spam::report::fmt(ks[i].paper_mpif_s, 2),
                 spam::report::fmt(ks[i].paper_mpiam_s, 2),
                 spam::report::fmt(ks[i].paper_mpiam_s / ks[i].paper_mpif_s, 2),
                 spam::report::fmt(f_res[i].time_s, 3),
                 spam::report::fmt(am_res[i].time_s, 3),
                 spam::report::fmt(am_res[i].time_s / f_res[i].time_s, 2),
                 am_res[i].checksum == f_res[i].checksum ? "yes" : "NO"});
  }
  spam::bench::emit(tab);

  std::printf(
      "\nShape checks (paper): MPI-AM within a few %% of MPI-F on BT/MG, "
      "~10%% slower on FT\n(MPICH generic alltoall hot spot) and slower on "
      "LU/SP (MPICH nonblocking path).\nAbsolute seconds differ: kernels "
      "are reduced from class A.\n");
  return spam::bench::harness_finish();
}
