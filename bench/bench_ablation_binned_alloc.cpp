// Ablation: the optimized buffered-protocol pieces the paper calls out in
// section 4.2 — the binned receive-buffer allocator and batched frees —
// measured as small-message MPI latency and throughput, plus the allocator
// search-cost proxy.
#include <benchmark/benchmark.h>

#include <array>

#include "driver/sweep.hpp"
#include "harness.hpp"
#include "micro.hpp"
#include "mpi/buffer_alloc.hpp"
#include "sim/rng.hpp"

namespace {

using spam::mpi::MpiAmConfig;
using spam::mpi::MpiImpl;
using spam::mpi::MpiWorldConfig;

MpiWorldConfig variant(bool binned, bool batch_frees) {
  MpiWorldConfig cfg;
  cfg.nodes = 2;
  cfg.impl = MpiImpl::kAmOptimized;
  cfg.am_cfg = MpiAmConfig::opt();
  cfg.am_cfg.binned_allocator = binned;
  cfg.am_cfg.batch_frees = batch_frees;
  return cfg;
}

/// Per-message time of a mixed-size stream consumed out of order — the
/// pattern that fragments the receive buffer and makes first-fit walks
/// long (the paper's profiling scenario).
double small_msg_throughput_us(const MpiWorldConfig& cfg) {
  spam::mpi::MpiWorld w(cfg);
  constexpr int kGroups = 50;
  constexpr int kPerGroup = 8;
  constexpr int kMsgs = kGroups * kPerGroup;
  // Ragged size mix, all within the bins' 1 KB class.
  auto size_of = [](int i) {
    static const std::size_t s[] = {96, 512, 960, 224, 736, 160, 864, 416};
    return s[i % kPerGroup];
  };
  std::vector<std::byte> buf(1024, std::byte{1});
  spam::sim::Time elapsed = 0;
  w.run([&](spam::mpi::Mpi& m) {
    if (m.rank() == 0) {
      const spam::sim::Time t0 = m.ctx().now();
      for (int i = 0; i < kMsgs; ++i) {
        m.send(buf.data(), size_of(i), 1, i % kPerGroup);
      }
      char fin = 0;
      m.recv(&fin, 1, 1, 100);
      elapsed = m.ctx().now() - t0;
    } else {
      // Consume each group of 8 in reverse tag order: frees return out of
      // order, so holes churn and first-fit lists fragment.
      for (int g = 0; g < kGroups; ++g) {
        for (int t = kPerGroup - 1; t >= 0; --t) {
          m.recv(buf.data(), size_of(t), 0, t);
        }
      }
      char fin = 1;
      m.send(&fin, 1, 0, 100);
    }
  });
  return spam::sim::to_usec(elapsed) / kMsgs;
}

// g_per_msg[binned][batch], filled by the parallel sweep in main().
std::array<std::array<double, 2>, 2> g_per_msg{};

void BM_SmallMsgPerMessage(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = g_per_msg[state.range(0)][state.range(1)];
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["us_per_msg"] = us;
}
BENCHMARK(BM_SmallMsgPerMessage)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->UseManualTime()
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  {  // All four variants, per-message stream and cached 64 B hop latency.
    std::vector<std::function<void()>> points;
    for (int binned = 0; binned < 2; ++binned) {
      for (int batch = 0; batch < 2; ++batch) {
        points.push_back([binned, batch] {
          g_per_msg[binned][batch] =
              small_msg_throughput_us(variant(binned != 0, batch != 0));
        });
        points.push_back([binned, batch] {
          spam::bench::mpi_hop_latency_us(variant(binned != 0, batch != 0),
                                          64);
        });
      }
    }
    spam::bench::prewarm(points);
  }
  benchmark::RunSpecifiedBenchmarks();

  spam::report::Table tab(
      "Buffered-protocol ablation — 512 B message stream (2 nodes)");
  tab.set_header({"allocator", "frees", "us per message", "hop latency 64B"});
  for (const bool binned : {false, true}) {
    for (const bool batch : {false, true}) {
      const auto cfg = variant(binned, batch);
      tab.add_row({binned ? "binned+first-fit" : "first-fit only",
                   batch ? "batched" : "one per buffer",
                   spam::report::fmt(g_per_msg[binned ? 1 : 0][batch ? 1 : 0],
                                     2),
                   spam::report::fmt(
                       spam::bench::mpi_hop_latency_us(cfg, 64), 2)});
    }
  }
  spam::bench::emit(tab);

  // Allocator-only search-cost comparison under realistic churn.
  auto churn_steps = [](bool binned) {
    spam::mpi::BufferAllocator a(16 * 1024, binned);
    spam::sim::Rng rng(11);
    std::vector<std::pair<std::size_t, std::size_t>> live;
    for (int i = 0; i < 20000; ++i) {
      if (live.size() > 6 && rng.chance(0.55)) {
        const std::size_t k = rng.next_below(live.size());
        a.free(live[k].first, live[k].second);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        const std::size_t len = 64 + rng.next_below(960);
        const std::size_t off = a.alloc(len);
        if (off != spam::mpi::BufferAllocator::kFail) live.emplace_back(off, len);
      }
    }
    return a.stats().fit_search_steps;
  };
  std::printf("\nFirst-fit search steps under churn: first-fit-only=%llu, "
              "binned=%llu\n",
              static_cast<unsigned long long>(churn_steps(false)),
              static_cast<unsigned long long>(churn_steps(true)));
  std::printf(
      "Design-choice reading: batching frees shows directly in the "
      "us/message column\n(one fewer control message per buffer).  The "
      "binned allocator's effect is the\nsearch-step count above: a clean "
      "2-node stream keeps the hole list short, but\nunder the fragmented "
      "churn real MPI traffic produces (the paper's profiling\nscenario) "
      "first-fit walks ~5x further than the binned fast path — at "
      "~0.2 us a\nstep, the 'major cost in sending small messages' the "
      "paper reports.\n");
  return spam::bench::harness_finish();
}
