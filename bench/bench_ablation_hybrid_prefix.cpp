// Ablation: the hybrid protocol's eager-prefix size (paper uses 4 KB).
// Measures MPI bandwidth around the protocol-switch region for several
// prefix sizes, including 0 (pure rendez-vous).
#include <benchmark/benchmark.h>

#include "harness.hpp"
#include "micro.hpp"

namespace {

using spam::mpi::MpiAmConfig;
using spam::mpi::MpiImpl;
using spam::mpi::MpiWorldConfig;

MpiWorldConfig cfg_with_prefix(std::size_t prefix) {
  MpiWorldConfig cfg;
  cfg.impl = MpiImpl::kAmOptimized;
  cfg.am_cfg = MpiAmConfig::opt();
  cfg.am_cfg.eager_max = 0;  // force the large-message path everywhere
  cfg.am_cfg.hybrid = prefix > 0;
  if (prefix > 0) cfg.am_cfg.hybrid_prefix = prefix;
  return cfg;
}

const std::size_t kPrefixes[] = {0, 1024, 2048, 4096, 7168};
const std::size_t kSizes[] = {4096, 8192, 12288, 16384, 24576, 32768, 65536};

void BM_HybridPrefix(benchmark::State& state) {
  const std::size_t prefix = kPrefixes[state.range(0)];
  const std::size_t size = kSizes[state.range(1)];
  double bw = 0;
  for (auto _ : state) {
    bw = spam::bench::mpi_bandwidth_mbps(cfg_with_prefix(prefix), size);
    state.SetIterationTime(1e-3);
  }
  state.counters["MBps"] = bw;
}
BENCHMARK(BM_HybridPrefix)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1, 2, 3, 4, 5, 6}})
    ->UseManualTime()
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  {  // Warm every (prefix, size) point across --jobs threads.
    std::vector<std::function<void()>> points;
    for (std::size_t p : kPrefixes) {
      for (std::size_t s : kSizes) {
        points.push_back([p, s] {
          spam::bench::mpi_bandwidth_mbps(cfg_with_prefix(p), s);
        });
      }
    }
    spam::bench::prewarm(points);
  }
  benchmark::RunSpecifiedBenchmarks();

  spam::report::Table tab(
      "Hybrid-prefix ablation — MPI bandwidth (MB/s) by prefix size");
  std::vector<std::string> hdr{"bytes"};
  for (std::size_t p : kPrefixes) {
    hdr.push_back(p == 0 ? "pure rdv" : std::to_string(p) + "B prefix");
  }
  tab.set_header(hdr);
  for (std::size_t s : kSizes) {
    std::vector<std::string> row{std::to_string(s)};
    for (std::size_t p : kPrefixes) {
      row.push_back(spam::report::fmt(
          spam::bench::mpi_bandwidth_mbps(cfg_with_prefix(p), s)));
    }
    tab.add_row(row);
  }
  spam::bench::emit(tab);
  std::printf(
      "\nDesign-choice reading: the prefix keeps the pipe full during the "
      "rendez-vous\nhandshake; gains should saturate near the paper's 4 KB "
      "choice.\n");
  return spam::bench::harness_finish();
}
