// Reproduces paper Figures 10 and 11: MPI per-hop latency and bandwidth on
// wide SP nodes.  MPI-F was tuned on wide nodes, so here it wins on very
// small messages (< ~100 B) while the optimized MPI-AM takes over above.
#include <benchmark/benchmark.h>

#include "harness.hpp"
#include "micro.hpp"

namespace {

using spam::mpi::MpiImpl;
using spam::mpi::MpiWorldConfig;

MpiWorldConfig cfg_of(MpiImpl impl) {
  MpiWorldConfig cfg;
  cfg.impl = impl;
  cfg.hw = spam::sphw::SpParams::wide_node();
  cfg.nodes = 4;
  if (impl == MpiImpl::kMpiF) {
    cfg.f_cfg = spam::mpif::MpiFConfig::wide();
  }
  return cfg;
}

std::vector<std::size_t> latency_sizes() {
  return {4, 16, 64, 256, 1024, 4096, 8192, 16384, 32768};
}
std::vector<std::size_t> bandwidth_sizes() {
  std::vector<std::size_t> v;
  for (std::size_t s = 64; s <= (1u << 18); s *= 4) v.push_back(s);
  v.push_back(1u << 19);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  const auto hw = spam::sphw::SpParams::wide_node();

  {  // Warm every (curve, size) point across --jobs threads.
    std::vector<std::function<void()>> points;
    for (std::size_t s : latency_sizes()) {
      points.push_back([s, hw] { spam::bench::am_store_hop_latency_us(s, hw); });
      for (auto impl : {MpiImpl::kAmUnoptimized, MpiImpl::kAmOptimized,
                        MpiImpl::kMpiF}) {
        points.push_back([impl, s] {
          spam::bench::mpi_hop_latency_us(cfg_of(impl), s);
        });
      }
    }
    for (std::size_t s : bandwidth_sizes()) {
      points.push_back([s, hw] { spam::bench::am_store_bandwidth_mbps(s, hw); });
      for (auto impl : {MpiImpl::kAmUnoptimized, MpiImpl::kAmOptimized,
                        MpiImpl::kMpiF}) {
        points.push_back([impl, s] {
          spam::bench::mpi_bandwidth_mbps(cfg_of(impl), s);
        });
      }
    }
    spam::bench::prewarm(points);
  }
  benchmark::RunSpecifiedBenchmarks();

  spam::report::Table lat(
      "Figure 10 — MPI per-hop latency on wide nodes (us)");
  lat.set_header({"bytes", "am_store", "unopt MPI-AM", "opt MPI-AM",
                  "MPI-F"});
  for (std::size_t s : latency_sizes()) {
    lat.add_row(
        {std::to_string(s),
         spam::report::fmt(spam::bench::am_store_hop_latency_us(s, hw)),
         spam::report::fmt(spam::bench::mpi_hop_latency_us(
             cfg_of(MpiImpl::kAmUnoptimized), s)),
         spam::report::fmt(spam::bench::mpi_hop_latency_us(
             cfg_of(MpiImpl::kAmOptimized), s)),
         spam::report::fmt(spam::bench::mpi_hop_latency_us(
             cfg_of(MpiImpl::kMpiF), s))});
  }
  spam::bench::emit(lat);

  spam::report::Table bw(
      "Figure 11 — MPI point-to-point bandwidth on wide nodes (MB/s)");
  bw.set_header({"bytes", "am_store", "unopt MPI-AM", "opt MPI-AM", "MPI-F"});
  for (std::size_t s : bandwidth_sizes()) {
    bw.add_row(
        {std::to_string(s),
         spam::report::fmt(spam::bench::am_store_bandwidth_mbps(s, hw)),
         spam::report::fmt(spam::bench::mpi_bandwidth_mbps(
             cfg_of(MpiImpl::kAmUnoptimized), s)),
         spam::report::fmt(spam::bench::mpi_bandwidth_mbps(
             cfg_of(MpiImpl::kAmOptimized), s)),
         spam::report::fmt(spam::bench::mpi_bandwidth_mbps(
             cfg_of(MpiImpl::kMpiF), s))});
  }
  spam::bench::emit(bw);

  std::printf(
      "\nShape checks (paper, wide nodes): MPI-F is faster below ~100 B "
      "(it was tuned\nhere) but slower for larger messages; the MPI-F 4 KB "
      "discontinuity persists;\nMPI-AM's hybrid stays smooth.\n");
  return spam::bench::harness_finish();
}
