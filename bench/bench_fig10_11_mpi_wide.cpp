// Reproduces paper Figures 10 and 11: MPI per-hop latency and bandwidth on
// wide SP nodes.  MPI-F was tuned on wide nodes, so here it wins on very
// small messages (< ~100 B) while the optimized MPI-AM takes over above.
#include <benchmark/benchmark.h>

#include "micro.hpp"

namespace {

using spam::mpi::MpiImpl;
using spam::mpi::MpiWorldConfig;

MpiWorldConfig cfg_of(MpiImpl impl) {
  MpiWorldConfig cfg;
  cfg.impl = impl;
  cfg.hw = spam::sphw::SpParams::wide_node();
  cfg.nodes = 4;
  if (impl == MpiImpl::kMpiF) {
    cfg.f_cfg = spam::mpif::MpiFConfig::wide();
  }
  return cfg;
}

std::vector<std::size_t> latency_sizes() {
  return {4, 16, 64, 256, 1024, 4096, 8192, 16384, 32768};
}
std::vector<std::size_t> bandwidth_sizes() {
  std::vector<std::size_t> v;
  for (std::size_t s = 64; s <= (1u << 18); s *= 4) v.push_back(s);
  v.push_back(1u << 19);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  const auto hw = spam::sphw::SpParams::wide_node();

  spam::report::Table lat(
      "Figure 10 — MPI per-hop latency on wide nodes (us)");
  lat.set_header({"bytes", "am_store", "unopt MPI-AM", "opt MPI-AM",
                  "MPI-F"});
  for (std::size_t s : latency_sizes()) {
    lat.add_row(
        {std::to_string(s),
         spam::report::fmt(spam::bench::am_store_hop_latency_us(s, hw)),
         spam::report::fmt(spam::bench::mpi_hop_latency_us(
             cfg_of(MpiImpl::kAmUnoptimized), s)),
         spam::report::fmt(spam::bench::mpi_hop_latency_us(
             cfg_of(MpiImpl::kAmOptimized), s)),
         spam::report::fmt(spam::bench::mpi_hop_latency_us(
             cfg_of(MpiImpl::kMpiF), s))});
  }
  lat.print();

  spam::report::Table bw(
      "Figure 11 — MPI point-to-point bandwidth on wide nodes (MB/s)");
  bw.set_header({"bytes", "am_store", "unopt MPI-AM", "opt MPI-AM", "MPI-F"});
  for (std::size_t s : bandwidth_sizes()) {
    bw.add_row(
        {std::to_string(s),
         spam::report::fmt(spam::bench::am_store_bandwidth_mbps(s, hw)),
         spam::report::fmt(spam::bench::mpi_bandwidth_mbps(
             cfg_of(MpiImpl::kAmUnoptimized), s)),
         spam::report::fmt(spam::bench::mpi_bandwidth_mbps(
             cfg_of(MpiImpl::kAmOptimized), s)),
         spam::report::fmt(spam::bench::mpi_bandwidth_mbps(
             cfg_of(MpiImpl::kMpiF), s))});
  }
  bw.print();

  std::printf(
      "\nShape checks (paper, wide nodes): MPI-F is faster below ~100 B "
      "(it was tuned\nhere) but slower for larger messages; the MPI-F 4 KB "
      "discontinuity persists;\nMPI-AM's hybrid stays smooth.\n");
  return 0;
}
