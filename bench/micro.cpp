#include "micro.hpp"

#include <algorithm>
#include <cstring>

#include "driver/sweep.hpp"

namespace spam::bench {

namespace {

struct AmFixture {
  sim::World world;
  sphw::SpMachine machine;
  am::AmNet net;
  AmFixture(int nodes, sphw::SpParams hw, am::AmParams amp)
      : world(nodes), machine(world, hw), net(machine, amp) {}
};

std::vector<std::byte> filled(std::size_t n) {
  return std::vector<std::byte>(n, std::byte{0x5a});
}

}  // namespace

static double am_rtt_us_raw(int words, sphw::SpParams hw, am::AmParams amp) {
  AmFixture f(2, hw, amp);
  am::Endpoint& e0 = f.net.ep(0);
  am::Endpoint& e1 = f.net.ep(1);
  int pongs = 0;
  const int h_pong = e0.register_handler(
      [&](am::Endpoint&, am::Token, const am::Word*, int) { ++pongs; });
  const int h_ping = e1.register_handler(
      [&, h_pong](am::Endpoint& ep, am::Token t, const am::Word* a, int n) {
        if (n == 1) ep.reply_1(t, h_pong, a[0]);
        else if (n == 2) ep.reply_2(t, h_pong, a[0], a[1]);
        else if (n == 3) ep.reply_3(t, h_pong, a[0], a[1], a[2]);
        else ep.reply_4(t, h_pong, a[0], a[1], a[2], a[3]);
      });

  sim::Time total = 0;
  constexpr int kWarm = 4, kIters = 32;
  f.world.spawn(0, [&](sim::NodeCtx& ctx) {
    auto fire = [&] {
      if (words == 1) e0.request_1(1, h_ping, 1);
      else if (words == 2) e0.request_2(1, h_ping, 1, 2);
      else if (words == 3) e0.request_3(1, h_ping, 1, 2, 3);
      else e0.request_4(1, h_ping, 1, 2, 3, 4);
    };
    for (int i = 0; i < kWarm; ++i) {
      const int want = pongs + 1;
      fire();
      e0.poll_until([&] { return pongs >= want; });
    }
    const sim::Time t0 = ctx.now();
    for (int i = 0; i < kIters; ++i) {
      const int want = pongs + 1;
      fire();
      e0.poll_until([&] { return pongs >= want; });
    }
    total = ctx.now() - t0;
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    e1.poll_until([&] { return pongs >= kWarm + kIters; });
  });
  f.world.run();
  return sim::to_usec(total) / kIters;
}

static double raw_rtt_us_raw(sphw::SpParams hw) {
  // Raw ping-pong straight on the adapter: header-only packets, no
  // sequence numbers, no retransmission state, no per-message flow
  // bookkeeping.  Fixed software costs mirror the AM request/reply paths
  // minus the flow-control work the paper attributes the extra 4.5 us to.
  sim::World world(2);
  sphw::SpMachine machine(world, hw);
  constexpr double kSendSw = 2.6, kReplySw = 1.3, kPoll = 1.2, kHandle = 0.95;

  sim::Time total = 0;
  constexpr int kWarm = 2, kIters = 32;
  world.spawn(0, [&](sim::NodeCtx& ctx) {
    auto& ad = machine.adapter(0);
    for (int i = 0; i < kWarm + kIters; ++i) {
      if (i == kWarm) total = ctx.now();
      ctx.elapse(sim::usec(kSendSw));
      sphw::Packet p;
      p.dst = 1;
      p.payload_bytes = 4;
      ad.host_enqueue(ctx, std::move(p));
      ctx.poll_until([&] { return ad.host_rx_ready(); }, sim::usec(kPoll));
      ad.host_rx_take(ctx);
      ctx.elapse(sim::usec(kHandle));
    }
    total = ctx.now() - total;
  });
  world.spawn(1, [&](sim::NodeCtx& ctx) {
    auto& ad = machine.adapter(1);
    for (int i = 0; i < kWarm + kIters; ++i) {
      ctx.poll_until([&] { return ad.host_rx_ready(); }, sim::usec(kPoll));
      ad.host_rx_take(ctx);
      ctx.elapse(sim::usec(kHandle));
      ctx.elapse(sim::usec(kReplySw));
      sphw::Packet p;
      p.dst = 0;
      p.payload_bytes = 4;
      ad.host_enqueue(ctx, std::move(p));
    }
  });
  world.run();
  return sim::to_usec(total) / kIters;
}

static double am_request_cost_us_raw(int words, sphw::SpParams hw) {
  // Time of a successful am_request_N call (includes the poll it performs;
  // paper Table 2 assumes that poll finds the network empty).
  AmFixture f(2, hw, {});
  am::Endpoint& e0 = f.net.ep(0);
  am::Endpoint& e1 = f.net.ep(1);
  int served = 0;
  const int h_serve = e1.register_handler(
      [&](am::Endpoint&, am::Token, const am::Word*, int) { ++served; });

  sim::Time req_cost = 0;
  f.world.spawn(0, [&](sim::NodeCtx& ctx) {
    const sim::Time t0 = ctx.now();
    if (words == 1) e0.request_1(1, h_serve, 1);
    else if (words == 2) e0.request_2(1, h_serve, 1, 2);
    else if (words == 3) e0.request_3(1, h_serve, 1, 2, 3);
    else e0.request_4(1, h_serve, 1, 2, 3, 4);
    req_cost = ctx.now() - t0;
    e0.poll_until([&] { return served >= 1; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    e1.poll_until([&] { return served >= 1; });
  });
  f.world.run();
  return sim::to_usec(req_cost);
}

static double am_reply_cost_us_raw(int words, sphw::SpParams hw) {
  // Time the am_reply_N call alone, invoked from a handler.
  AmFixture f(2, hw, {});
  am::Endpoint& e0 = f.net.ep(0);
  am::Endpoint& e1 = f.net.ep(1);
  bool ponged = false;
  const int h_pong = e0.register_handler(
      [&](am::Endpoint&, am::Token, const am::Word*, int) { ponged = true; });
  sim::Time reply_cost = 0;
  const int h_serve = e1.register_handler(
      [&, h_pong](am::Endpoint& ep, am::Token t, const am::Word* a, int n) {
        const sim::Time t0 = ep.ctx().now();
        if (n == 1) ep.reply_1(t, h_pong, a[0]);
        else if (n == 2) ep.reply_2(t, h_pong, a[0], a[1]);
        else if (n == 3) ep.reply_3(t, h_pong, a[0], a[1], a[2]);
        else ep.reply_4(t, h_pong, a[0], a[1], a[2], a[3]);
        reply_cost = ep.ctx().now() - t0;
      });

  f.world.spawn(0, [&](sim::NodeCtx&) {
    if (words == 1) e0.request_1(1, h_serve, 1);
    else if (words == 2) e0.request_2(1, h_serve, 1, 2);
    else if (words == 3) e0.request_3(1, h_serve, 1, 2, 3);
    else e0.request_4(1, h_serve, 1, 2, 3, 4);
    e0.poll_until([&] { return ponged; });
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    e1.poll_until([&] { return ponged; });
  });
  f.world.run();
  return sim::to_usec(reply_cost);
}

static double am_poll_empty_us_raw(sphw::SpParams hw) {
  AmFixture f(2, hw, {});
  sim::Time cost = 0;
  f.world.spawn(0, [&](sim::NodeCtx& ctx) {
    const sim::Time t0 = ctx.now();
    f.net.ep(0).poll();
    cost = ctx.now() - t0;
  });
  f.world.run();
  return sim::to_usec(cost);
}

static double am_poll_per_msg_us_raw(sphw::SpParams hw) {
  AmFixture f(2, hw, {});
  am::Endpoint& e0 = f.net.ep(0);
  am::Endpoint& e1 = f.net.ep(1);
  int got = 0;
  const int h = e1.register_handler(
      [&](am::Endpoint&, am::Token, const am::Word*, int) { ++got; });
  sim::Time poll_with_msg = 0;
  f.world.spawn(0, [&](sim::NodeCtx&) { e0.request_1(1, h, 7); });
  f.world.spawn(1, [&](sim::NodeCtx& ctx) {
    ctx.poll_until([&] { return e1.adapter().host_rx_ready(); },
                   sim::usec(0.3));
    const sim::Time t0 = ctx.now();
    e1.poll();
    poll_with_msg = ctx.now() - t0;
  });
  f.world.run();
  return sim::to_usec(poll_with_msg) - am_poll_empty_us(hw);
}

static double am_bandwidth_mbps_raw(AmBwMode mode, std::size_t bytes,
                                    sphw::SpParams hw, am::AmParams amp) {
  AmFixture f(2, hw, amp);
  am::Endpoint& e0 = f.net.ep(0);
  am::Endpoint& e1 = f.net.ep(1);
  const std::size_t total =
      std::max<std::size_t>(bytes, std::min<std::size_t>(1 << 20, bytes * 64));
  const std::size_t count = total / bytes;
  auto src = filled(bytes);
  std::vector<std::byte> dst(bytes * std::min<std::size_t>(count, 64));
  const std::size_t slots = dst.size() / bytes;

  sim::Time elapsed = 0;
  bool done = false;
  f.world.spawn(0, [&](sim::NodeCtx& ctx) {
    const sim::Time t0 = ctx.now();
    switch (mode) {
      case AmBwMode::kSyncStore:
        for (std::size_t i = 0; i < count; ++i) {
          e0.store(1, dst.data() + (i % slots) * bytes, src.data(), bytes);
          e0.poll_until([&] { return e0.outstanding_bulk_ops() == 0; });
        }
        break;
      case AmBwMode::kSyncGet:
        for (std::size_t i = 0; i < count; ++i) {
          e0.get_blocking(1, src.data(), dst.data() + (i % slots) * bytes,
                          bytes);
        }
        break;
      case AmBwMode::kPipelinedAsyncStore: {
        std::size_t completions = 0;
        for (std::size_t i = 0; i < count; ++i) {
          e0.store_async(1, dst.data() + (i % slots) * bytes, src.data(),
                         bytes, 0, 0, [&] { ++completions; });
        }
        e0.poll_until([&] { return completions == count; });
        break;
      }
      case AmBwMode::kPipelinedAsyncGet: {
        std::size_t completions = 0;
        for (std::size_t i = 0; i < count; ++i) {
          e0.get(1, src.data(), dst.data() + (i % slots) * bytes, bytes, 0, 0,
                 [&] { ++completions; });
        }
        e0.poll_until([&] { return completions == count; });
        break;
      }
    }
    elapsed = ctx.now() - t0;
    done = true;
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    e1.poll_until([&] { return done; });
  });
  f.world.run();
  return static_cast<double>(bytes * count) / sim::to_sec(elapsed) / 1e6;
}

static double mpl_rtt_us_raw(sphw::SpParams hw, mpl::MplParams mp) {
  sim::World world(2);
  sphw::SpMachine machine(world, hw);
  mpl::MplNet net(machine, mp);
  sim::Time total = 0;
  constexpr int kWarm = 2, kIters = 16;
  world.spawn(0, [&](sim::NodeCtx& ctx) {
    int w = 1, r = 0;
    for (int i = 0; i < kWarm + kIters; ++i) {
      if (i == kWarm) total = ctx.now();
      net.ep(0).mpc_bsend(&w, sizeof w, 1, 0);
      net.ep(0).mpc_brecv(&r, sizeof r, 1, 0);
    }
    total = ctx.now() - total;
  });
  world.spawn(1, [&](sim::NodeCtx&) {
    int v = 0;
    for (int i = 0; i < kWarm + kIters; ++i) {
      net.ep(1).mpc_brecv(&v, sizeof v, 0, 0);
      net.ep(1).mpc_bsend(&v, sizeof v, 0, 0);
    }
  });
  world.run();
  return sim::to_usec(total) / kIters;
}

static double mpl_bandwidth_mbps_raw(MplBwMode mode, std::size_t bytes,
                                     sphw::SpParams hw, mpl::MplParams mp) {
  sim::World world(2);
  sphw::SpMachine machine(world, hw);
  mpl::MplNet net(machine, mp);
  const std::size_t total =
      std::max<std::size_t>(bytes, std::min<std::size_t>(1 << 20, bytes * 64));
  const std::size_t count = total / bytes;
  auto src = filled(bytes);
  std::vector<std::byte> dst(bytes);

  sim::Time elapsed = 0;
  world.spawn(0, [&](sim::NodeCtx& ctx) {
    const sim::Time t0 = ctx.now();
    if (mode == MplBwMode::kBlocking) {
      for (std::size_t i = 0; i < count; ++i) {
        net.ep(0).mpc_bsend(src.data(), bytes, 1, 0);
        char fin = 0;
        net.ep(0).mpc_brecv(&fin, 0, 1, 1);  // 0-byte echo per transfer
      }
    } else {
      std::vector<int> handles;
      handles.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        handles.push_back(net.ep(0).mpc_send(src.data(), bytes, 1, 0));
      }
      for (int h : handles) net.ep(0).mpc_wait(h);
      char fin = 0;
      net.ep(0).mpc_brecv(&fin, 0, 1, 1);  // single trailing echo
    }
    elapsed = ctx.now() - t0;
  });
  world.spawn(1, [&](sim::NodeCtx&) {
    if (mode == MplBwMode::kBlocking) {
      for (std::size_t i = 0; i < count; ++i) {
        net.ep(1).mpc_brecv(dst.data(), bytes, 0, 0);
        char fin = 0;
        net.ep(1).mpc_bsend(&fin, 0, 0, 1);
      }
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        net.ep(1).mpc_brecv(dst.data(), bytes, 0, 0);
      }
      char fin = 0;
      net.ep(1).mpc_bsend(&fin, 0, 0, 1);
    }
  });
  world.run();
  return static_cast<double>(bytes * count) / sim::to_sec(elapsed) / 1e6;
}

std::vector<std::size_t> figure3_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 16; s <= (1u << 20); s *= 2) {
    sizes.push_back(s);
    if (s * 3 / 2 < (1u << 20)) sizes.push_back(s * 3 / 2);
  }
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

static double mpi_hop_latency_us_raw(const mpi::MpiWorldConfig& cfg,
                                     std::size_t bytes) {
  mpi::MpiWorld w(cfg);
  std::vector<std::byte> buf(std::max<std::size_t>(bytes, 1), std::byte{1});
  sim::Time total = 0;
  constexpr int kWarm = 1, kIters = 4;
  const int ring = w.size();
  w.run([&](mpi::Mpi& mpi) {
    const int me = mpi.rank();
    const int right = (me + 1) % ring;
    const int left = (me + ring - 1) % ring;
    for (int i = 0; i < kWarm + kIters; ++i) {
      if (me == 0) {
        if (i == kWarm) total = mpi.ctx().now();
        mpi.send(buf.data(), bytes, right, 5);
        mpi.recv(buf.data(), bytes, left, 5);
        if (i == kWarm + kIters - 1) total = mpi.ctx().now() - total;
      } else {
        mpi.recv(buf.data(), bytes, left, 5);
        mpi.send(buf.data(), bytes, right, 5);
      }
    }
  });
  return sim::to_usec(total) / kIters / ring;
}

static double mpi_bandwidth_mbps_raw(const mpi::MpiWorldConfig& cfg,
                                     std::size_t bytes) {
  mpi::MpiWorldConfig c2 = cfg;
  c2.nodes = 2;
  mpi::MpiWorld w(c2);
  const std::size_t total =
      std::max<std::size_t>(bytes, std::min<std::size_t>(1 << 20, bytes * 32));
  const std::size_t count = total / bytes;
  std::vector<std::byte> src(bytes, std::byte{2});
  std::vector<std::byte> dst(bytes, std::byte{0});
  sim::Time elapsed = 0;
  w.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      const sim::Time t0 = mpi.ctx().now();
      for (std::size_t i = 0; i < count; ++i) {
        mpi.send(src.data(), bytes, 1, 3);
      }
      char fin = 0;
      mpi.recv(&fin, 1, 1, 4);
      elapsed = mpi.ctx().now() - t0;
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        mpi.recv(dst.data(), bytes, 0, 3);
      }
      char fin = 1;
      mpi.send(&fin, 1, 0, 4);
    }
  });
  return static_cast<double>(bytes * count) / sim::to_sec(elapsed) / 1e6;
}

static double am_store_hop_latency_us_raw(std::size_t bytes,
                                          sphw::SpParams hw) {
  // Reference curve: one-way am_store delivery time, measured at the
  // receiving handler, averaged over a short train.
  AmFixture f(2, hw, {});
  am::Endpoint& e0 = f.net.ep(0);
  am::Endpoint& e1 = f.net.ep(1);
  auto src = filled(std::max<std::size_t>(bytes, 1));
  std::vector<std::byte> dst(src.size());
  int arrived = 0;
  const int h = e1.register_bulk_handler(
      [&](am::Endpoint&, am::Token, void*, std::size_t, am::Word) {
        ++arrived;
      });
  sim::Time total = 0;
  constexpr int kIters = 4;
  f.world.spawn(0, [&](sim::NodeCtx& ctx) {
    const sim::Time t0 = ctx.now();
    for (int i = 0; i < kIters; ++i) {
      e0.store(1, dst.data(), src.data(), bytes, h, 0);
      e0.poll_until([&] { return arrived > i; });
    }
    total = ctx.now() - t0;
  });
  f.world.spawn(1, [&](sim::NodeCtx&) {
    e1.poll_until([&] { return arrived >= kIters; });
  });
  f.world.run();
  // The measured loop is send + remote-handler + ack; report half of the
  // store round as the hop value, mirroring the figures' am_store line.
  return sim::to_usec(total) / kIters / 2.0;
}

double am_store_bandwidth_mbps(std::size_t bytes, sphw::SpParams hw) {
  return am_bandwidth_mbps(AmBwMode::kPipelinedAsyncStore, bytes, hw, {});
}

// --- Memoized public entry points -------------------------------------------
// Each measurement is keyed on (bench id, every parameter field, size/mode)
// and computed at most once per invocation via driver::ResultCache.  The
// prewarm sweep (bench/harness.hpp) fills the cache across host threads;
// the google-benchmark pass and the table builders then read it.  Params
// are mixed field-by-field so padding bytes never reach the key.

namespace {

using driver::Hasher;

Hasher& mix(Hasher& h, const sphw::SpParams& p) {
  return h.mix(p.flush_line_us)
      .mix(p.cache_line_bytes)
      .mix(p.host_write_us_per_byte)
      .mix(p.host_copy_us_per_byte)
      .mix(p.mc_access_us)
      .mix(p.mc_dma_mbps)
      .mix(p.dma_setup_us)
      .mix(p.i860_tx_us)
      .mix(p.i860_rx_us)
      .mix(p.link_mbps)
      .mix(p.hop_latency_us)
      .mix(p.send_fifo_entries)
      .mix(p.recv_fifo_entries_per_node)
      .mix(p.packet_data_bytes)
      .mix(p.packet_header_bytes)
      .mix(p.lazy_pop_batch)
      .mix(p.network_fastpath)
      .mix(p.local_clock);
}

Hasher& mix(Hasher& h, const am::AmParams& p) {
  return h.mix(p.request_window_packets)
      .mix(p.reply_window_packets)
      .mix(p.chunk_packets)
      .mix(p.explicit_ack_divisor)
      .mix(p.keepalive_poll_threshold)
      .mix(p.interrupt_driven)
      .mix(p.interrupt_latency_us)
      .mix(p.poll_empty_us)
      .mix(p.per_msg_handling_us)
      .mix(p.request_cpu_us)
      .mix(p.reply_cpu_us)
      .mix(p.per_word_us)
      .mix(p.bookkeeping_us)
      .mix(p.bulk_setup_us)
      .mix(p.doorbell_batch_packets)
      .mix(p.control_cpu_us);
}

Hasher& mix(Hasher& h, const mpl::MplParams& p) {
  return h.mix(p.send_sw_us)
      .mix(p.recv_sw_us)
      .mix(p.per_packet_us)
      .mix(p.sysbuf_copy_us_per_byte)
      .mix(p.user_copy_us_per_byte)
      .mix(p.poll_us)
      .mix(p.credit_window)
      .mix(p.credit_return_every);
}

Hasher& mix(Hasher& h, const mpi::MpiAmConfig& p) {
  return h.mix(p.optimized)
      .mix(p.peer_buffer_bytes)
      .mix(p.eager_max)
      .mix(p.hybrid)
      .mix(p.hybrid_prefix)
      .mix(p.binned_allocator)
      .mix(p.batch_frees)
      .mix(p.free_batch)
      .mix(p.sw_send_us)
      .mix(p.sw_recv_us)
      .mix(p.copy_us_per_byte)
      .mix(p.alloc_step_us);
}

Hasher& mix(Hasher& h, const mpif::MpiFConfig& p) {
  h.mix(p.eager_max).mix(p.sw_send_us).mix(p.sw_recv_us);
  mix(h, p.transport);
  return h.mix(p.tuned_collectives);
}

Hasher& mix(Hasher& h, const mpi::MpiWorldConfig& p) {
  h.mix(p.nodes).mix(p.impl).mix(p.seed);
  mix(h, p.hw);
  mix(h, p.am);
  mix(h, p.am_cfg);
  return mix(h, p.f_cfg);
}

double cached(const Hasher& h, const std::function<double()>& compute) {
  return driver::ResultCache::instance().memoize(h.digest(), compute);
}

}  // namespace

double am_rtt_us(int words, sphw::SpParams hw, am::AmParams amp) {
  Hasher h("am_rtt_us");
  mix(mix(h.mix(words), hw), amp);
  return cached(h, [&] { return am_rtt_us_raw(words, hw, amp); });
}

double raw_rtt_us(sphw::SpParams hw) {
  Hasher h("raw_rtt_us");
  mix(h, hw);
  return cached(h, [&] { return raw_rtt_us_raw(hw); });
}

double am_request_cost_us(int words, sphw::SpParams hw) {
  Hasher h("am_request_cost_us");
  mix(h.mix(words), hw);
  return cached(h, [&] { return am_request_cost_us_raw(words, hw); });
}

double am_reply_cost_us(int words, sphw::SpParams hw) {
  Hasher h("am_reply_cost_us");
  mix(h.mix(words), hw);
  return cached(h, [&] { return am_reply_cost_us_raw(words, hw); });
}

double am_poll_empty_us(sphw::SpParams hw) {
  Hasher h("am_poll_empty_us");
  mix(h, hw);
  return cached(h, [&] { return am_poll_empty_us_raw(hw); });
}

double am_poll_per_msg_us(sphw::SpParams hw) {
  Hasher h("am_poll_per_msg_us");
  mix(h, hw);
  return cached(h, [&] { return am_poll_per_msg_us_raw(hw); });
}

double am_bandwidth_mbps(AmBwMode mode, std::size_t bytes, sphw::SpParams hw,
                         am::AmParams amp) {
  Hasher h("am_bandwidth_mbps");
  mix(mix(h.mix(mode).mix(bytes), hw), amp);
  return cached(h, [&] { return am_bandwidth_mbps_raw(mode, bytes, hw, amp); });
}

double mpl_rtt_us(sphw::SpParams hw, mpl::MplParams mp) {
  Hasher h("mpl_rtt_us");
  mix(mix(h, hw), mp);
  return cached(h, [&] { return mpl_rtt_us_raw(hw, mp); });
}

double mpl_bandwidth_mbps(MplBwMode mode, std::size_t bytes,
                          sphw::SpParams hw, mpl::MplParams mp) {
  Hasher h("mpl_bandwidth_mbps");
  mix(mix(h.mix(mode).mix(bytes), hw), mp);
  return cached(h,
                [&] { return mpl_bandwidth_mbps_raw(mode, bytes, hw, mp); });
}

double mpi_hop_latency_us(const mpi::MpiWorldConfig& cfg, std::size_t bytes) {
  Hasher h("mpi_hop_latency_us");
  mix(h.mix(bytes), cfg);
  return cached(h, [&] { return mpi_hop_latency_us_raw(cfg, bytes); });
}

double mpi_bandwidth_mbps(const mpi::MpiWorldConfig& cfg, std::size_t bytes) {
  Hasher h("mpi_bandwidth_mbps");
  mix(h.mix(bytes), cfg);
  return cached(h, [&] { return mpi_bandwidth_mbps_raw(cfg, bytes); });
}

double am_store_hop_latency_us(std::size_t bytes, sphw::SpParams hw) {
  Hasher h("am_store_hop_latency_us");
  mix(h.mix(bytes), hw);
  return cached(h, [&] { return am_store_hop_latency_us_raw(bytes, hw); });
}

}  // namespace spam::bench
