// Reproduces paper Figure 3: one-way bandwidth of blocking and non-blocking
// bulk transfers, 16 B .. 1 MB — six curves: sync store, sync get, MPL
// send/reply (blocking), pipelined async store, pipelined async get,
// pipelined MPL send.
#include <benchmark/benchmark.h>

#include "harness.hpp"
#include "micro.hpp"

namespace {

using spam::bench::AmBwMode;
using spam::bench::MplBwMode;

void BM_SyncStore(benchmark::State& state) {
  double mbps = 0;
  for (auto _ : state) {
    mbps = spam::bench::am_bandwidth_mbps(
        AmBwMode::kSyncStore, static_cast<std::size_t>(state.range(0)));
    state.SetIterationTime(1e-3);
  }
  state.counters["MBps"] = mbps;
}

void BM_SyncGet(benchmark::State& state) {
  double mbps = 0;
  for (auto _ : state) {
    mbps = spam::bench::am_bandwidth_mbps(
        AmBwMode::kSyncGet, static_cast<std::size_t>(state.range(0)));
    state.SetIterationTime(1e-3);
  }
  state.counters["MBps"] = mbps;
}

void BM_AsyncStore(benchmark::State& state) {
  double mbps = 0;
  for (auto _ : state) {
    mbps = spam::bench::am_bandwidth_mbps(
        AmBwMode::kPipelinedAsyncStore,
        static_cast<std::size_t>(state.range(0)));
    state.SetIterationTime(1e-3);
  }
  state.counters["MBps"] = mbps;
}

void BM_AsyncGet(benchmark::State& state) {
  double mbps = 0;
  for (auto _ : state) {
    mbps = spam::bench::am_bandwidth_mbps(
        AmBwMode::kPipelinedAsyncGet,
        static_cast<std::size_t>(state.range(0)));
    state.SetIterationTime(1e-3);
  }
  state.counters["MBps"] = mbps;
}

void BM_MplBlocking(benchmark::State& state) {
  double mbps = 0;
  for (auto _ : state) {
    mbps = spam::bench::mpl_bandwidth_mbps(
        MplBwMode::kBlocking, static_cast<std::size_t>(state.range(0)));
    state.SetIterationTime(1e-3);
  }
  state.counters["MBps"] = mbps;
}

void BM_MplPipelined(benchmark::State& state) {
  double mbps = 0;
  for (auto _ : state) {
    mbps = spam::bench::mpl_bandwidth_mbps(
        MplBwMode::kPipelined, static_cast<std::size_t>(state.range(0)));
    state.SetIterationTime(1e-3);
  }
  state.counters["MBps"] = mbps;
}

void register_sizes(const char* name, void (*fn)(benchmark::State&)) {
  for (std::size_t s : spam::bench::figure3_sizes()) {
    benchmark::RegisterBenchmark(name, fn)
        ->Arg(static_cast<long>(s))
        ->UseManualTime()
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  // Register one point per curve per size so the benchmark table lists the
  // whole figure; the summary below prints the series compactly.
  register_sizes("Fig3/SyncStore", BM_SyncStore);
  register_sizes("Fig3/SyncGet", BM_SyncGet);
  register_sizes("Fig3/MplBlocking", BM_MplBlocking);
  register_sizes("Fig3/PipelinedAsyncStore", BM_AsyncStore);
  register_sizes("Fig3/PipelinedAsyncGet", BM_AsyncGet);
  register_sizes("Fig3/PipelinedMplSend", BM_MplPipelined);

  spam::bench::prewarm(spam::bench::fig3_points(spam::bench::figure3_sizes()));
  benchmark::RunSpecifiedBenchmarks();

  // Figure data as a table: size, then the six curves (all cached by now).
  spam::bench::emit(spam::bench::fig3_table(spam::bench::figure3_sizes()));

  std::printf(
      "\nShape checks (paper): async >= sync below one chunk and equal "
      "above 8064 B;\nsync get trails sync store at small sizes; all curves "
      "converge to ~34-35 MB/s.\n");
  return spam::bench::harness_finish();
}
