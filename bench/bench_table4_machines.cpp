// Reproduces paper Table 4: communication characteristics of the TMC CM-5,
// Meiko CS-2, U-Net/ATM cluster, and IBM SP — message overhead, round-trip
// latency, and per-node bandwidth, measured on the respective machine
// models.
#include <benchmark/benchmark.h>

#include <array>

#include "driver/sweep.hpp"
#include "harness.hpp"
#include "logp/loggp.hpp"
#include "micro.hpp"

namespace {

using spam::logp::LogGpMachine;
using spam::logp::LogGpParams;

double loggp_rtt_us(const LogGpParams& params) {
  spam::sim::World w(2);
  LogGpMachine m(w, params);
  std::uint64_t flag0 = 0, flag1 = 0;
  spam::sim::Time rtt = 0;
  w.spawn(0, [&](spam::sim::NodeCtx& ctx) {
    for (std::uint64_t v = 1; v <= 3; ++v) {
      if (v == 2) rtt = ctx.now();
      m.ep(0).put_bytes(1, &flag1, &v, 8);
      while (flag0 < v) m.ep(0).poll();
    }
    rtt = (ctx.now() - rtt) / 2;
  });
  w.spawn(1, [&](spam::sim::NodeCtx&) {
    for (std::uint64_t v = 1; v <= 3; ++v) {
      while (flag1 < v) m.ep(1).poll();
      m.ep(1).put_bytes(0, &flag0, &v, 8);
    }
  });
  w.run();
  return spam::sim::to_usec(rtt);
}

double loggp_bw_mbps(const LogGpParams& params) {
  spam::sim::World w(2);
  LogGpMachine m(w, params);
  const std::size_t len = 1 << 20;
  std::vector<std::byte> src(len, std::byte{3});
  std::vector<std::byte> dst(len, std::byte{0});
  spam::sim::Time elapsed = 0;
  w.spawn(0, [&](spam::sim::NodeCtx& ctx) {
    const spam::sim::Time t0 = ctx.now();
    m.ep(0).put_bytes(1, dst.data(), src.data(), len);
    while (m.ep(0).outstanding() > 0) m.ep(0).poll();
    elapsed = ctx.now() - t0;
  });
  w.run();
  return static_cast<double>(len) / spam::sim::to_sec(elapsed) / 1e6;
}

struct Row {
  const char* machine;
  const char* cpu;
  double paper_overhead_us;
  double paper_rtt_us;
  double paper_bw;
};

// Filled by the parallel sweep in main() before benchmarks run.
std::array<double, 3> g_rtt{};
std::array<double, 3> g_bw{};

void BM_MachineRtt(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = g_rtt[static_cast<std::size_t>(state.range(0))];
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}
BENCHMARK(BM_MachineRtt)->DenseRange(0, 2)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  const LogGpParams presets[] = {LogGpParams::cm5(), LogGpParams::meiko_cs2(),
                                 LogGpParams::unet_atm()};

  // LogGP points land in fixed slots; SP AM points go through the cache.
  std::vector<std::function<void()>> points;
  for (int i = 0; i < 3; ++i) {
    points.push_back([&, i] { g_rtt[i] = loggp_rtt_us(presets[i]); });
    points.push_back([&, i] { g_bw[i] = loggp_bw_mbps(presets[i]); });
  }
  points.push_back([] { spam::bench::am_request_cost_us(1); });
  points.push_back([] { spam::bench::am_poll_empty_us(); });
  points.push_back([] { spam::bench::am_reply_cost_us(1); });
  points.push_back([] { spam::bench::am_rtt_us(1); });
  points.push_back([] {
    spam::bench::am_bandwidth_mbps(spam::bench::AmBwMode::kPipelinedAsyncStore,
                                   1 << 20);
  });
  spam::bench::prewarm(points);

  benchmark::RunSpecifiedBenchmarks();

  using spam::report::fmt;

  const Row rows[] = {
      {"TMC CM-5", "33 MHz Sparc-2", 3.0, 12.0, 10.0},
      {"Meiko CS-2", "40 MHz SuperSparc", 11.0, 25.0, 39.0},
      {"U-Net/ATM", "50/60 MHz Sparc-20", 3.0, 66.0, 14.0},
  };

  spam::report::Table tab(
      "Table 4 — machine communication characteristics (paper / measured)");
  tab.set_header({"machine", "CPU", "overhead (us)", "round-trip (us)",
                  "bandwidth (MB/s)"});
  for (int i = 0; i < 3; ++i) {
    const auto& p = presets[i];
    tab.add_row({rows[i].machine, rows[i].cpu,
                 fmt(rows[i].paper_overhead_us) + " / " +
                     fmt(p.o_send_us + p.o_recv_us),
                 fmt(rows[i].paper_rtt_us) + " / " + fmt(g_rtt[i]),
                 fmt(rows[i].paper_bw) + " / " + fmt(g_bw[i])});
  }
  // The SP row uses the detailed TB2 model, not LogGP.
  const double sp_overhead = spam::bench::am_request_cost_us(1) -
                             spam::bench::am_poll_empty_us() +
                             spam::bench::am_reply_cost_us(1);
  tab.add_row({"IBM SP (SP AM)", "66 MHz Power2",
               fmt(3.0 + 1.4, 1) + "-ish / " + fmt(sp_overhead),
               fmt(51.0) + " / " + fmt(spam::bench::am_rtt_us(1)),
               fmt(34.0) + " / " +
                   fmt(spam::bench::am_bandwidth_mbps(
                       spam::bench::AmBwMode::kPipelinedAsyncStore,
                       1 << 20))});
  spam::bench::emit(tab);
  return spam::bench::harness_finish();
}
