// Extension: (a) bidirectional *exchange* bandwidth — the companion
// measurement the paper's TR reports (footnote 3) — and (b) the AM
// microbenchmark summary on wide nodes (the paper quotes thin nodes only).
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "harness.hpp"
#include "micro.hpp"

namespace {

/// Both nodes stream `total` bytes at each other simultaneously with
/// pipelined async stores; reports the per-node send bandwidth.
double exchange_bandwidth_mbps(std::size_t piece,
                               spam::sphw::SpParams hw) {
  spam::sim::World world(2);
  spam::sphw::SpMachine machine(world, hw);
  spam::am::AmNet net(machine);
  const std::size_t total = 1 << 20;
  const std::size_t count = total / piece;
  std::vector<std::byte> src(piece, std::byte{0x11});
  std::vector<std::byte> d0(piece, std::byte{0});
  std::vector<std::byte> d1(piece, std::byte{0});
  std::size_t done[2] = {0, 0};
  spam::sim::Time finish[2] = {0, 0};

  for (int r = 0; r < 2; ++r) {
    world.spawn(r, [&, r](spam::sim::NodeCtx& ctx) {
      auto& ep = net.ep(r);
      auto* dst = r == 0 ? d1.data() : d0.data();
      for (std::size_t i = 0; i < count; ++i) {
        ep.store_async(1 - r, dst, src.data(), piece, 0, 0,
                       [&, r] { ++done[r]; });
      }
      ep.poll_until(
          [&] { return done[0] == count && done[1] == count; });
      finish[r] = ctx.now();
    });
  }
  world.run();
  const double secs =
      spam::sim::to_sec(std::max(finish[0], finish[1]));
  return static_cast<double>(total) / secs / 1e6;
}

// g_exchange[(piece, wide?)], filled by the parallel sweep in main().
std::map<std::pair<std::size_t, bool>, double> g_exchange;

void BM_Exchange(benchmark::State& state) {
  double mbps = 0;
  for (auto _ : state) {
    mbps = g_exchange[{static_cast<std::size_t>(state.range(0)), false}];
    state.SetIterationTime(1e-3);
  }
  state.counters["MBps_per_node"] = mbps;
}
BENCHMARK(BM_Exchange)->Arg(1024)->Arg(8192)->Arg(65536)
    ->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  const auto thin = spam::sphw::SpParams::thin_node();
  const auto wide = spam::sphw::SpParams::wide_node();

  {  // Exchange points land in the map; the AM points hit the cache.
    std::vector<std::function<void()>> points;
    for (std::size_t piece : {std::size_t{1024}, std::size_t{8192},
                              std::size_t{65536}}) {
      g_exchange[{piece, false}] = 0;
      g_exchange[{piece, true}] = 0;
      points.push_back([&, piece] {
        g_exchange[{piece, false}] = exchange_bandwidth_mbps(piece, thin);
      });
      points.push_back([&, piece] {
        g_exchange[{piece, true}] = exchange_bandwidth_mbps(piece, wide);
      });
      points.push_back([thin, piece] {
        spam::bench::am_bandwidth_mbps(
            spam::bench::AmBwMode::kPipelinedAsyncStore, piece, thin, {});
      });
    }
    for (auto hw : {thin, wide}) {
      points.push_back([hw] { spam::bench::am_rtt_us(1, hw); });
      points.push_back([hw] {
        spam::bench::am_bandwidth_mbps(
            spam::bench::AmBwMode::kPipelinedAsyncStore, 1 << 20, hw, {});
      });
    }
    spam::bench::prewarm(points);
  }
  benchmark::RunSpecifiedBenchmarks();

  spam::report::Table ex(
      "Extension — bidirectional exchange bandwidth per node (MB/s)");
  ex.set_header({"piece bytes", "one-way (thin)", "exchange (thin)",
                 "exchange (wide)"});
  for (std::size_t piece : {std::size_t{1024}, std::size_t{8192},
                            std::size_t{65536}}) {
    ex.add_row({std::to_string(piece),
                spam::report::fmt(spam::bench::am_bandwidth_mbps(
                    spam::bench::AmBwMode::kPipelinedAsyncStore, piece, thin,
                    {})),
                spam::report::fmt(g_exchange[{piece, false}]),
                spam::report::fmt(g_exchange[{piece, true}])});
  }
  spam::bench::emit(ex);

  spam::report::Table am(
      "Extension — AM microbenchmarks, thin vs wide nodes");
  am.set_header({"metric", "thin", "wide"});
  am.add_row({"one-word round-trip (us)",
              spam::report::fmt(spam::bench::am_rtt_us(1, thin)),
              spam::report::fmt(spam::bench::am_rtt_us(1, wide))});
  am.add_row({"async-store r-inf (MB/s)",
              spam::report::fmt(spam::bench::am_bandwidth_mbps(
                  spam::bench::AmBwMode::kPipelinedAsyncStore, 1 << 20, thin,
                  {})),
              spam::report::fmt(spam::bench::am_bandwidth_mbps(
                  spam::bench::AmBwMode::kPipelinedAsyncStore, 1 << 20, wide,
                  {}))});
  spam::bench::emit(am);

  std::printf(
      "\nReading: exchange bandwidth stays near the one-way rate — the "
      "links are\nfull-duplex and the adapter rx/tx pipelines are "
      "independent; the receiver's CPU\nbudget (copies + acks) is the "
      "contended resource.  Wide nodes shave host-side\ncosts, helping "
      "latency slightly and bandwidth marginally (the link still "
      "binds).\n");
  return spam::bench::harness_finish();
}
