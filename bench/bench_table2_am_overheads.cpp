// Reproduces paper Table 2: cost of am_request_N / am_reply_N calls,
// plus the poll costs quoted in section 2.5.
#include <benchmark/benchmark.h>

#include "harness.hpp"
#include "micro.hpp"

namespace {

void BM_AmRequestCost(benchmark::State& state) {
  const int words = static_cast<int>(state.range(0));
  double us = 0;
  for (auto _ : state) {
    us = spam::bench::am_request_cost_us(words);
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}
BENCHMARK(BM_AmRequestCost)->DenseRange(1, 4)->UseManualTime()->Iterations(1);

void BM_AmReplyCost(benchmark::State& state) {
  const int words = static_cast<int>(state.range(0));
  double us = 0;
  for (auto _ : state) {
    us = spam::bench::am_reply_cost_us(words);
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}
BENCHMARK(BM_AmReplyCost)->DenseRange(1, 4)->UseManualTime()->Iterations(1);

void BM_AmPollEmpty(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = spam::bench::am_poll_empty_us();
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}
BENCHMARK(BM_AmPollEmpty)->UseManualTime()->Iterations(1);

void BM_AmPollPerMessage(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = spam::bench::am_poll_per_msg_us();
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}
BENCHMARK(BM_AmPollPerMessage)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  std::vector<std::function<void()>> points;
  for (int n = 1; n <= 4; ++n) {
    points.push_back([n] { spam::bench::am_request_cost_us(n); });
    points.push_back([n] { spam::bench::am_reply_cost_us(n); });
  }
  points.push_back([] { spam::bench::am_poll_empty_us(); });
  points.push_back([] { spam::bench::am_poll_per_msg_us(); });
  spam::bench::prewarm(points);

  benchmark::RunSpecifiedBenchmarks();

  spam::report::PaperComparison cmp(
      "Table 2 — cost of am_request_N / am_reply_N (thin nodes)");
  const double paper_req[] = {7.7, 7.9, 8.0, 8.2};
  const double paper_rep[] = {4.0, 4.1, 4.3, 4.4};
  for (int n = 1; n <= 4; ++n) {
    cmp.add("am_request_" + std::to_string(n),
            spam::report::fmt_us(paper_req[n - 1]),
            spam::report::fmt_us(spam::bench::am_request_cost_us(n)),
            "includes one empty poll");
    cmp.add("am_reply_" + std::to_string(n),
            spam::report::fmt_us(paper_rep[n - 1]),
            spam::report::fmt_us(spam::bench::am_reply_cost_us(n)));
  }
  cmp.add("am_poll (empty network)", spam::report::fmt_us(1.3),
          spam::report::fmt_us(spam::bench::am_poll_empty_us()));
  cmp.add("per received message", spam::report::fmt_us(1.8),
          spam::report::fmt_us(spam::bench::am_poll_per_msg_us()));
  spam::bench::emit(cmp);
  return spam::bench::harness_finish();
}
