#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "driver/sweep.hpp"
#include "micro.hpp"

namespace spam::bench {

namespace {

std::vector<report::Table>& collected() {
  static std::vector<report::Table> tables;
  return tables;
}

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void json_string_array(std::string& out, const std::vector<std::string>& a) {
  out += '[';
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    json_escape(out, a[i]);
    out += '"';
  }
  out += ']';
}

}  // namespace

HarnessOptions& options() {
  static HarnessOptions opts;
  return opts;
}

void harness_init(int* argc, char** argv) {
  HarnessOptions& o = options();
  int keep = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* a = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (std::strncmp(a, flag, n) != 0) return nullptr;
      if (a[n] == '=') return a + n + 1;
      if (a[n] == '\0' && i + 1 < *argc) return argv[++i];
      return nullptr;
    };
    if (std::strcmp(a, "--quick") == 0) {
      o.quick = true;
    } else if (const char* v = value_of("--jobs")) {
      o.jobs = std::atoi(v);
    } else if (const char* v = value_of("--out")) {
      o.out = v;
    } else {
      argv[keep++] = argv[i];
    }
  }
  argv[keep] = nullptr;
  *argc = keep;
}

void prewarm(const std::vector<std::function<void()>>& points) {
  driver::SweepRunner(options().jobs).run(points);
}

void emit(const report::Table& t) {
  t.print();
  collected().push_back(t);
}

void emit(const report::PaperComparison& c) { emit(c.table()); }

int harness_finish() {
  const HarnessOptions& o = options();
  if (o.out.empty()) return 0;

  const driver::ResultCache::Stats cs = driver::ResultCache::instance().stats();
  std::string j = "{\n";
  j += "  \"jobs\": " + std::to_string(driver::SweepRunner(o.jobs).jobs());
  j += ",\n  \"cache\": {\"hits\": " + std::to_string(cs.hits) +
       ", \"misses\": " + std::to_string(cs.misses) + "}";
  j += ",\n  \"tables\": [";
  bool first_table = true;
  for (const report::Table& t : collected()) {
    j += first_table ? "\n" : ",\n";
    first_table = false;
    j += "    {\"title\": \"";
    json_escape(j, t.title());
    j += "\", \"header\": ";
    json_string_array(j, t.header());
    j += ", \"rows\": [";
    for (std::size_t r = 0; r < t.rows().size(); ++r) {
      if (r != 0) j += ", ";
      json_string_array(j, t.rows()[r]);
    }
    j += "]}";
  }
  j += "\n  ]\n}\n";

  std::FILE* f = std::fopen(o.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "harness: cannot write %s\n", o.out.c_str());
    return 1;
  }
  std::fwrite(j.data(), 1, j.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", o.out.c_str());
  return 0;
}

std::vector<std::function<void()>> fig3_points(
    const std::vector<std::size_t>& sizes) {
  std::vector<std::function<void()>> pts;
  pts.reserve(sizes.size() * 6);
  for (std::size_t s : sizes) {
    pts.push_back([s] { am_bandwidth_mbps(AmBwMode::kSyncStore, s); });
    pts.push_back([s] { am_bandwidth_mbps(AmBwMode::kSyncGet, s); });
    pts.push_back([s] { mpl_bandwidth_mbps(MplBwMode::kBlocking, s); });
    pts.push_back([s] { am_bandwidth_mbps(AmBwMode::kPipelinedAsyncStore, s); });
    pts.push_back([s] { am_bandwidth_mbps(AmBwMode::kPipelinedAsyncGet, s); });
    pts.push_back([s] { mpl_bandwidth_mbps(MplBwMode::kPipelined, s); });
  }
  return pts;
}

report::Table fig3_table(const std::vector<std::size_t>& sizes) {
  report::Table tab("Figure 3 — bandwidth of bulk transfers (MB/s)");
  tab.set_header({"bytes", "sync store", "sync get", "MPL blocking",
                  "async store", "async get", "MPL pipelined"});
  for (std::size_t s : sizes) {
    tab.add_row({std::to_string(s),
                 report::fmt(am_bandwidth_mbps(AmBwMode::kSyncStore, s)),
                 report::fmt(am_bandwidth_mbps(AmBwMode::kSyncGet, s)),
                 report::fmt(mpl_bandwidth_mbps(MplBwMode::kBlocking, s)),
                 report::fmt(
                     am_bandwidth_mbps(AmBwMode::kPipelinedAsyncStore, s)),
                 report::fmt(
                     am_bandwidth_mbps(AmBwMode::kPipelinedAsyncGet, s)),
                 report::fmt(mpl_bandwidth_mbps(MplBwMode::kPipelined, s))});
  }
  return tab;
}

}  // namespace spam::bench
