// Reproduces paper Figure 7: bandwidth of the buffered, rendez-vous, and
// hybrid buffered/rendez-vous MPI protocols, each forced across the whole
// size range.  The hybrid curve must dominate both pure protocols around
// the switch region (no discontinuity).
//
// The pure-buffered curve needs room beyond the production 16 KB region,
// so that configuration runs with an enlarged 256 KB per-peer buffer (the
// paper's protocol study similarly isolates the protocols).
#include <benchmark/benchmark.h>

#include "harness.hpp"
#include "micro.hpp"

namespace {

using spam::mpi::MpiAmConfig;
using spam::mpi::MpiImpl;
using spam::mpi::MpiWorldConfig;

MpiWorldConfig force_buffered() {
  MpiWorldConfig cfg;
  cfg.impl = MpiImpl::kAmOptimized;
  cfg.am_cfg = MpiAmConfig::opt();
  cfg.am_cfg.peer_buffer_bytes = 256 * 1024;
  cfg.am_cfg.eager_max = 200 * 1024;
  cfg.am_cfg.hybrid = false;
  return cfg;
}

MpiWorldConfig force_rendezvous() {
  MpiWorldConfig cfg;
  cfg.impl = MpiImpl::kAmOptimized;
  cfg.am_cfg = MpiAmConfig::opt();
  cfg.am_cfg.eager_max = 0;
  cfg.am_cfg.hybrid = false;
  return cfg;
}

MpiWorldConfig force_hybrid() {
  MpiWorldConfig cfg;
  cfg.impl = MpiImpl::kAmOptimized;
  cfg.am_cfg = MpiAmConfig::opt();
  cfg.am_cfg.eager_max = 0;  // every message takes the hybrid path
  cfg.am_cfg.hybrid = true;
  return cfg;
}

std::vector<std::size_t> sizes() {
  std::vector<std::size_t> v;
  for (std::size_t s = 512; s <= (1u << 17); s *= 2) {
    v.push_back(s);
    v.push_back(s * 3 / 2);
  }
  return v;
}

void run_curve(const char* name, const MpiWorldConfig& cfg,
               std::vector<spam::report::BwPoint>& out) {
  for (std::size_t s : sizes()) {
    out.push_back({s, spam::bench::mpi_bandwidth_mbps(cfg, s)});
  }
  (void)name;
}

}  // namespace

int main(int argc, char** argv) {
  spam::bench::harness_init(&argc, argv);
  benchmark::Initialize(&argc, argv);

  std::vector<spam::report::BwPoint> buffered, rdv, hybrid;

  {  // Warm every (protocol, size) point across --jobs threads.
    std::vector<std::function<void()>> points;
    for (auto cfg : {force_buffered(), force_rendezvous(), force_hybrid()}) {
      for (std::size_t s : sizes()) {
        points.push_back([cfg, s] { spam::bench::mpi_bandwidth_mbps(cfg, s); });
      }
    }
    spam::bench::prewarm(points);
  }

  benchmark::RegisterBenchmark("Fig7/Buffered", [&](benchmark::State& state) {
    for (auto _ : state) {
      run_curve("buffered", force_buffered(), buffered);
      state.SetIterationTime(1e-3);
    }
    state.counters["r_inf"] = spam::report::r_infinity(buffered);
  })->UseManualTime()->Iterations(1);
  benchmark::RegisterBenchmark("Fig7/Rendezvous",
                               [&](benchmark::State& state) {
    for (auto _ : state) {
      run_curve("rendezvous", force_rendezvous(), rdv);
      state.SetIterationTime(1e-3);
    }
    state.counters["r_inf"] = spam::report::r_infinity(rdv);
  })->UseManualTime()->Iterations(1);
  benchmark::RegisterBenchmark("Fig7/Hybrid", [&](benchmark::State& state) {
    for (auto _ : state) {
      run_curve("hybrid", force_hybrid(), hybrid);
      state.SetIterationTime(1e-3);
    }
    state.counters["r_inf"] = spam::report::r_infinity(hybrid);
  })->UseManualTime()->Iterations(1);
  benchmark::RunSpecifiedBenchmarks();

  spam::report::Table tab(
      "Figure 7 — buffered vs rendez-vous vs hybrid protocol bandwidth "
      "(MB/s)");
  tab.set_header({"bytes", "buffered", "rendez-vous", "hybrid"});
  const auto sz = sizes();
  for (std::size_t i = 0; i < sz.size(); ++i) {
    tab.add_row({std::to_string(sz[i]), spam::report::fmt(buffered[i].mbps),
                 spam::report::fmt(rdv[i].mbps),
                 spam::report::fmt(hybrid[i].mbps)});
  }
  spam::bench::emit(tab);

  // Shape check: the hybrid curve should match or beat both pure protocols
  // in the 4-32 KB switch region.
  int wins = 0, pts = 0;
  for (std::size_t i = 0; i < sz.size(); ++i) {
    if (sz[i] < 4096 || sz[i] > 32768) continue;
    ++pts;
    if (hybrid[i].mbps + 0.5 >= std::min(buffered[i].mbps, rdv[i].mbps)) {
      ++wins;
    }
  }
  std::printf("\nHybrid >= min(buffered, rendez-vous) on %d/%d points in the "
              "switch region.\n", wins, pts);
  return spam::bench::harness_finish();
}
